"""Runtime scaling of the full PD pipeline.

Not a paper artifact — an engineering bench tracking how wall-clock cost
grows with instance size and processor count. Since the incremental
kernel layer (``repro.perf``), a PD arrival costs O(window + split
intervals) instead of O(n·N), so the grid runs to n = 2000 — ten times
the historical ceiling — and still finishes faster than the seed's
n = 200 row did.

The sweep is the ``pd-scaling`` scenario of :mod:`repro.perf.bench`;
besides the human-readable ``scaling.txt`` table it emits the
machine-readable ``BENCH_scaling.json`` series (with an environment +
calibration stamp) that the baseline-comparison gate tracks across
commits.
"""

from __future__ import annotations

import pytest

from repro.perf.bench import run_scenario, write_result

from helpers import RESULTS_DIR, emit_table


@pytest.mark.benchmark(group="scaling")
def test_scaling_pd_pipeline(benchmark):
    payload = benchmark.pedantic(
        lambda: run_scenario("pd-scaling", grid="full"),
        rounds=1,
        iterations=1,
    )
    write_result(payload, RESULTS_DIR, name="scaling")
    rows = [
        f"{row['n']:>5d} {row['m']:>3d} {1e3 * row['run_time']:>12.1f} "
        f"{1e3 * row['certify_time']:>12.1f}"
        for row in payload["series"]
    ]
    emit_table(
        "scaling",
        f"{'n':>5} {'m':>3} {'PD run (ms)':>12} {'certify (ms)':>12}",
        rows,
    )
    # Soft envelopes: the pipeline must stay interactive across the
    # whole grid, and n=2000 must run clearly sub-quadratically (the
    # seed needed ~0.55 s for n=200; quadratic growth from there would
    # put n=2000 at ~55 s).
    worst = max(row["wall_time"] for row in payload["series"])
    assert worst < 30.0, f"PD pipeline took {worst:.1f}s — runtime regression"
    big = [row["wall_time"] for row in payload["series"] if row["n"] == 2000]
    assert big and max(big) < 5.0, (
        f"n=2000 pipeline took {max(big):.1f}s — incremental kernels regressed"
    )
