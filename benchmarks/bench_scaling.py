"""Runtime scaling of the full PD pipeline.

Not a paper artifact — an engineering bench tracking how wall-clock cost
grows with instance size and processor count. PD's arrival step is
O(N log p) water-level queries inside a bisection, with N <= 2n atomic
intervals, so a full run is ~O(n^2 log n); the table makes regressions
from that envelope visible.
"""

from __future__ import annotations

import time

import pytest

from repro import dual_certificate, run_pd
from repro.workloads import poisson_instance

from helpers import emit_table


def scaling_sweep():
    out = []
    for n in [25, 50, 100, 200]:
        for m in [1, 4]:
            inst = poisson_instance(n, m=m, alpha=3.0, seed=0)
            t0 = time.perf_counter()
            result = run_pd(inst)
            t_run = time.perf_counter() - t0
            t0 = time.perf_counter()
            cert = dual_certificate(result)
            t_cert = time.perf_counter() - t0
            assert cert.holds
            out.append((n, m, t_run, t_cert, result.cost))
    return out


@pytest.mark.benchmark(group="scaling")
def test_scaling_pd_pipeline(benchmark):
    data = benchmark.pedantic(scaling_sweep, rounds=1, iterations=1)
    rows = [
        f"{n:>5d} {m:>3d} {1e3 * t_run:>12.1f} {1e3 * t_cert:>12.1f}"
        for n, m, t_run, t_cert, _ in data
    ]
    emit_table(
        "scaling",
        f"{'n':>5} {'m':>3} {'PD run (ms)':>12} {'certify (ms)':>12}",
        rows,
    )
    # Soft envelope: 200 jobs must stay comfortably interactive.
    worst = max(t for _, _, t, _, _ in data)
    assert worst < 30.0, f"PD run took {worst:.1f}s — runtime regression"
