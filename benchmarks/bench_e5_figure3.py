"""E5 — Figure 3: PD's schedule vs. OA's schedule after a late arrival.

Reproduces the paper's structural comparison: PD never redistributes
earlier jobs, so after a tight job arrives its *late* intervals remain
slower than OA's — "leaving more room for scheduling jobs that might
occur during the last atomic interval". The bench renders both speed
profiles and asserts the conservativeness inequality.
"""

from __future__ import annotations

import pytest

from repro import Instance, run_oa, run_pd
from repro.viz import speed_profile

from helpers import emit_table


def figure3_case():
    instance = Instance.classical(
        [(0.0, 3.0, 1.5), (1.0, 2.0, 1.2)], m=1, alpha=3.0
    )
    pd = run_pd(instance)
    oa = run_oa(instance)

    def speeds(schedule):
        grid = schedule.grid
        mat = schedule.processor_speed_matrix()
        return {
            "early": float(mat[0, grid.locate(0.5)]),
            "middle": float(mat[0, grid.locate(1.5)]),
            "late": float(mat[0, grid.locate(2.5)]),
        }

    return pd, oa, speeds(pd.schedule), speeds(oa.schedule)


@pytest.mark.benchmark(group="e5")
def test_e5_figure3_profiles(benchmark):
    pd, oa, pd_s, oa_s = benchmark.pedantic(figure3_case, rounds=1, iterations=1)
    rows = [
        "PD (Fig. 3a):",
        speed_profile(pd.schedule, width=56, height=6),
        "",
        "OA (Fig. 3b):",
        speed_profile(oa.schedule, width=56, height=6),
        "",
        f"{'interval':>10} {'PD speed':>10} {'OA speed':>10}",
        f"{'[0,1)':>10} {pd_s['early']:>10.3f} {oa_s['early']:>10.3f}",
        f"{'[1,2)':>10} {pd_s['middle']:>10.3f} {oa_s['middle']:>10.3f}",
        f"{'[2,3)':>10} {pd_s['late']:>10.3f} {oa_s['late']:>10.3f}",
        "",
        f"energy: PD {pd.cost:.4f} vs OA {oa.energy:.4f}",
    ]
    emit_table("e5_figure3", "Figure 3 — PD is more conservative late", rows)
    # The paper's qualitative claims:
    assert pd_s["late"] < oa_s["late"], "PD must leave the late interval slower"
    assert pd_s["middle"] > oa_s["middle"], "PD crams the new job early"
    assert pd_s["early"] == pytest.approx(oa_s["early"]), "identical before arrival"
    # OA re-optimizes, so on this *fixed* instance it is cheaper.
    assert oa.energy <= pd.cost + 1e-9
