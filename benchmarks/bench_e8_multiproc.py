"""E8 — the multiprocessor claim: PD handles any m at ratio alpha^alpha.

The paper's second headline: PD is the *first* algorithm for profitable
speed scaling on multiple processors, with the same ``alpha**alpha``
guarantee. We sweep m, comparing PD against the offline convex optimum
(finish-the-same-set) and checking:

* the certificate holds for every m (the guarantee is m-independent),
* cost decreases monotonically in m (more parallelism never hurts),
* PD tracks the offline optimum within a small factor far below the
  worst-case bound on benign workloads.

The m-grid is a fixed-instance :class:`ExperimentSpec` on the engine;
the offline comparator is reconstructed per cell from each record's
serialized schedule (acceptance set + machine environment travel with
the record, so the comparison needs no second PD run).
"""

from __future__ import annotations

import pytest

from repro import solve_min_energy
from repro.engine import BatchRunner, ExperimentSpec, run_experiment
from repro.io.serialize import schedule_from_dict
from repro.workloads import diurnal_instance, poisson_instance

from helpers import emit_table

MS = [1, 2, 4, 8, 16]
ALPHA = 3.0
BOUND = ALPHA**ALPHA


def multiproc_sweep():
    base = poisson_instance(24, m=1, alpha=ALPHA, seed=11)
    spec = ExperimentSpec(
        name="e8_multiproc",
        base_instance=base,
        grid={"m": MS},
        algorithms=("pd",),
    )
    out = []
    for cell in run_experiment(spec, BatchRunner()):
        record = cell.records[0]
        schedule = schedule_from_dict(record.schedule)
        # Offline comparator: cheapest way to finish exactly PD's accepted
        # set, plus the same lost value (an upper bound on how much of
        # PD's cost is online overhead rather than acceptance choices).
        accepted = [j for j, fin in enumerate(record.finished) if fin]
        offline = solve_min_energy(schedule.instance, accepted)
        offline_cost = offline.energy + schedule.lost_value
        out.append(
            (cell.params["m"], record.cost, offline_cost, record.certified_ratio)
        )
    return out


@pytest.mark.benchmark(group="e8")
def test_e8_processor_sweep(benchmark):
    data = benchmark.pedantic(multiproc_sweep, rounds=1, iterations=1)
    rows = []
    prev_cost = None
    for m, cost, offline_cost, ratio in data:
        rows.append(
            f"{m:>3d} {cost:>12.4f} {offline_cost:>14.4f} "
            f"{cost / offline_cost:>10.3f} {ratio:>9.3f} {BOUND:>8.1f}"
        )
        assert ratio <= BOUND * (1.0 + 1e-7)
        assert cost >= offline_cost * (1.0 - 1e-7)
        if prev_cost is not None:
            assert cost <= prev_cost * (1.0 + 1e-6), "more processors hurt"
        prev_cost = cost
    emit_table(
        "e8_multiproc",
        f"{'m':>3} {'PD cost':>12} {'offline(same)':>14} {'PD/offline':>11} "
        f"{'cert':>9} {'bound':>8}",
        rows,
        data=[
            {
                "m": m,
                "pd_cost": cost,
                "offline_same_set": offline_cost,
                "certified_ratio": ratio,
                "bound": BOUND,
            }
            for m, cost, offline_cost, ratio in data
        ],
    )


@pytest.mark.benchmark(group="e8")
def test_e8_datacenter_cluster(benchmark):
    def run():
        spec = ExperimentSpec(
            name="e8_datacenter",
            family=diurnal_instance,
            grid={"m": [2, 4, 8]},
            algorithms=("pd",),
            n=40,
            seeds=(3,),
            family_kwargs={"alpha": ALPHA},
        )
        return [
            (
                cell.params["m"],
                cell.mean_cost,
                cell.mean_acceptance,
                cell.worst_certified_ratio,
            )
            for cell in run_experiment(spec, BatchRunner())
        ]

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    for _m, _cost, _acc, ratio in data:
        assert ratio <= BOUND * (1.0 + 1e-7)  # the certificate held
    rows = [
        f"{m:>3d} {cost:>12.3f} {100 * acc:>9.1f}% {ratio:>8.3f}"
        for m, cost, acc, ratio in data
    ]
    emit_table(
        "e8_datacenter",
        f"{'m':>3} {'PD cost':>12} {'accepted':>10} {'ratio':>8}",
        rows,
        data=[
            {"m": m, "pd_cost": cost, "accepted": acc, "ratio": ratio}
            for m, cost, acc, ratio in data
        ],
    )
    # More capacity -> (weakly) more accepted jobs on the same trace.
    acc = [a for _, _, a, _ in data]
    assert acc[-1] >= acc[0] - 1e-9
