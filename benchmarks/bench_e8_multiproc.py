"""E8 — the multiprocessor claim: PD handles any m at ratio alpha^alpha.

The paper's second headline: PD is the *first* algorithm for profitable
speed scaling on multiple processors, with the same ``alpha**alpha``
guarantee. We sweep m, comparing PD against the offline convex optimum
(finish-the-same-set) and checking:

* the certificate holds for every m (the guarantee is m-independent),
* cost decreases monotonically in m (more parallelism never hurts),
* PD tracks the offline optimum within a small factor far below the
  worst-case bound on benign workloads.
"""

from __future__ import annotations

import pytest

from repro import dual_certificate, run_pd, solve_min_energy
from repro.workloads import diurnal_instance, poisson_instance

from helpers import emit_table

MS = [1, 2, 4, 8, 16]


def multiproc_sweep():
    out = []
    base = poisson_instance(24, m=1, alpha=3.0, seed=11)
    for m in MS:
        inst = base.with_machine(m=m)
        result = run_pd(inst)
        cert = dual_certificate(result)
        # Offline comparator: cheapest way to finish exactly PD's accepted
        # set, plus the same lost value (an upper bound on how much of
        # PD's cost is online overhead rather than acceptance choices).
        accepted = [int(j) for j in result.accepted_mask.nonzero()[0]]
        offline = solve_min_energy(result.schedule.instance, accepted)
        offline_cost = offline.energy + result.schedule.lost_value
        out.append((m, result.cost, offline_cost, cert.ratio, cert.bound))
    return out


@pytest.mark.benchmark(group="e8")
def test_e8_processor_sweep(benchmark):
    data = benchmark.pedantic(multiproc_sweep, rounds=1, iterations=1)
    rows = []
    prev_cost = None
    for m, cost, offline_cost, ratio, bound in data:
        rows.append(
            f"{m:>3d} {cost:>12.4f} {offline_cost:>14.4f} "
            f"{cost / offline_cost:>10.3f} {ratio:>9.3f} {bound:>8.1f}"
        )
        assert ratio <= bound * (1.0 + 1e-7)
        assert cost >= offline_cost * (1.0 - 1e-7)
        if prev_cost is not None:
            assert cost <= prev_cost * (1.0 + 1e-6), "more processors hurt"
        prev_cost = cost
    emit_table(
        "e8_multiproc",
        f"{'m':>3} {'PD cost':>12} {'offline(same)':>14} {'PD/offline':>11} "
        f"{'cert':>9} {'bound':>8}",
        rows,
    )


@pytest.mark.benchmark(group="e8")
def test_e8_datacenter_cluster(benchmark):
    def run():
        out = []
        for m in [2, 4, 8]:
            inst = diurnal_instance(40, m=m, alpha=3.0, seed=3)
            result = run_pd(inst)
            cert = dual_certificate(result).require()
            out.append((m, result.cost, float(result.accepted_mask.mean()), cert.ratio))
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        f"{m:>3d} {cost:>12.3f} {100 * acc:>9.1f}% {ratio:>8.3f}"
        for m, cost, acc, ratio in data
    ]
    emit_table(
        "e8_datacenter",
        f"{'m':>3} {'PD cost':>12} {'accepted':>10} {'ratio':>8}",
        rows,
    )
    # More capacity -> (weakly) more accepted jobs on the same trace.
    acc = [a for _, _, a, _ in data]
    assert acc[-1] >= acc[0] - 1e-9
