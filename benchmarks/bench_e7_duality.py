"""E7 — weak duality: g(lambda~) <= cost(OPT) <= cost(PD).

The proof of Theorem 3 rests on ``g(lambda~)`` being a genuine lower
bound on the optimal cost of the integral program (IMP). On instances
small enough for exact enumeration we verify the full sandwich

    ``cost(PD)/alpha^alpha <= g(lambda~) <= cost(OPT) <= cost(PD)``

and report how tight each link is. This is the experiment that would
catch a wrong dual formula even when the end-to-end ratio looks fine.
"""

from __future__ import annotations

import pytest

from repro import dual_certificate, run_pd, solve_exact
from repro.workloads import poisson_instance, tight_instance

from helpers import emit_table

CASES = [
    ("poisson", poisson_instance, dict(n=7, m=1, alpha=2.0)),
    ("poisson", poisson_instance, dict(n=6, m=2, alpha=2.0)),
    ("poisson", poisson_instance, dict(n=7, m=1, alpha=3.0)),
    ("tight", tight_instance, dict(n=7, m=1, alpha=2.0)),
]


def duality_sweep():
    out = []
    for name, family, kwargs in CASES:
        for seed in range(3):
            inst = family(seed=seed, **kwargs)
            result = run_pd(inst)
            cert = dual_certificate(result)
            opt = solve_exact(inst.sorted_by_release()).cost
            out.append(
                (
                    name,
                    kwargs["m"],
                    kwargs["alpha"],
                    seed,
                    cert.g,
                    opt,
                    cert.cost,
                    kwargs["alpha"] ** kwargs["alpha"],
                )
            )
    return out


@pytest.mark.benchmark(group="e7")
def test_e7_weak_duality_sandwich(benchmark):
    data = benchmark.pedantic(duality_sweep, rounds=1, iterations=1)
    rows = []
    for name, m, alpha, seed, g, opt, cost, bound in data:
        rows.append(
            f"{name:>8} {m:>2d} {alpha:>4.1f} {seed:>4d} {g:>10.4f} "
            f"{opt:>10.4f} {cost:>10.4f} {opt / g:>7.3f} {cost / opt:>7.3f}"
        )
        slack = 1e-6
        assert g <= opt * (1.0 + slack) + 1e-9, "dual exceeded OPT"
        assert opt <= cost * (1.0 + slack) + 1e-9, "OPT exceeded PD"
        assert cost <= bound * g * (1.0 + slack) + 1e-9, "certificate broke"
    emit_table(
        "e7_duality",
        f"{'family':>8} {'m':>2} {'a':>4} {'seed':>4} {'g(dual)':>10} "
        f"{'OPT':>10} {'PD':>10} {'OPT/g':>7} {'PD/OPT':>7}",
        rows,
    )
    benchmark.extra_info["instances"] = len(data)
