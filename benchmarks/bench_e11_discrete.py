"""E11 — discrete speed levels (the hardware the paper's intro motivates).

The paper's model gives processors a speed continuum; the technologies it
cites as motivation (Intel SpeedStep, AMD PowerNow!) expose a finite menu
of frequency steps. This ablation quantifies what that costs: PD runs
unchanged, its schedule is emulated with the optimal two-adjacent-level
rounding, and we sweep the menu granularity.

Claims checked:

* the measured energy overhead is always >= 1 and always within the
  analytic envelope bound ``worst_overhead_factor(menu, alpha)``;
* the overhead decreases monotonically as the geometric menu refines and
  becomes negligible (<1%) by 32 levels — discreteness is a second-order
  effect, which justifies the paper's continuum abstraction;
* with a *top-speed cap* that bites, the screening/degradation pipeline
  trades energy for lost value gracefully (cost varies continuously with
  the cap rather than collapsing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import run_pd
from repro.discrete import (
    SpeedSet,
    discretize_schedule,
    menu_covering_schedule,
    run_pd_discrete,
    worst_overhead_factor,
)
from repro.workloads import heavy_tail_instance, poisson_instance

from helpers import emit_table

ALPHA = 3.0
LEVEL_COUNTS = [2, 4, 8, 16, 32, 64]


def overhead_sweep():
    instances = [
        poisson_instance(15, m=1, alpha=ALPHA, seed=s) for s in range(3)
    ] + [heavy_tail_instance(12, m=4, alpha=ALPHA, seed=s) for s in range(3)]
    rows = []
    for count in LEVEL_COUNTS:
        worst_overhead = 1.0
        worst_bound = 1.0
        for inst in instances:
            result = run_pd(inst)
            menu = menu_covering_schedule(result, count)
            disc = discretize_schedule(result.schedule, menu)
            worst_overhead = max(worst_overhead, disc.overhead)
            worst_bound = max(
                worst_bound, worst_overhead_factor(menu, ALPHA)
            )
        rows.append((count, worst_overhead, worst_bound))
    return rows


@pytest.mark.benchmark(group="e11")
def test_e11_overhead_vs_menu_granularity(benchmark):
    data = benchmark.pedantic(overhead_sweep, rounds=1, iterations=1)
    rows = [
        f"{count:>7d} {measured:>14.5f} {bound:>14.5f} "
        f"{100.0 * (measured - 1.0):>11.3f}%"
        for count, measured, bound in data
    ]
    emit_table(
        "e11_discrete_overhead",
        f"{'levels':>7} {'worst overhead':>14} {'envelope bnd':>14} "
        f"{'premium':>12}",
        rows,
    )
    overheads = [measured for _, measured, _ in data]
    bounds = [bound for _, _, bound in data]
    # Sound: measured premium never exceeds the analytic envelope bound.
    for measured, bound in zip(overheads, bounds):
        assert 1.0 - 1e-12 <= measured <= bound + 1e-9
    # Monotone vanishing premium as the menu refines.
    assert all(a >= b - 1e-12 for a, b in zip(overheads, overheads[1:]))
    assert overheads[-1] < 1.01
    benchmark.extra_info["worst_overhead_64_levels"] = overheads[-1]


@pytest.mark.benchmark(group="e11")
def test_e11_top_speed_cap_degrades_gracefully(benchmark):
    """Shrink the menu's top level below what PD wants and watch cost
    trade energy for lost value without cliffs (each cap step screens at
    most a few more jobs)."""

    def run():
        inst = poisson_instance(12, m=2, alpha=ALPHA, seed=11)
        unconstrained = run_pd(inst)
        speeds = unconstrained.schedule.processor_speed_matrix()
        s_top = float(speeds.max())
        out = []
        for frac in (1.0, 0.8, 0.6, 0.45):
            menu = SpeedSet.geometric(0.02 * s_top, frac * s_top, 24)
            res = run_pd_discrete(inst, menu)
            out.append(
                (frac, res.cost, len(res.screened_ids), res.screened_value)
            )
        return unconstrained.cost, float(inst.total_value), out

    base_cost, total_value, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "e11_cap_degradation",
        f"{'cap (x s_max)':>13} {'cost':>12} {'screened':>9} "
        f"{'lost value':>11}",
        [
            f"{frac:>13.2f} {cost:>12.5f} {screened:>9d} {value:>11.5f}"
            for frac, cost, screened, value in rows
        ],
    )
    costs = [cost for _, cost, _, _ in rows]
    screened = [s for _, _, s, _ in rows]
    # An uncapped covering menu adds only the rounding premium.
    assert costs[0] <= base_cost * 1.25
    # Caps only hurt relative to the unconstrained run...
    assert all(c >= base_cost - 1e-9 for c in costs)
    # ... but never beyond the trivial reject-everything fallback, and the
    # screened set grows (weakly) as the cap tightens — the "graceful"
    # part: value is shed job by job, not wholesale.
    assert all(c <= total_value + base_cost for c in costs)
    assert all(b >= a for a, b in zip(screened, screened[1:]))
