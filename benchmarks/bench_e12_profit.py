"""E12 — the profit objective: impossibility without augmentation.

The paper minimizes *loss*; Pruhs & Stein (its reference [13]) maximize
*profit*. The objectives are complementary on every schedule, yet their
competitive theories diverge: the paper proves a clean α^α loss bound
while Pruhs & Stein prove **no** bounded profit-competitiveness exists
without resource augmentation. This bench reproduces the dichotomy on the
executable margin-erosion family:

* sweep the margin down: the profit ratio OPT/PD grows like 1/margin
  (PD's profit is *exactly* the margin — closed form), while the loss
  ratio of the very same runs stays far inside α^α;
* switch on (1+eps)-speed augmentation: the profit ratio collapses to a
  constant depending only on eps, for every margin.
"""

from __future__ import annotations

import pytest

from repro import dual_certificate, run_pd, solve_exact
from repro.engine import ExperimentSpec, run_experiment
from repro.profit import (
    optimal_profit,
    pd_energy_closed_form,
    profit_of_result,
    vanishing_margin_instance,
)

from helpers import emit_table

ALPHA = 3.0
MARGINS = [0.5, 0.1, 0.02, 0.004]
EPSILONS = [0.0, 0.1, 0.3]


def dichotomy_sweep():
    rows = []
    for margin in MARGINS:
        inst = vanishing_margin_instance(margin, ALPHA)
        result = run_pd(inst)
        pd_profit = profit_of_result(result).profit
        opt_profit_ = optimal_profit(inst)
        loss_ratio = result.cost / solve_exact(inst).cost
        cert = dual_certificate(result)
        rows.append(
            (margin, pd_profit, opt_profit_, opt_profit_ / pd_profit,
             loss_ratio, cert.holds)
        )
    return rows


def _margin_family(n, *, m=1, alpha=ALPHA, seed=0, margin=0.5):
    """Engine-shaped wrapper: the family is deterministic, so ``n``/
    ``seed`` are accepted (the spec passes them) and ignored."""
    return vanishing_margin_instance(margin, alpha)


def augmentation_sweep():
    """The (margin × epsilon) grid as a declarative spec.

    ``margin`` is a *grid* axis (it shapes the instance); ``epsilon`` is
    a *variants* axis (it parameterizes the algorithm), expanding
    ``pd-aug`` to ``pd-aug?epsilon=...`` variant specs with distinct
    cache keys. Profit is recovered from each record by the exact
    complementarity ``profit = total_value - lost_value - energy``.
    """
    spec = ExperimentSpec(
        name="e12_augmentation",
        family=_margin_family,
        grid={"margin": MARGINS},
        algorithms=("pd-aug",),
        variants={"epsilon": EPSILONS},
        n=1,
        seeds=(0,),
    )
    cells = run_experiment(spec)
    by_margin: dict[float, list] = {}
    for cell in cells:
        by_margin.setdefault(cell.params["margin"], []).append(cell)
    rows = []
    for margin in MARGINS:
        inst = vanishing_margin_instance(margin, ALPHA)
        opt = optimal_profit(inst)
        ratios = []
        for eps, cell in zip(EPSILONS, by_margin[margin]):
            assert cell.params["epsilon"] == eps  # spec order is grid order
            (record,) = cell.records
            profit = inst.total_value - record.lost_value - record.energy
            ratios.append(opt / profit if profit > 0 else float("inf"))
        rows.append((margin, *ratios))
    return rows


@pytest.mark.benchmark(group="e12")
def test_e12_profit_ratio_unbounded_without_augmentation(benchmark):
    data = benchmark.pedantic(dichotomy_sweep, rounds=1, iterations=1)
    emit_table(
        "e12_profit_dichotomy",
        f"{'margin':>8} {'PD profit':>10} {'OPT profit':>11} "
        f"{'profit ratio':>13} {'loss ratio':>11} {'cert':>5}",
        [
            f"{m:>8.3f} {pdp:>10.4f} {opt:>11.4f} {ratio:>13.1f} "
            f"{loss:>11.3f} {'ok' if cert else 'NO':>5}"
            for m, pdp, opt, ratio, loss, cert in data
        ],
    )
    margins = [row[0] for row in data]
    profit_ratios = [row[3] for row in data]
    loss_ratios = [row[4] for row in data]
    # PD's profit equals the margin exactly (closed form of the family).
    for m, pdp, *_ in data:
        assert pdp == pytest.approx(m, rel=1e-6)
    # Profit ratio explodes as the margin vanishes...
    assert all(a < b for a, b in zip(profit_ratios, profit_ratios[1:]))
    assert profit_ratios[-1] > 50 * profit_ratios[0]
    # ... while the loss ratio stays flat and far inside alpha^alpha, and
    # every run still carries a valid Theorem 3 certificate.
    assert all(lr <= ALPHA**ALPHA for lr in loss_ratios)
    assert max(loss_ratios) / min(loss_ratios) < 1.5
    assert all(row[5] for row in data)
    benchmark.extra_info["worst_profit_ratio"] = profit_ratios[-1]


@pytest.mark.benchmark(group="e12")
def test_e12_augmentation_restores_bounded_ratio(benchmark):
    data = benchmark.pedantic(augmentation_sweep, rounds=1, iterations=1)
    emit_table(
        "e12_augmentation",
        f"{'margin':>8} " + " ".join(f"{'eps=' + str(e):>10}" for e in EPSILONS),
        [
            f"{m:>8.3f} " + " ".join(f"{r:>10.2f}" for r in ratios)
            for m, *ratios in data
        ],
    )
    # Column eps=0: unbounded growth down the margin sweep.
    col0 = [row[1] for row in data]
    assert col0[-1] > 50 * col0[0]
    # Columns eps>0: bounded uniformly over the margins (O(1) in margin).
    for col in (2, 3):
        ratios = [row[col] for row in data]
        assert max(ratios) < 3.0, (
            f"augmented ratio should be O(1), got {ratios}"
        )
    # More augmentation, better ratio, for every margin.
    for row in data:
        assert row[1] >= row[2] >= row[3]
    benchmark.extra_info["epsilons"] = EPSILONS


@pytest.mark.benchmark(group="e12")
def test_e12_closed_forms_match_simulation(benchmark):
    """The family's documentation claims exact closed forms; hold it to
    them across the full (alpha, margin) sweep grid."""

    def run():
        out = []
        for alpha in (2.0, 2.5, 3.0):
            for margin in (0.3, 0.05):
                inst = vanishing_margin_instance(margin, alpha)
                result = run_pd(inst)
                out.append(
                    (
                        alpha,
                        margin,
                        result.schedule.energy,
                        pd_energy_closed_form(alpha),
                        bool(result.accepted_mask.all()),
                    )
                )
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    for alpha, margin, energy, closed, accepted_all in data:
        assert accepted_all, f"trap must trap at alpha={alpha}"
        assert energy == pytest.approx(closed, rel=1e-9)
