"""Micro-benchmarks of the library's hot paths.

Unlike the experiment benches (rounds=1 sweeps), these use
pytest-benchmark's normal calibration to track the performance of the
primitives that dominate PD's runtime: the dedication scan, the
water-level inverse, a full PD arrival, and the dual certificate.
Regressions here directly slow every experiment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chen.interval_power import SortedLoads, interval_energy, max_load_at_speed
from repro.chen.partition import partition_loads
from repro.core.pd import run_pd
from repro.analysis import dual_certificate
from repro.model.power import PolynomialPower
from repro.workloads import poisson_instance

POWER = PolynomialPower(3.0)
RNG = np.random.default_rng(0)
LOADS_64 = RNG.exponential(1.0, size=64)


@pytest.mark.benchmark(group="micro")
def test_perf_partition_scan(benchmark):
    result = benchmark(partition_loads, LOADS_64, 8)
    assert result.m == 8


@pytest.mark.benchmark(group="micro")
def test_perf_interval_energy(benchmark):
    energy = benchmark(interval_energy, LOADS_64, 8, 1.0, POWER)
    assert energy > 0


@pytest.mark.benchmark(group="micro")
def test_perf_water_level_inverse(benchmark):
    z = benchmark(max_load_at_speed, LOADS_64, 2.0, 8, 1.0)
    assert z >= 0.0


@pytest.mark.benchmark(group="micro")
def test_perf_sorted_loads_query(benchmark):
    cache = SortedLoads(LOADS_64, 8, 1.0)

    def queries():
        total = 0.0
        for s in (0.5, 1.0, 2.0, 4.0, 8.0):
            total += cache.max_load_at_speed(s)
        return total

    assert benchmark(queries) >= 0.0


@pytest.mark.benchmark(group="micro")
def test_perf_pd_full_run_50_jobs(benchmark):
    inst = poisson_instance(50, m=4, alpha=3.0, seed=1)

    result = benchmark.pedantic(run_pd, args=(inst,), rounds=3, iterations=1)
    assert result.cost > 0


@pytest.mark.benchmark(group="micro")
def test_perf_dual_certificate(benchmark):
    result = run_pd(poisson_instance(50, m=4, alpha=3.0, seed=2))
    cert = benchmark(dual_certificate, result)
    assert cert.holds


# ---------------------------------------------------------------------------
# Extension-layer primitives
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="micro")
def test_perf_speedset_bracket(benchmark):
    from repro.discrete import SpeedSet

    menu = SpeedSet.geometric(0.05, 8.0, 16)
    result = benchmark(menu.bracket, 1.37)
    assert result.lo < 1.37 < result.hi


@pytest.mark.benchmark(group="micro")
def test_perf_envelope_power_array(benchmark):
    from repro.discrete import DiscreteEnvelopePower, SpeedSet

    env = DiscreteEnvelopePower(SpeedSet.geometric(0.05, 8.0, 16), POWER)
    speeds = RNG.uniform(0.0, 8.0, size=512)
    out = benchmark(env.power_array, speeds)
    assert out.shape == speeds.shape


@pytest.mark.benchmark(group="micro")
def test_perf_sumpower_derivative_inverse(benchmark):
    from repro.general import SumPower

    p = SumPower([1.0, 0.5], [3.0, 1.0])
    speed = benchmark(p.derivative_inverse, 12.5)
    assert speed == pytest.approx(2.0, rel=1e-8)


@pytest.mark.benchmark(group="micro")
def test_perf_flow_feasibility_oracle(benchmark):
    from repro.offline.flow import check_feasible_at_speed

    inst = poisson_instance(24, m=4, alpha=3.0, seed=0)
    out = benchmark(check_feasible_at_speed, inst, 10.0)
    assert out.feasible


@pytest.mark.benchmark(group="micro")
def test_perf_preemption_stats(benchmark):
    from repro.analysis import preemption_stats

    inst = poisson_instance(24, m=4, alpha=3.0, seed=1)
    schedule = run_pd(inst).schedule
    stats = benchmark(preemption_stats, schedule)
    assert stats.segments > 0


# ---------------------------------------------------------------------------
# Cache-fabric backends: per-backend get/put latency
# ---------------------------------------------------------------------------
def test_cache_backend_latency(tmp_path):
    """Record get/put latency per cache backend to benchmarks/results.

    Not a pytest-benchmark case: the interesting output is the
    *comparison table* (dir vs sqlite vs memory vs tiered vs http),
    written as ``micro_cache_latency.{txt,json}`` so the fabric's
    overhead trajectory is trackable across commits. The http backend
    runs against a live in-process ``CacheServer`` — real sockets, so
    the number includes the round trip the tiered stack exists to
    amortize.
    """
    import time as _time

    from helpers import emit_table

    from repro.engine import (
        DirectoryCache,
        HttpCache,
        MemoryCache,
        SqliteCache,
        TieredCache,
    )
    from repro.io.server import CacheServer

    payload = {
        "v": 1,
        "wall_time": 0.01,
        # schedule-sized filler so payload parsing shows up honestly
        "blob": list(range(400)),
    }
    ops = 50
    server = CacheServer(MemoryCache()).start()
    try:
        backends = {
            "memory": MemoryCache(),
            "dir": DirectoryCache(tmp_path / "d"),
            "sqlite": SqliteCache(tmp_path / "s.db"),
            "http": HttpCache(server.url),
            "tiered": TieredCache(
                [MemoryCache(), DirectoryCache(tmp_path / "t")]
            ),
        }
        rows, data = [], []
        for name, cache in backends.items():
            start = _time.perf_counter()
            for i in range(ops):
                cache.put(f"{name}-{i}", payload)
            put_us = 1e6 * (_time.perf_counter() - start) / ops
            start = _time.perf_counter()
            for i in range(ops):
                got = cache.get(f"{name}-{i}")
                assert got is not None and got["v"] == 1
            get_us = 1e6 * (_time.perf_counter() - start) / ops
            rows.append(f"{name:<8} {put_us:>12.1f} {get_us:>12.1f}")
            data.append(
                {"backend": name, "put_us": put_us, "get_us": get_us}
            )
            cache.close()
        emit_table(
            "micro_cache_latency",
            f"{'backend':<8} {'put (us)':>12} {'get (us)':>12}",
            rows,
            data=data,
        )
        # sanity, not a perf assertion: every backend round-trips
        assert {row["backend"] for row in data} == set(backends)
    finally:
        server.stop()


# ---------------------------------------------------------------------------
# Record transport: pipe bytes and round-trip latency per wire
# ---------------------------------------------------------------------------
def test_transport_roundtrip_10k():
    """Record transport micro: wire bytes + round-trip latency at n=10k.

    Builds one real PD run-record payload (10k slotted jobs — the
    sparse schedule serialization is a few MB) and measures, per
    transport, the encode+decode round trip and the bytes that would
    cross a worker pool's result pipe. The shared-memory wire moves the
    payload out of the pipe entirely, so its pipe footprint is a
    constant-size ticket — the ≥5x reduction the transport exists for —
    while the latency stays comparable (both wires pay the same pickle;
    shm swaps pipe framing for two memcpys).
    """
    import pickle as _pickle
    import time as _time

    from helpers import emit_table

    from repro.engine import transport as tr
    from repro.engine.runner import RunRequest, evaluate_request
    from repro.workloads import slotted_instance

    instance = slotted_instance(10_000, slots=400, m=4, alpha=3.0, seed=0)
    payload = evaluate_request(RunRequest("pd", instance))

    rounds = 5
    rows, data = [], []
    for mode in ("pickle", "shm"):
        start = _time.perf_counter()
        for _ in range(rounds):
            # The result queue pickles whatever wire it carries — simulate
            # that hop, or the in-process pickle wire measures as a no-op.
            wire = tr.encode_payload(payload, mode)
            piped = _pickle.loads(
                _pickle.dumps(wire, protocol=_pickle.HIGHEST_PROTOCOL)
            )
            out = tr.decode_wire(piped)
        trip_ms = 1e3 * (_time.perf_counter() - start) / rounds
        assert out["cost"] == payload["cost"]
        wire = tr.encode_payload(payload, mode)
        nbytes = tr.wire_bytes(wire)
        if wire[0] == "shm":
            tr.decode_wire(wire)  # attach-and-unlink releases the segment
        rows.append(f"{mode:<8} {nbytes:>14} {trip_ms:>12.2f}")
        data.append(
            {"transport": mode, "pipe_bytes": nbytes, "roundtrip_ms": trip_ms}
        )
    emit_table(
        "micro_transport_roundtrip",
        f"{'wire':<8} {'pipe bytes':>14} {'trip (ms)':>12}",
        rows,
        data=data,
    )
    by_mode = {row["transport"]: row for row in data}
    if tr.shm_available():
        # The acceptance bar: pipe bytes/record drop >= 5x vs pickle.
        assert by_mode["pickle"]["pipe_bytes"] >= 5 * by_mode["shm"]["pipe_bytes"]
