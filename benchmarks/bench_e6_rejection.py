"""E6 — the rejection-policy equivalence of Section 3.

With the optimal ``delta = alpha^(1-alpha)``, the paper shows PD's
rejection rule *is* the Chan–Lam–Li rule: reject a job iff its planned
energy exceeds ``alpha^(alpha-2) * v_j`` (equivalently, iff its planned
speed exceeds ``alpha^((alpha-2)/(alpha-1)) * (v/w)^(1/(alpha-1))``).

We verify the rule against PD's *internal* decisions on every job of a
randomized sweep: PD's recorded planned speed and its accept/reject bit
must match the threshold formula exactly. We also report the decision
agreement with an actual CLL run (same rule on OA's plan — high but not
perfect agreement, since the plans differ).
"""

from __future__ import annotations

import pytest

from repro import run_cll, run_pd
from repro.workloads import heavy_tail_instance, poisson_instance

from helpers import emit_table


def rejection_sweep():
    out = []
    for alpha in [2.0, 2.5, 3.0]:
        checked = mismatches = 0
        agree = total = 0
        for seed in range(5):
            inst = poisson_instance(15, m=1, alpha=alpha, seed=seed)
            result = run_pd(inst)
            ordered = result.schedule.instance
            threshold_factor = alpha ** ((alpha - 2.0) / (alpha - 1.0))
            for j, d in enumerate(result.decisions):
                job = ordered[j]
                s_threshold = threshold_factor * (job.value / job.workload) ** (
                    1.0 / (alpha - 1.0)
                )
                # PD rejects iff its planned speed would exceed the CLL
                # threshold (up to the solver's tolerance band).
                predicted_reject = d.planned_speed > s_threshold * (1.0 + 1e-6)
                predicted_accept = d.planned_speed < s_threshold * (1.0 - 1e-6)
                checked += 1
                if d.accepted and predicted_reject:
                    mismatches += 1
                if (not d.accepted) and predicted_accept:
                    mismatches += 1
            cll = run_cll(inst.sorted_by_release())
            agree += int((result.accepted_mask == cll.accepted_mask).sum())
            total += inst.n
        for seed in range(3):
            inst = heavy_tail_instance(12, m=1, alpha=alpha, seed=seed)
            result = run_pd(inst)
            cll = run_cll(inst.sorted_by_release())
            agree += int((result.accepted_mask == cll.accepted_mask).sum())
            total += inst.n
        out.append((alpha, checked, mismatches, agree / total))
    return out


@pytest.mark.benchmark(group="e6")
def test_e6_rejection_policy_equivalence(benchmark):
    data = benchmark.pedantic(rejection_sweep, rounds=1, iterations=1)
    rows = []
    for alpha, checked, mismatches, agreement in data:
        rows.append(
            f"{alpha:>5.1f} {checked:>8d} {mismatches:>10d} {100 * agreement:>11.1f}%"
        )
        assert mismatches == 0, (
            f"alpha={alpha}: PD's decisions deviate from the threshold rule"
        )
        assert agreement >= 0.75
    emit_table(
        "e6_rejection",
        f"{'alpha':>5} {'decisions':>8} {'rule-breaks':>11} {'CLL agreement':>12}",
        rows,
    )
