"""E16 — the framework beyond ``s**alpha`` (the paper's conclusion).

The paper closes by conjecturing that its primal-dual approach extends
to more complex model variations. This bench runs the *same* PD
machinery with a cube-rule-plus-leakage power ``P(s) = s**3 + c*s`` and
measures what survives:

* weak duality survives (it is power-independent convex duality): the
  generalized ``g(lambda~)`` stays below closed-form optima and the
  empirical certified ratio ``cost/g`` stays finite and moderate;
* the degenerate mix reproduces the polynomial certificate bit-for-bit;
* what is *lost* is the theorem's constant: the delta ablation shows the
  polynomial optimum ``alpha**(1-alpha)`` is no longer distinguished —
  the best empirical delta drifts as leakage grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import dual_certificate, run_pd
from repro.general import SumPower, general_dual_bound, run_pd_general
from repro.workloads import poisson_instance

from helpers import emit_table

ALPHA = 3.0
DELTA_STAR = ALPHA ** (1.0 - ALPHA)
LEAKS = [0.0, 0.2, 1.0, 5.0]


def leakage_sweep():
    instances = [poisson_instance(10, m=2, alpha=ALPHA, seed=s) for s in range(4)]
    rows = []
    for leak in LEAKS:
        power = (
            SumPower([1.0], [ALPHA])
            if leak == 0.0
            else SumPower([1.0, leak], [ALPHA, 1.0])
        )
        worst_ratio = 1.0
        accepted = 0
        total = 0
        for inst in instances:
            gen = run_pd_general(inst, power, delta=DELTA_STAR)
            bound = general_dual_bound(gen)
            assert bound.holds
            worst_ratio = max(worst_ratio, bound.ratio)
            accepted += int(gen.accepted_mask.sum())
            total += inst.n
        rows.append((leak, worst_ratio, accepted, total))
    return rows


@pytest.mark.benchmark(group="e16")
def test_e16_weak_duality_survives_leakage(benchmark):
    data = benchmark.pedantic(leakage_sweep, rounds=1, iterations=1)
    emit_table(
        "e16_general_power",
        f"{'leak c':>7} {'worst cost/g':>13} {'accepted':>9}",
        [
            f"{leak:>7.2f} {ratio:>13.3f} {acc:>5d}/{tot}"
            for leak, ratio, acc, tot in data
        ],
    )
    ratios = [row[1] for row in data]
    # The empirical certified ratio stays finite and far below the
    # polynomial theorem's 27 for every leakage level — the conjecture's
    # operational content on these workloads.
    assert all(np.isfinite(r) and r < ALPHA**ALPHA for r in ratios)
    # Leakage raises the cost of running at all, so admission shrinks.
    accepted = [row[2] for row in data]
    assert accepted[-1] <= accepted[0]
    benchmark.extra_info["worst_ratio"] = max(ratios)


@pytest.mark.benchmark(group="e16")
def test_e16_degenerate_mix_equals_polynomial(benchmark):
    def run():
        inst = poisson_instance(12, m=2, alpha=ALPHA, seed=9)
        gen = run_pd_general(inst, SumPower([1.0], [ALPHA]), delta=DELTA_STAR)
        bound = general_dual_bound(gen)
        ref = dual_certificate(run_pd(inst))
        return bound.g, ref.g, bound.ratio, ref.ratio

    g_gen, g_ref, r_gen, r_ref = benchmark.pedantic(run, rounds=1, iterations=1)
    assert g_gen == pytest.approx(g_ref, rel=1e-9)
    assert r_gen == pytest.approx(r_ref, rel=1e-9)


@pytest.mark.benchmark(group="e16")
def test_e16_delta_no_longer_distinguished(benchmark):
    """Under heavy leakage the polynomial delta* loses its special
    status: some other delta achieves a lower realized cost on the same
    workload (under the pure power law, delta* is designed to be safe,
    and the ablation of E9 showed costs are flat around it)."""

    def run():
        inst = poisson_instance(12, m=1, alpha=ALPHA, seed=3)
        power = SumPower([1.0, 5.0], [ALPHA, 1.0])
        costs = {}
        for mult in (0.25, 0.5, 1.0, 2.0, 4.0):
            costs[mult] = run_pd_general(
                inst, power, delta=mult * DELTA_STAR
            ).cost
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "e16_delta_drift",
        f"{'x delta*':>9} {'cost':>12}",
        [f"{mult:>9.2f} {cost:>12.4f}" for mult, cost in sorted(costs.items())],
    )
    best = min(costs, key=costs.get)
    benchmark.extra_info["best_delta_multiplier"] = best
    # The sweep must produce finite, varying costs; whether delta* wins
    # is the measured question (no assertion on the winner).
    values = list(costs.values())
    assert all(np.isfinite(v) for v in values)
    assert max(values) > min(values)
