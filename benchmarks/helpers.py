"""Shared utilities for the benchmark/experiment harness.

Every experiment bench does three things:

1. runs the workload sweep for one paper artifact (table/figure/claim),
2. prints the reproduction table (and writes it to
   ``benchmarks/results/`` so EXPERIMENTS.md can quote it verbatim), and
3. asserts the *qualitative* claim — who wins, in which direction the
   ratios move, which bounds hold — so a regression in any algorithm
   fails the bench rather than silently producing a different table.

Timing happens through pytest-benchmark's fixture; experiment sweeps use
``benchmark.pedantic(rounds=1)`` because the interesting quantity is the
table, not the nanoseconds, while genuine hot-path micro-benchmarks (in
``bench_micro.py``) use default calibration.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Iterable, Mapping, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _jsonable(value: Any) -> Any:
    """Map a cell value to strict JSON (NaN/inf become null)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def emit_table(
    name: str,
    header: str,
    rows: Iterable[str],
    *,
    data: Sequence[Mapping[str, Any]] | None = None,
) -> str:
    """Print a table and persist it under ``benchmarks/results/``.

    Always writes the human-readable ``<name>.txt``. When ``data`` is
    given (a list of per-row dicts), also writes a machine-readable
    ``<name>.json`` next to it, so the perf/ratio trajectory across
    commits can be tracked by tooling instead of by parsing tables.
    """
    lines = [header, "-" * len(header)]
    lines.extend(rows)
    text = "\n".join(lines)
    print(f"\n=== {name} ===")
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    if data is not None:
        payload = {
            "schema": 1,
            "kind": "bench-table",
            "name": name,
            "rows": [
                {k: _jsonable(v) for k, v in row.items()} for row in data
            ],
        }
        with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return text
