"""E13 — what dynamic speed scaling buys (the paper's opening argument).

The introduction motivates the entire problem with the claim that
adapting processor speed to the current load "may lower the total energy
consumption substantially" relative to fixed-frequency operation. With
the Horn max-flow oracle we can make that claim quantitative: the
*minimal uniform speed* baseline is exactly what a fixed-frequency
machine must do (run at the speed the worst load spike dictates and idle
otherwise), and its energy compares against YDS (offline optimal speed
scaling) and PD (online speed scaling).

Claims checked:

* the offline optimum never exceeds the uniform baseline, and the ratio
  grows with load variability (burstier traffic -> bigger savings) —
  fixed-frequency pays the peak-load speed for *all* its work;
* online PD captures most of the offline savings;
* on perfectly balanced load (constant density) the three coincide —
  speed scaling buys nothing when there is nothing to adapt to.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import run_pd, yds
from repro.model.job import Instance
from repro.offline.flow import minimal_uniform_speed, run_uniform_speed
from repro.workloads import bursty_instance, poisson_instance

from helpers import emit_table

ALPHA = 3.0


def _bursty_instance(burstiness: float, *, n: int = 12, seed: int = 0) -> Instance:
    """The library's spike family at this bench's fixed shape."""
    return bursty_instance(
        n, burstiness=burstiness, spike_period=4, m=1, alpha=ALPHA, seed=seed
    )


def burstiness_sweep():
    rows = []
    for burstiness in (1.0, 2.0, 4.0, 8.0, 16.0):
        inst = _bursty_instance(burstiness)
        uniform = run_uniform_speed(inst)
        optimal = yds(inst)
        pd_cost = run_pd(inst).cost
        rows.append(
            (
                burstiness,
                uniform.energy,
                optimal.energy,
                pd_cost,
                uniform.energy / optimal.energy,
                uniform.energy / pd_cost,
            )
        )
    return rows


@pytest.mark.benchmark(group="e13")
def test_e13_speed_scaling_savings_grow_with_burstiness(benchmark):
    data = benchmark.pedantic(burstiness_sweep, rounds=1, iterations=1)
    emit_table(
        "e13_burstiness",
        f"{'burst':>6} {'uniform':>10} {'YDS':>10} {'PD':>10} "
        f"{'uni/YDS':>8} {'uni/PD':>8}",
        [
            f"{b:>6.1f} {u:>10.4f} {y:>10.4f} {p:>10.4f} "
            f"{ry:>8.2f} {rp:>8.2f}"
            for b, u, y, p, ry, rp in data
        ],
    )
    ratios_yds = [row[4] for row in data]
    ratios_pd = [row[5] for row in data]
    # Fixed frequency is never better than optimal speed scaling.
    assert all(r >= 1.0 - 1e-9 for r in ratios_yds)
    # Savings grow with burstiness and become substantial (>2x by 16x).
    assert all(a <= b + 1e-9 for a, b in zip(ratios_yds, ratios_yds[1:]))
    assert ratios_yds[-1] > 2.0
    # Online PD eventually beats even this *clairvoyant* fixed-frequency
    # baseline (which knows the peak in advance); at low burstiness the
    # baseline's hindsight keeps it ahead of any online algorithm — both
    # regimes are part of the story.
    assert ratios_pd[0] < 1.0 < ratios_pd[-1]
    benchmark.extra_info["max_savings_vs_yds"] = ratios_yds[-1]


@pytest.mark.benchmark(group="e13")
def test_e13_flat_load_gains_nothing(benchmark):
    """Back-to-back unit jobs with unit windows: constant density, so the
    YDS profile is already flat and equals the uniform baseline."""

    def run():
        rows = [(float(i), float(i + 1), 1.0) for i in range(8)]
        inst = Instance.classical(rows, m=1, alpha=ALPHA)
        return (
            run_uniform_speed(inst).energy,
            yds(inst).energy,
            minimal_uniform_speed(inst),
        )

    uniform_energy, yds_energy, speed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert speed == pytest.approx(1.0)
    assert uniform_energy == pytest.approx(yds_energy, rel=1e-6)


@pytest.mark.benchmark(group="e13")
def test_e13_flow_oracle_agrees_with_constructive_layer(benchmark):
    """Independent cross-check: Horn's oracle (networkx max-flow) and the
    constructive Chen/McNaughton layer must agree on feasibility of the
    uniform baseline's own work assignment across random instances."""

    def run():
        agree = 0
        total = 0
        for seed in range(6):
            inst = poisson_instance(7, m=2, alpha=ALPHA, seed=seed)
            result = run_uniform_speed(inst)
            # The constructive layer realizes the witness assignment...
            result.schedule.validate()
            segments = [
                seg for iv in result.schedule.realize() for seg in iv.segments
            ]
            # ... and no realized speed exceeds the pinned uniform speed
            # beyond rounding (the flow witness respects per-interval
            # capacity at that speed).
            top = max((seg.speed for seg in segments), default=0.0)
            total += 1
            if top <= result.speed * (1.0 + 1e-6):
                agree += 1
        return agree, total

    agree, total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agree == total, f"disagreement on {total - agree}/{total} instances"
