"""E10 — substrate validation: the classical algorithm zoo.

The paper's related-work section (and its proofs) lean on established
facts: YDS is offline-optimal, OA is alpha^alpha-competitive, BKP and qOA
trade constants differently, AVR is the crude baseline. This bench
reproduces the classical comparison table on shared instance families and
asserts the orderings the literature guarantees:

* YDS <= every online algorithm (optimality),
* OA <= alpha^alpha * YDS (Bansal–Kimbrel–Pruhs),
* AVR, BKP, qOA within their respective constants,
* and on the adversarial family, OA's ratio climbs with n (the lower
  bound shared by PD's Theorem 3).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import run_avr, run_bkp, run_oa, run_pd, run_qoa, yds
from repro.model.job import Instance
from repro.workloads import lower_bound_instance, poisson_instance

from helpers import emit_table


def classical_table():
    rows = []
    for seed in range(4):
        base = poisson_instance(12, m=1, alpha=3.0, seed=seed)
        inst = base.with_values([1e12] * base.n)
        opt = yds(inst).energy
        entry = {
            "seed": seed,
            "yds": opt,
            "oa": run_oa(inst).energy,
            "avr": run_avr(inst).energy,
            "bkp": run_bkp(inst).energy,
            "qoa": run_qoa(inst).energy,
            "pd": run_pd(inst).cost,
        }
        rows.append(entry)
    return rows


@pytest.mark.benchmark(group="e10")
def test_e10_classical_comparison(benchmark):
    data = benchmark.pedantic(classical_table, rounds=1, iterations=1)
    alpha = 3.0
    rows = []
    for e in data:
        opt = e["yds"]
        rows.append(
            f"{e['seed']:>4d} {opt:>9.3f} {e['oa'] / opt:>7.3f} "
            f"{e['qoa'] / opt:>7.3f} {e['bkp'] / opt:>7.3f} "
            f"{e['avr'] / opt:>7.3f} {e['pd'] / opt:>7.3f}"
        )
        for name in ["oa", "avr", "bkp", "qoa", "pd"]:
            assert e[name] >= opt * (1.0 - 1e-9), f"{name} beat the optimum"
        assert e["oa"] <= alpha**alpha * opt * (1.0 + 1e-6)
        assert e["pd"] <= alpha**alpha * opt * (1.0 + 1e-6)
        assert e["avr"] <= ((2 * alpha) ** alpha / 2) * opt * (1.0 + 1e-6)
        bkp_bound = 2 * (alpha / (alpha - 1)) ** alpha * math.e**alpha
        assert e["bkp"] <= bkp_bound * opt * 1.1  # + discretization slack
    emit_table(
        "e10_classical",
        f"{'seed':>4} {'YDS':>9} {'OA/':>7} {'qOA/':>7} {'BKP/':>7} "
        f"{'AVR/':>7} {'PD/':>7}   (ratios vs YDS optimum)",
        rows,
    )


@pytest.mark.benchmark(group="e10")
def test_e10_oa_ratio_climbs_on_adversarial_family(benchmark):
    def run():
        out = []
        for n in [4, 8, 16, 32]:
            inst = lower_bound_instance(n, 3.0)
            out.append((n, run_oa(inst).energy / yds(inst).energy))
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [f"{n:>5d} {ratio:>8.3f}" for n, ratio in data]
    emit_table("e10_oa_adversarial", f"{'n':>5} {'OA/OPT':>8}", rows)
    ratios = [r for _, r in data]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] <= 27.0
