"""E10 — substrate validation: the classical algorithm zoo.

The paper's related-work section (and its proofs) lean on established
facts: YDS is offline-optimal, OA is alpha^alpha-competitive, BKP and qOA
trade constants differently, AVR is the crude baseline. This bench
reproduces the classical comparison table on shared instance families and
asserts the orderings the literature guarantees:

* YDS <= every online algorithm (optimality),
* OA <= alpha^alpha * YDS (Bansal–Kimbrel–Pruhs),
* AVR, BKP, qOA within their respective constants,
* and on the adversarial family, OA's ratio climbs with n (the lower
  bound shared by PD's Theorem 3).

The grid itself runs on the experiment engine's :class:`BatchRunner`
(one request per algorithm × seed), which is also what makes this table
cacheable and parallelizable via ``BatchRunner(workers=..., cache=...)``.
"""

from __future__ import annotations

import math

import pytest

from repro.engine import BatchRunner, RunRequest
from repro.workloads import lower_bound_instance, poisson_instance

from helpers import emit_table

ALGOS = ["yds", "oa", "avr", "bkp", "qoa", "pd"]
SEEDS = range(4)


def classical_table():
    requests = []
    for seed in SEEDS:
        base = poisson_instance(12, m=1, alpha=3.0, seed=seed)
        inst = base.with_values([1e12] * base.n)
        requests.extend(
            RunRequest(name, inst, tag={"seed": seed}) for name in ALGOS
        )
    records = BatchRunner().run(requests)
    rows = []
    for i, seed in enumerate(SEEDS):
        block = {
            r.algorithm: r for r in records[i * len(ALGOS) : (i + 1) * len(ALGOS)]
        }
        entry = {"seed": seed, "pd": block["pd"].cost}
        for name in ("yds", "oa", "avr", "bkp", "qoa"):
            entry[name] = block[name].energy
        rows.append(entry)
    return rows


@pytest.mark.benchmark(group="e10")
def test_e10_classical_comparison(benchmark):
    data = benchmark.pedantic(classical_table, rounds=1, iterations=1)
    alpha = 3.0
    rows = []
    for e in data:
        opt = e["yds"]
        rows.append(
            f"{e['seed']:>4d} {opt:>9.3f} {e['oa'] / opt:>7.3f} "
            f"{e['qoa'] / opt:>7.3f} {e['bkp'] / opt:>7.3f} "
            f"{e['avr'] / opt:>7.3f} {e['pd'] / opt:>7.3f}"
        )
        for name in ["oa", "avr", "bkp", "qoa", "pd"]:
            assert e[name] >= opt * (1.0 - 1e-9), f"{name} beat the optimum"
        assert e["oa"] <= alpha**alpha * opt * (1.0 + 1e-6)
        assert e["pd"] <= alpha**alpha * opt * (1.0 + 1e-6)
        assert e["avr"] <= ((2 * alpha) ** alpha / 2) * opt * (1.0 + 1e-6)
        bkp_bound = 2 * (alpha / (alpha - 1)) ** alpha * math.e**alpha
        assert e["bkp"] <= bkp_bound * opt * 1.1  # + discretization slack
    emit_table(
        "e10_classical",
        f"{'seed':>4} {'YDS':>9} {'OA/':>7} {'qOA/':>7} {'BKP/':>7} "
        f"{'AVR/':>7} {'PD/':>7}   (ratios vs YDS optimum)",
        rows,
        data=data,
    )


@pytest.mark.benchmark(group="e10")
def test_e10_oa_ratio_climbs_on_adversarial_family(benchmark):
    def run():
        ns = [4, 8, 16, 32]
        requests = [
            RunRequest(name, lower_bound_instance(n, 3.0), tag={"n": n})
            for n in ns
            for name in ("yds", "oa")
        ]
        records = BatchRunner().run(requests)
        out = []
        for i, n in enumerate(ns):
            opt, oa = records[2 * i], records[2 * i + 1]
            out.append((n, oa.energy / opt.energy))
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [f"{n:>5d} {ratio:>8.3f}" for n, ratio in data]
    emit_table(
        "e10_oa_adversarial",
        f"{'n':>5} {'OA/OPT':>8}",
        rows,
        data=[{"n": n, "oa_over_opt": ratio} for n, ratio in data],
    )
    ratios = [r for _, r in data]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] <= 27.0
