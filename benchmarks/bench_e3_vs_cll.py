"""E3 — PD vs. Chan–Lam–Li: the improvement the paper claims.

The paper improves the single-processor guarantee from
``alpha^alpha + 2 e^alpha`` (CLL) to ``alpha^alpha`` (PD). Two parts:

* the *guarantee* table — the analytic bounds side by side, showing the
  improvement factor the paper states (this is the paper's actual
  contribution; it is about worst cases, not typical ones);
* an *empirical* head-to-head on profitable instance families, verifying
  the two algorithms' realized costs stay within a small factor of each
  other (PD's improvement is in the guarantee; on typical instances both
  behave like OA with an admission filter).

The head-to-head grid is one declarative
:class:`~repro.engine.ExperimentSpec`: the families form a *workload
axis* (registry names resolved through ``repro.workloads``), alpha is a
grid axis, and both algorithms run on every cell — the per-job
acceptance decisions are read back from the records' serialized
schedules, which both algorithms report in arrival order.
"""

from __future__ import annotations

import math

import pytest

from repro.engine import ExperimentSpec, run_experiment

from helpers import emit_table

ALPHAS = [1.5, 2.0, 2.5, 3.0]
FAMILIES = ["poisson", "heavy-tail", "tight"]
HEAD_TO_HEAD_ALPHAS = [2.0, 3.0]
SEEDS = range(4)


@pytest.mark.benchmark(group="e3")
def test_e3_guarantee_table(benchmark):
    def build():
        return [
            (a, a**a, a**a + 2 * math.e**a) for a in ALPHAS
        ]

    data = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for alpha, pd_bound, cll_bound in data:
        assert pd_bound < cll_bound  # the paper's improvement
        rows.append(
            f"{alpha:>5.1f} {pd_bound:>14.3f} {cll_bound:>16.3f} "
            f"{cll_bound / pd_bound:>12.2f}x"
        )
    emit_table(
        "e3_guarantees",
        f"{'alpha':>5} {'PD: alpha^a':>14} {'CLL: a^a+2e^a':>16} {'improvement':>13}",
        rows,
        data=[
            {"alpha": a, "pd_bound": p, "cll_bound": c, "improvement": c / p}
            for a, p, c in data
        ],
    )


def head_to_head():
    spec = ExperimentSpec(
        name="e3_head_to_head",
        workloads=FAMILIES,
        grid={"alpha": HEAD_TO_HEAD_ALPHAS},
        algorithms=("pd", "cll"),
        n=15,
        seeds=tuple(SEEDS),
    )
    cells = run_experiment(spec)

    out = []
    # Cell order: workload slowest, then alpha, algorithms innermost —
    # so cells pair up as (pd, cll) per (family, alpha).
    for pd_cell, cll_cell in zip(cells[0::2], cells[1::2]):
        assert (pd_cell.algorithm, cll_cell.algorithm) == ("pd", "cll")
        assert pd_cell.params["workload"] == cll_cell.params["workload"]
        pd_total = sum(r.cost for r in pd_cell.records)
        cll_total = sum(r.cost for r in cll_cell.records)
        agree = sum(
            a == b
            for pd, cll in zip(pd_cell.records, cll_cell.records)
            for a, b in zip(pd.finished, cll.finished)
        )
        total = sum(len(pd.finished) for pd in pd_cell.records)
        out.append(
            (
                pd_cell.params["workload"],
                pd_cell.params["alpha"],
                pd_total,
                cll_total,
                agree / total,
            )
        )
    return out


@pytest.mark.benchmark(group="e3")
def test_e3_empirical_head_to_head(benchmark):
    data = benchmark.pedantic(head_to_head, rounds=1, iterations=1)
    rows = []
    for name, alpha, pd_cost, cll_cost, agreement in data:
        rows.append(
            f"{name:>11} {alpha:>5.1f} {pd_cost:>12.3f} {cll_cost:>12.3f} "
            f"{pd_cost / cll_cost:>8.3f} {100 * agreement:>9.1f}%"
        )
        # Realized costs are comparable (same policy family) ...
        assert pd_cost <= 3.0 * cll_cost
        assert cll_cost <= 3.0 * pd_cost
        # ... and the admission decisions agree on most jobs (the
        # paper's Section 3 equivalence remark).
        assert agreement >= 0.75
    emit_table(
        "e3_head_to_head",
        f"{'family':>11} {'alpha':>5} {'PD cost':>12} {'CLL cost':>12} "
        f"{'PD/CLL':>8} {'agreement':>10}",
        rows,
        data=[
            {
                "family": name,
                "alpha": alpha,
                "pd_cost": pd_cost,
                "cll_cost": cll_cost,
                "agreement": agreement,
            }
            for name, alpha, pd_cost, cll_cost, agreement in data
        ],
    )
