"""E3 — PD vs. Chan–Lam–Li: the improvement the paper claims.

The paper improves the single-processor guarantee from
``alpha^alpha + 2 e^alpha`` (CLL) to ``alpha^alpha`` (PD). Two parts:

* the *guarantee* table — the analytic bounds side by side, showing the
  improvement factor the paper states (this is the paper's actual
  contribution; it is about worst cases, not typical ones);
* an *empirical* head-to-head on profitable instance families, verifying
  the two algorithms' realized costs stay within a small factor of each
  other (PD's improvement is in the guarantee; on typical instances both
  behave like OA with an admission filter).
"""

from __future__ import annotations

import math

import pytest

from repro import run_cll, run_pd
from repro.workloads import heavy_tail_instance, poisson_instance, tight_instance

from helpers import emit_table

ALPHAS = [1.5, 2.0, 2.5, 3.0]


@pytest.mark.benchmark(group="e3")
def test_e3_guarantee_table(benchmark):
    def build():
        return [
            (a, a**a, a**a + 2 * math.e**a) for a in ALPHAS
        ]

    data = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for alpha, pd_bound, cll_bound in data:
        assert pd_bound < cll_bound  # the paper's improvement
        rows.append(
            f"{alpha:>5.1f} {pd_bound:>14.3f} {cll_bound:>16.3f} "
            f"{cll_bound / pd_bound:>12.2f}x"
        )
    emit_table(
        "e3_guarantees",
        f"{'alpha':>5} {'PD: alpha^a':>14} {'CLL: a^a+2e^a':>16} {'improvement':>13}",
        rows,
    )


def head_to_head():
    out = []
    for name, family in [
        ("poisson", poisson_instance),
        ("heavy-tail", heavy_tail_instance),
        ("tight", tight_instance),
    ]:
        for alpha in [2.0, 3.0]:
            pd_total = cll_total = 0.0
            agree = total = 0
            for seed in range(4):
                inst = family(15, m=1, alpha=alpha, seed=seed)
                pd = run_pd(inst)
                cll = run_cll(inst.sorted_by_release())
                pd_total += pd.cost
                cll_total += cll.cost
                agree += int((pd.accepted_mask == cll.accepted_mask).sum())
                total += inst.n
            out.append((name, alpha, pd_total, cll_total, agree / total))
    return out


@pytest.mark.benchmark(group="e3")
def test_e3_empirical_head_to_head(benchmark):
    data = benchmark.pedantic(head_to_head, rounds=1, iterations=1)
    rows = []
    for name, alpha, pd_cost, cll_cost, agreement in data:
        rows.append(
            f"{name:>11} {alpha:>5.1f} {pd_cost:>12.3f} {cll_cost:>12.3f} "
            f"{pd_cost / cll_cost:>8.3f} {100 * agreement:>9.1f}%"
        )
        # Realized costs are comparable (same policy family) ...
        assert pd_cost <= 3.0 * cll_cost
        assert cll_cost <= 3.0 * pd_cost
        # ... and the admission decisions agree on most jobs (the
        # paper's Section 3 equivalence remark).
        assert agreement >= 0.75
    emit_table(
        "e3_head_to_head",
        f"{'family':>11} {'alpha':>5} {'PD cost':>12} {'CLL cost':>12} "
        f"{'PD/CLL':>8} {'agreement':>10}",
        rows,
    )
