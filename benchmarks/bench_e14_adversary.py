"""E14 — adversarial search: stress-testing Theorem 3's tightness claim.

The paper proves ``cost(PD) <= alpha**alpha * g(lambda~)`` and exhibits a
family approaching the bound asymptotically. This bench attacks the
theorem from the other side: randomized hill-climbing over instances,
maximizing the certified ratio, with every evaluation re-checking the
certificate. Three results are recorded:

* the hardest instance reachable from *random* seeds in a fixed budget —
  a falsification attempt that must (and does) stay inside the bound;
* the same search seeded with the paper's staircase family — which the
  climb improves on, and which random-seeded search even *beats* at
  small sizes: the staircase is extremal only asymptotically, a nuance
  the experiment documents;
* the true competitive ratio (exact OPT) of the hardest small instances,
  showing the certificate ratio genuinely upper-bounds it.
"""

from __future__ import annotations

import pytest

from repro import run_pd, solve_exact
from repro.analysis import dual_certificate, search_adversarial
from repro.workloads import lower_bound_instance, poisson_instance

from helpers import emit_table

ALPHA = 3.0
BOUND = ALPHA**ALPHA


def falsification_run():
    seeds = [poisson_instance(6, m=1, alpha=ALPHA, seed=s) for s in range(3)]
    random_search = search_adversarial(seeds, rounds=120, rng=0, max_jobs=12)
    staircase = lower_bound_instance(12, ALPHA)
    staircase_ratio = dual_certificate(run_pd(staircase)).ratio
    staircase_search = search_adversarial(
        [staircase], rounds=60, rng=1, max_jobs=14
    )
    return random_search, staircase_ratio, staircase_search


@pytest.mark.benchmark(group="e14")
def test_e14_search_never_breaches_the_bound(benchmark):
    random_search, staircase_ratio, staircase_search = benchmark.pedantic(
        falsification_run, rounds=1, iterations=1
    )
    emit_table(
        "e14_adversary",
        f"{'strategy':>22} {'best ratio':>11} {'% of bound':>11} "
        f"{'evals':>6}",
        [
            f"{'random seeds + climb':>22} {random_search.ratio:>11.3f} "
            f"{100 * random_search.ratio / BOUND:>10.1f}% "
            f"{random_search.evaluations:>6d}",
            f"{'staircase (analytic)':>22} {staircase_ratio:>11.3f} "
            f"{100 * staircase_ratio / BOUND:>10.1f}% {1:>6d}",
            f"{'staircase + climb':>22} {staircase_search.ratio:>11.3f} "
            f"{100 * staircase_search.ratio / BOUND:>10.1f}% "
            f"{staircase_search.evaluations:>6d}",
        ],
    )
    # The theorem survives the falsification budget (every evaluation
    # inside search_adversarial re-checks it; reaching here means none
    # raised) and the final exhibits stay inside the bound.
    assert random_search.ratio <= BOUND + 1e-9
    assert staircase_search.ratio <= BOUND + 1e-9
    # A noteworthy *finding* of this experiment: at small sizes the
    # hill-climb beats the analytic staircase (which is only
    # asymptotically extremal — its ratio approaches alpha^alpha as
    # n -> inf, but slowly). Both must clear random seeds' baseline, and
    # climbing from the staircase dominates the plain staircase.
    assert staircase_search.ratio >= staircase_ratio - 1e-12
    assert random_search.ratio > 10.0, (
        "the search should reach well past typical random-instance ratios"
    )
    benchmark.extra_info["hardest_random"] = random_search.ratio
    benchmark.extra_info["staircase"] = staircase_ratio


@pytest.mark.benchmark(group="e14")
def test_e14_certificate_ratio_upper_bounds_true_ratio(benchmark):
    """On exactly solvable sizes, the certified ratio (vs the dual) must
    dominate the true competitive ratio (vs exact OPT) — weak duality
    seen from the benchmark side."""

    def run():
        out = []
        search = search_adversarial(
            [poisson_instance(5, m=1, alpha=ALPHA, seed=4)],
            objective="optimal",
            rounds=25,
            rng=3,
            max_jobs=7,
        )
        hard = search.instance
        result = run_pd(hard)
        cert_ratio = dual_certificate(result).ratio
        true_ratio = result.cost / solve_exact(hard).cost
        out.append((hard.n, true_ratio, cert_ratio))
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, true_ratio, cert_ratio in data:
        assert 1.0 - 1e-9 <= true_ratio <= cert_ratio + 1e-9 <= BOUND + 1e-6
