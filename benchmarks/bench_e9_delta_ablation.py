"""E9 — ablation of the PD parameter delta (Theorem 3 sets alpha^(1-alpha)).

The paper proves the competitive ratio alpha^alpha for
``delta = alpha**(1-alpha)`` and notes the analysis is tight. This
ablation sweeps delta around the optimum and reports

* the worst certificate ratio over an adversarial + random mix (the
  certificate itself remains *valid* for any delta <= alpha^(1-alpha);
  larger deltas void Lemma 11's hypothesis and can break it), and
* the realized cost, showing the optimum delta is a sound default: costs
  degrade in both directions away from a broad sweet spot.

The sweep runs on the experiment engine through *variant specs*: each
delta setting is addressed as ``pd?delta=...`` — a first-class registry
entry with PD's certificate hook and its own cache key — instead of a
hand-rolled ``run_pd(inst, delta=...)`` loop. The lemma-by-lemma audit
still inspects the raw :class:`PDResult` (the engine's records carry
measurements, not raw results), and doubles as a parity check: the
certified ratio the engine records for ``pd?delta=...`` must equal the
one computed from the direct run.
"""

from __future__ import annotations

import pytest

from repro import dual_certificate, run_pd
from repro.analysis import lemma_bounds
from repro.engine import BatchRunner, RunRequest
from repro.workloads import (
    heavy_tail_instance,
    lower_bound_instance,
    poisson_instance,
)

from helpers import emit_table

ALPHA = 3.0
DELTA_STAR = ALPHA ** (1.0 - ALPHA)
MULTIPLIERS = [0.25, 0.5, 1.0, 2.0, 4.0]


def _instances():
    return (
        [poisson_instance(15, m=1, alpha=ALPHA, seed=s) for s in range(3)]
        + [heavy_tail_instance(12, m=2, alpha=ALPHA, seed=s) for s in range(2)]
        + [lower_bound_instance(10, ALPHA)]
    )


def delta_sweep():
    instances = _instances()
    runner = BatchRunner()
    out = []
    for mult in MULTIPLIERS:
        delta = mult * DELTA_STAR
        records = runner.run(
            [RunRequest(f"pd?delta={delta!r}", inst) for inst in instances]
        )
        worst_ratio = max(r.certified_ratio for r in records)
        total_cost = sum(r.cost for r in records)
        lemma11_ok = True
        for inst, record in zip(instances, records):
            result = run_pd(inst, delta=delta)
            cert = dual_certificate(result)
            # Engine parity: the variant's certificate hook must report
            # exactly the direct run's numbers.
            assert record.certified_ratio == float(cert.ratio)
            assert record.cost == result.schedule.cost
            if lemma_bounds(result, cert).violations():
                lemma11_ok = False
        out.append((mult, delta, worst_ratio, total_cost, lemma11_ok))
    return out


@pytest.mark.benchmark(group="e9")
def test_e9_delta_ablation(benchmark):
    data = benchmark.pedantic(delta_sweep, rounds=1, iterations=1)
    bound = ALPHA**ALPHA
    rows = []
    for mult, delta, worst, cost, lemmas_ok in data:
        rows.append(
            f"{mult:>6.2f} {delta:>10.5f} {worst:>12.3f} {cost:>12.3f} "
            f"{'yes' if lemmas_ok else 'NO':>10}"
        )
    emit_table(
        "e9_delta_ablation",
        f"{'x δ*':>6} {'delta':>10} {'worst ratio':>12} {'total cost':>12} "
        f"{'lemmas hold':>11}",
        rows,
    )
    by_mult = {mult: (worst, lemmas_ok) for mult, _, worst, _, lemmas_ok in data}
    # At the paper's delta the alpha^alpha certificate and all lemmas hold.
    worst_at_star, lemmas_at_star = by_mult[1.0]
    assert worst_at_star <= bound * (1.0 + 1e-7)
    assert lemmas_at_star
    # Lemmas 9-11 only assume delta <= delta*, so they must survive below
    # the optimum ...
    for mult in [0.25, 0.5]:
        assert by_mult[mult][1], f"a lemma broke at {mult} δ* despite δ <= δ*"
    # ... but the *final* alpha^alpha combination is specific to delta*:
    # the certificate ratio degrades when delta shrinks (the g1 term
    # delta * E_PD weakens). This is the tightness of the parameter
    # choice the ablation is meant to exhibit.
    assert by_mult[0.25][0] > worst_at_star, (
        "expected the certified ratio to degrade away from delta*"
    )
    benchmark.extra_info["delta_star"] = DELTA_STAR


@pytest.mark.benchmark(group="e9")
def test_e9_delta_star_minimizes_worst_ratio_on_adversarial(benchmark):
    """On the adversarial family, larger delta inflates planned speeds
    (and lost value), smaller delta spends energy on doomed work — the
    realized cost curve is flat near delta* and worse far away."""

    def run():
        inst = lower_bound_instance(20, ALPHA).with_machine(m=1)
        records = BatchRunner().run(
            [
                RunRequest(f"pd?delta={mult * DELTA_STAR!r}", inst)
                for mult in [0.1, 1.0, 10.0]
            ]
        )
        return dict(zip([0.1, 1.0, 10.0], (r.cost for r in records)))

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    # For must-finish jobs delta does not change the schedule (all jobs
    # accepted, water-filling is delta-invariant), so costs coincide —
    # the ablation's point: delta only matters through rejections.
    assert costs[1.0] == pytest.approx(costs[0.1], rel=1e-6)
    assert costs[1.0] == pytest.approx(costs[10.0], rel=1e-6)
