"""E1 — Theorem 3 upper bound: cost(PD) <= alpha^alpha * g(lambda~).

The paper's headline claim. For every (alpha, m) cell we run PD on random
instance families and report the worst observed certificate ratio
``cost / g``; Theorem 3 says it never exceeds ``alpha**alpha`` — on any
instance, including ones where OPT is unknowable. The bench fails if any
run violates the certificate.
"""

from __future__ import annotations

import pytest

from repro import dual_certificate, run_pd
from repro.workloads import heavy_tail_instance, poisson_instance, uniform_instance

from helpers import emit_table

ALPHAS = [1.5, 2.0, 2.5, 3.0]
MS = [1, 2, 4, 8]
SEEDS = range(3)
FAMILIES = [poisson_instance, heavy_tail_instance, uniform_instance]


def certificate_sweep() -> list[tuple[float, int, float, float]]:
    out = []
    for alpha in ALPHAS:
        for m in MS:
            worst = 0.0
            mean_acc = 0.0
            runs = 0
            for family in FAMILIES:
                for seed in SEEDS:
                    inst = family(20, m=m, alpha=alpha, seed=seed)
                    result = run_pd(inst)
                    cert = dual_certificate(result).require()
                    worst = max(worst, cert.ratio)
                    mean_acc += float(result.accepted_mask.mean())
                    runs += 1
            out.append((alpha, m, worst, mean_acc / runs))
    return out


@pytest.mark.benchmark(group="e1")
def test_e1_certificate_ratio_table(benchmark):
    rows_data = benchmark.pedantic(certificate_sweep, rounds=1, iterations=1)
    rows = []
    for alpha, m, worst, acc in rows_data:
        bound = alpha**alpha
        rows.append(
            f"{alpha:>5.1f} {m:>3d} {worst:>12.3f} {bound:>12.3f} "
            f"{100 * worst / bound:>11.1f}% {100 * acc:>9.1f}%"
        )
        assert worst <= bound * (1.0 + 1e-7), (alpha, m, worst)
    emit_table(
        "e1_certificate",
        f"{'alpha':>5} {'m':>3} {'worst ratio':>12} {'alpha^alpha':>12} "
        f"{'% of bound':>12} {'accepted':>10}",
        rows,
    )
    benchmark.extra_info["cells"] = len(rows_data)
