"""E15 — ablation of PD's admission rule (dynamic pricing vs alternatives).

PD interleaves admission (reject when the planned marginal energy
exceeds the value) with placement (water-filling against the current
load). This ablation holds the placement engine fixed and swaps the
admission policy, sweeping the value scale of a fixed workload from
"nothing is worth finishing" to "everything is":

* ``accept-all`` — the classical regime (ignore values);
* ``solo-threshold`` — PD's rule evaluated against an *empty* machine
  (static admission, no load awareness);
* ``pd`` — the paper's dynamic rule;
* ``oracle-admission`` — the offline optimal acceptance set, placed
  online (admission regret zero by construction);
* ``exact`` — the offline optimum (lower bound for everything).

Claims checked: the ordering ``exact <= oracle-admission`` holds
everywhere (placement regret only); PD tracks the oracle closely across
the whole sweep; accept-all explodes at low values; solo-threshold
matches PD at the extremes but loses in the middle, where load-aware
pricing matters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_algorithm
from repro.workloads import poisson_instance

from helpers import emit_table

ALPHA = 3.0
SCALES = [0.05, 0.3, 1.0, 3.0, 20.0]
POLICIES = ["accept-all", "solo-threshold", "pd", "oracle-admission", "exact"]


def admission_sweep():
    base = poisson_instance(9, m=1, alpha=ALPHA, seed=2)
    rows = []
    for scale in SCALES:
        inst = base.with_values((base.values * scale).tolist())
        costs = {
            name: run_algorithm(name, inst).cost for name in POLICIES
        }
        rows.append((scale, costs))
    return rows


@pytest.mark.benchmark(group="e15")
def test_e15_admission_policy_ablation(benchmark):
    data = benchmark.pedantic(admission_sweep, rounds=1, iterations=1)
    emit_table(
        "e15_admission",
        f"{'scale':>7} " + " ".join(f"{p:>15}" for p in POLICIES),
        [
            f"{scale:>7.2f} "
            + " ".join(f"{costs[p]:>15.4f}" for p in POLICIES)
            for scale, costs in data
        ],
    )
    for scale, costs in data:
        # Exact optimum lower-bounds every policy.
        for name in POLICIES[:-1]:
            assert costs[name] >= costs["exact"] - 1e-7, (scale, name)
        # Oracle admission leaves only placement regret: within a small
        # constant of the optimum on these benign instances (measured
        # ~1.8x here — the price of never revisiting committed work),
        # far inside the certified alpha^alpha.
        assert costs["oracle-admission"] <= costs["exact"] * 2.5 + 1e-9
        # PD stays within its certified factor trivially; the sharper
        # empirical claim is that it tracks the oracle closely.
        assert costs["pd"] <= costs["oracle-admission"] * 1.6 + 1e-9

    low = data[0][1]
    high = data[-1][1]
    # With near-worthless jobs accept-all burns energy for nothing and is
    # far worse than PD; with precious jobs everyone accepts everything
    # and the policies converge.
    assert low["accept-all"] > 5.0 * low["pd"]
    assert high["accept-all"] == pytest.approx(high["pd"], rel=0.25)
    benchmark.extra_info["scales"] = SCALES


@pytest.mark.benchmark(group="e15")
def test_e15_load_awareness_matters(benchmark):
    """A stacked burst where the static solo-threshold admits jobs a
    loaded machine should refuse: each job looks cheap alone, but the
    fifth concurrent one is ruinous. Dynamic PD prices against the
    current load and rejects the surplus."""

    def run():
        from repro.model.job import Instance

        # Five identical jobs sharing one tight window; values sized so a
        # lone job is clearly worth finishing but the marginal cost of
        # the k-th concurrent job grows like k^(alpha-1).
        rows = [(0.0, 1.0, 1.0, 4.0)] * 5
        inst = Instance.from_tuples(rows, m=1, alpha=ALPHA)
        return {
            name: run_algorithm(name, inst).cost
            for name in ("accept-all", "solo-threshold", "pd", "exact")
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "e15_load_awareness",
        f"{'policy':>15} {'cost':>10}",
        [f"{name:>15} {cost:>10.4f}" for name, cost in costs.items()],
    )
    # Solo-threshold admits all five (each is worth it alone) and pays
    # the stacked energy, like accept-all; PD stops admitting when the
    # price exceeds the value.
    assert costs["solo-threshold"] == pytest.approx(costs["accept-all"])
    assert costs["pd"] < 0.6 * costs["solo-threshold"]
    assert costs["pd"] <= ALPHA**ALPHA * costs["exact"] + 1e-9
