"""E2 — Theorem 3 tightness: the lower-bound instance family.

The paper proves no better ratio is possible for PD: on the
Bansal–Kimbrel–Pruhs family PD's cost-to-optimal ratio approaches
``alpha**alpha`` from below as n grows. We measure the simulated ratio,
pin it against the closed forms, and check monotone growth toward the
bound (the paper's "tight analysis" claim, qualitatively: the bound is
approached, never crossed).
"""

from __future__ import annotations

import pytest

from repro import run_pd, yds
from repro.workloads import (
    lower_bound_instance,
    optimal_cost_closed_form,
    pd_cost_closed_form,
)

from helpers import emit_table

NS = [2, 4, 8, 16, 32, 64]
ALPHAS = [2.0, 3.0]


def tightness_sweep():
    out = []
    for alpha in ALPHAS:
        for n in NS:
            inst = lower_bound_instance(n, alpha)
            pd_cost = run_pd(inst).cost
            opt = yds(inst).energy
            out.append(
                (
                    alpha,
                    n,
                    pd_cost,
                    opt,
                    pd_cost / opt,
                    pd_cost_closed_form(n, alpha),
                    optimal_cost_closed_form(n, alpha),
                )
            )
    return out


@pytest.mark.benchmark(group="e2")
def test_e2_lower_bound_tightness(benchmark):
    data = benchmark.pedantic(tightness_sweep, rounds=1, iterations=1)
    rows = []
    for alpha, n, pd_cost, opt, ratio, closed_pd, closed_opt in data:
        bound = alpha**alpha
        # Simulation must match analysis exactly (closed forms).
        assert abs(pd_cost - closed_pd) <= 1e-6 * closed_pd
        assert abs(opt - closed_opt) <= 1e-9 * closed_opt
        assert ratio <= bound + 1e-9
        rows.append(
            f"{alpha:>5.1f} {n:>5d} {pd_cost:>11.4f} {opt:>10.4f} "
            f"{ratio:>8.3f} {bound:>8.1f} {100 * ratio / bound:>9.1f}%"
        )
    # Ratio grows monotonically within each alpha.
    for alpha in ALPHAS:
        ratios = [r for a, _, _, _, r, _, _ in data if a == alpha]
        assert all(b > a for a, b in zip(ratios, ratios[1:])), ratios
    emit_table(
        "e2_lowerbound",
        f"{'alpha':>5} {'n':>5} {'PD cost':>11} {'OPT':>10} {'ratio':>8} "
        f"{'bound':>8} {'% bound':>10}",
        rows,
    )
    benchmark.extra_info["max_n"] = max(NS)
