"""E4 — Figure 2: Chen et al.'s schedule before/after a job arrival.

Regenerates the paper's Figure 2 as an ASCII Gantt pair (written to
``benchmarks/results/``) and quantifies Proposition 2 — the structural
lemma behind the figure — over a randomized sweep: adding one job to an
interval moves every processor's load by a delta in ``[0, z]``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chen import partition_loads, schedule_interval
from repro.model.power import PolynomialPower
from repro.viz import interval_gantt

from helpers import emit_table


def figure2_renders() -> tuple[str, str]:
    power = PolynomialPower(3.0)
    before = [3.0, 1.2, 1.0, 0.8]
    after = before + [1.5]
    s_before = schedule_interval(before, m=4, start=0.0, end=1.0, power=power)
    s_after = schedule_interval(after, m=4, start=0.0, end=1.0, power=power)
    return (
        interval_gantt([s_before], width=56, m=4),
        interval_gantt([s_after], width=56, m=4),
    )


def proposition2_sweep(samples: int = 400) -> list[tuple[int, float, float]]:
    """Per m: the extreme observed load deltas relative to z."""
    rng = np.random.default_rng(2013)
    out = []
    for m in [2, 4, 8]:
        min_delta = np.inf
        max_excess = -np.inf
        for _ in range(samples):
            p = int(rng.integers(0, 3 * m))
            loads = rng.exponential(1.0, size=p)
            z = float(rng.exponential(1.0)) + 1e-6
            before = partition_loads(loads, m).processor_loads()
            after = partition_loads(np.append(loads, z), m).processor_loads()
            delta = after - before
            min_delta = min(min_delta, float(delta.min()))
            max_excess = max(max_excess, float((delta - z).max()))
        out.append((m, min_delta, max_excess))
    return out


@pytest.mark.benchmark(group="e4")
def test_e4_figure2_gantt(benchmark):
    before, after = benchmark.pedantic(figure2_renders, rounds=1, iterations=1)
    emit_table(
        "e4_figure2",
        "Figure 2a (before) / 2b (after) — dedicated rows vs. wrapped pool",
        [before, "", after],
    )
    # Qualitative shape: the big job keeps CPU 1 to itself in both panels.
    assert before.splitlines()[0].count("A") > 50
    assert after.splitlines()[0].count("A") > 50


@pytest.mark.benchmark(group="e4")
def test_e4_proposition2_sweep(benchmark):
    data = benchmark.pedantic(proposition2_sweep, rounds=1, iterations=1)
    rows = []
    for m, min_delta, max_excess in data:
        rows.append(f"{m:>3d} {min_delta:>14.3e} {max_excess:>16.3e}")
        assert min_delta >= -1e-9, f"m={m}: a processor load decreased"
        assert max_excess <= 1e-9, f"m={m}: a load moved by more than z"
    emit_table(
        "e4_proposition2",
        f"{'m':>3} {'min delta':>14} {'max (delta-z)':>16}   (400 random arrivals each)",
        rows,
    )
