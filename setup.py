"""Setuptools shim.

The environment has no `wheel` package, so PEP 660 editable installs fail;
with this file present, ``pip install -e .`` falls back to the legacy
``setup.py develop`` path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of Kling & Pietrzyk, 'Profitable Scheduling on "
        "Multiple Speed-Scalable Processors' (SPAA 2013)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
