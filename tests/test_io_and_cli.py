"""Tests for JSON serialization, the audit report, and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.report import audit_run
from repro.core.pd import run_pd
from repro.errors import InvalidParameterError
from repro.io.cli import build_parser, main
from repro.io.serialize import (
    instance_from_dict,
    instance_to_dict,
    load_json,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.model.job import Instance
from repro.workloads import poisson_instance


class TestInstanceSerialization:
    def test_roundtrip(self):
        inst = poisson_instance(10, m=3, alpha=2.5, seed=0)
        back = instance_from_dict(instance_to_dict(inst))
        assert back.m == inst.m and back.alpha == inst.alpha
        assert back.jobs == inst.jobs

    def test_names_preserved(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1.0)]).with_values([2.0])
        payload = instance_to_dict(inst)
        assert "name" not in payload["jobs"][0]
        from repro.model.job import Job

        named = Instance((Job(0.0, 1.0, 1.0, 1.0, name="alpha"),))
        back = instance_from_dict(instance_to_dict(named))
        assert back[0].name == "alpha"

    def test_wrong_kind_rejected(self):
        inst = poisson_instance(3, seed=0)
        payload = instance_to_dict(inst)
        payload["kind"] = "schedule"
        with pytest.raises(InvalidParameterError):
            instance_from_dict(payload)

    def test_wrong_schema_rejected(self):
        payload = instance_to_dict(poisson_instance(3, seed=0))
        payload["schema"] = 999
        with pytest.raises(InvalidParameterError):
            instance_from_dict(payload)

    def test_json_file_roundtrip(self, tmp_path):
        inst = poisson_instance(5, seed=1)
        path = tmp_path / "inst.json"
        save_json(instance_to_dict(inst), path)
        assert instance_from_dict(load_json(path)).jobs == inst.jobs

    def test_stable_formatting(self, tmp_path):
        inst = poisson_instance(4, seed=2)
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        save_json(instance_to_dict(inst), p1)
        save_json(instance_to_dict(inst), p2)
        assert p1.read_text() == p2.read_text()


class TestScheduleSerialization:
    def test_roundtrip_preserves_cost(self):
        inst = poisson_instance(8, m=2, alpha=3.0, seed=3)
        sched = run_pd(inst).schedule
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back.cost == pytest.approx(sched.cost, rel=1e-9)
        np.testing.assert_allclose(back.loads, sched.loads)
        np.testing.assert_array_equal(back.finished, sched.finished)

    def test_sparse_storage(self):
        inst = poisson_instance(8, m=2, alpha=3.0, seed=4)
        sched = run_pd(inst).schedule
        payload = schedule_to_dict(sched)
        dense = sched.loads.size
        assert len(payload["loads"]) < dense  # zeros are omitted

    def test_tampered_cost_detected(self):
        inst = poisson_instance(5, m=1, alpha=3.0, seed=5)
        payload = schedule_to_dict(run_pd(inst).schedule)
        payload["cost"] = payload["cost"] * 2 + 1
        with pytest.raises(InvalidParameterError):
            schedule_from_dict(payload)

    def test_payload_is_json_serializable(self):
        inst = poisson_instance(5, m=2, alpha=2.0, seed=6)
        payload = schedule_to_dict(run_pd(inst).schedule)
        json.dumps(payload)  # must not raise


class TestAuditReport:
    def test_clean_run_is_certified(self):
        result = run_pd(poisson_instance(12, m=2, alpha=3.0, seed=7))
        report = audit_run(result)
        assert report.ok
        assert "VERDICT: certified" in report.text
        assert sum(report.category_sizes) == 12

    def test_report_contains_key_numbers(self):
        result = run_pd(poisson_instance(8, m=1, alpha=2.0, seed=8))
        report = audit_run(result)
        assert f"{report.certificate.g:.6f}" in report.text
        assert "alpha^alpha" in report.text


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "poisson", "out.json", "-n", "5"])
        assert args.command == "generate" and args.n == 5

    def test_generate_and_run(self, tmp_path, capsys):
        inst_path = str(tmp_path / "inst.json")
        assert main(["generate", "poisson", inst_path, "-n", "8", "--seed", "1"]) == 0
        assert main(["run", "pd", inst_path]) == 0
        out = capsys.readouterr().out
        assert "accepted" in out

    def test_run_saves_schedule(self, tmp_path):
        inst_path = str(tmp_path / "inst.json")
        sched_path = str(tmp_path / "sched.json")
        main(["generate", "uniform", inst_path, "-n", "6", "--seed", "2"])
        assert main(["run", "pd", inst_path, "--save-schedule", sched_path]) == 0
        payload = load_json(sched_path)
        assert payload["kind"] == "schedule"
        schedule_from_dict(payload)  # must round-trip

    def test_compare_skips_incompatible(self, tmp_path, capsys):
        inst_path = str(tmp_path / "inst.json")
        main(["generate", "poisson", inst_path, "-n", "6", "-m", "2", "--seed", "3"])
        assert main(["compare", inst_path, "--algorithms", "pd,cll"]) == 0
        out = capsys.readouterr().out
        assert "skipped" in out and "pd" in out

    def test_certify_exit_code(self, tmp_path, capsys):
        inst_path = str(tmp_path / "inst.json")
        main(["generate", "tight", inst_path, "-n", "8", "--seed", "4"])
        assert main(["certify", inst_path]) == 0
        assert "VERDICT: certified" in capsys.readouterr().out

    def test_figures_render(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2a" in out and "Figure 3b" in out

    def test_missing_file_is_graceful(self, capsys):
        assert main(["run", "pd", "/nonexistent/inst.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_gantt_flag(self, tmp_path, capsys):
        inst_path = str(tmp_path / "inst.json")
        main(["generate", "batch", inst_path, "-n", "5", "-m", "2", "--seed", "5"])
        assert main(["run", "pd", inst_path, "--gantt"]) == 0
        assert "CPU 1" in capsys.readouterr().out

    def test_lowerbound_generator(self, tmp_path):
        inst_path = str(tmp_path / "lb.json")
        assert main(["generate", "lowerbound", inst_path, "-n", "6"]) == 0
        inst = instance_from_dict(load_json(inst_path))
        assert inst.n == 6 and inst.m == 1


class TestNewSubcommands:
    """CLI coverage for the discrete / profit / adversary extensions."""

    def _instance(self, tmp_path, **kwargs):
        inst_path = str(tmp_path / "inst.json")
        main(["generate", "poisson", inst_path, "-n", "6", "--seed", "7"])
        return inst_path

    def test_discrete_default_menu(self, tmp_path, capsys):
        inst_path = self._instance(tmp_path)
        assert main(["discrete", inst_path, "--levels", "6"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out and "envelope bound" in out

    def test_discrete_explicit_cap(self, tmp_path, capsys):
        inst_path = self._instance(tmp_path)
        assert main(["discrete", inst_path, "--levels", "8", "--cap", "50"]) == 0
        assert "level" in capsys.readouterr().out

    def test_profit_plain(self, tmp_path, capsys):
        inst_path = self._instance(tmp_path)
        assert main(["profit", inst_path]) == 0
        assert "profit" in capsys.readouterr().out

    def test_profit_augmented(self, tmp_path, capsys):
        inst_path = self._instance(tmp_path)
        assert main(["profit", inst_path, "--epsilon", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "eps=0.25" in out

    def test_adversary_and_save(self, tmp_path, capsys):
        inst_path = self._instance(tmp_path)
        hard_path = str(tmp_path / "hard.json")
        assert (
            main(
                [
                    "adversary",
                    inst_path,
                    "--rounds",
                    "10",
                    "--seed",
                    "1",
                    "--save",
                    hard_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hardest certified ratio" in out
        hard = instance_from_dict(load_json(hard_path))
        assert hard.n >= 1

    def test_policy_algorithms_in_run(self, tmp_path, capsys):
        inst_path = self._instance(tmp_path)
        assert main(["run", "solo-threshold", inst_path]) == 0
        assert "accepted" in capsys.readouterr().out

    def test_variant_spec_in_run(self, tmp_path, capsys):
        inst_path = self._instance(tmp_path)
        assert main(["run", "pd?delta=0.05", inst_path]) == 0
        assert "accepted" in capsys.readouterr().out

    def test_unknown_algorithm_in_run_is_graceful(self, tmp_path, capsys):
        inst_path = self._instance(tmp_path)
        assert main(["run", "nope", inst_path]) == 2
        assert "unknown algorithm" in capsys.readouterr().err


class TestSweepSubcommand:
    """CLI coverage for sharding, cache backends, and variant axes."""

    BASE = [
        "sweep", "poisson", "-n", "5", "--alphas", "3.0", "--ms", "1",
        "--algorithms", "pd", "--seeds", "0,1",
    ]

    def test_sweep_with_variant_axis(self, tmp_path, capsys):
        out_path = str(tmp_path / "cells.json")
        argv = self.BASE + ["--variant", "delta=0.01,0.05", "--json", out_path]
        assert main(argv) == 0
        assert "pd?delta=0.01" in capsys.readouterr().out
        payload = load_json(out_path)
        assert [c["algorithm"] for c in payload["cells"]] == [
            "pd?delta=0.01", "pd?delta=0.05",
        ]
        assert payload["cells"][0]["params"]["delta"] == 0.01

    def test_sweep_sqlite_backend_caches(self, tmp_path, capsys):
        cache_path = str(tmp_path / "cache.db")
        argv = self.BASE + ["--cache", cache_path, "--cache-backend", "sqlite"]
        assert main(argv) == 0
        assert "2 cells computed, 0 served from cache" in capsys.readouterr().out
        assert main(argv) == 0
        assert "0 cells computed, 2 served from cache" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["dir", "sqlite"])
    def test_sharded_sweep_merges_byte_identical(self, backend, tmp_path, capsys):
        cache_path = str(
            tmp_path / ("cache.db" if backend == "sqlite" else "cache-dir")
        )
        caching = ["--cache", cache_path, "--cache-backend", backend]
        variants = ["--variant", "delta=0.01,0.05"]
        full, merged = str(tmp_path / "full.json"), str(tmp_path / "merged.json")
        shards = [str(tmp_path / f"s{i}.json") for i in range(2)]

        assert main(self.BASE + variants + caching + ["--json", full]) == 0
        for index, shard_path in enumerate(shards):
            argv = self.BASE + variants + caching + [
                "--shard", f"{index}/2", "--json", shard_path,
            ]
            assert main(argv) == 0
        assert main(["sweep", "poisson", "--merge", *shards, "--json", merged]) == 0
        capsys.readouterr()
        with open(full) as f_full, open(merged) as f_merged:
            assert f_full.read() == f_merged.read()

    def test_shard_requires_json(self, capsys):
        assert main(self.BASE + ["--shard", "0/2"]) == 2
        assert "--json" in capsys.readouterr().err

    def test_bad_shard_spec(self, capsys):
        assert main(self.BASE + ["--shard", "2", "--json", "x.json"]) == 2
        assert "I/K" in capsys.readouterr().err

    def test_merge_rejects_incomplete_shards(self, tmp_path, capsys):
        shard_path = str(tmp_path / "s0.json")
        argv = self.BASE + ["--shard", "0/2", "--json", shard_path]
        assert main(argv) == 0
        assert main(["sweep", "poisson", "--merge", shard_path]) == 2
        assert "missing shard" in capsys.readouterr().err

    def test_merge_rejects_non_shard_files(self, tmp_path, capsys):
        cells_path = str(tmp_path / "cells.json")
        assert main(self.BASE + ["--json", cells_path]) == 0
        assert main(["sweep", "poisson", "--merge", cells_path]) == 2
        assert "not a sweep shard file" in capsys.readouterr().err


class TestSweepWorkloadAxis:
    """CLI coverage for the workload axis, streaming, and LPT sharding."""

    def test_workload_axis_sweep(self, tmp_path, capsys):
        out_path = str(tmp_path / "cells.json")
        argv = [
            "sweep", "--workload", "poisson", "--workload",
            "heavy-tail?n=4&alpha=3.0", "-n", "5", "--algorithms", "pd",
            "--seeds", "0,1", "--json", out_path,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "workload" in out
        payload = load_json(out_path)
        assert [c["params"]["workload"] for c in payload["cells"]] == [
            "poisson", "heavy-tail?alpha=3.0&n=4",
        ]

    def test_workload_spelling_variants_share_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "c.db")
        base = ["sweep", "-n", "5", "--algorithms", "pd", "--seeds", "0",
                "--cache", cache, "--cache-backend", "sqlite"]
        out = [str(tmp_path / "a.json"), str(tmp_path / "b.json")]
        assert main(
            base + ["--workload", "heavy-tail?n=6&alpha=3.0", "--json", out[0]]
        ) == 0
        assert "1 cells computed" in capsys.readouterr().out
        assert main(
            base + ["--workload", "heavy-tail?alpha=3&n=6", "--json", out[1]]
        ) == 0
        assert "0 cells computed, 1 served from cache" in capsys.readouterr().out
        # canonical labels make the cells JSON spelling-invariant too
        with open(out[0]) as a, open(out[1]) as b:
            assert a.read() == b.read()

    def test_family_and_workload_are_exclusive(self, capsys):
        assert main(["sweep", "poisson", "--workload", "uniform"]) == 2
        assert "one source" in capsys.readouterr().err
        assert main(["sweep"]) == 2
        assert "one source" in capsys.readouterr().err

    def test_unknown_workload_spec_is_graceful(self, capsys):
        assert main(["sweep", "--workload", "nope?n=4"]) == 2
        assert "unknown workload family" in capsys.readouterr().err

    def test_positional_family_spec_may_pin_alpha(self, capsys):
        # a parameterized positional family pinning alpha must not clash
        # with the default alpha grid axis...
        argv = ["sweep", "heavy-tail?alpha=2.5", "-n", "4",
                "--algorithms", "pd", "--seeds", "0"]
        assert main(argv) == 0
        assert "m=1" in capsys.readouterr().out
        # ...but an *explicit* --alphas against the pin still fails loudly
        assert main(argv + ["--alphas", "3.0"]) == 2
        assert "pinned" in capsys.readouterr().err

    def test_progress_ticker_on_stderr(self, capsys):
        argv = ["sweep", "poisson", "-n", "4", "--algorithms", "pd",
                "--seeds", "0,1", "--progress"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "[1/2]" in err and "[2/2]" in err and "pd" in err

    def test_lpt_sharded_sweep_merges_byte_identical(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.db")
        base = [
            "sweep", "poisson", "-n", "5", "--alphas", "3.0", "--ms", "1",
            "--algorithms", "pd,oa", "--seeds", "0,1",
            "--cache", cache, "--cache-backend", "sqlite",
        ]
        full, merged = str(tmp_path / "full.json"), str(tmp_path / "m.json")
        shards = [str(tmp_path / f"s{i}.json") for i in range(2)]
        # warm the cache so LPT schedules from *measured* timings
        assert main(base + ["--json", full]) == 0
        for index, shard_path in enumerate(shards):
            argv = base + ["--shard", f"{index}/2", "--shard-strategy",
                           "lpt", "--json", shard_path]
            assert main(argv) == 0
        assert main(["sweep", "--merge", *shards, "--json", merged]) == 0
        capsys.readouterr()
        with open(full) as f_full, open(merged) as f_merged:
            assert f_full.read() == f_merged.read()
        # the shard files record the strategy and their owned positions
        shard_payload = load_json(shards[0])
        assert shard_payload["strategy"] == "lpt"
        positions = shard_payload["positions"] + load_json(shards[1])["positions"]
        assert sorted(positions) == list(range(4))  # pd,oa x seeds 0,1

    def test_shard_index_validated(self, capsys):
        assert main([
            "sweep", "poisson", "--shard", "2/2", "--json", "x.json",
        ]) == 2
        assert "0 <= I < K" in capsys.readouterr().err

    def test_merge_diagnoses_divergent_lpt_assignments(self, tmp_path, capsys):
        """LPT shards cut against a *live* shared cache disagree on the
        split (earlier shards write timings that change later shards'
        cost vectors); --merge must say so, not interleave garbage."""
        cache = str(tmp_path / "cache.db")
        base = [
            "sweep", "poisson", "-n", "5", "--alphas", "3.0", "--ms", "1",
            "--algorithms", "pd,oa", "--seeds", "0,1",
            "--cache", cache, "--cache-backend", "sqlite",
        ]
        shards = [str(tmp_path / f"s{i}.json") for i in range(2)]
        for index, shard_path in enumerate(shards):
            # no warm-up run: shard 0's fresh timings skew shard 1's split
            argv = base + ["--shard", f"{index}/2", "--shard-strategy",
                           "lpt", "--json", shard_path]
            assert main(argv) == 0
        code = main(["sweep", "--merge", *shards])
        err = capsys.readouterr().err
        if code == 2:  # the splits actually diverged (the common case)
            assert "timing snapshots" in err or "partition" in err
