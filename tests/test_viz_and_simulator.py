"""Tests for ASCII rendering and the algorithm registry."""

from __future__ import annotations

import pytest

from repro.core.simulator import available_algorithms, run_algorithm
from repro.errors import InvalidParameterError
from repro.model.job import Instance
from repro.viz import gantt, interval_gantt, speed_profile
from repro.workloads import batch_instance, poisson_instance


class TestViz:
    def test_gantt_contains_all_processors(self):
        inst = batch_instance(5, m=3, alpha=3.0, seed=0)
        from repro.core.pd import run_pd

        text = gantt(run_pd(inst).schedule)
        assert "CPU 1" in text and "CPU 3" in text

    def test_gantt_idle_schedule(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1e-12)], m=2, alpha=3.0)
        from repro.core.pd import run_pd

        text = gantt(run_pd(inst).schedule)
        assert "CPU 1" in text  # renders even with nothing scheduled

    def test_interval_gantt_empty(self):
        assert "empty" in interval_gantt([])

    def test_speed_profile_shape(self):
        inst = poisson_instance(8, m=1, alpha=3.0, seed=1)
        from repro.core.pd import run_pd

        text = speed_profile(run_pd(inst).schedule, width=40, height=5)
        lines = text.splitlines()
        assert len(lines) == 7  # 5 rows + axis + time labels

    def test_speed_profile_idle(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1e-12)], m=1, alpha=3.0)
        from repro.core.pd import run_pd

        assert "idle" in speed_profile(run_pd(inst).schedule)

    def test_per_processor_profile(self):
        # One dominant job guarantees the fastest rank outruns the second.
        inst = Instance.classical(
            [(0.0, 1.0, 10.0), (0.0, 1.0, 1.0), (0.0, 1.0, 1.0)], m=2, alpha=3.0
        )
        from repro.core.pd import run_pd

        sched = run_pd(inst).schedule
        t0 = speed_profile(sched, processor=0)
        t1 = speed_profile(sched, processor=1)
        assert t0 != t1  # fastest vs second rank differ on this instance


class TestRegistry:
    def test_available_algorithms(self):
        names = available_algorithms()
        assert "pd" in names and "yds" in names and "exact" in names

    def test_unknown_name(self):
        inst = poisson_instance(3, seed=0)
        with pytest.raises(InvalidParameterError):
            run_algorithm("nope", inst)

    @pytest.mark.parametrize("name", ["pd", "cll", "yds", "oa", "avr", "bkp", "qoa"])
    def test_single_proc_algorithms_run(self, name):
        inst = poisson_instance(6, m=1, alpha=3.0, seed=3)
        if name in ("yds", "oa", "avr", "bkp", "qoa"):
            inst = inst.with_values([1e12] * inst.n)
        outcome = run_algorithm(name, inst)
        assert outcome.cost >= 0.0
        outcome.schedule.validate()

    @pytest.mark.parametrize("name", ["pd", "oa", "avr", "offline-cp"])
    def test_multi_proc_algorithms_run(self, name):
        inst = poisson_instance(6, m=2, alpha=3.0, seed=4)
        if name != "pd":
            inst = inst.with_values([1e12] * inst.n)
        outcome = run_algorithm(name, inst)
        outcome.schedule.validate()

    def test_exact_runs_small(self):
        inst = poisson_instance(5, m=1, alpha=2.0, seed=5)
        outcome = run_algorithm("exact", inst)
        pd = run_algorithm("pd", inst)
        assert outcome.cost <= pd.cost * (1.0 + 1e-9)

    def test_raw_result_exposed(self):
        inst = poisson_instance(4, m=1, alpha=3.0, seed=6)
        outcome = run_algorithm("pd", inst)
        from repro.core.pd import PDResult

        assert isinstance(outcome.raw, PDResult)


class TestSegmentGantt:
    def test_renders_discrete_segments(self):
        from repro.discrete import SpeedSet, run_pd_discrete
        from repro.viz import segment_gantt

        inst = Instance.from_tuples(
            [(0.0, 4.0, 1.5, 10.0), (1.0, 3.0, 1.0, 8.0)], m=2, alpha=3.0
        )
        res = run_pd_discrete(inst, SpeedSet([0.25, 0.5, 1.0, 2.0]))
        text = segment_gantt(res.discrete.segments, width=48, m=2)
        assert "CPU 1" in text and "CPU 2" in text
        assert "A" in text and "B" in text

    def test_empty_segments(self):
        from repro.viz import segment_gantt

        assert segment_gantt([]) == "(empty schedule)"

    def test_processor_count_inferred(self):
        from repro.chen.mcnaughton import Segment
        from repro.viz import segment_gantt

        segs = [
            Segment(job=0, processor=2, start=0.0, end=1.0, speed=1.0),
        ]
        text = segment_gantt(segs, width=10)
        assert "CPU 3" in text
