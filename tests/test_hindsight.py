"""Tests for the hindsight regret decomposition."""

from __future__ import annotations

import pytest

from repro.analysis.hindsight import hindsight_decomposition
from repro.core.pd import run_pd
from repro.errors import InvalidParameterError
from repro.model.job import Instance
from repro.workloads import poisson_instance


class TestDecomposition:
    @pytest.mark.parametrize("seed", range(5))
    def test_regrets_nonnegative_and_additive(self, seed):
        inst = poisson_instance(7, m=1, alpha=2.0, seed=seed)
        result = run_pd(inst)
        d = hindsight_decomposition(result)
        assert d.placement_regret >= -1e-7
        assert d.admission_regret is not None
        assert d.admission_regret >= -1e-6 * max(1.0, d.opt_cost)
        # Exact additivity by construction.
        assert d.placement_regret + d.admission_regret == pytest.approx(
            d.total_regret, abs=1e-9
        )

    def test_batch_instance_has_no_placement_regret(self):
        """All jobs arrive at once: PD's placement is offline-optimal."""
        inst = Instance.classical(
            [(0.0, 1.0, 1.0), (0.0, 2.0, 1.0), (0.0, 4.0, 2.0)], m=1, alpha=3.0
        )
        d = hindsight_decomposition(run_pd(inst))
        assert d.placement_regret == pytest.approx(0.0, abs=1e-5)
        assert d.total_regret == pytest.approx(0.0, abs=1e-5)

    def test_large_instance_skips_exact(self):
        inst = poisson_instance(20, m=2, alpha=3.0, seed=0)
        d = hindsight_decomposition(run_pd(inst))
        assert d.opt_cost is None
        assert d.admission_regret is None
        assert d.placement_regret >= -1e-6
        assert "too large" in d.summary()

    def test_forced_exact_on_large_instance_guarded(self):
        inst = poisson_instance(20, m=1, alpha=2.0, seed=1)
        with pytest.raises(InvalidParameterError):
            hindsight_decomposition(run_pd(inst), exact=True)

    def test_forbidden_exact(self):
        inst = poisson_instance(6, m=1, alpha=2.0, seed=2)
        d = hindsight_decomposition(run_pd(inst), exact=False)
        assert d.opt_cost is None

    def test_summary_contains_numbers(self):
        inst = poisson_instance(6, m=1, alpha=2.0, seed=3)
        d = hindsight_decomposition(run_pd(inst))
        text = d.summary()
        assert f"{d.pd_cost:.6f}" in text
        assert "admission regret" in text

    def test_total_regret_bounded_by_theorem(self):
        for seed in range(4):
            inst = poisson_instance(6, m=1, alpha=2.0, seed=seed)
            d = hindsight_decomposition(run_pd(inst))
            assert d.pd_cost <= 4.0 * d.opt_cost * (1 + 1e-6) + 1e-9
