"""Public-API contract tests.

The library's ``__all__`` lists form its compatibility surface. This
module touches every exported name at least once *by name* — mostly the
result dataclasses that other tests only reach through their factory
functions — so an accidental rename or dropped field fails loudly here
rather than in a downstream user's code.
"""

from __future__ import annotations

import importlib

import numpy as np
import pytest

import repro
from repro.model.job import Instance
from repro.workloads.random_instances import poisson_instance

ALL_MODULES = [
    "repro",
    "repro.model",
    "repro.chen",
    "repro.classical",
    "repro.core",
    "repro.offline",
    "repro.analysis",
    "repro.discrete",
    "repro.profit",
    "repro.general",
    "repro.workloads",
    "repro.viz",
    "repro.io",
]


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_version_string():
    assert repro.__version__ == "1.1.0"
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))


@pytest.fixture(scope="module")
def pd_result():
    return repro.run_pd(poisson_instance(6, m=2, alpha=3.0, seed=21))


class TestResultDataclasses:
    """Every exported result type's documented fields, touched by name."""

    def test_job_decision(self, pd_result):
        from repro.core import JobDecision

        d = pd_result.decisions[0]
        assert isinstance(d, JobDecision)
        assert d.job_id == 0 and d.lam >= 0.0 and d.planned_speed >= 0.0

    def test_run_outcome(self):
        from repro.core import RunOutcome

        out = repro.run_algorithm("pd", poisson_instance(4, m=1, alpha=3.0, seed=0))
        assert isinstance(out, RunOutcome)
        assert out.cost == out.schedule.cost and out.name == "pd"

    def test_cll_result(self):
        from repro.core import CLLResult, run_cll

        result = run_cll(poisson_instance(4, m=1, alpha=3.0, seed=1))
        assert isinstance(result, CLLResult)

    def test_waterfill_outcome(self):
        from repro.chen.interval_power import SortedLoads
        from repro.core import WaterfillOutcome, waterfill_job
        from repro.model.power import PolynomialPower

        out = waterfill_job(
            [SortedLoads(np.array([0.5]), 1, 1.0)],
            workload=1.0,
            value=100.0,
            delta=1.0 / 9.0,
            power=PolynomialPower(3.0),
        )
        assert isinstance(out, WaterfillOutcome) and out.accepted

    def test_policy_result(self):
        from repro.core import PolicyResult, run_reject_all

        r = run_reject_all(poisson_instance(3, m=1, alpha=3.0, seed=2))
        assert isinstance(r, PolicyResult) and r.inner is None

    def test_offline_solutions(self):
        from repro.offline import ExactSolution, OfflineSolution, solve_exact
        from repro.offline.convex import solve_min_energy

        inst = poisson_instance(4, m=1, alpha=3.0, seed=3)
        exact = solve_exact(inst)
        assert isinstance(exact, ExactSolution)
        assert exact.subsets_solved + exact.subsets_pruned >= 1
        cp = solve_min_energy(inst, tuple(range(inst.n)))
        assert isinstance(cp, OfflineSolution)

    def test_flow_results(self):
        from repro.offline import (
            FlowFeasibility,
            UniformSpeedResult,
            check_feasible_at_speed,
            run_uniform_speed,
        )

        inst = Instance.classical([(0.0, 1.0, 0.5)], m=1, alpha=3.0)
        f = check_feasible_at_speed(inst, 1.0)
        assert isinstance(f, FlowFeasibility) and f.loads().shape == (1, 1)
        u = run_uniform_speed(inst)
        assert isinstance(u, UniformSpeedResult) and u.speed > 0.0

    def test_analysis_reports(self, pd_result):
        from repro.analysis import (
            CategoryReport,
            DualCertificate,
            HindsightDecomposition,
            LemmaBounds,
            PreemptionStats,
            TraceReport,
            build_traces,
            categorize,
            dual_certificate,
            hindsight_decomposition,
            lemma_bounds,
            preemption_stats,
        )

        cert = dual_certificate(pd_result)
        assert isinstance(cert, DualCertificate)
        assert isinstance(categorize(pd_result, cert), CategoryReport)
        assert isinstance(lemma_bounds(pd_result, cert), LemmaBounds)
        assert isinstance(build_traces(pd_result, cert), TraceReport)
        assert isinstance(preemption_stats(pd_result.schedule), PreemptionStats)
        small = poisson_instance(4, m=1, alpha=3.0, seed=4)
        assert isinstance(
            hindsight_decomposition(repro.run_pd(small)), HindsightDecomposition
        )

    def test_discrete_results(self, pd_result):
        from repro.discrete import (
            Bracket,
            DiscretePDResult,
            DiscreteSchedule,
            SpeedSet,
            discretize_schedule,
            menu_covering_schedule,
            run_pd_discrete,
        )

        menu = menu_covering_schedule(pd_result, 6)
        assert isinstance(menu.bracket(menu.min_speed), Bracket)
        d = discretize_schedule(pd_result.schedule, menu)
        assert isinstance(d, DiscreteSchedule)
        r = run_pd_discrete(pd_result.schedule.instance, menu)
        assert isinstance(r, DiscretePDResult)

    def test_profit_results(self, pd_result):
        from repro.profit import (
            AugmentedProfitResult,
            ProfitBreakdown,
            profit_of_result,
            run_pd_augmented,
        )

        p = profit_of_result(pd_result)
        assert isinstance(p, ProfitBreakdown)
        a = run_pd_augmented(pd_result.schedule.instance, 0.1)
        assert isinstance(a, AugmentedProfitResult)

    def test_general_results(self):
        from repro.general import (
            GeneralDualBound,
            GeneralPDResult,
            SumPower,
            general_dual_bound,
            run_pd_general,
        )

        inst = poisson_instance(4, m=1, alpha=3.0, seed=5)
        gen = run_pd_general(inst, SumPower([1.0, 0.1], [3.0, 1.0]), delta=1 / 9)
        assert isinstance(gen, GeneralPDResult)
        assert isinstance(general_dual_bound(gen), GeneralDualBound)

    def test_classical_results(self):
        from repro.classical import OAResult, YdsResult, oa_plan, run_oa, yds

        inst = Instance.classical([(0.0, 2.0, 1.0), (1.0, 3.0, 1.0)], m=1, alpha=3.0)
        assert isinstance(yds(inst), YdsResult)
        assert isinstance(run_oa(inst), OAResult)
        plan = oa_plan(
            now=1.0,
            job_ids=[0, 1],
            remaining={0: 0.5, 1: 1.0},
            deadlines={0: 2.0, 1: 3.0},
            alpha=3.0,
        )
        assert isinstance(plan, YdsResult)

    def test_chen_partition_energy(self):
        from repro.chen import (
            IntervalPartition,
            interval_energy_from_partition,
            partition_loads,
        )
        from repro.model.power import PolynomialPower

        part = partition_loads(np.array([2.0, 0.5, 0.5]), 2)
        assert isinstance(part, IntervalPartition)
        energy = interval_energy_from_partition(part, 1.0, PolynomialPower(3.0))
        assert energy > 0.0

    def test_cost_breakdown(self, pd_result):
        from repro.model import Schedule
        from repro.model.schedule import CostBreakdown

        bd = pd_result.schedule.cost_breakdown()
        assert isinstance(bd, CostBreakdown)
        assert bd.total == pytest.approx(bd.energy + bd.lost_value)
        assert isinstance(pd_result.schedule, Schedule)
