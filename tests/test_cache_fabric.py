"""Tests for the distributed cache fabric: HTTP backend, tiered
composition, and work-stealing execution.

Four guarantees, each load-bearing for multi-machine sweeps:

* **protocol parity** — :class:`HttpCache` (and tiered stacks over it)
  pass the same backend contract as dir/sqlite, records bit-identical;
* **fault tolerance** — a dead, restarted, or garbage-speaking cache
  server degrades to recomputation, never to wrong results or crashes;
* **steal parity** — workers draining one claim table produce, in
  union, exactly the unsharded run, and the claim session token lets
  the merge step recognize the shards as one run;
* **concurrent durability** — the sqlite backend survives multiple
  processes hammering ``put`` (bounded busy retry), and the directory
  backend's timing sidecar keeps cost estimation payload-free.
"""

from __future__ import annotations

import json
import math
import socket
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.engine import (
    BatchRunner,
    DirectoryCache,
    HttpCache,
    HttpClaimTable,
    InProcessClaimTable,
    MemoryCache,
    RunRequest,
    SqliteCache,
    TieredCache,
    backend_stats,
    request_key,
    shard_assignment,
)
from repro.errors import CacheError, InvalidParameterError
from repro.io.server import CacheServer
from repro.workloads import poisson_instance


@pytest.fixture(scope="module")
def requests():
    insts = [poisson_instance(5, m=1, alpha=3.0, seed=s) for s in range(2)]
    return [
        RunRequest(a, i, tag={"seed": s})
        for s, i in enumerate(insts)
        for a in ("pd", "oa")
    ]


@pytest.fixture(scope="module")
def plain_records(requests):
    return BatchRunner().run(requests)


@pytest.fixture()
def server():
    backend = MemoryCache()
    srv = CacheServer(backend).start()
    yield srv
    srv.stop()


def _strip(records):  # NaN-safe comparison form (NaN != NaN)
    return [
        (r.algorithm, r.cost, r.energy,
         None if math.isnan(r.certified_ratio) else r.certified_ratio,
         r.schedule)
        for r in records
    ]


def _dead_url() -> str:
    """A URL nothing listens on (bound once to find a free port)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return f"http://127.0.0.1:{port}"


class TestHttpCacheProtocol:
    """Tentpole: HttpCache is a full CacheBackend, bit for bit."""

    def test_cold_warm_parity_against_uncached(
        self, requests, plain_records, server
    ):
        cold = BatchRunner(cache=HttpCache(server.url)).run(requests)
        warm = BatchRunner(cache=HttpCache(server.url)).run(requests)
        assert all(r.cached for r in warm)
        assert _strip(cold) == _strip(plain_records) == _strip(warm)

    def test_get_put_contains_len_keys(self, server):
        cache = HttpCache(server.url)
        assert cache.get("missing") is None and "missing" not in cache
        payload = {"v": 1, "ratio": math.nan}  # NaN must round-trip
        cache.put("k1", payload)
        back = cache.get("k1")
        assert back["v"] == 1 and math.isnan(back["ratio"])
        assert "k1" in cache and len(cache) == 1
        assert list(cache.keys()) == ["k1"]

    def test_batch_endpoints_chunking(self, server):
        cache = HttpCache(server.url, batch_size=2)
        entries = {f"k{i}": {"v": i} for i in range(5)}
        cache.put_many(entries)  # 3 chunked round trips
        assert len(cache) == 5
        found = cache.get_many([*entries, "absent"])  # 3 chunks again
        assert found == entries  # absent key simply missing
        assert cache.get_many([]) == {}

    def test_timings_flow_to_cost_estimates(self, requests, server):
        cache = HttpCache(server.url)
        BatchRunner(cache=cache).run(requests)
        keys = [request_key(r.algorithm, r.instance) for r in requests]
        timings = cache.get_timings(keys)
        assert set(timings) == set(keys)
        assert all(t > 0 for t in timings.values())
        # estimate_costs takes the bulk path and matches per-key probes
        costs = BatchRunner(cache=cache).estimate_costs(requests)
        assert costs == [timings[k] for k in keys]
        assert cache.get_timing(keys[0]) == timings[keys[0]]

    def test_stats_reports_server_backend(self, server):
        cache = HttpCache(server.url)
        cache.put("k", {"v": 1})
        stats = cache.stats()
        assert stats["backend"] == "http(memory)"
        assert stats["entries"] == 1 and stats["location"] == server.url

    def test_gc_delegates_to_server(self, server):
        cache = HttpCache(server.url)
        cache.put("k", {"v": 1})
        assert cache.gc(3600.0) == 0  # fresh entry survives
        assert cache.gc(0.0) == 1  # everything is older than "now"
        assert len(cache) == 0

    def test_bad_url_rejected(self):
        with pytest.raises(InvalidParameterError, match="http"):
            HttpCache("ftp://example.com")
        with pytest.raises(InvalidParameterError, match="batch_size"):
            HttpCache("http://example.com", batch_size=0)


class TestHttpCacheFaults:
    """Satellite: broken servers degrade to recompute, loudly only when
    the answer itself is the point."""

    def test_dead_server_reads_as_misses(self, requests, plain_records):
        cache = HttpCache(_dead_url(), timeout=0.5)
        assert cache.get("k") is None
        cache.put("k", {"v": 1})  # dropped, not raised
        assert cache.get_many(["k"]) == {}
        assert cache.get_timings(["k"]) == {}
        runner = BatchRunner(cache=cache)
        records = runner.run(requests)
        assert _strip(records) == _strip(plain_records)
        assert runner.stats.computed == len(requests)

    def test_dead_server_strict_surfaces_raise(self):
        cache = HttpCache(_dead_url(), timeout=0.5)
        with pytest.raises(CacheError, match="unreachable"):
            list(cache.keys())
        with pytest.raises(CacheError, match="unreachable"):
            cache.stats()
        with pytest.raises(CacheError, match="unreachable"):
            len(cache)

    def test_server_restart_mid_sweep_falls_back_to_recompute(
        self, requests, plain_records
    ):
        backend = MemoryCache()
        srv = CacheServer(backend).start()
        cache = HttpCache(srv.url, timeout=0.5)
        BatchRunner(cache=cache).run(requests[:2])  # warm two cells
        srv.stop()  # the "restart": server gone, cache state lost to us
        runner = BatchRunner(cache=cache)
        records = runner.run(requests)
        assert _strip(records) == _strip(plain_records)
        assert runner.stats.computed == len(requests)  # all recomputed

    def test_malformed_responses_read_as_misses(self, requests):
        class GarbageHandler(BaseHTTPRequestHandler):
            def _garbage(self):
                body = b"<html>not json at all"
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            do_GET = do_PUT = do_POST = _garbage

            def log_message(self, *args):
                pass

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), GarbageHandler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{httpd.server_address[1]}"
            cache = HttpCache(url, timeout=2.0)
            assert cache.get("k") is None
            cache.put("k", {"v": 1})  # swallowed
            assert cache.get_many(["k"]) == {}
            with pytest.raises(CacheError, match="no usable JSON"):
                cache.stats()
            record = BatchRunner(cache=cache).run_one(
                "pd", poisson_instance(4, seed=0)
            )
            assert not record.cached  # computed despite the garbage
        finally:
            httpd.shutdown()
            httpd.server_close()


class TestServerHardening:
    """Satellite: the server rejects hostile keys; the client survives
    non-HTTP peers."""

    def test_path_traversal_keys_rejected(self, tmp_path):
        import urllib.error
        import urllib.request

        root = tmp_path / "outer" / "inner" / "cache"
        backend = DirectoryCache(root)
        srv = CacheServer(backend).start()
        try:
            # percent-encoded slashes arrive as ONE unquoted segment;
            # unchecked they would join right out of the cache dir
            evil = f"{srv.url}/records/..%2F..%2Fescaped"
            body = json.dumps({"v": 1}).encode()
            for method in ("PUT", "GET"):
                request = urllib.request.Request(
                    evil, data=body if method == "PUT" else None, method=method
                )
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(request, timeout=2.0)
                assert err.value.code == 400
            assert not (tmp_path / "outer" / "escaped.json").exists()
            # batch puts and claim ids go through the same gate
            cache = HttpCache(srv.url)
            cache.put_many({"../../escaped": {"v": 1}})  # lenient: dropped
            assert not (tmp_path / "outer" / "escaped.json").exists()
            assert len(backend) == 0
            # batch *gets* walk the same backend read path
            assert cache.get_many(["../../escaped"]) == {}
            # and /timings can even WRITE (the sidecar backfill):
            # a hostile key must never reach the backend there either
            (tmp_path / "outer" / "loot.json").write_text(
                json.dumps({"v": 1, "wall_time": 0.5})
            )
            assert cache.get_timings(["../../loot"]) == {}
            assert not (tmp_path / "outer" / "loot.timing").exists()
            with pytest.raises(CacheError, match="illegal claim id"):
                HttpClaimTable(srv.url, "../../table", 2)
        finally:
            srv.stop()

    def test_double_start_rejected(self):
        """``start()`` publishes the thread handle under the lock: a
        second ``start()`` while serving must refuse instead of silently
        orphaning the first thread's handle (the RPR2xx lock-coverage
        defect ``repro lint`` surfaced)."""
        srv = CacheServer(MemoryCache()).start()
        try:
            with pytest.raises(InvalidParameterError, match="already started"):
                srv.start()
        finally:
            srv.stop()

    def test_scheme_less_urls_rejected_as_input_errors(self):
        # urlopen would raise a bare ValueError for these; they must
        # surface as ReproError input errors (CLI exit 2), not tracebacks
        for url in ("localhost:8377", "127.0.0.1:8377", ""):
            with pytest.raises(InvalidParameterError, match="http"):
                HttpCache(url)
            with pytest.raises(InvalidParameterError, match="http"):
                HttpClaimTable(url, "t", 2)

    def test_non_http_peer_degrades_not_crashes(self, requests):
        """A TCP service speaking something other than HTTP must read
        as a miss (BadStatusLine is an HTTPException, not an OSError)."""

        def speak_garbage(server_sock):
            while True:
                try:
                    conn, _ = server_sock.accept()
                except OSError:
                    return
                conn.recv(4096)
                conn.sendall(b"I AM NOT HTTP\r\n")
                conn.close()

        server_sock = socket.socket()
        server_sock.bind(("127.0.0.1", 0))
        server_sock.listen(4)
        port = server_sock.getsockname()[1]
        thread = threading.Thread(
            target=speak_garbage, args=(server_sock,), daemon=True
        )
        thread.start()
        try:
            cache = HttpCache(f"http://127.0.0.1:{port}", timeout=2.0)
            assert cache.get("k") is None
            cache.put("k", {"v": 1})  # dropped, not raised
            with pytest.raises(CacheError, match="unreachable"):
                cache.stats()
            record = BatchRunner(cache=cache).run_one(
                "pd", poisson_instance(4, seed=0)
            )
            assert not record.cached
        finally:
            server_sock.close()

    def test_strict_errors_carry_server_detail(self):
        class NoGc(MemoryCache):
            gc = None  # a backend without garbage collection

        srv = CacheServer(NoGc()).start()
        try:
            with pytest.raises(CacheError, match="does not support gc"):
                HttpCache(srv.url).gc(0.0)
        finally:
            srv.stop()


class TestTieredCache:
    """Tentpole: promotion, write-through, and LRU eviction."""

    def test_write_through_reaches_every_tier(self, tmp_path):
        memory = MemoryCache()
        disk = DirectoryCache(tmp_path / "d")
        tiered = TieredCache([memory, disk])
        tiered.put("k", {"v": 1})
        assert memory.get("k") == {"v": 1} and disk.get("k") == {"v": 1}

    def test_read_promotion_fills_faster_tiers(self, tmp_path):
        memory = MemoryCache()
        disk = DirectoryCache(tmp_path / "d")
        disk.put("k", {"v": 1})  # only the slow tier holds it
        tiered = TieredCache([memory, disk])
        assert tiered.get("k") == {"v": 1}
        assert memory.get("k") == {"v": 1}  # promoted

    def test_hot_keys_hit_the_slow_tier_once(self):
        class CountingCache(MemoryCache):
            def __init__(self):
                super().__init__()
                self.gets = 0

            def get(self, key):
                self.gets += 1
                return super().get(key)

        remote = CountingCache()
        remote.put("k", {"v": 1})
        tiered = TieredCache([MemoryCache(), remote])
        for _ in range(5):
            assert tiered.get("k") == {"v": 1}
        assert remote.gets == 1

    def test_get_many_probes_deep_only_for_misses_and_promotes(self):
        class CountingCache(MemoryCache):
            def __init__(self):
                super().__init__()
                self.asked: list[list[str]] = []

            def get_many(self, keys):
                self.asked.append(list(keys))
                return {
                    k: p
                    for k in keys
                    if (p := self.get(k)) is not None
                }

        hot = MemoryCache()
        hot.put("a", {"v": "a"})
        remote = CountingCache()
        remote.put("b", {"v": "b"})
        tiered = TieredCache([hot, remote])
        found = tiered.get_many(["a", "b", "c"])
        assert found == {"a": {"v": "a"}, "b": {"v": "b"}}
        assert remote.asked == [["b", "c"]]  # "a" never left the hot tier
        assert hot.get("b") == {"v": "b"}  # deep hit promoted

    def test_memory_lru_eviction_and_recency(self):
        cache = MemoryCache(max_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refresh "a"
        cache.put("c", {"v": 3})  # evicts the stalest: "b"
        assert "b" not in cache and "a" in cache and "c" in cache
        assert len(cache) == 2
        with pytest.raises(InvalidParameterError, match="max_entries"):
            MemoryCache(max_entries=0)

    def test_memory_backend_as_the_store_is_unbounded(self):
        """When the memory cache IS the store (cache-serve --backend
        memory), the hot-tier LRU default must not evict mid-sweep."""
        from repro.engine import open_cache

        cache = open_cache(None, "memory")
        assert cache.max_entries is None
        for i in range(1500):  # well past the 1024 hot-tier default
            cache.put(f"k{i}", {"v": i})
        assert len(cache) == 1500 and cache.get("k0") == {"v": 0}
        assert "unbounded" in cache.stats()["location"]

    def test_runner_parity_cold_and_warm(self, requests, plain_records, tmp_path):
        def stack():
            return TieredCache(
                [MemoryCache(), DirectoryCache(tmp_path / "d")]
            )

        cold = BatchRunner(cache=stack()).run(requests)
        warm = BatchRunner(cache=stack()).run(requests)
        assert all(r.cached for r in warm)
        assert _strip(cold) == _strip(plain_records) == _strip(warm)

    def test_authoritative_tier_answers_introspection(self, tmp_path):
        memory = MemoryCache()
        disk = DirectoryCache(tmp_path / "d")
        disk.put("deep", {"v": 1})
        tiered = TieredCache([memory, disk])
        assert list(tiered.keys()) == ["deep"]
        assert len(tiered) == 1 and "deep" in tiered
        stats = tiered.stats()
        assert stats["backend"] == "tiered" and stats["entries"] == 1
        assert [t["backend"] for t in stats["tiers"]] == ["memory", "dir"]

    def test_get_timing_prefers_metadata_paths(self, tmp_path):
        disk = DirectoryCache(tmp_path / "d")
        disk.put("k", {"v": 1, "wall_time": 0.25})
        tiered = TieredCache([MemoryCache(), disk])
        assert tiered.get_timing("k") == 0.25
        assert tiered.get_timings(["k", "nope"]) == {"k": 0.25}

    def test_empty_tier_list_rejected(self):
        with pytest.raises(InvalidParameterError, match="at least one"):
            TieredCache([])


class TestWorkStealing:
    """Tentpole: claim-driven execution merges to the unsharded run."""

    def test_in_process_claims_partition_exactly_once(self):
        table = InProcessClaimTable(5)
        assert table.claim(2) == [0, 1]
        assert table.claim() == [2]
        assert table.remaining == 2
        assert table.claim(10) == [3, 4]
        assert table.claim() == []  # drained stays drained
        with pytest.raises(InvalidParameterError, match="count"):
            table.claim(0)
        with pytest.raises(InvalidParameterError, match="total"):
            InProcessClaimTable(-1)

    def test_single_worker_drain_equals_run(self, requests, plain_records):
        runner = BatchRunner()
        pairs = runner.run_stolen(requests, InProcessClaimTable(len(requests)))
        assert [p for p, _ in pairs] == list(range(len(requests)))
        assert _strip([r for _, r in pairs]) == _strip(plain_records)

    def test_two_workers_union_is_the_full_run(
        self, requests, plain_records, tmp_path
    ):
        claims = InProcessClaimTable(len(requests))
        cache = SqliteCache(tmp_path / "c.db")
        results: dict[int, list] = {}

        def worker(slot: int) -> None:
            results[slot] = BatchRunner(cache=cache).run_stolen(
                requests, claims
            )

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = sorted(results[0] + results[1])
        assert [p for p, _ in merged] == list(range(len(requests)))
        assert _strip([r for _, r in merged]) == _strip(plain_records)

    def test_pool_workers_steal_and_match(self, requests, plain_records):
        pairs = BatchRunner(workers=2).run_stolen(
            requests, InProcessClaimTable(len(requests))
        )
        assert _strip([r for _, r in pairs]) == _strip(plain_records)

    def test_warm_cache_streams_hits_without_computing(
        self, requests, tmp_path
    ):
        cache = SqliteCache(tmp_path / "c.db")
        BatchRunner(cache=cache).run(requests)
        runner = BatchRunner(cache=cache)
        pairs = runner.run_stolen(requests, InProcessClaimTable(len(requests)))
        assert all(record.cached for _, record in pairs)
        assert runner.stats.computed == 0
        assert runner.stats.cache_hits == len(requests)

    def test_out_of_range_claims_rejected(self, requests):
        class BrokenTable:
            def claim(self, count: int = 1):
                return [999]

        # a fabric fault, so CacheError (not a parameter error)
        with pytest.raises(CacheError, match="out of sync"):
            BatchRunner().run_stolen(requests, BrokenTable())

    def test_duplicate_claims_rejected(self, requests):
        class DoubleTable:
            def __init__(self):
                self.handed = 0

            def claim(self, count: int = 1):
                self.handed += 1
                return [0] if self.handed <= 2 else []

        with pytest.raises(CacheError, match="twice"):
            BatchRunner().run_stolen(requests, DoubleTable())

    def test_http_claim_table_shares_a_session(self, server):
        first = HttpClaimTable(server.url, "sweep-1", 4)
        second = HttpClaimTable(server.url, "sweep-1", 4)
        assert first.token == second.token
        assert first.claim(3) == [0, 1, 2]
        assert second.claim(3) == [3]
        assert first.claim() == []

    def test_http_claim_total_mismatch_rejected(self, server):
        HttpClaimTable(server.url, "sweep-2", 4)
        with pytest.raises(CacheError, match="different request lists"):
            HttpClaimTable(server.url, "sweep-2", 5)

    def test_claims_against_dead_server_fail_loudly(self):
        with pytest.raises(CacheError, match="unreachable"):
            HttpClaimTable(_dead_url(), "sweep-3", 4)

    def test_malformed_claim_positions_fail_as_claim_faults(self):
        """A version-skewed server handing out non-int positions must
        raise CacheError — not a raw ValueError, and never a silent
        float truncation onto another worker's cell."""

        class SkewedHandler(BaseHTTPRequestHandler):
            def do_POST(self):
                if self.path.endswith("/next"):
                    body = json.dumps(
                        {"positions": ["abc"], "token": "t"}
                    ).encode()
                else:  # claim create
                    body = json.dumps({"token": "t", "total": 4}).encode()
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), SkewedHandler)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        try:
            url = f"http://127.0.0.1:{httpd.server_address[1]}"
            table = HttpClaimTable(url, "skewed", 4)
            with pytest.raises(CacheError, match="failed to hand out"):
                table.claim()
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_steal_has_no_static_assignment(self):
        with pytest.raises(InvalidParameterError, match="dynamic"):
            shard_assignment(4, 2, strategy="steal")


class TestClaimLeases:
    """Claim leases: a claimed-but-unreported cell is reissued after a
    TTL, so one crashed worker cannot strand tail cells."""

    def test_expired_leases_are_reissued(self):
        clock = {"now": 0.0}
        table = InProcessClaimTable(
            3, lease_ttl=10.0, clock=lambda: clock["now"]
        )
        assert table.claim(2) == [0, 1]
        clock["now"] = 5.0
        assert table.claim() == [2]  # leases still healthy: fresh cell
        clock["now"] = 10.5  # positions 0 and 1 expired, 2 still leased
        assert table.claim(5) == [0, 1]
        clock["now"] = 25.0  # everything expired again
        assert table.claim(5) == [0, 1, 2]

    def test_done_positions_are_never_reissued(self):
        clock = {"now": 0.0}
        table = InProcessClaimTable(
            2, lease_ttl=1.0, clock=lambda: clock["now"]
        )
        assert table.claim(2) == [0, 1]
        table.done([0])
        clock["now"] = 100.0
        assert table.claim(5) == [1]  # only the unreported lease returns

    def test_lease_ttl_validation(self):
        for bad in (0.0, -1.0, float("nan"), float("inf"), "soon"):
            with pytest.raises(InvalidParameterError, match="lease_ttl"):
                InProcessClaimTable(3, lease_ttl=bad)
        with pytest.raises(InvalidParameterError, match="done positions"):
            InProcessClaimTable(3, lease_ttl=1.0).done([7])

    def test_no_lease_table_keeps_exactly_once(self):
        table = InProcessClaimTable(2)
        assert table.claim(2) == [0, 1]
        assert table.claim(5) == []  # drained forever, nothing reissued

    def test_kill_one_worker_cells_flow_to_the_survivor(
        self, requests, plain_records, server
    ):
        """A worker that claims cells and dies never reports done; after
        the TTL a healthy worker is handed those cells and the union
        still covers the full grid."""
        total = len(requests)
        crashed = HttpClaimTable(
            server.url, "lease-sweep", total, lease_ttl=0.2
        )
        assert crashed.claim(2) == [0, 1]  # ...and the worker dies here

        survivor = HttpClaimTable(
            server.url, "lease-sweep", total, lease_ttl=0.2
        )
        assert survivor.token == crashed.token
        time.sleep(0.25)  # let the dead worker's leases expire
        runner = BatchRunner()
        pairs = runner.run_stolen(requests, survivor)
        assert [position for position, _ in pairs] == list(range(total))
        assert _strip([r for _, r in pairs]) == _strip(plain_records)

    def test_survivor_waits_out_live_leases_instead_of_draining(
        self, requests, plain_records, server
    ):
        """A worker that exhausts the fresh queue while another worker's
        leases are still live must poll until they expire (or are
        reported done), not exit — otherwise nobody is left claiming
        when a crashed worker's leases lapse."""
        total = len(requests)
        crashed = HttpClaimTable(
            server.url, "lease-wait", total, lease_ttl=0.6
        )
        assert crashed.claim(2) == [0, 1]  # dies holding live leases
        survivor = HttpClaimTable(
            server.url, "lease-wait", total, lease_ttl=0.6
        )
        start = time.monotonic()
        pairs = BatchRunner().run_stolen(requests, survivor)  # no sleep!
        assert [position for position, _ in pairs] == list(range(total))
        assert _strip([r for _, r in pairs]) == _strip(plain_records)
        # It must have outlived the crashed worker's lease to get 0/1.
        assert time.monotonic() - start >= 0.3

    def test_no_done_traffic_without_leases(self, requests):
        class SpyTable(InProcessClaimTable):
            def __init__(self, total):
                super().__init__(total)
                self.done_calls = 0

            def done(self, positions):
                self.done_calls += 1
                super().done(positions)

        table = SpyTable(len(requests))
        BatchRunner().run_stolen(requests, table)
        assert table.done_calls == 0  # lease-less: historical protocol

    def test_lease_policy_mismatch_rejected(self, server):
        HttpClaimTable(server.url, "lease-policy", 4, lease_ttl=5.0)
        with pytest.raises(CacheError, match="rejected this worker"):
            HttpClaimTable(server.url, "lease-policy", 4)
        with pytest.raises(CacheError, match="rejected this worker"):
            HttpClaimTable(server.url, "lease-policy", 4, lease_ttl=9.0)

    def test_done_reports_survive_restartless_rejoin(self, server):
        """Reported cells stay retired for the server's lifetime: a
        worker rejoining the session is not handed finished work."""
        first = HttpClaimTable(server.url, "lease-rejoin", 2, lease_ttl=0.05)
        assert first.claim(2) == [0, 1]
        first.done([0, 1])
        time.sleep(0.1)
        rejoined = HttpClaimTable(
            server.url, "lease-rejoin", 2, lease_ttl=0.05
        )
        assert rejoined.claim(5) == []

    def test_http_done_validates_positions(self, server):
        table = HttpClaimTable(server.url, "lease-valid", 3, lease_ttl=1.0)
        with pytest.raises(InvalidParameterError, match="done positions"):
            table.done([5])
        with pytest.raises(InvalidParameterError, match="done positions"):
            table.done([True])

    def test_own_expired_lease_is_not_recomputed(self, requests, plain_records):
        """A worker slower than its own lease gets its cells handed back
        by the table; it must skip them, not duplicate them."""
        table = InProcessClaimTable(
            len(requests), lease_ttl=1e-9
        )  # every lease expires effectively immediately
        runner = BatchRunner(workers=2)
        pairs = runner.run_stolen(requests, table)
        assert [position for position, _ in pairs] == list(
            range(len(requests))
        )
        assert _strip([r for _, r in pairs]) == _strip(plain_records)

    def test_cli_rejects_lease_without_steal(self, tmp_path):
        from repro.io.cli import main

        code = main(
            [
                "sweep",
                "poisson",
                "-n",
                "4",
                "--seeds",
                "0",
                "--lease-ttl",
                "5",
                "--json",
                str(tmp_path / "out.json"),
            ]
        )
        assert code == 2  # InvalidParameterError surfaced as exit 2


class TestSqliteConcurrency:
    """Satellite bugfix: SQLITE_BUSY retries instead of crashing."""

    def test_busy_errors_retry_with_backoff(self, tmp_path, monkeypatch):
        import sqlite3

        cache = SqliteCache(tmp_path / "c.db")
        real_connect = cache._connect
        conn = real_connect()
        failures = {"left": 3}
        naps: list[float] = []

        class FlakyConn:
            def execute(self, *args, **kwargs):
                if failures["left"] > 0 and args[0].startswith("INSERT"):
                    failures["left"] -= 1
                    raise sqlite3.OperationalError("database is locked")
                return conn.execute(*args, **kwargs)

            def __enter__(self):
                return conn.__enter__()

            def __exit__(self, *exc):
                return conn.__exit__(*exc)

        monkeypatch.setattr(cache, "_connect", lambda: FlakyConn())
        monkeypatch.setattr(time, "sleep", naps.append)
        cache.put("k", {"v": 1})
        assert failures["left"] == 0 and cache.get("k") == {"v": 1}
        assert naps == sorted(naps) and len(naps) == 3  # growing backoff

    def test_non_busy_errors_surface_immediately(self, tmp_path, monkeypatch):
        import sqlite3

        cache = SqliteCache(tmp_path / "c.db")

        class BrokenConn:
            def execute(self, *args, **kwargs):
                raise sqlite3.OperationalError("no such table: entries")

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        monkeypatch.setattr(cache, "_connect", lambda: BrokenConn())
        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            cache.put("k", {"v": 1})

    def test_two_processes_hammering_put(self, tmp_path):
        db = tmp_path / "stress.db"
        script = (
            "import sys\n"
            "from repro.engine import SqliteCache\n"
            "cache = SqliteCache(sys.argv[1], timeout=0.05)\n"
            "prefix = sys.argv[2]\n"
            "for i in range(120):\n"
            "    cache.put(f'{prefix}-{i}', {'v': i, 'wall_time': 0.001})\n"
            "cache.close()\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(db), f"w{n}"],
                stderr=subprocess.PIPE,
            )
            for n in range(2)
        ]
        for proc in procs:
            _, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, stderr.decode()
        cache = SqliteCache(db)
        assert len(cache) == 240
        cache.close()


class TestDirectoryCacheTimingIndex:
    """Satellite perf fix: cost estimation reads metadata, not payloads."""

    def test_put_writes_sidecar_and_get_timing_reads_it(self, tmp_path):
        cache = DirectoryCache(tmp_path / "c")
        cache.put("k", {"v": 1, "wall_time": 0.5})
        sidecar = tmp_path / "c" / "k.timing"
        assert sidecar.read_text() == "0.5"
        assert cache.get_timing("k") == 0.5
        assert cache.get_timing("missing") is None
        # timing-less payloads write no sidecar and time as None
        cache.put("plain", {"v": 2})
        assert not (tmp_path / "c" / "plain.timing").exists()
        assert cache.get_timing("plain") is None

    def test_pre_sidecar_entries_backfill_lazily(self, tmp_path):
        cache = DirectoryCache(tmp_path / "c")
        # Simulate an entry from a build without sidecars:
        (tmp_path / "c" / "old.json").write_text(
            json.dumps({"v": 1, "wall_time": 0.25})
        )
        assert not (tmp_path / "c" / "old.timing").exists()
        assert cache.get_timing("old") == 0.25
        assert (tmp_path / "c" / "old.timing").read_text() == "0.25"

    def test_sidecars_are_not_entries(self, tmp_path):
        cache = DirectoryCache(tmp_path / "c")
        cache.put("k", {"v": 1, "wall_time": 0.5})
        assert list(cache.keys()) == ["k"] and len(cache) == 1

    def test_estimate_costs_uses_sidecars(self, requests, tmp_path):
        cache = DirectoryCache(tmp_path / "c")
        BatchRunner(cache=cache).run(requests)
        costs = BatchRunner(cache=cache).estimate_costs(requests)
        keys = [request_key(r.algorithm, r.instance) for r in requests]
        assert costs == [cache.get_timing(k) for k in keys]

    def test_gc_prunes_entries_sidecars_and_temps(self, tmp_path):
        import os

        cache = DirectoryCache(tmp_path / "c")
        cache.put("old", {"v": 1, "wall_time": 0.5})
        cache.put("fresh", {"v": 2, "wall_time": 0.5})
        (tmp_path / "c" / ".tmp-stale.json").write_text("x")
        (tmp_path / "c" / "orphan.timing").write_text("1.0")
        ancient = time.time() - 7200
        for name in ("old.json", "old.timing", ".tmp-stale.json"):
            os.utime(tmp_path / "c" / name, (ancient, ancient))
        assert cache.gc(3600.0) == 1
        left = sorted(p.name for p in (tmp_path / "c").iterdir())
        assert left == ["fresh.json", "fresh.timing"]

    def test_stats_counts_entries_bytes_coverage(self, tmp_path):
        cache = DirectoryCache(tmp_path / "c")
        cache.put("a", {"v": 1, "wall_time": 0.5})
        cache.put("b", {"v": 2})
        stats = cache.stats()
        assert stats["backend"] == "dir" and stats["entries"] == 2
        assert stats["timed_entries"] == 1 and stats["total_bytes"] > 0

    def test_sqlite_gc_and_stats(self, tmp_path):
        cache = SqliteCache(tmp_path / "c.db")
        cache.put("k", {"v": 1, "wall_time": 0.5})
        stats = cache.stats()
        assert stats["backend"] == "sqlite"
        assert stats["entries"] == 1 and stats["timed_entries"] == 1
        assert cache.gc(3600.0) == 0
        # pre-timestamp entries (created_at NULL) are prunable
        conn = cache._connect()
        with conn:
            conn.execute(
                "INSERT INTO entries (key, payload) VALUES ('legacy', '{}')"
            )
        assert cache.gc(3600.0) == 1
        assert cache.gc(0.0) == 1 and len(cache) == 0
        cache.close()

    def test_backend_stats_fallback(self):
        class Minimal:
            def get(self, key):
                return None

            def put(self, key, payload):
                pass

            def __len__(self):
                return 0

        stats = backend_stats(Minimal())
        assert stats == {"backend": "Minimal", "entries": 0}


class TestCacheCli:
    """Satellite: the `cache` subcommand and the steal sweep, end to end."""

    BASE = [
        "sweep", "poisson", "-n", "4", "--alphas", "3.0", "--ms", "1",
        "--algorithms", "pd", "--seeds", "0,1",
    ]

    def test_steal_sweep_merges_byte_identical(self, tmp_path, capsys):
        from repro.io.cli import main

        backend = MemoryCache()
        srv = CacheServer(backend).start()
        try:
            full = str(tmp_path / "full.json")
            assert main(self.BASE + ["--json", full]) == 0
            shards = [str(tmp_path / f"s{i}.json") for i in range(2)]
            for index, shard_path in enumerate(shards):
                argv = self.BASE + [
                    "--shard", f"{index}/2", "--shard-strategy", "steal",
                    "--cache-backend", "http", "--cache-url", srv.url,
                    "--json", shard_path,
                ]
                assert main(argv) == 0
            merged = str(tmp_path / "merged.json")
            assert main(
                ["sweep", "--merge", *shards, "--json", merged]
            ) == 0
            capsys.readouterr()
            with open(full, "rb") as a, open(merged, "rb") as b:
                assert a.read() == b.read()
            # both shard files carry the same claim-session token
            tokens = {
                json.load(open(path))["assignment"] for path in shards
            }
            assert len(tokens) == 1
        finally:
            srv.stop()

    def test_claim_session_label_allows_reruns(self, tmp_path, capsys):
        """A finished sweep's claim table is drained for the server's
        lifetime; a fresh --claim-session label re-runs it (warm from
        cache) without a server restart."""
        from repro.io.cli import main

        backend = MemoryCache()
        srv = CacheServer(backend).start()
        try:
            first = self.BASE + [
                "--shard", "0/1", "--shard-strategy", "steal",
                "--cache-backend", "http", "--cache-url", srv.url,
                "--json", str(tmp_path / "a.json"),
            ]
            assert main(first) == 0
            assert "2 computed" in capsys.readouterr().out
            # same invocation again: drained table, zero records
            assert main(first[:-1] + [str(tmp_path / "b.json")]) == 0
            assert "0 records" in capsys.readouterr().out
            # fresh session label: full run again, now all cache hits
            rerun = first[:-1] + [
                str(tmp_path / "c.json"), "--claim-session", "take2",
            ]
            assert main(rerun) == 0
            assert "2 from cache" in capsys.readouterr().out
            with open(tmp_path / "a.json") as a, open(tmp_path / "c.json") as c:
                first_records = json.load(a)
                rerun_records = json.load(c)
            assert first_records["positions"] == rerun_records["positions"]
            assert first_records["assignment"] != rerun_records["assignment"]
        finally:
            srv.stop()

    def test_steal_merge_tolerates_reissued_duplicates(
        self, tmp_path, capsys
    ):
        """Lease reissue makes steal claiming at-least-once: a slow
        worker and the reissue's recipient can both record one cell.
        The merge keeps one copy (differing only in cached/wall_time
        bookkeeping) instead of failing the whole sweep."""
        from repro.io.cli import main

        backend = MemoryCache()
        srv = CacheServer(backend).start()
        try:
            full = str(tmp_path / "full.json")
            assert main(self.BASE + ["--json", full]) == 0
            shards = [str(tmp_path / f"s{i}.json") for i in range(2)]
            for index, shard_path in enumerate(shards):
                argv = self.BASE + [
                    "--shard", f"{index}/2", "--shard-strategy", "steal",
                    "--cache-backend", "http", "--cache-url", srv.url,
                    "--json", shard_path,
                ]
                assert main(argv) == 0
        finally:
            srv.stop()
        donor, receiver = (json.load(open(path)) for path in shards)
        stolen_position = donor["positions"][0]
        twin = dict(donor["records"][0])
        twin["cached"] = not twin["cached"]  # recomputed elsewhere
        twin["wall_time"] = 123.456  # on a different machine
        receiver["positions"].append(stolen_position)
        receiver["records"].append(twin)
        json.dump(receiver, open(shards[1], "w"))
        merged = str(tmp_path / "merged.json")
        assert main(["sweep", "--merge", *shards, "--json", merged]) == 0
        assert "duplicate record" in capsys.readouterr().err
        with open(full, "rb") as a, open(merged, "rb") as b:
            assert a.read() == b.read()
        # A duplicate with a *different result* is corruption, not a
        # reissue — that still fails loudly.
        twin["cost"] = twin["cost"] + 1.0
        json.dump(receiver, open(shards[1], "w"))
        assert main(["sweep", "--merge", *shards]) == 2
        assert "different results" in capsys.readouterr().err

    def test_steal_merge_detects_tail_holes(self, tmp_path, capsys):
        """Cells a dead worker claimed but never computed must fail the
        merge even when they are the *last* grid positions — a record-
        count sum alone would accept the dense prefix silently."""
        from repro.io.cli import main

        backend = MemoryCache()
        srv = CacheServer(backend).start()
        try:
            shards = [str(tmp_path / f"s{i}.json") for i in range(2)]
            for index, shard_path in enumerate(shards):
                argv = self.BASE + [
                    "--shard", f"{index}/2", "--shard-strategy", "steal",
                    "--cache-backend", "http", "--cache-url", srv.url,
                    "--json", shard_path,
                ]
                assert main(argv) == 0
        finally:
            srv.stop()
        # Simulate the crash: whichever shard owns the last position
        # loses it (claimed, never computed, never re-issued).
        owner = max(shards, key=lambda p: json.load(open(p))["positions"] or [-1])
        payload = json.load(open(owner))
        payload["positions"] = payload["positions"][:-1]
        payload["records"] = payload["records"][:-1]
        json.dump(payload, open(owner, "w"))
        assert main(["sweep", "--merge", *shards]) == 2
        assert "claimed but never computed" in capsys.readouterr().err

    def test_steal_shards_from_different_sessions_rejected(
        self, tmp_path, capsys
    ):
        from repro.io.cli import main

        shards = [str(tmp_path / f"s{i}.json") for i in range(2)]
        for index, shard_path in enumerate(shards):
            backend = MemoryCache()
            srv = CacheServer(backend).start()  # fresh server per worker
            try:
                argv = self.BASE + [
                    "--shard", f"{index}/2", "--shard-strategy", "steal",
                    "--cache-backend", "http", "--cache-url", srv.url,
                    "--json", shard_path,
                ]
                assert main(argv) == 0
            finally:
                srv.stop()
        assert main(["sweep", "--merge", *shards]) == 2
        assert "different claim sessions" in capsys.readouterr().err

    def test_steal_requires_url_and_shard(self, capsys):
        from repro.io.cli import main

        assert main(self.BASE + ["--shard-strategy", "steal"]) == 2
        assert "--cache-url" in capsys.readouterr().err
        assert main(
            self.BASE
            + ["--shard-strategy", "steal", "--cache-url", "http://x"]
        ) == 2
        assert "--shard" in capsys.readouterr().err

    def test_cache_stats_and_gc_local(self, tmp_path, capsys):
        from repro.io.cli import main

        cache_dir = str(tmp_path / "c")
        DirectoryCache(cache_dir).put("k", {"v": 1, "wall_time": 0.5})
        assert main(["cache", "stats", "--cache", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "backend        : dir" in out
        assert "entries        : 1" in out
        assert "timing coverage: 1/1" in out
        assert main(
            ["cache", "gc", "--cache", cache_dir, "--older-than", "0s"]
        ) == 0
        assert "pruned 1 entries" in capsys.readouterr().out
        assert len(DirectoryCache(cache_dir)) == 0

    def test_cache_stats_over_http(self, server, capsys):
        from repro.io.cli import main

        HttpCache(server.url).put("k", {"v": 1})
        argv = [
            "cache", "stats",
            "--cache-backend", "http", "--cache-url", server.url,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "http(memory)" in out and "entries        : 1" in out

    def test_cache_requires_a_target(self, capsys):
        from repro.io.cli import main

        assert main(["cache", "stats"]) == 2
        assert "--cache" in capsys.readouterr().err

    def test_cache_maintenance_refuses_missing_paths(self, tmp_path, capsys):
        """stats/gc on a typo'd path must error, not create an empty
        store and report '0 entries' for a populated cache elsewhere."""
        from repro.io.cli import main

        typo = str(tmp_path / "resluts.db")
        argv = ["cache", "stats", "--cache", typo, "--cache-backend", "sqlite"]
        assert main(argv) == 2
        assert "no cache at" in capsys.readouterr().err
        assert not (tmp_path / "resluts.db").exists()  # nothing created
        argv = ["cache", "gc", "--cache", typo, "--older-than", "1d"]
        assert main(argv) == 2
        assert "no cache at" in capsys.readouterr().err

    def test_bad_older_than_rejected(self, tmp_path, capsys):
        from repro.io.cli import main

        cache_dir = str(tmp_path / "c")
        DirectoryCache(cache_dir)
        argv = ["cache", "gc", "--cache", cache_dir, "--older-than", "soon"]
        assert main(argv) == 2
        assert "--older-than" in capsys.readouterr().err

    def test_age_suffixes(self):
        from repro.io.cli import _parse_age

        assert _parse_age("90") == 90.0
        assert _parse_age("2m") == 120.0
        assert _parse_age("1h") == 3600.0
        assert _parse_age("30d") == 30 * 86400.0
        for bad in ("-5", "nan", "inf", "nand"):
            with pytest.raises(InvalidParameterError):
                _parse_age(bad)

    def test_http_backend_needs_url_and_rejects_path(self, capsys):
        from repro.io.cli import main

        assert main(self.BASE + ["--cache-backend", "http"]) == 2
        assert "--cache-url" in capsys.readouterr().err
        argv = self.BASE + [
            "--cache-backend", "http", "--cache-url", "http://x",
            "--cache", "somewhere",
        ]
        assert main(argv) == 2
        assert "tiered" in capsys.readouterr().err

    def test_memory_backend_rejects_a_path(self, capsys):
        from repro.io.cli import main

        argv = self.BASE + [
            "--cache", "somewhere", "--cache-backend", "memory",
        ]
        assert main(argv) == 2
        assert "silently ignore" in capsys.readouterr().err
        # without a path it is a legitimate transient cache
        assert main(self.BASE + ["--cache-backend", "memory"]) == 0
        capsys.readouterr()

    def test_tiered_backend_sweeps_and_caches(self, tmp_path, capsys):
        from repro.io.cli import main

        backend = MemoryCache()
        srv = CacheServer(backend).start()
        try:
            argv = self.BASE + [
                "--cache", str(tmp_path / "local"),
                "--cache-backend", "tiered", "--cache-url", srv.url,
            ]
            assert main(argv) == 0
            assert "2 cells computed" in capsys.readouterr().out
            assert len(backend) == 2  # write-through reached the remote
            # a second run against only the local tier is fully warm
            assert main(argv) == 0
            assert "2 served from cache" in capsys.readouterr().out
        finally:
            srv.stop()
