"""Unit tests for the instance perturbation operators."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.model.job import Job
from repro.workloads import poisson_instance
from repro.workloads.perturb import (
    add_job,
    drop_job,
    jitter_values,
    shift_time,
    tighten_deadlines,
)


@pytest.fixture
def inst():
    return poisson_instance(6, m=2, alpha=3.0, seed=0)


class TestShiftTime:
    def test_shift_preserves_spans(self, inst):
        shifted = shift_time(inst, 5.0)
        for a, b in zip(inst.jobs, shifted.jobs):
            assert b.release == pytest.approx(a.release + 5.0)
            assert b.span == pytest.approx(a.span)
            assert b.workload == a.workload and b.value == a.value

    def test_negative_shift_guard(self, inst):
        with pytest.raises(InvalidParameterError):
            shift_time(inst, -1e9)

    def test_zero_shift_identity(self, inst):
        assert shift_time(inst, 0.0).jobs == inst.jobs


class TestJitterValues:
    def test_deterministic(self, inst):
        a = jitter_values(inst, rel=0.2, seed=1)
        b = jitter_values(inst, rel=0.2, seed=1)
        assert a.jobs == b.jobs

    def test_bounded(self, inst):
        jittered = jitter_values(inst, rel=0.1, seed=2)
        for a, b in zip(inst.jobs, jittered.jobs):
            assert 0.9 * a.value - 1e-12 <= b.value <= 1.1 * a.value + 1e-12

    def test_rel_validation(self, inst):
        with pytest.raises(InvalidParameterError):
            jitter_values(inst, rel=1.0)


class TestAddDrop:
    def test_add(self, inst):
        bigger = add_job(inst, Job(0.0, 1.0, 1.0, 1.0))
        assert bigger.n == inst.n + 1
        assert bigger.jobs[:-1] == inst.jobs

    def test_drop(self, inst):
        smaller = drop_job(inst, 2)
        assert smaller.n == inst.n - 1
        assert inst.jobs[2] not in smaller.jobs or inst.jobs.count(inst.jobs[2]) > 1

    def test_drop_bounds(self, inst):
        with pytest.raises(InvalidParameterError):
            drop_job(inst, inst.n)

    def test_drop_last_job_guard(self):
        single = poisson_instance(1, seed=0)
        with pytest.raises(InvalidParameterError):
            drop_job(single, 0)


class TestTightenDeadlines:
    def test_factor_applies_to_span(self, inst):
        tight = tighten_deadlines(inst, 0.5)
        for a, b in zip(inst.jobs, tight.jobs):
            assert b.span == pytest.approx(0.5 * a.span)
            assert b.release == a.release

    def test_factor_one_identity(self, inst):
        assert tighten_deadlines(inst, 1.0).jobs == inst.jobs

    def test_factor_validation(self, inst):
        with pytest.raises(InvalidParameterError):
            tighten_deadlines(inst, 0.0)
        with pytest.raises(InvalidParameterError):
            tighten_deadlines(inst, 1.5)
