"""Tests for OA, AVR, BKP, qOA — the classical online algorithms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.classical import (
    run_avr,
    run_bkp,
    run_oa,
    run_oa_multiprocessor,
    run_qoa,
    yds,
)
from repro.classical.bkp import bkp_speed
from repro.classical.qoa import default_q
from repro.errors import InvalidParameterError
from repro.model.job import Instance
from repro.offline.convex import solve_min_energy
from repro.workloads import lower_bound_instance, pd_cost_closed_form


def random_classical(n: int, seed: int, alpha: float = 3.0, m: int = 1) -> Instance:
    rng = np.random.default_rng(seed)
    rows = []
    t = 0.0
    for _ in range(n):
        t += float(rng.uniform(0.0, 1.0))
        span = float(rng.uniform(0.5, 3.0))
        rows.append((t, t + span, float(rng.uniform(0.2, 2.0))))
    return Instance.classical(rows, m=m, alpha=alpha)


class TestOA:
    def test_single_job_is_optimal(self):
        inst = Instance.classical([(0.0, 2.0, 4.0)], alpha=3.0)
        result = run_oa(inst)
        assert result.energy == pytest.approx(yds(inst).energy, rel=1e-9)

    def test_finishes_all_jobs(self):
        inst = random_classical(10, seed=0)
        result = run_oa(inst)
        result.schedule.validate()
        assert result.schedule.finished.all()
        np.testing.assert_allclose(
            result.schedule.work_done(), inst.sorted_by_release().workloads, rtol=1e-6
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_oa_between_optimal_and_competitive_bound(self, seed):
        inst = random_classical(8, seed=seed)
        opt = yds(inst).energy
        oa = run_oa(inst).energy
        alpha = inst.alpha
        assert opt - 1e-9 <= oa <= alpha**alpha * opt * (1.0 + 1e-6)

    def test_oa_matches_lower_bound_closed_form(self):
        """On the BKP adversarial family OA's cost has a known closed form."""
        n, alpha = 10, 3.0
        inst = lower_bound_instance(n, alpha)
        result = run_oa(inst)
        assert result.energy == pytest.approx(pd_cost_closed_form(n, alpha), rel=1e-7)

    def test_rejects_multiprocessor_instance(self):
        with pytest.raises(InvalidParameterError):
            run_oa(Instance.classical([(0.0, 1.0, 1.0)], m=2))

    def test_oa_no_arrivals_after_start_is_optimal(self):
        """With all releases at time 0 OA never revises: it IS optimal."""
        inst = Instance.classical(
            [(0.0, 1.0, 1.0), (0.0, 2.0, 1.0), (0.0, 4.0, 2.0)], alpha=3.0
        )
        assert run_oa(inst).energy == pytest.approx(yds(inst).energy, rel=1e-9)


class TestOAMultiprocessor:
    @pytest.mark.parametrize("m", [2, 3])
    def test_finishes_everything(self, m):
        inst = random_classical(6, seed=2, m=m)
        result = run_oa_multiprocessor(inst)
        result.schedule.validate()
        assert result.schedule.finished.all()

    def test_batch_release_matches_offline(self):
        inst = Instance.classical(
            [(0.0, 1.0, 1.0), (0.0, 1.0, 0.6), (0.0, 1.0, 0.3)], m=2, alpha=3.0
        )
        online = run_oa_multiprocessor(inst).energy
        offline = solve_min_energy(inst).energy
        assert online == pytest.approx(offline, rel=1e-5)

    def test_multiproc_cheaper_than_single(self):
        inst1 = random_classical(6, seed=3, m=1)
        inst2 = inst1.with_machine(m=3)
        assert (
            run_oa_multiprocessor(inst2).energy
            <= run_oa(inst1).energy + 1e-9
        )


class TestAVR:
    def test_density_profile(self):
        inst = Instance.classical([(0.0, 2.0, 4.0)], alpha=3.0)
        sched = run_avr(inst)
        # Density 2 over [0,2): energy = 2 * 2^3.
        assert sched.energy == pytest.approx(16.0)

    def test_overlap_adds_densities(self):
        inst = Instance.classical([(0.0, 2.0, 2.0), (0.0, 2.0, 2.0)], alpha=2.0)
        sched = run_avr(inst)
        # Total speed 2 over [0,2): energy 2 * 4 = 8.
        assert sched.energy == pytest.approx(8.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_avr_at_least_optimal(self, seed):
        inst = random_classical(8, seed=seed)
        assert run_avr(inst).energy >= yds(inst).energy - 1e-9

    def test_avr_within_competitive_bound(self):
        # AVR is (2 alpha)^alpha / 2 competitive; check a loose version.
        inst = random_classical(8, seed=11)
        alpha = inst.alpha
        assert run_avr(inst).energy <= ((2 * alpha) ** alpha / 2) * yds(
            inst
        ).energy * (1 + 1e-9)

    def test_avr_valid_on_multiprocessor(self):
        inst = random_classical(8, seed=5, m=3)
        sched = run_avr(inst)
        sched.validate()
        assert sched.finished.all()


class TestBKP:
    def test_speed_formula_single_job(self):
        # One job (0, 1, w): at t=0 the candidate t2=1 gives
        # s = e * w / (e * 1) = w.
        inst = Instance.classical([(0.0, 1.0, 0.7)])
        assert bkp_speed(inst, 0.0) == pytest.approx(0.7)

    def test_finishes_all_jobs(self):
        inst = random_classical(8, seed=1)
        sched = run_bkp(inst)
        sched.validate()
        assert sched.finished.all()

    def test_energy_sane_vs_optimal(self):
        inst = random_classical(8, seed=4)
        opt = yds(inst).energy
        bkp = run_bkp(inst).energy
        alpha = inst.alpha
        bound = 2 * (alpha / (alpha - 1)) ** alpha * math.e**alpha
        assert opt - 1e-9 <= bkp <= bound * opt * 1.1

    def test_discretization_converges(self):
        inst = random_classical(5, seed=9)
        coarse = run_bkp(inst, samples_per_interval=8).energy
        fine = run_bkp(inst, samples_per_interval=64).energy
        assert abs(coarse - fine) / fine < 0.05

    def test_rejects_multiprocessor(self):
        with pytest.raises(InvalidParameterError):
            run_bkp(Instance.classical([(0.0, 1.0, 1.0)], m=2))


class TestQOA:
    def test_default_q(self):
        assert default_q(2.0) == pytest.approx(1.5)
        assert default_q(3.0) == pytest.approx(5.0 / 3.0)

    def test_finishes_all_jobs(self):
        inst = random_classical(8, seed=6)
        sched = run_qoa(inst)
        sched.validate()
        assert sched.finished.all()

    def test_q_one_is_oa(self):
        inst = random_classical(6, seed=8)
        qoa = run_qoa(inst, q=1.0).energy
        oa = run_oa(inst).energy
        assert qoa == pytest.approx(oa, rel=1e-6)

    def test_faster_q_finishes_earlier_with_more_energy_on_batch(self):
        inst = Instance.classical([(0.0, 2.0, 2.0)], alpha=3.0)
        e1 = run_qoa(inst, q=1.0).energy
        e2 = run_qoa(inst, q=2.0).energy
        assert e2 > e1  # running faster than needed wastes energy

    def test_invalid_q(self):
        inst = Instance.classical([(0.0, 1.0, 1.0)])
        with pytest.raises(InvalidParameterError):
            run_qoa(inst, q=0.5)
