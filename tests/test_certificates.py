"""Tests for the dual certificate — the executable form of Theorem 3."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.certificates import contributing_jobs, dual_certificate
from repro.core.pd import run_pd
from repro.errors import CertificateError
from repro.model.job import Instance
from repro.offline import solve_exact
from repro.workloads import (
    batch_instance,
    heavy_tail_instance,
    lower_bound_instance,
    poisson_instance,
    tight_instance,
)


class TestContributingJobs:
    def test_top_m_by_s_hat(self):
        avail = np.array([[True, True], [True, False], [True, True]])
        s_hat = np.array([1.0, 3.0, 2.0])
        phi = contributing_jobs(avail, s_hat, m=2)
        assert phi[0] == (1, 2)  # two largest available
        assert phi[1] == (2, 0)  # job 1 unavailable in interval 1

    def test_zero_s_hat_excluded(self):
        avail = np.array([[True], [True]])
        phi = contributing_jobs(avail, np.array([0.0, 1.0]), m=2)
        assert phi[0] == (1,)

    def test_fewer_jobs_than_m(self):
        avail = np.array([[True]])
        phi = contributing_jobs(avail, np.array([2.0]), m=4)
        assert phi[0] == (0,)


class TestDualCertificate:
    @pytest.mark.parametrize(
        "maker,kwargs",
        [
            (poisson_instance, dict(n=20, m=1, alpha=3.0)),
            (poisson_instance, dict(n=20, m=4, alpha=3.0)),
            (poisson_instance, dict(n=20, m=2, alpha=1.5)),
            (heavy_tail_instance, dict(n=15, m=2, alpha=2.5)),
            (tight_instance, dict(n=15, m=1, alpha=2.0)),
            (batch_instance, dict(n=12, m=4, alpha=3.0)),
        ],
    )
    def test_theorem3_certificate_holds(self, maker, kwargs):
        for seed in range(3):
            inst = maker(seed=seed, **kwargs)
            result = run_pd(inst)
            cert = dual_certificate(result)
            assert cert.holds, (
                f"{maker.__name__} seed={seed}: ratio {cert.ratio} > {cert.bound}"
            )
            cert.require()  # must not raise

    def test_certificate_on_lower_bound_family(self):
        inst = lower_bound_instance(15, 3.0)
        cert = dual_certificate(run_pd(inst))
        assert cert.holds
        # On the adversarial family the ratio should be substantial —
        # this family drives it toward alpha^alpha.
        assert cert.ratio > 2.0

    def test_g_is_lower_bound_on_opt(self):
        """Weak duality: g(lambda~) <= cost(OPT), via exact enumeration."""
        for seed in range(4):
            inst = poisson_instance(7, m=1, alpha=2.0, seed=seed)
            result = run_pd(inst)
            cert = dual_certificate(result)
            opt = solve_exact(inst.sorted_by_release()).cost
            assert cert.g <= opt * (1.0 + 1e-6) + 1e-9

    def test_g_lower_bound_multiprocessor(self):
        for seed in range(3):
            inst = poisson_instance(6, m=2, alpha=2.0, seed=seed)
            result = run_pd(inst)
            cert = dual_certificate(result)
            opt = solve_exact(inst.sorted_by_release()).cost
            assert cert.g <= opt * (1.0 + 1e-6) + 1e-9

    def test_require_raises_on_fabricated_violation(self):
        inst = poisson_instance(5, m=1, alpha=2.0, seed=0)
        cert = dual_certificate(run_pd(inst))
        from dataclasses import replace

        broken = replace(cert, g=cert.cost / (cert.bound * 10.0))
        with pytest.raises(CertificateError):
            broken.require()

    def test_e_lambda_consistency(self):
        """E_lambda(j) = l(j) * s_hat^alpha and x_hat = l(j) s_hat / w."""
        inst = poisson_instance(10, m=2, alpha=3.0, seed=1)
        result = run_pd(inst)
        cert = dual_certificate(result)
        w = result.schedule.instance.workloads
        # Where s_hat > 0, E_lambda / x_hat = w * s_hat^(alpha) / s_hat...
        # verify through the defining identity E = lambda * x_hat / alpha
        # (Proposition 8a).
        mask = cert.x_hat > 1e-12
        np.testing.assert_allclose(
            cert.e_lambda[mask],
            result.lambdas[mask] * cert.x_hat[mask] / 3.0,
            rtol=1e-8,
        )

    def test_accepted_jobs_have_s_hat_from_lambda(self):
        inst = poisson_instance(10, m=1, alpha=3.0, seed=2)
        result = run_pd(inst)
        cert = dual_certificate(result)
        w = result.schedule.instance.workloads
        expected = (result.lambdas / (3.0 * w)) ** 0.5
        np.testing.assert_allclose(cert.s_hat, expected, rtol=1e-10)

    def test_classical_limit_matches_oa_analysis(self):
        """With huge values, g > 0 and ratio <= alpha^alpha still."""
        inst = poisson_instance(12, m=1, alpha=3.0, seed=3)
        classical = inst.with_values([1e15] * inst.n)
        cert = dual_certificate(run_pd(classical))
        assert cert.g > 0
        assert cert.holds
