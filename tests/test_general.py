"""Tests for the generalized power-function substrate (:mod:`repro.general`).

Anchors: :class:`SumPower` must satisfy the PowerFunction protocol to
machine precision (analytic derivative vs finite differences, Newton
inverse vs the derivative); the generalized PD must degenerate *exactly*
to the polynomial run when the mix collapses to one monomial; and the
generalized dual value must respect weak duality on instances whose
optimum has a closed form.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Instance, run_pd
from repro.core.pd import PDScheduler
from repro.errors import InvalidParameterError
from repro.general import (
    SumPower,
    energy_with_power,
    general_dual_bound,
    run_pd_general,
)
from repro.model.power import PolynomialPower
from repro.workloads.random_instances import poisson_instance

SETTINGS = settings(max_examples=50, deadline=None, derandomize=True)

CUBE_LEAK = SumPower([1.0, 0.5], [3.0, 1.0])
DELTA = 3.0 ** (1.0 - 3.0)


# ---------------------------------------------------------------------------
# SumPower protocol compliance
# ---------------------------------------------------------------------------
class TestSumPower:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SumPower([], [])
        with pytest.raises(InvalidParameterError):
            SumPower([1.0], [3.0, 2.0])
        with pytest.raises(InvalidParameterError):
            SumPower([-1.0], [3.0])
        with pytest.raises(InvalidParameterError):
            SumPower([1.0], [0.5])  # concave term
        with pytest.raises(InvalidParameterError):
            SumPower([1.0], [1.0])  # no strictly convex part
        with pytest.raises(InvalidParameterError):
            SumPower([math.inf], [3.0])

    def test_values_and_zero(self):
        p = CUBE_LEAK
        assert p(0.0) == 0.0
        assert p(-1.0) == 0.0
        assert p(2.0) == pytest.approx(8.0 + 1.0)

    def test_marginal_at_zero(self):
        assert CUBE_LEAK.marginal_at_zero == pytest.approx(0.5)
        assert SumPower([2.0], [3.0]).marginal_at_zero == 0.0

    @given(speed=st.floats(min_value=1e-3, max_value=50.0))
    @SETTINGS
    def test_derivative_matches_finite_difference(self, speed):
        p = CUBE_LEAK
        h = 1e-6 * max(speed, 1.0)
        numeric = (p(speed + h) - p(speed - h)) / (2.0 * h)
        assert p.derivative(speed) == pytest.approx(numeric, rel=1e-5)

    @given(
        speed=st.floats(min_value=1e-3, max_value=50.0),
        c_lin=st.sampled_from([0.0, 0.3, 2.0]),
        a_hi=st.sampled_from([1.5, 2.0, 3.0, 4.5]),
    )
    @SETTINGS
    def test_derivative_inverse_roundtrip(self, speed, c_lin, a_hi):
        coeffs = [1.0] + ([c_lin] if c_lin > 0 else [])
        exps = [a_hi] + ([1.0] if c_lin > 0 else [])
        p = SumPower(coeffs, exps)
        marginal = p.derivative(speed)
        assert p.derivative_inverse(marginal) == pytest.approx(speed, rel=1e-8)

    def test_inverse_below_zero_marginal(self):
        p = CUBE_LEAK
        assert p.derivative_inverse(0.0) == 0.0
        # Below the leakage floor P'(0+) = 0.5 there is no positive speed.
        assert p.derivative_inverse(0.4) == 0.0
        assert p.derivative_inverse(0.5) == 0.0

    def test_power_array_matches_scalar(self):
        p = CUBE_LEAK
        speeds = np.linspace(0.0, 5.0, 17)
        assert np.allclose(p.power_array(speeds), [p(float(s)) for s in speeds])

    def test_energy_helper(self):
        assert CUBE_LEAK.energy(2.0, 3.0) == pytest.approx(27.0)
        with pytest.raises(InvalidParameterError):
            CUBE_LEAK.energy(1.0, -1.0)


# ---------------------------------------------------------------------------
# Generalized PD
# ---------------------------------------------------------------------------
class TestRunPDGeneral:
    def test_degenerates_to_polynomial_exactly(self):
        inst = poisson_instance(8, m=2, alpha=3.0, seed=5)
        gen = run_pd_general(inst, SumPower([1.0], [3.0]), delta=DELTA)
        ref = run_pd(inst)
        assert gen.cost == pytest.approx(ref.cost, rel=1e-12)
        assert np.array_equal(gen.accepted_mask, ref.accepted_mask)
        assert np.allclose(gen.lambdas, ref.lambdas)

    def test_requires_delta(self):
        inst = poisson_instance(3, m=1, alpha=3.0, seed=0)
        with pytest.raises(InvalidParameterError):
            run_pd_general(inst, CUBE_LEAK, delta=None)
        with pytest.raises(InvalidParameterError):
            run_pd_general(inst, CUBE_LEAK, delta=0.0)
        with pytest.raises(InvalidParameterError):
            PDScheduler(m=1, alpha=3.0, power=CUBE_LEAK)

    def test_energy_billed_with_general_power(self):
        inst = poisson_instance(6, m=1, alpha=3.0, seed=2)
        gen = run_pd_general(inst, CUBE_LEAK, delta=DELTA)
        assert gen.energy == pytest.approx(
            energy_with_power(gen.schedule, CUBE_LEAK), rel=1e-12
        )
        # Leakage makes every positive-speed segment dearer than the
        # pure cube rule run on the same loads.
        cube_only = energy_with_power(gen.schedule, PolynomialPower(3.0))
        assert gen.energy > cube_only

    def test_leakage_discourages_admission(self):
        """With a heavy linear term, slow-and-long processing is no
        longer nearly free, so borderline jobs flip to rejection."""
        inst = Instance.from_tuples(
            [(0.0, 10.0, 1.0, 0.7)], m=1, alpha=3.0
        )
        no_leak = run_pd_general(inst, SumPower([1.0], [3.0]), delta=DELTA)
        heavy_leak = run_pd_general(
            inst, SumPower([1.0, 20.0], [3.0, 1.0]), delta=DELTA
        )
        assert bool(no_leak.accepted_mask[0])
        assert not bool(heavy_leak.accepted_mask[0])

    def test_summary(self):
        inst = poisson_instance(4, m=1, alpha=3.0, seed=1)
        text = run_pd_general(inst, CUBE_LEAK, delta=DELTA).summary()
        assert "General-power PD" in text and "accepted" in text

    @given(seed=st.integers(min_value=0, max_value=10))
    @SETTINGS
    def test_schedule_valid_random(self, seed):
        inst = poisson_instance(6, m=2, alpha=3.0, seed=seed)
        gen = run_pd_general(inst, CUBE_LEAK, delta=DELTA)
        gen.schedule.validate()
        assert gen.cost >= 0.0


# ---------------------------------------------------------------------------
# Generalized duality
# ---------------------------------------------------------------------------
class TestGeneralDuality:
    def test_matches_polynomial_certificate_when_degenerate(self):
        from repro.analysis.certificates import dual_certificate

        inst = poisson_instance(7, m=2, alpha=3.0, seed=3)
        gen = run_pd_general(inst, SumPower([1.0], [3.0]), delta=DELTA)
        bound = general_dual_bound(gen)
        ref = dual_certificate(run_pd(inst))
        assert bound.g == pytest.approx(ref.g, rel=1e-9)
        assert bound.ratio == pytest.approx(ref.ratio, rel=1e-9)

    def test_weak_duality_single_job_closed_form(self):
        p = CUBE_LEAK
        for span, w, v in [(2.0, 1.5, 3.0), (1.0, 1.0, 0.2), (4.0, 0.5, 50.0)]:
            inst = Instance.from_tuples([(0.0, span, w, v)], m=1, alpha=3.0)
            gen = run_pd_general(inst, p, delta=DELTA)
            bound = general_dual_bound(gen)
            opt = min(v, span * p(w / span))
            assert bound.g <= opt + 1e-9, (span, w, v)
            assert gen.cost <= opt + 1e-6 or gen.cost >= opt  # sanity

    def test_weak_duality_disjoint_jobs_additive(self):
        p = CUBE_LEAK
        rows = [(0.0, 1.0, 0.8, 2.0), (2.0, 3.5, 1.2, 0.3), (5.0, 6.0, 0.5, 9.0)]
        inst = Instance.from_tuples(rows, m=1, alpha=3.0)
        gen = run_pd_general(inst, p, delta=DELTA)
        bound = general_dual_bound(gen)
        opt = sum(min(v, (d - r) * p(w / (d - r))) for r, d, w, v in rows)
        assert bound.g <= opt + 1e-9
        assert gen.cost >= opt - 1e-9  # OPT really is optimal here

    @given(seed=st.integers(min_value=0, max_value=12))
    @SETTINGS
    def test_dual_value_positive_and_ratio_finite(self, seed):
        inst = poisson_instance(6, m=2, alpha=3.0, seed=seed)
        gen = run_pd_general(inst, CUBE_LEAK, delta=DELTA)
        bound = general_dual_bound(gen)
        assert bound.holds
        assert bound.ratio >= 1.0 - 1e-9  # g <= OPT <= cost(PD)
