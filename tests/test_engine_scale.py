"""Tests for the engine's scale-out layer: cache backends, sharding,
and parameterized algorithm variants.

Three guarantees, each load-bearing for distributed reproduction runs:

* **backend parity** — the directory and sqlite caches are
  interchangeable bit for bit, cold or warm;
* **shard parity** — a request list split ``--shard i/k`` style and
  recombined with :func:`merge_shards` equals the unsharded run,
  for any shard count;
* **variant identity** — every spelling of ``pd?delta=...`` resolves to
  one canonical entry with one cache key, the certificate hook intact.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.certificates import dual_certificate
from repro.core.pd import run_pd
from repro.engine import (
    REGISTRY,
    BatchRunner,
    DirectoryCache,
    ExperimentSpec,
    ResultCache,
    RunRecord,
    RunRequest,
    SqliteCache,
    aggregate_records,
    canonical_variant_name,
    merge_shards,
    open_cache,
    parse_variant_name,
    record_from_payload,
    record_to_payload,
    request_key,
    run_experiment,
    shard_requests,
)
from repro.errors import InvalidParameterError
from repro.workloads import poisson_instance


@pytest.fixture(scope="module")
def instance():
    return poisson_instance(5, m=1, alpha=3.0, seed=7)


@pytest.fixture(scope="module")
def requests():
    insts = [poisson_instance(5, m=1, alpha=3.0, seed=s) for s in range(3)]
    return [
        RunRequest(a, i, tag={"seed": s})
        for s, i in enumerate(insts)
        for a in ("pd", "oa", "pd?delta=0.05")
    ]


class TestCacheBackends:
    """Satellite + tentpole: {dir, sqlite} serve bit-identical records."""

    def _backend(self, kind, tmp_path):
        if kind == "dir":
            return DirectoryCache(tmp_path / "cache-dir")
        return SqliteCache(tmp_path / "cache.db")

    @pytest.mark.parametrize("kind", ["dir", "sqlite"])
    def test_cold_warm_parity_against_uncached(self, kind, requests, tmp_path):
        plain = BatchRunner().run(requests)
        cache = self._backend(kind, tmp_path)
        cold = BatchRunner(cache=cache).run(requests)
        warm = BatchRunner(cache=self._backend(kind, tmp_path)).run(requests)
        for record in warm:
            assert record.cached

        def strip(records):  # NaN-safe comparison form (NaN != NaN)
            return [
                (x.algorithm, x.cost, x.energy,
                 None if math.isnan(x.certified_ratio) else x.certified_ratio,
                 x.schedule)
                for x in records
            ]

        assert strip(cold) == strip(plain) == strip(warm)

    def test_dir_and_sqlite_store_identical_payloads(self, requests, tmp_path):
        dcache = DirectoryCache(tmp_path / "d")
        scache = SqliteCache(tmp_path / "s.db")
        BatchRunner(cache=dcache).run(requests)
        BatchRunner(cache=scache).run(requests)
        assert sorted(dcache.keys()) == sorted(scache.keys())
        for key in dcache.keys():
            dpayload, spayload = dcache.get(key), scache.get(key)
            # wall_time is the one *measured* payload field: the two
            # backends stored two separate evaluations of the cell, so
            # their timings legitimately differ. Everything else must
            # be bit-identical.
            assert math.isfinite(dpayload.pop("wall_time"))
            assert math.isfinite(spayload.pop("wall_time"))
            assert dpayload == spayload

    def test_sqlite_len_contains_and_miss(self, instance, tmp_path):
        cache = SqliteCache(tmp_path / "c.db")
        assert len(cache) == 0 and cache.get("nope") is None
        key = request_key("pd", instance)
        BatchRunner(cache=cache).run_one("pd", instance)
        assert len(cache) == 1 and key in cache and "nope" not in cache
        assert list(cache.keys()) == [key]

    def test_sqlite_corrupt_entry_is_a_miss(self, instance, tmp_path):
        cache = SqliteCache(tmp_path / "c.db")
        key = request_key("pd", instance)
        cache._connect().execute(
            "INSERT INTO entries (key, payload) VALUES (?, '{not json')", (key,)
        )
        cache._connect().commit()
        assert cache.get(key) is None
        record = BatchRunner(cache=cache).run_one("pd", instance)
        assert not record.cached
        assert cache.get(key) is not None  # rewritten cleanly

    def test_sqlite_put_is_idempotent_under_rewrites(self, tmp_path):
        cache = SqliteCache(tmp_path / "c.db")
        cache.put("k", {"v": 1})
        cache.put("k", {"v": 1})
        assert len(cache) == 1 and cache.get("k") == {"v": 1}

    def test_open_cache_factory(self, tmp_path):
        assert isinstance(open_cache(tmp_path / "d", "dir"), DirectoryCache)
        assert isinstance(open_cache(tmp_path / "s.db", "sqlite"), SqliteCache)
        with pytest.raises(InvalidParameterError, match="unknown cache backend"):
            open_cache(tmp_path / "x", "redis")

    def test_result_cache_alias_preserved(self):
        assert ResultCache is DirectoryCache

    def test_runner_rejects_non_backend(self):
        with pytest.raises(InvalidParameterError, match="CacheBackend"):
            BatchRunner(cache=42)


class TestDirectoryCacheTempFiles:
    """Satellite bugfix: ``.tmp-*.json`` files are not cache entries."""

    def test_len_and_keys_exclude_temp_files(self, instance, tmp_path):
        cache = DirectoryCache(tmp_path / "c")
        BatchRunner(cache=cache).run_one("pd", instance)
        # An in-flight (or orphaned) temp file appears mid-operation:
        (tmp_path / "c" / ".tmp-orphan.json").write_text("{}")
        assert len(cache) == 1  # glob('*.json') alone would say 2
        assert list(cache.keys()) == [request_key("pd", instance)]

    def test_stale_temp_files_swept_on_init(self, tmp_path):
        import os
        import time

        directory = tmp_path / "c"
        directory.mkdir()
        for name in (".tmp-killed-writer.json", ".tmp-other"):
            (directory / name).write_text("x")
            ancient = time.time() - 7200  # well past the staleness gate
            os.utime(directory / name, (ancient, ancient))
        (directory / ".tmp-live-writer.json").write_text("x")  # fresh
        DirectoryCache(directory)
        leftovers = sorted(p.name for p in directory.iterdir())
        # orphans gone; a live writer's fresh temp file is left alone
        assert leftovers == [".tmp-live-writer.json"]

    def test_put_retries_when_tmp_file_is_stolen(self, tmp_path, monkeypatch):
        import os

        cache = DirectoryCache(tmp_path / "c")
        real_replace = os.replace
        stolen = {"count": 0}

        def stealing_replace(src, dst):
            if stolen["count"] == 0:
                stolen["count"] += 1
                os.unlink(src)  # a racing cleaner deletes the temp file
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", stealing_replace)
        cache.put("k", {"v": 1})
        assert stolen["count"] == 1 and cache.get("k") == {"v": 1}

    def test_real_entries_survive_the_sweep(self, instance, tmp_path):
        cache = DirectoryCache(tmp_path / "c")
        record = BatchRunner(cache=cache).run_one("pd", instance)
        again = DirectoryCache(tmp_path / "c")
        assert len(again) == 1
        assert again.get(record.key) is not None


class TestSharding:
    """Tentpole: deterministic shards recombine into the unsharded run."""

    @pytest.mark.parametrize("count", [1, 2, 4])
    def test_shards_merge_to_unsharded_records(self, count, requests):
        full = BatchRunner().run(requests)
        shards = [
            BatchRunner().run(requests, shard=(index, count))
            for index in range(count)
        ]
        assert merge_shards(shards) == full

    @pytest.mark.parametrize("count", [2, 4])
    def test_shards_partition_the_request_list(self, count, requests):
        slices = [shard_requests(requests, (i, count)) for i in range(count)]
        assert sum(len(s) for s in slices) == len(requests)
        interleaved = [
            slices[pos % count][pos // count] for pos in range(len(requests))
        ]
        assert interleaved == list(requests)

    def test_sharded_runs_share_a_cache(self, requests, tmp_path):
        cache = SqliteCache(tmp_path / "c.db")
        for index in range(2):
            BatchRunner(cache=cache).run(requests, shard=(index, 2))
        warm = BatchRunner(cache=cache).run(requests)
        assert all(r.cached for r in warm)

    def test_invalid_shards_rejected(self, requests):
        runner = BatchRunner()
        for bad in [(2, 2), (-1, 2), (0, 0), ("0", 2), (1,)]:
            with pytest.raises(InvalidParameterError):
                runner.run(requests, shard=bad)

    def test_merge_validates_shapes(self, requests):
        shards = [
            BatchRunner().run(requests, shard=(index, 2)) for index in range(2)
        ]
        with pytest.raises(InvalidParameterError, match="expected"):
            merge_shards([shards[0], shards[1][:-1]])
        with pytest.raises(InvalidParameterError, match="at least one"):
            merge_shards([])
        # shards passed in the wrong order have the wrong shapes too
        # (unless n is a multiple of k — then contents still differ, so
        # only shape errors are promised here)
        if len(shards[0]) != len(shards[1]):
            with pytest.raises(InvalidParameterError):
                merge_shards([shards[1], shards[0]])

    def test_record_payload_roundtrip(self, requests):
        for record in BatchRunner().run(requests[:3]):
            back = record_from_payload(record_to_payload(record))
            assert back == record
        with pytest.raises(InvalidParameterError, match="run-record"):
            record_from_payload({"kind": "sweep"})
        bad = record_to_payload(BatchRunner().run(requests[:1])[0])
        bad["record"] = -1
        with pytest.raises(InvalidParameterError, match="versions"):
            record_from_payload(bad)


class TestVariantSpecs:
    """Tentpole: ``base?key=value`` names are first-class entries."""

    def test_parse_and_canonical_roundtrip(self):
        assert parse_variant_name("pd") == ("pd", {})
        assert parse_variant_name("pd?delta=0.05") == ("pd", {"delta": "0.05"})
        base, raw = parse_variant_name("pd-aug?epsilon=0.3&delta=0.01")
        assert base == "pd-aug" and raw == {"epsilon": "0.3", "delta": "0.01"}
        assert (
            canonical_variant_name("pd-aug", {"epsilon": 0.3, "delta": 0.01})
            == "pd-aug?delta=0.01&epsilon=0.3"  # sorted keys
        )

    def test_malformed_specs_rejected(self):
        for bad in ["pd?", "?delta=1", "pd?delta", "pd?=1", "pd?delta=",
                    "pd?delta=1&delta=2"]:
            with pytest.raises(InvalidParameterError):
                REGISTRY.info(bad)

    def test_unknown_param_and_base_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown parameter"):
            REGISTRY.info("pd?gamma=1")
        with pytest.raises(InvalidParameterError, match="unknown algorithm"):
            REGISTRY.info("nope?delta=1")
        with pytest.raises(
            InvalidParameterError, match="no variant parameters"
        ):
            REGISTRY.info("oa?delta=1")
        with pytest.raises(InvalidParameterError, match="bad value"):
            REGISTRY.info("pd?delta=tiny")

    def test_spellings_canonicalize_to_one_key(self, instance):
        key = request_key("pd?delta=0.05", instance)
        assert key == request_key("pd?delta=5e-2", instance)
        assert key == request_key("pd?delta=0.050", instance)
        assert key != request_key("pd", instance)
        assert key != request_key("pd?delta=0.06", instance)

    def test_variant_runs_with_working_certificate(self, instance):
        record = BatchRunner().run_one("pd?delta=0.05", instance)
        direct = run_pd(instance, delta=0.05)
        cert = dual_certificate(direct)
        assert record.algorithm == "pd?delta=0.05"
        assert record.cost == direct.schedule.cost
        assert record.certified_ratio == float(cert.ratio)
        assert record.dual_g == float(cert.g)

    def test_variant_capabilities_inherit_from_base(self):
        info = REGISTRY.info("pd?delta=0.05")
        assert info.base == "pd" and dict(info.params) == {"delta": 0.05}
        assert info.capabilities() == REGISTRY.info("pd").capabilities()
        assert "pd?delta=0.05" in REGISTRY and "pd?gamma=1" not in REGISTRY
        assert "pd?delta=0.05" not in REGISTRY.names()  # names stay base-only

    def test_variant_cells_parallelize(self, instance):
        reqs = [
            RunRequest(f"pd?delta={d!r}", instance) for d in (0.01, 0.05, 0.2)
        ]
        serial = BatchRunner(workers=1).run(reqs)
        parallel = BatchRunner(workers=2).run(reqs)
        assert serial == parallel

    def test_pd_aug_epsilon_variant(self, instance):
        base = BatchRunner().run_one("pd-aug", instance)
        more = BatchRunner().run_one("pd-aug?epsilon=0.3", instance)
        assert more.energy < base.energy  # more speed, cheaper schedule
        assert math.isfinite(more.certified_ratio)


class TestExperimentVariantsAxis:
    def test_variants_axis_matches_manual_specs(self):
        shared = dict(
            family=poisson_instance, grid={"alpha": [3.0]}, n=5, seeds=(0, 1)
        )
        axis = run_experiment(
            ExperimentSpec(
                name="t", algorithms=("pd",), variants={"delta": [0.01, 0.05]},
                **shared,
            )
        )
        manual = run_experiment(
            ExperimentSpec(
                name="t", algorithms=("pd?delta=0.01", "pd?delta=0.05"),
                **shared,
            )
        )
        assert [c.algorithm for c in axis] == [c.algorithm for c in manual]
        assert [c.mean_cost for c in axis] == [c.mean_cost for c in manual]
        assert [c.params["delta"] for c in axis] == [0.01, 0.05]

    def test_variant_axis_clash_with_inline_param_rejected(self):
        spec = ExperimentSpec(
            name="t", family=poisson_instance,
            algorithms=("pd?delta=0.1",), variants={"delta": [0.2]},
        )
        with pytest.raises(InvalidParameterError, match="clashes"):
            spec.requests()

    def test_reserved_axis_names_rejected(self):
        for axis in ("grid", "variants"):
            for name in ("seed", "n"):
                with pytest.raises(InvalidParameterError, match="reserved"):
                    ExperimentSpec(
                        name="t", family=poisson_instance, **{axis: {name: [1]}}
                    )

    def test_grid_variant_axis_collision_rejected(self):
        with pytest.raises(InvalidParameterError, match="both grid"):
            ExperimentSpec(
                name="t", family=poisson_instance,
                grid={"x": [1]}, variants={"x": [2]},
            )

    def test_empty_axis_values_rejected(self):
        for axes in ({"grid": {"alpha": []}}, {"variants": {"delta": []}}):
            with pytest.raises(InvalidParameterError, match="no values"):
                ExperimentSpec(name="t", family=poisson_instance, **axes)

    def test_inline_specs_canonicalize_and_tag_params(self):
        cells = run_experiment(
            ExperimentSpec(
                name="t", family=poisson_instance,
                algorithms=("pd?delta=5e-2",), n=5, seeds=(0,),
            )
        )
        (cell,) = cells
        assert cell.algorithm == "pd?delta=0.05"  # canonical spelling
        assert cell.params == {"delta": 0.05}     # inline knob surfaces

    def test_duplicate_effective_algorithms_rejected(self):
        spec = ExperimentSpec(
            name="t", family=poisson_instance,
            algorithms=("pd?delta=0.05", "pd?delta=5e-2"),  # same variant
        )
        with pytest.raises(InvalidParameterError, match="more than once"):
            spec.requests()


class TestNanAwareAggregation:
    """Satellite bugfix: one NaN replicate cannot hide behind ``max``."""

    @staticmethod
    def _record(ratio, seed):
        return RunRecord(
            algorithm="stub", cost=1.0, energy=1.0, lost_value=0.0,
            acceptance=1.0, certified_ratio=ratio, dual_g=1.0, schedule={},
            tag={"cell": 0, "params": {}, "variant": {}, "seed": seed,
                 "experiment": "t"},
        )

    def test_nan_poisons_worst_ratio_in_any_position(self):
        finite = [self._record(3.0, 0), self._record(7.0, 1)]
        poisoned = self._record(math.nan, 2)
        for records in ([poisoned] + finite, finite + [poisoned]):
            (cell,) = aggregate_records(records)
            assert math.isnan(cell.worst_certified_ratio)

    def test_all_finite_takes_the_max(self):
        (cell,) = aggregate_records(
            [self._record(3.0, 0), self._record(7.0, 1)]
        )
        assert cell.worst_certified_ratio == 7.0

    def test_untagged_records_rejected(self):
        record = BatchRunner().run_one("pd", poisson_instance(4, seed=0))
        with pytest.raises(InvalidParameterError, match="tag"):
            aggregate_records([record])
