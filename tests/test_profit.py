"""Tests for the Pruhs–Stein profit substrate (:mod:`repro.profit`).

Checks the profit/loss complementarity identity on every kind of schedule
the library produces, the closed forms of the margin-erosion family, the
impossibility phenomenon (profit ratio ~ 1/margin), and the exactness of
the resource-augmentation change of variables.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import run_pd, solve_exact
from repro.errors import InvalidParameterError
from repro.model.job import Instance
from repro.profit import (
    AugmentedProfitResult,
    bait_value,
    loss_profit_gap,
    opt_profit_lower_bound,
    optimal_profit,
    pd_energy_closed_form,
    profit_of,
    profit_of_result,
    run_pd_augmented,
    vanishing_margin_instance,
)
from repro.workloads.random_instances import poisson_instance

SETTINGS = settings(max_examples=30, deadline=None, derandomize=True)


# ---------------------------------------------------------------------------
# Profit accounting and the complementarity identity
# ---------------------------------------------------------------------------
class TestProfitModel:
    def test_breakdown_fields(self, profitable_instance):
        result = run_pd(profitable_instance)
        p = profit_of_result(result)
        assert p.earned_value == pytest.approx(
            float(
                result.schedule.instance.values[result.accepted_mask].sum()
            )
        )
        assert p.energy == pytest.approx(result.schedule.energy)
        assert p.profit == pytest.approx(p.earned_value - p.energy)

    def test_complementarity_identity_pd(self, profitable_instance):
        result = run_pd(profitable_instance)
        assert loss_profit_gap(result.schedule) < 1e-9
        p = profit_of(result.schedule)
        assert p.loss == pytest.approx(result.schedule.cost)

    def test_complementarity_identity_offline(self, profitable_instance):
        sol = solve_exact(profitable_instance)
        assert loss_profit_gap(sol.schedule) < 1e-9

    def test_empty_schedule_profit_zero(self, profitable_instance):
        from repro.model.intervals import grid_for_instance
        from repro.model.schedule import Schedule

        empty = Schedule.empty(
            profitable_instance, grid_for_instance(profitable_instance)
        )
        p = profit_of(empty)
        assert p.profit == 0.0
        assert p.loss == pytest.approx(profitable_instance.total_value)

    def test_optimal_profit_complement_of_exact_cost(self, profitable_instance):
        opt_p = optimal_profit(profitable_instance)
        sol = solve_exact(profitable_instance)
        assert opt_p == pytest.approx(
            profitable_instance.total_value - sol.cost
        )

    def test_optimal_profit_never_negative(self):
        # A single job so expensive that finishing it always loses money.
        inst = Instance.from_tuples([(0.0, 1.0, 10.0, 0.5)], m=1, alpha=3.0)
        assert optimal_profit(inst) >= 0.0

    @given(seed=st.integers(min_value=0, max_value=20))
    @SETTINGS
    def test_identity_random(self, seed):
        inst = poisson_instance(6, m=2, alpha=2.5, seed=seed)
        result = run_pd(inst)
        assert loss_profit_gap(result.schedule) < 1e-9
        # Profit of PD never exceeds the offline optimum.
        assert profit_of_result(result).profit <= optimal_profit(inst) + 1e-7


# ---------------------------------------------------------------------------
# The margin-erosion family (Pruhs–Stein impossibility)
# ---------------------------------------------------------------------------
class TestVanishingMargin:
    @pytest.mark.parametrize("alpha", [2.0, 2.5, 3.0])
    @pytest.mark.parametrize("margin", [0.5, 0.1, 0.01])
    def test_pd_profit_equals_margin(self, alpha, margin):
        inst = vanishing_margin_instance(margin, alpha)
        result = run_pd(inst)
        assert result.accepted_mask.tolist() == [True, True]
        p = profit_of_result(result)
        assert p.energy == pytest.approx(pd_energy_closed_form(alpha), rel=1e-9)
        assert p.profit == pytest.approx(margin, rel=1e-6)

    @pytest.mark.parametrize("alpha", [2.0, 2.5, 3.0])
    def test_opt_profit_matches_lower_bound(self, alpha):
        margin = 0.05
        inst = vanishing_margin_instance(margin, alpha)
        opt = optimal_profit(inst)
        lb = opt_profit_lower_bound(alpha, margin)
        assert opt >= lb - 1e-7
        # The two explicit strategies are in fact optimal here.
        assert opt == pytest.approx(lb, rel=1e-6)

    def test_ratio_unbounded_as_margin_vanishes(self):
        alpha = 3.0
        ratios = []
        for margin in (0.1, 0.01, 0.001):
            inst = vanishing_margin_instance(margin, alpha)
            pd_profit = profit_of_result(run_pd(inst)).profit
            ratios.append(optimal_profit(inst) / pd_profit)
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] > 1000.0

    def test_bait_clears_threshold(self):
        for alpha in (2.0, 2.25, 2.5, 3.0, 3.5):
            planned = 0.5 ** (alpha - 1.0)
            assert planned <= alpha ** (alpha - 2.0) * bait_value(alpha)

    def test_squeeze_clears_threshold_across_sweep(self):
        for alpha in (2.0, 2.5, 3.0):
            for margin in (0.001, 0.01, 0.1, 0.5):
                inst = vanishing_margin_instance(margin, alpha)
                squeeze = inst.jobs[1]
                planned = 1.5 ** (alpha - 1.0)
                assert planned <= alpha ** (alpha - 2.0) * squeeze.value

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            vanishing_margin_instance(0.0, 3.0)
        with pytest.raises(InvalidParameterError):
            vanishing_margin_instance(-1.0, 3.0)
        with pytest.raises(InvalidParameterError):
            vanishing_margin_instance(0.1, 1.5)  # trap degenerates below 2

    def test_loss_competitiveness_still_fine_on_trap(self):
        """The same runs that are terrible for profit stay comfortably
        inside the paper's loss guarantee — the dichotomy in one test."""
        from repro import dual_certificate

        alpha = 3.0
        inst = vanishing_margin_instance(0.001, alpha)
        result = run_pd(inst)
        cert = dual_certificate(result)
        assert cert.holds
        # Loss ratio sits comfortably inside alpha^alpha = 27 even though
        # the profit ratio on the very same run exceeds 1000.
        loss_ratio = result.cost / solve_exact(inst).cost
        assert loss_ratio < alpha**alpha / 2.0


# ---------------------------------------------------------------------------
# Resource augmentation
# ---------------------------------------------------------------------------
class TestAugmentation:
    def test_epsilon_zero_is_plain_pd(self, profitable_instance):
        plain = run_pd(profitable_instance)
        aug = run_pd_augmented(profitable_instance, 0.0)
        assert aug.energy == pytest.approx(plain.schedule.energy)
        assert aug.earned_value == pytest.approx(
            profit_of_result(plain).earned_value
        )
        assert np.array_equal(aug.inner.accepted_mask, plain.accepted_mask)

    def test_negative_epsilon_rejected(self, profitable_instance):
        with pytest.raises(InvalidParameterError):
            run_pd_augmented(profitable_instance, -0.1)

    def test_energy_closed_form_on_trap(self):
        """Same acceptance => energy scales by (1+eps)**(-alpha) on each
        committed speed... times unchanged durations: total scales by
        (1+eps)**(-alpha) * (1+eps) work change — net (1+eps)**(1-alpha)
        relative to the continuous closed form? No: workloads shrink by
        (1+eps), speeds shrink by (1+eps), power by (1+eps)**alpha. The
        durations are unchanged, so energy scales by (1+eps)**(-alpha)."""
        alpha, eps = 3.0, 0.25
        inst = vanishing_margin_instance(0.01, alpha)
        aug = run_pd_augmented(inst, eps)
        assert aug.inner.accepted_mask.all()
        expected = pd_energy_closed_form(alpha) / (1.0 + eps) ** alpha
        assert aug.energy == pytest.approx(expected, rel=1e-9)

    def test_augmentation_restores_constant_profit_on_trap(self):
        alpha, eps = 3.0, 0.3
        profits = []
        for margin in (0.1, 0.01, 0.001):
            inst = vanishing_margin_instance(margin, alpha)
            profits.append(run_pd_augmented(inst, eps).profit.profit)
        # Profit stays bounded away from zero as the margin vanishes.
        assert all(p > 1.5 for p in profits)
        # And the profit ratio vs the unaugmented optimum stays O(1).
        for margin, p in zip((0.1, 0.01, 0.001), profits):
            opt = optimal_profit(vanishing_margin_instance(margin, alpha))
            assert opt / p < 2.0

    def test_augmented_profit_at_least_plain_on_trap(self):
        inst = vanishing_margin_instance(0.05, 3.0)
        plain = profit_of_result(run_pd(inst)).profit
        for eps in (0.1, 0.2, 0.5, 1.0):
            assert run_pd_augmented(inst, eps).profit.profit > plain

    def test_summary_mentions_epsilon(self, profitable_instance):
        text = run_pd_augmented(profitable_instance, 0.2).summary()
        assert "eps=0.2" in text and "accepted" in text

    @given(
        seed=st.integers(min_value=0, max_value=10),
        eps=st.sampled_from([0.0, 0.1, 0.5]),
    )
    @SETTINGS
    def test_augmented_energy_never_exceeds_plain_for_same_acceptance(
        self, seed, eps
    ):
        inst = poisson_instance(6, m=1, alpha=3.0, seed=seed)
        plain = run_pd(inst)
        aug = run_pd_augmented(inst, eps)
        if np.array_equal(aug.inner.accepted_mask, plain.accepted_mask):
            assert aug.energy <= plain.schedule.energy + 1e-9
        # Either way the inner run still carries its loss certificate.
        from repro import dual_certificate

        assert dual_certificate(aug.inner).holds
