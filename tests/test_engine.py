"""Tests for the experiment engine: registry, batch runner, experiments.

The load-bearing guarantee is *parity*: the engine is a pure
orchestration layer, so for every registered algorithm a
:class:`BatchRunner` — serial or parallel, cache cold or warm — must
return bit-identical costs and schedules to a direct
:func:`run_algorithm` call. Everything else (capability metadata,
cache accounting, declarative sweeps) builds on that.
"""

from __future__ import annotations

import math

import pytest

from repro.core.simulator import available_algorithms, run_algorithm
from repro.engine import (
    REGISTRY,
    BatchRunner,
    ExperimentSpec,
    ResultCache,
    RunRequest,
    run_experiment,
)
from repro.engine.runner import request_key
from repro.errors import InvalidParameterError
from repro.io.serialize import schedule_to_dict, stable_hash
from repro.workloads import poisson_instance


@pytest.fixture(scope="module")
def instance():
    # m=1 so every algorithm (including the single-processor ones) runs;
    # n=5 keeps the exact solver's enumeration fast.
    return poisson_instance(5, m=1, alpha=3.0, seed=7)


@pytest.fixture(scope="module")
def direct(instance):
    """Ground truth: one plain run_algorithm call per registered name."""
    return {
        name: run_algorithm(name, instance) for name in available_algorithms()
    }


def _assert_parity(records, direct, instance):
    for record in records:
        outcome = direct[record.algorithm]
        assert record.cost == outcome.schedule.cost, record.algorithm
        assert record.energy == outcome.schedule.energy, record.algorithm
        assert record.schedule == schedule_to_dict(outcome.schedule), (
            record.algorithm
        )


class TestBatchParity:
    """Satellite: engine output == direct output, in every mode."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parity_cold_and_warm(self, workers, instance, direct, tmp_path):
        requests = [RunRequest(name, instance) for name in available_algorithms()]
        runner = BatchRunner(workers=workers, cache=tmp_path / "cache")

        cold = runner.run(requests)
        _assert_parity(cold, direct, instance)
        assert all(not r.cached for r in cold)
        assert runner.stats.computed == len(requests)

        warm = runner.run(requests)
        _assert_parity(warm, direct, instance)
        assert all(r.cached for r in warm)
        assert runner.stats.computed == len(requests)  # nothing recomputed
        assert runner.stats.cache_hits == len(requests)

    def test_parity_without_cache(self, instance, direct):
        records = BatchRunner(workers=1).run(
            [RunRequest(name, instance) for name in available_algorithms()]
        )
        _assert_parity(records, direct, instance)

    def test_parallel_matches_serial_ordering(self, instance):
        insts = [poisson_instance(6, m=1, alpha=3.0, seed=s) for s in range(4)]
        requests = [
            RunRequest(a, i) for i in insts for a in ("pd", "cll", "oa")
        ]
        serial = BatchRunner(workers=1).run(requests)
        parallel = BatchRunner(workers=3).run(requests)
        assert [r.algorithm for r in serial] == [r.algorithm for r in parallel]
        assert [r.cost for r in serial] == [r.cost for r in parallel]
        assert [r.schedule for r in serial] == [r.schedule for r in parallel]


class TestCache:
    def test_warm_cache_skips_recomputation_call_count(
        self, instance, tmp_path, monkeypatch
    ):
        """The satellite's call-count check: zero evaluations when warm."""
        import repro.engine.runner as runner_mod

        calls = []
        real = runner_mod.evaluate_request

        def counting(request):
            calls.append(request.algorithm)
            return real(request)

        monkeypatch.setattr(runner_mod, "evaluate_request", counting)
        requests = [RunRequest(a, instance) for a in ("pd", "cll", "oa")]

        cold = BatchRunner(workers=1, cache=tmp_path / "c").run(requests)
        assert calls == ["pd", "cll", "oa"]
        warm = BatchRunner(workers=1, cache=tmp_path / "c").run(requests)
        assert calls == ["pd", "cll", "oa"]  # unchanged: no recomputation
        assert [r.cost for r in cold] == [r.cost for r in warm]

    def test_one_changed_cell_recomputes_only_that_cell(
        self, instance, tmp_path, monkeypatch
    ):
        import repro.engine.runner as runner_mod

        calls = []
        real = runner_mod.evaluate_request

        def counting(request):
            calls.append(request.algorithm)
            return real(request)

        monkeypatch.setattr(runner_mod, "evaluate_request", counting)
        requests = [RunRequest(a, instance) for a in ("pd", "cll", "oa")]
        BatchRunner(workers=1, cache=tmp_path / "c").run(requests)
        calls.clear()

        changed = instance.with_values([j.value * 2 for j in instance.jobs])
        requests[1] = RunRequest("cll", changed)
        records = BatchRunner(workers=1, cache=tmp_path / "c").run(requests)
        assert calls == ["cll"]
        assert [r.cached for r in records] == [True, False, True]

    def test_duplicates_computed_once(self, instance):
        runner = BatchRunner(workers=1)
        records = runner.run([RunRequest("pd", instance)] * 3)
        assert runner.stats.computed == 1
        assert runner.stats.deduplicated == 2
        assert runner.stats.cache_hits == 0  # no cache configured
        assert len({r.cost for r in records}) == 1
        assert [r.cached for r in records] == [False, True, True]

    def test_corrupt_entry_is_a_miss(self, instance, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = request_key("pd", instance)
        (tmp_path / "c" / f"{key}.json").write_text("{not json")
        runner = BatchRunner(workers=1, cache=cache)
        record = runner.run_one("pd", instance)
        assert not record.cached
        assert cache.get(key) is not None  # rewritten cleanly

    def test_key_stability(self, instance):
        key = request_key("pd", instance)
        assert key == request_key("pd", instance)
        assert key != request_key("cll", instance)
        bumped = instance.with_values([j.value * 2 for j in instance.jobs])
        assert key != request_key("pd", bumped)
        # hashing is key-order independent
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_invalid_workers_rejected(self):
        with pytest.raises(InvalidParameterError):
            BatchRunner(workers=0)


class TestRegistryCapabilities:
    def test_known_capabilities(self):
        info = REGISTRY.info("pd")
        assert info.profit_aware and info.online and info.multiprocessor
        assert info.produces_certificate
        assert REGISTRY.info("yds").capabilities() == frozenset({"offline"})
        assert not REGISTRY.info("oa").produces_certificate
        assert REGISTRY.info("cll").produces_certificate

    def test_single_processor_flags_match_behaviour(self):
        inst = poisson_instance(4, m=2, alpha=3.0, seed=0)
        for info in REGISTRY:
            if not info.multiprocessor:
                with pytest.raises(InvalidParameterError):
                    run_algorithm(info.name, inst)

    def test_select(self):
        certified = {
            i.name for i in REGISTRY.select(produces_certificate=True)
        }
        assert "pd" in certified and "cll" in certified
        assert "oa" not in certified
        offline = {i.name for i in REGISTRY.select(online=False)}
        assert {"yds", "exact", "offline-cp", "oracle-admission"} <= offline

    def test_unknown_name_lists_available(self):
        with pytest.raises(InvalidParameterError, match="available:"):
            REGISTRY.info("nope")

    def test_certified_ratio_only_for_capable_algorithms(self, instance):
        records = BatchRunner().run(
            [RunRequest(a, instance) for a in ("pd", "cll", "oa", "avr")]
        )
        by_name = {r.algorithm: r for r in records}
        assert by_name["pd"].certified_ratio <= 27.0 * (1 + 1e-7)
        assert by_name["cll"].certified_ratio > 0
        assert math.isnan(by_name["oa"].certified_ratio)
        assert math.isnan(by_name["avr"].certified_ratio)


class TestExperimentSpec:
    def test_grid_order_and_aggregation(self):
        spec = ExperimentSpec(
            name="t",
            family=poisson_instance,
            grid={"alpha": [2.0, 3.0], "m": [1, 2]},
            algorithms=("pd",),
            n=6,
            seeds=(0, 1),
        )
        cells = run_experiment(spec)
        assert [(c.params["alpha"], c.params["m"]) for c in cells] == [
            (2.0, 1),
            (2.0, 2),
            (3.0, 1),
            (3.0, 2),
        ]
        assert all(c.runs == 2 for c in cells)

    def test_named_family_resolution(self):
        spec = ExperimentSpec(
            name="t", family="poisson", grid={}, n=4, seeds=(0,)
        )
        cells = run_experiment(spec)
        assert len(cells) == 1 and cells[0].mean_cost > 0
        with pytest.raises(InvalidParameterError, match="unknown workload family"):
            run_experiment(
                ExperimentSpec(name="t", family="nope", n=4, seeds=(0,))
            )

    def test_skip_incapable_drops_single_proc_cells(self):
        spec = ExperimentSpec(
            name="t",
            family=poisson_instance,
            grid={"m": [1, 2]},
            algorithms=("pd", "cll"),
            n=5,
            seeds=(0,),
            skip_incapable=True,
        )
        cells = run_experiment(spec)
        combos = {(c.params["m"], c.algorithm) for c in cells}
        assert combos == {(1, "pd"), (1, "cll"), (2, "pd")}

    def test_value_x_axis_matches_manual_scaling(self):
        spec = ExperimentSpec(
            name="t",
            family=poisson_instance,
            grid={"value_x": [0.5]},
            algorithms=("pd",),
            n=6,
            seeds=(0,),
        )
        cell = run_experiment(spec)[0]
        base = poisson_instance(6, m=1, alpha=3.0, seed=0)
        manual = run_algorithm(
            "pd", base.with_values([j.value * 0.5 for j in base.jobs])
        )
        assert cell.mean_cost == manual.schedule.cost

    def test_validation(self):
        with pytest.raises(InvalidParameterError, match="exactly one"):
            ExperimentSpec(name="t")
        with pytest.raises(InvalidParameterError, match="seed"):
            ExperimentSpec(name="t", family=poisson_instance, seeds=())
        with pytest.raises(InvalidParameterError, match="algorithm"):
            ExperimentSpec(name="t", family=poisson_instance, algorithms=())


class TestSweepsOnEngine:
    """The public sweep helpers must behave identically on any runner."""

    def test_ratio_sweep_runner_equivalence(self, tmp_path):
        from repro.analysis.sweeps import ratio_sweep

        kwargs = dict(alphas=[2.0, 3.0], ms=[1, 2], n=6, seeds=[0, 1])
        plain = ratio_sweep(poisson_instance, **kwargs)
        cached = ratio_sweep(
            poisson_instance,
            runner=BatchRunner(workers=2, cache=tmp_path / "c"),
            **kwargs,
        )
        warm = ratio_sweep(
            poisson_instance,
            runner=BatchRunner(workers=1, cache=tmp_path / "c"),
            **kwargs,
        )
        assert plain == cached == warm

    def test_processor_scaling_curve_cll_gets_real_ratio(self):
        from repro.analysis.sweeps import processor_scaling_curve

        inst = poisson_instance(8, m=1, alpha=3.0, seed=2)
        (cell,) = processor_scaling_curve(inst, ms=[1], algorithm="cll")
        assert math.isfinite(cell.worst_certified_ratio)
        assert cell.worst_certified_ratio >= 1.0 - 1e-9
