"""Tests for Chen et al.'s dedicated/pool partition (Equation (5))."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chen.partition import (
    partition_loads,
    partition_loads_reference,
)
from repro.errors import InvalidParameterError

# Loads are either exactly zero or meaningfully positive: the partition
# treats sub-_LOAD_EPS (1e-15) dust as zero by design, so properties like
# scale invariance intentionally do not apply inside that band.
loads_strategy = st.lists(
    st.one_of(st.just(0.0), st.floats(min_value=1e-9, max_value=100.0)),
    min_size=0,
    max_size=12,
)
m_strategy = st.integers(min_value=1, max_value=8)


class TestPartitionExamples:
    def test_single_large_job_dedicated(self):
        p = partition_loads(np.array([5.0, 3.0, 1.0]), 2)
        assert p.num_dedicated == 1
        assert p.pool_load == pytest.approx(4.0)
        assert p.pool_load_per_processor == pytest.approx(4.0)
        np.testing.assert_allclose(p.processor_loads(), [5.0, 4.0])

    def test_balanced_loads_all_pool(self):
        p = partition_loads(np.array([1.0, 1.0, 1.0, 1.0]), 2)
        assert p.num_dedicated == 0
        np.testing.assert_allclose(p.processor_loads(), [2.0, 2.0])

    def test_fewer_jobs_than_processors_all_dedicated(self):
        p = partition_loads(np.array([3.0, 1.0]), 4)
        assert p.num_dedicated == 2
        np.testing.assert_allclose(p.processor_loads(), [3.0, 1.0, 0.0, 0.0])

    def test_single_processor_everything_pools(self):
        p = partition_loads(np.array([3.0, 1.0]), 1)
        # With m = 1 nothing can be dedicated unless it is the only work.
        assert p.num_dedicated == 0
        np.testing.assert_allclose(p.processor_loads(), [4.0])

    def test_single_job_single_processor_is_dedicated(self):
        p = partition_loads(np.array([3.0]), 1)
        assert p.num_dedicated == 1
        assert p.pool_load == 0.0

    def test_zero_loads_ignored(self):
        p = partition_loads(np.array([0.0, 2.0, 0.0]), 2)
        assert p.num_dedicated == 1
        assert p.pool_load == pytest.approx(0.0)

    def test_empty_loads(self):
        p = partition_loads(np.array([]), 3)
        assert p.num_dedicated == 0
        np.testing.assert_allclose(p.processor_loads(), [0.0, 0.0, 0.0])

    def test_negative_load_rejected(self):
        with pytest.raises(InvalidParameterError):
            partition_loads(np.array([1.0, -0.5]), 2)

    def test_bad_m_rejected(self):
        with pytest.raises(InvalidParameterError):
            partition_loads(np.array([1.0]), 0)

    def test_order_is_stable_on_ties(self):
        p = partition_loads(np.array([2.0, 2.0, 2.0]), 2)
        np.testing.assert_array_equal(p.order, [0, 1, 2])

    def test_dedicated_and_pool_ids(self):
        p = partition_loads(np.array([1.0, 9.0, 0.0, 2.0]), 2)
        assert list(p.dedicated_ids()) == [1]
        assert set(p.pool_ids()) == {0, 3}

    def test_speed_of(self):
        p = partition_loads(np.array([5.0, 3.0, 1.0]), 2)
        assert p.speed_of(0, 2.0) == pytest.approx(2.5)  # dedicated 5/2
        assert p.speed_of(1, 2.0) == pytest.approx(2.0)  # pool 4/(1*2)
        assert p.speed_of(2, 2.0) == pytest.approx(2.0)


class TestPartitionProperties:
    @given(loads=loads_strategy, m=m_strategy)
    @settings(max_examples=200)
    def test_matches_reference_implementation(self, loads, m):
        """Fast scan and literal Equation (5) agree on the physical outcome.

        At exact dedication ties the *count* of dedicated jobs is
        ambiguous (a job at the pool level can be called either), so the
        comparison is on processor loads, which are unique.
        """
        arr = np.array(loads)
        fast = partition_loads(arr, m)
        slow = partition_loads_reference(arr, m)
        np.testing.assert_allclose(
            fast.processor_loads(), slow.processor_loads(), atol=1e-7
        )

    @given(loads=loads_strategy, m=m_strategy)
    @settings(max_examples=200)
    def test_processor_loads_cover_all_work(self, loads, m):
        arr = np.array(loads)
        p = partition_loads(arr, m)
        assert p.processor_loads().sum() == pytest.approx(arr.sum(), abs=1e-8)

    @given(loads=loads_strategy, m=m_strategy)
    @settings(max_examples=200)
    def test_processor_loads_descending(self, loads, m):
        p = partition_loads(np.array(loads), m)
        pl = p.processor_loads()
        assert np.all(np.diff(pl) <= 1e-9)

    @given(loads=loads_strategy, m=m_strategy)
    @settings(max_examples=200)
    def test_pool_jobs_fit_under_pool_level(self, loads, m):
        """Every pool job's load is at most the pool per-processor load.

        This is the McNaughton feasibility condition: pool jobs never need
        to run in parallel with themselves.
        """
        arr = np.array(loads)
        p = partition_loads(arr, m)
        if p.num_pool_processors == 0:
            return
        level = p.pool_load_per_processor
        for load in p.sorted_loads[p.num_dedicated :]:
            assert load <= level + 1e-9

    @given(loads=loads_strategy, m=m_strategy)
    @settings(max_examples=200)
    def test_dedicated_loads_above_pool_level(self, loads, m):
        p = partition_loads(np.array(loads), m)
        level = p.pool_load_per_processor
        for load in p.sorted_loads[: p.num_dedicated]:
            assert load >= level - 1e-9

    @given(loads=loads_strategy, m=m_strategy, scale=st.floats(0.1, 10.0))
    @settings(max_examples=100)
    def test_partition_scale_invariant(self, loads, m, scale):
        """Scaling all loads scales processor loads without reshuffling."""
        arr = np.array(loads)
        p1 = partition_loads(arr, m)
        p2 = partition_loads(arr * scale, m)
        assert p1.num_dedicated == p2.num_dedicated
        np.testing.assert_allclose(
            p2.processor_loads(), p1.processor_loads() * scale, atol=1e-7
        )


class TestProposition2:
    """Proposition 2: adding a new load z moves every processor load by
    at most z, and never downward."""

    @given(
        loads=loads_strategy,
        m=m_strategy,
        z=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=300)
    def test_monotone_and_lipschitz(self, loads, m, z):
        arr = np.array(loads)
        before = partition_loads(arr, m).processor_loads()
        after = partition_loads(np.append(arr, z), m).processor_loads()
        diff = after - before
        assert np.all(diff >= -1e-9), f"some load decreased: {diff}"
        assert np.all(diff <= z + 1e-9), f"some load moved more than z: {diff}"

    def test_paper_figure2_shape(self):
        """The Figure 2 scenario: a new job converts a dedicated processor
        into a pool processor without lowering anyone's load."""
        arr = np.array([4.0, 2.2, 1.0, 0.8])  # m=4: loads [4, 2.2, 1, .8]
        before = partition_loads(arr, 4)
        assert before.num_dedicated >= 1
        after = partition_loads(np.append(arr, 1.5), 4)
        b, a = before.processor_loads(), after.processor_loads()
        assert np.all(a >= b - 1e-12)
        assert np.all(a - b <= 1.5 + 1e-12)
