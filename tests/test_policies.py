"""Tests for admission-policy comparators (:mod:`repro.core.policies`).

The policies share PD's placement engine, so the tests concentrate on
admission semantics, grid re-expression correctness (energy must not
change when a sub-run is mapped onto the full grid), and the dominance
relations the decomposition predicts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import run_pd, solve_exact
from repro.core import run_algorithm
from repro.core.policies import (
    run_accept_all,
    run_oracle_admission,
    run_reject_all,
    run_solo_threshold,
    run_with_admission,
)
from repro.errors import InvalidParameterError
from repro.model.job import Instance
from repro.workloads.random_instances import poisson_instance

SETTINGS = settings(max_examples=20, deadline=None, derandomize=True)


@pytest.fixture
def spread_instance() -> Instance:
    """Values straddling the admission threshold so policies diverge."""
    return Instance.from_tuples(
        [
            (0.0, 2.0, 1.0, 10.0),   # clearly worth finishing
            (0.0, 1.0, 2.0, 0.1),    # tight and nearly worthless
            (1.0, 3.0, 1.0, 5.0),    # worth it
            (1.5, 2.0, 1.5, 0.5),    # tight, marginal
            (2.0, 4.0, 0.5, 0.01),   # tiny value
        ],
        m=1,
        alpha=3.0,
    )


class TestBasicPolicies:
    def test_reject_all_cost_is_total_value(self, spread_instance):
        r = run_reject_all(spread_instance)
        assert r.admitted_ids == ()
        assert r.cost == pytest.approx(spread_instance.total_value)
        assert r.schedule.energy == 0.0

    def test_accept_all_finishes_everything(self, spread_instance):
        r = run_accept_all(spread_instance)
        r.schedule.validate()
        assert r.schedule.finished.all()
        assert r.schedule.lost_value == 0.0

    def test_solo_threshold_respects_rule(self, spread_instance):
        from repro.model.power import optimal_constant_speed_energy

        r = run_solo_threshold(spread_instance)
        ordered = spread_instance.sorted_by_release()
        c = ordered.alpha ** (ordered.alpha - 2.0)
        for j in range(ordered.n):
            solo = optimal_constant_speed_energy(
                ordered.alpha, ordered[j].workload, ordered[j].span
            )
            assert (j in r.admitted_ids) == (solo <= c * ordered[j].value)

    def test_solo_threshold_custom_factor(self, spread_instance):
        generous = run_solo_threshold(spread_instance, factor=1e9)
        stingy = run_solo_threshold(spread_instance, factor=1e-9)
        assert len(generous.admitted_ids) == spread_instance.n
        assert stingy.admitted_ids == ()
        with pytest.raises(InvalidParameterError):
            run_solo_threshold(spread_instance, factor=0.0)

    def test_oracle_matches_exact_acceptance(self, spread_instance):
        r = run_oracle_admission(spread_instance)
        sol = solve_exact(spread_instance.sorted_by_release())
        assert r.admitted_ids == tuple(sorted(sol.accepted))

    def test_admitted_id_range_checked(self, spread_instance):
        with pytest.raises(InvalidParameterError):
            run_with_admission(spread_instance, (99,), policy="x")


class TestGridReexpression:
    def test_energy_preserved_under_remap(self, spread_instance):
        """Placing a subset and re-expressing on the full grid must cost
        exactly what the sub-run cost (proportional splitting is
        energy-neutral)."""
        ids = (0, 2)
        r = run_with_admission(spread_instance, ids, policy="subset")
        ordered = spread_instance.sorted_by_release()
        sub = ordered.restrict(ids).with_values([1e30, 1e30])
        assert r.schedule.energy == pytest.approx(
            run_pd(sub).schedule.energy, rel=1e-9
        )
        r.schedule.validate()

    def test_work_conservation(self, spread_instance):
        r = run_with_admission(spread_instance, (0, 2, 3), policy="subset")
        ordered = spread_instance.sorted_by_release()
        done = r.schedule.work_done()
        for j in range(ordered.n):
            want = ordered[j].workload if j in r.admitted_ids else 0.0
            assert done[j] == pytest.approx(want, abs=1e-9)


class TestDominanceRelations:
    def test_every_policy_beats_neither_bound(self, spread_instance):
        """All policies land between the exact optimum and the trivial
        reject-all bound (accept-all may exceed reject-all on hostile
        values, so it is excluded from the upper check)."""
        opt = solve_exact(spread_instance).cost
        reject = run_reject_all(spread_instance).cost
        for fn in (run_solo_threshold, run_oracle_admission):
            cost = fn(spread_instance).cost
            assert opt - 1e-9 <= cost
            assert cost <= reject + 1e-9

    def test_oracle_admission_isolates_placement_regret(self, spread_instance):
        """With the optimal acceptance set, the only remaining gap to OPT
        is placement; it must be small on benign instances and PD (which
        also chooses admission) cannot beat OPT either."""
        opt = solve_exact(spread_instance).cost
        oracle = run_oracle_admission(spread_instance).cost
        pd_cost = run_pd(spread_instance).cost
        assert opt <= oracle + 1e-9
        assert opt <= pd_cost + 1e-9

    @given(seed=st.integers(min_value=0, max_value=12))
    @SETTINGS
    def test_dominance_random(self, seed):
        inst = poisson_instance(6, m=1, alpha=3.0, seed=seed)
        opt = solve_exact(inst).cost
        for name in ("solo-threshold", "oracle-admission", "reject-all"):
            outcome = run_algorithm(name, inst)
            assert outcome.cost >= opt - 1e-7
            outcome.schedule.validate()


class TestRegistry:
    def test_policies_available_via_runner(self, spread_instance):
        from repro.core import available_algorithms

        names = available_algorithms()
        for name in (
            "accept-all",
            "reject-all",
            "solo-threshold",
            "oracle-admission",
        ):
            assert name in names
            outcome = run_algorithm(name, spread_instance)
            assert outcome.cost >= 0.0
