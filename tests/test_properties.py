"""Cross-cutting property-based tests over randomly generated instances.

Hypothesis drives whole random instances through the full PD pipeline and
asserts model-level invariants that must hold regardless of the input:
the Theorem 3 certificate, cost monotonicities, and the algebraic
invariances (time shift, time/work scaling) the energy model implies.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.certificates import dual_certificate
from repro.core.pd import run_pd
from repro.model.job import Instance, Job
from repro.workloads.perturb import (
    add_job,
    shift_time,
    tighten_deadlines,
)

# derandomize: whole-pipeline properties must stay reproducible run-to-run
# (the per-module property tests keep hypothesis's random exploration).
SETTINGS = settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def instances(draw, max_jobs: int = 7, max_m: int = 3):
    """Random profitable instances with value spreads around solo energy."""
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    m = draw(st.integers(min_value=1, max_value=max_m))
    alpha = draw(st.sampled_from([1.5, 2.0, 3.0]))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=2.0))
        span = draw(st.floats(min_value=0.1, max_value=3.0))
        w = draw(st.floats(min_value=0.05, max_value=2.0))
        solo = (w / span) ** (alpha - 1.0) * w
        ratio = draw(st.sampled_from([0.05, 0.5, 1.0, 2.0, 20.0]))
        jobs.append(Job(t, t + span, w, solo * ratio))
    return Instance(tuple(jobs), m=m, alpha=alpha)


class TestCertificateUniversality:
    @given(inst=instances())
    @SETTINGS
    def test_certificate_always_holds(self, inst):
        result = run_pd(inst)
        cert = dual_certificate(result)
        assert cert.holds, f"ratio {cert.ratio} > {cert.bound} on {inst.jobs}"

    @given(inst=instances())
    @SETTINGS
    def test_schedule_always_validates(self, inst):
        run_pd(inst).schedule.validate()

    @given(inst=instances())
    @SETTINGS
    def test_cost_bounded_by_total_value_plus_finish_all(self, inst):
        """PD never costs more than rejecting everything costs... is not
        true in general (it commits online); but it never exceeds
        alpha^alpha times that trivial upper bound, by Theorem 3."""
        result = run_pd(inst)
        trivial_opt_bound = inst.total_value  # OPT <= reject everything
        alpha = inst.alpha
        assert result.cost <= alpha**alpha * trivial_opt_bound * (1 + 1e-6) + 1e-9


class TestMonotonicities:
    @given(inst=instances(max_m=2))
    @SETTINGS
    def test_extra_processor_never_hurts(self, inst):
        c1 = run_pd(inst).cost
        c2 = run_pd(inst.with_machine(m=inst.m + 1)).cost
        assert c2 <= c1 * (1.0 + 1e-6) + 1e-9

    @given(inst=instances(max_jobs=5), w=st.floats(min_value=0.1, max_value=1.0))
    @SETTINGS
    def test_adding_a_job_never_lowers_cost(self, inst, w):
        """More demand cannot reduce energy+loss: the added job either
        costs energy or forfeits value."""
        lo, hi = inst.horizon
        extra = Job(hi, hi + 1.0, w, w)  # disjoint: affects nothing else
        c1 = run_pd(inst).cost
        c2 = run_pd(add_job(inst, extra)).cost
        assert c2 >= c1 - 1e-9


class TestInvariances:
    @given(inst=instances(), offset=st.floats(min_value=0.0, max_value=50.0))
    @SETTINGS
    def test_time_shift_invariance(self, inst, offset):
        c1 = run_pd(inst).cost
        c2 = run_pd(shift_time(inst, offset)).cost
        assert c2 == pytest.approx(c1, rel=1e-7)

    @given(inst=instances(max_jobs=5), scale=st.sampled_from([0.5, 2.0, 4.0]))
    @SETTINGS
    def test_classical_time_scaling_law(self, inst, scale):
        """For must-finish jobs, stretching time by c scales energy by
        c^(1-alpha) — and PD's schedule follows the model exactly."""
        classical = inst.with_values([1e13] * inst.n)
        c1 = run_pd(classical).cost
        c2 = run_pd(classical.scaled(time=scale)).cost
        assert c2 == pytest.approx(scale ** (1 - inst.alpha) * c1, rel=1e-5)

    @given(inst=instances(max_jobs=5), scale=st.sampled_from([0.5, 2.0]))
    @SETTINGS
    def test_classical_work_scaling_law(self, inst, scale):
        """Scaling workloads by c scales energy by c^alpha."""
        classical = inst.with_values([1e18] * inst.n)
        c1 = run_pd(classical).cost
        c2 = run_pd(classical.scaled(work=scale)).cost
        assert c2 == pytest.approx(scale**inst.alpha * c1, rel=1e-5)


class TestPerturbations:
    @given(inst=instances(max_jobs=5))
    @SETTINGS
    def test_tightening_deadlines_never_helps_classical(self, inst):
        """Shrinking windows (must-finish) can only increase energy."""
        classical = inst.with_values([1e13] * inst.n)
        c_loose = run_pd(classical).cost
        c_tight = run_pd(tighten_deadlines(classical, 0.5)).cost
        assert c_tight >= c_loose * (1.0 - 1e-7)

    @given(inst=instances(max_jobs=5), factor=st.sampled_from([2.0, 10.0]))
    @SETTINGS
    def test_raising_all_values_never_lowers_acceptance(self, inst, factor):
        base = run_pd(inst)
        raised = run_pd(inst.with_values([j.value * factor for j in inst.jobs]))
        assert raised.accepted_mask.sum() >= base.accepted_mask.sum()
