"""Tests for the adversarial instance search (:mod:`repro.analysis.adversary`).

The search is a falsification harness for Theorem 3, so its own tests
focus on: mutations always produce valid instances, the search is
deterministic under a fixed seed, it strictly improves over its seeds
when improvement is findable, and the certificate re-check is wired into
every evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.adversary import (
    AdversaryResult,
    mutate_instance,
    search_adversarial,
)
from repro.errors import InvalidParameterError
from repro.model.job import Instance
from repro.workloads import lower_bound_instance, poisson_instance

SETTINGS = settings(max_examples=40, deadline=None, derandomize=True)


class TestMutations:
    @given(
        seed=st.integers(min_value=0, max_value=30),
        steps=st.integers(min_value=1, max_value=25),
    )
    @SETTINGS
    def test_mutation_chain_always_valid(self, seed, steps):
        rng = np.random.default_rng(seed)
        inst = poisson_instance(4, m=2, alpha=3.0, seed=seed)
        for _ in range(steps):
            inst = mutate_instance(inst, rng)  # Job/Instance validate on init
            assert inst.n >= 1
            assert inst.m == 2 and inst.alpha == 3.0

    def test_mutations_cover_all_operators(self):
        """Over many draws every operator fires: sizes grow and shrink,
        windows and values change."""
        rng = np.random.default_rng(0)
        inst = poisson_instance(4, m=1, alpha=3.0, seed=1)
        sizes, value_changed, window_changed = set(), False, False
        current = inst
        for _ in range(200):
            new = mutate_instance(current, rng)
            sizes.add(new.n)
            if new.n == current.n:
                if not np.array_equal(new.values, current.values):
                    value_changed = True
                if not (
                    np.array_equal(new.releases, current.releases)
                    and np.array_equal(new.deadlines, current.deadlines)
                ):
                    window_changed = True
            current = new
        assert len(sizes) > 2
        assert value_changed and window_changed

    def test_single_job_never_dropped_to_zero(self):
        rng = np.random.default_rng(3)
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1.0)], m=1, alpha=2.0)
        for _ in range(50):
            inst = mutate_instance(inst, rng)
            assert inst.n >= 1


class TestSearch:
    def _seeds(self, n_seeds=2):
        return [poisson_instance(5, m=1, alpha=3.0, seed=s) for s in range(n_seeds)]

    def test_requires_seeds(self):
        with pytest.raises(InvalidParameterError):
            search_adversarial([], rounds=1)

    def test_deterministic_under_seed(self):
        a = search_adversarial(self._seeds(), rounds=30, rng=7)
        b = search_adversarial(self._seeds(), rounds=30, rng=7)
        assert a.ratio == b.ratio
        assert a.instance.jobs == b.instance.jobs
        assert a.history == b.history

    def test_never_worse_than_best_seed(self):
        from repro.analysis.certificates import dual_certificate
        from repro.core.pd import run_pd

        seeds = self._seeds()
        seed_best = max(
            dual_certificate(run_pd(s)).ratio for s in seeds
        )
        out = search_adversarial(seeds, rounds=40, rng=0)
        assert out.ratio >= seed_best - 1e-12
        assert out.history[-1] == pytest.approx(out.ratio)
        assert out.evaluations >= len(seeds)

    def test_improves_on_easy_landscape(self):
        # Random Poisson seeds sit far from the bound; 60 rounds of
        # hill-climbing reliably finds something strictly harder.
        out = search_adversarial(self._seeds(), rounds=60, rng=0)
        assert len(out.history) >= 2, "search never improved on its seeds"
        assert out.history[-1] > out.history[0]

    def test_ratio_within_theorem_bound(self):
        out = search_adversarial(self._seeds(), rounds=50, rng=2)
        assert out.ratio <= out.bound + 1e-9
        assert out.slack == pytest.approx(out.bound / out.ratio)

    def test_max_jobs_respected(self):
        out = search_adversarial(self._seeds(1), rounds=60, rng=4, max_jobs=6)
        assert out.instance.n <= 6

    def test_optimal_objective_small_instances(self):
        seeds = [poisson_instance(4, m=1, alpha=2.0, seed=9)]
        out = search_adversarial(
            seeds, objective="optimal", rounds=15, rng=5, max_jobs=6
        )
        # True competitive ratio is at least 1 and inside the bound.
        assert 1.0 - 1e-9 <= out.ratio <= out.bound + 1e-9

    def test_lower_bound_family_seed_is_already_hard(self):
        """Seeding with the paper's adversarial staircase starts the
        search at a ratio far above random instances'."""
        staircase = lower_bound_instance(12, 3.0)
        random_seed = poisson_instance(12, m=1, alpha=3.0, seed=0)
        hard = search_adversarial([staircase], rounds=0, rng=0)
        easy = search_adversarial([random_seed], rounds=0, rng=0)
        assert hard.ratio > easy.ratio
