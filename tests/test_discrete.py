"""Tests for the discrete speed-level substrate (:mod:`repro.discrete`).

Covers the :class:`SpeedSet` value object, the envelope power function
(including the classical optimality of two-adjacent-level emulation,
checked against brute-force time splits over the whole menu), schedule
rounding (work conservation, feasibility transfer, energy accounting),
and the end-to-end ``run_pd_discrete`` pipeline with screening and
graceful degradation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chen.mcnaughton import Segment
from repro.core.pd import run_pd
from repro.discrete import (
    DiscreteEnvelopePower,
    SpeedSet,
    discretize_schedule,
    discretize_segment,
    envelope_energy,
    menu_covering_schedule,
    menu_infeasible_mask,
    run_pd_discrete,
    worst_overhead_factor,
)
from repro.errors import InvalidParameterError
from repro.model.job import Instance
from repro.model.power import PolynomialPower
from repro.workloads.random_instances import poisson_instance

SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)


# ---------------------------------------------------------------------------
# SpeedSet
# ---------------------------------------------------------------------------
class TestSpeedSet:
    def test_levels_sorted_and_deduplicated(self):
        s = SpeedSet([2.0, 1.0, 2.0, 0.5])
        assert s.levels == (0.5, 1.0, 2.0)
        assert s.count == 3 and len(s) == 3

    def test_rejects_nonpositive_and_nonfinite(self):
        with pytest.raises(InvalidParameterError):
            SpeedSet([1.0, 0.0])
        with pytest.raises(InvalidParameterError):
            SpeedSet([1.0, -2.0])
        with pytest.raises(InvalidParameterError):
            SpeedSet([1.0, math.inf])
        with pytest.raises(InvalidParameterError):
            SpeedSet([])

    def test_geometric_grid_has_constant_ratio(self):
        s = SpeedSet.geometric(0.5, 8.0, 5)
        arr = s.as_array()
        ratios = arr[1:] / arr[:-1]
        assert np.allclose(ratios, ratios[0])
        assert s.min_speed == pytest.approx(0.5)
        assert s.max_speed == pytest.approx(8.0)
        assert s.max_ratio == pytest.approx(ratios[0])

    def test_linear_grid_is_equally_spaced(self):
        s = SpeedSet.linear(1.0, 3.0, 5)
        assert np.allclose(np.diff(s.as_array()), 0.5)

    def test_single_level_constructors(self):
        assert SpeedSet.geometric(0.1, 2.0, 1).levels == (2.0,)
        assert SpeedSet.linear(0.1, 2.0, 1).levels == (2.0,)
        assert SpeedSet([3.0]).max_ratio == 1.0

    def test_constructor_validation(self):
        with pytest.raises(InvalidParameterError):
            SpeedSet.geometric(2.0, 1.0, 4)
        with pytest.raises(InvalidParameterError):
            SpeedSet.geometric(0.0, 1.0, 4)
        with pytest.raises(InvalidParameterError):
            SpeedSet.linear(1.0, 2.0, 0)

    def test_membership_and_is_level(self):
        s = SpeedSet([1.0, 2.0])
        assert 1.0 in s and 2.0 in s
        assert 1.5 not in s and "x" not in s
        assert s.is_level(2.0 * (1 + 1e-12))
        assert not s.is_level(1.999)
        assert s.is_level(0.0)  # idle is always available

    def test_bracket_interior_point(self):
        s = SpeedSet([1.0, 2.0, 4.0])
        b = s.bracket(3.0)
        assert (b.lo, b.hi) == (2.0, 4.0)
        assert b.average() == pytest.approx(3.0)

    def test_bracket_exact_level_and_zero(self):
        s = SpeedSet([1.0, 2.0])
        b = s.bracket(2.0)
        assert b.lo == b.hi == 2.0 and b.theta == 1.0
        z = s.bracket(0.0)
        assert z.average() == 0.0

    def test_bracket_below_lowest_pairs_with_idle(self):
        s = SpeedSet([1.0, 2.0])
        b = s.bracket(0.25)
        assert b.lo == 0.0 and b.hi == 1.0
        assert b.theta == pytest.approx(0.25)

    def test_bracket_above_top_raises(self):
        s = SpeedSet([1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            s.bracket(2.1)
        with pytest.raises(InvalidParameterError):
            s.bracket(-0.1)

    def test_round_down_and_up(self):
        s = SpeedSet([1.0, 2.0, 4.0])
        assert s.round_down(3.0) == 2.0
        assert s.round_down(0.5) == 0.0
        assert s.round_down(2.0) == 2.0
        assert s.round_up(3.0) == 4.0
        assert s.round_up(0.5) == 1.0
        assert s.round_up(2.0) == 2.0
        with pytest.raises(InvalidParameterError):
            s.round_up(5.0)

    @given(
        speed=st.floats(min_value=0.0, max_value=4.0),
        count=st.integers(min_value=1, max_value=9),
    )
    @SETTINGS
    def test_bracket_average_reproduces_speed(self, speed, count):
        s = SpeedSet.geometric(0.25, 4.0, count)
        b = s.bracket(speed)
        assert b.average() == pytest.approx(speed, abs=1e-12)
        assert 0.0 <= b.theta <= 1.0
        assert b.lo <= b.hi


# ---------------------------------------------------------------------------
# Envelope power
# ---------------------------------------------------------------------------
class TestEnvelope:
    def test_exact_at_levels(self):
        s = SpeedSet([1.0, 2.0, 4.0])
        p = PolynomialPower(3.0)
        env = DiscreteEnvelopePower(s, p)
        for level in s:
            assert env(level) == pytest.approx(p(level))
            assert env.overhead(level) == pytest.approx(1.0)

    def test_strictly_above_continuous_between_levels(self):
        env = DiscreteEnvelopePower(SpeedSet([1.0, 4.0]), PolynomialPower(3.0))
        for speed in (1.5, 2.0, 3.0):
            assert env(speed) > PolynomialPower(3.0)(speed)
            assert env.overhead(speed) > 1.0

    def test_linear_between_levels(self):
        p = PolynomialPower(2.0)
        env = DiscreteEnvelopePower(SpeedSet([1.0, 3.0]), p)
        mid = env(2.0)
        assert mid == pytest.approx((p(1.0) + p(3.0)) / 2.0)

    def test_idle_segment_interpolates_to_zero(self):
        env = DiscreteEnvelopePower(SpeedSet([2.0]), PolynomialPower(3.0))
        # Half the window at level 2, half idle: average speed 1.
        assert env(1.0) == pytest.approx(0.5 * 2.0**3)
        assert env(0.0) == 0.0

    def test_energy_and_helper(self):
        s = SpeedSet([1.0, 2.0])
        p = PolynomialPower(3.0)
        env = DiscreteEnvelopePower(s, p)
        assert env.energy(1.5, 2.0) == pytest.approx(env(1.5) * 2.0)
        assert envelope_energy(s, p, 1.5, 2.0) == pytest.approx(env(1.5) * 2.0)
        with pytest.raises(InvalidParameterError):
            env.energy(1.0, -1.0)

    def test_power_array_matches_scalar(self):
        s = SpeedSet.geometric(0.5, 4.0, 5)
        env = DiscreteEnvelopePower(s, PolynomialPower(2.5))
        speeds = np.linspace(0.0, 4.0, 33)
        vec = env.power_array(speeds)
        scal = np.array([env(float(x)) for x in speeds])
        assert np.allclose(vec, scal)

    def test_power_array_rejects_overspeed(self):
        env = DiscreteEnvelopePower(SpeedSet([1.0]), PolynomialPower(2.0))
        with pytest.raises(InvalidParameterError):
            env.power_array(np.array([0.5, 1.5]))

    @given(
        speed=st.floats(min_value=0.01, max_value=4.0),
        alpha=st.sampled_from([1.5, 2.0, 3.0]),
    )
    @SETTINGS
    def test_two_level_beats_every_three_level_split(self, speed, alpha):
        """Brute-force optimality: no convex combination of menu levels
        with the same average speed uses less power than the envelope."""
        s = SpeedSet.geometric(0.25, 4.0, 5)
        p = PolynomialPower(alpha)
        env = DiscreteEnvelopePower(s, p)(speed)
        levels = np.concatenate(([0.0], s.as_array()))
        powers = np.array([p(float(v)) for v in levels])
        # Sample random convex combinations matching the average speed:
        rng = np.random.default_rng(0)
        for _ in range(50):
            weights = rng.dirichlet(np.ones(levels.size))
            avg = float(weights @ levels)
            if avg <= 0:
                continue
            scale = speed / avg
            if scale > 1.0:  # cannot scale weights above a distribution
                continue
            # Mix with idle to match the target speed exactly.
            mixed_power = scale * float(weights @ powers)
            assert mixed_power >= env - 1e-9

    def test_worst_overhead_factor_monotone_in_menu_size(self):
        alphas = [2.0, 3.0]
        for alpha in alphas:
            factors = [
                worst_overhead_factor(SpeedSet.geometric(0.5, 8.0, c), alpha)
                for c in (2, 4, 8, 16)
            ]
            assert all(f >= 1.0 for f in factors)
            assert factors == sorted(factors, reverse=True)
            assert factors[-1] < factors[0]

    def test_worst_overhead_factor_edges(self):
        assert worst_overhead_factor(SpeedSet([2.0]), 3.0) == 1.0
        with pytest.raises(InvalidParameterError):
            worst_overhead_factor(SpeedSet([1.0, 2.0]), 1.0)


# ---------------------------------------------------------------------------
# Segment and schedule rounding
# ---------------------------------------------------------------------------
def _segment(speed: float, duration: float = 2.0) -> Segment:
    return Segment(job=0, processor=0, start=1.0, end=1.0 + duration, speed=speed)


class TestDiscretizeSegment:
    def test_work_is_preserved_exactly(self):
        s = SpeedSet([1.0, 2.0, 4.0])
        seg = _segment(3.0)
        parts = discretize_segment(seg, s)
        assert sum(p.work for p in parts) == pytest.approx(seg.work, abs=1e-12)

    def test_parts_tile_the_window(self):
        s = SpeedSet([1.0, 4.0])
        seg = _segment(2.0)
        parts = discretize_segment(seg, s)
        assert parts[0].start == seg.start
        assert parts[-1].end <= seg.end + 1e-12
        for a, b in zip(parts, parts[1:]):
            assert a.end == pytest.approx(b.start)

    def test_speeds_are_levels_fast_first(self):
        s = SpeedSet([1.0, 4.0])
        parts = discretize_segment(_segment(2.0), s)
        assert [p.speed for p in parts] == [4.0, 1.0]

    def test_below_lowest_level_emits_one_fast_part_and_idles(self):
        s = SpeedSet([2.0])
        seg = _segment(1.0, duration=2.0)  # work 2.0
        parts = discretize_segment(seg, s)
        assert len(parts) == 1
        assert parts[0].speed == 2.0
        assert parts[0].work == pytest.approx(seg.work)
        assert parts[0].duration == pytest.approx(1.0)

    def test_exact_level_passes_through(self):
        s = SpeedSet([1.0, 2.0])
        parts = discretize_segment(_segment(2.0), s)
        assert len(parts) == 1 and parts[0].speed == 2.0
        assert parts[0].duration == pytest.approx(2.0)

    def test_zero_speed_or_duration_yields_nothing(self):
        s = SpeedSet([1.0])
        assert discretize_segment(_segment(0.0), s) == []
        assert discretize_segment(_segment(1.0, duration=0.0), s) == []

    def test_overspeed_raises(self):
        s = SpeedSet([1.0])
        with pytest.raises(InvalidParameterError):
            discretize_segment(_segment(1.5), s)

    @given(
        speed=st.floats(min_value=0.05, max_value=4.0),
        duration=st.floats(min_value=0.05, max_value=5.0),
    )
    @SETTINGS
    def test_energy_equals_envelope(self, speed, duration):
        s = SpeedSet.geometric(0.25, 4.0, 6)
        p = PolynomialPower(3.0)
        seg = _segment(speed, duration=duration)
        parts = discretize_segment(seg, s)
        energy = sum(p(q.speed) * q.duration for q in parts)
        assert energy == pytest.approx(
            DiscreteEnvelopePower(s, p)(speed) * duration, rel=1e-9
        )


class TestDiscretizeSchedule:
    @pytest.fixture
    def result(self):
        inst = poisson_instance(
            n=10, m=2, alpha=3.0, seed=7, arrival_rate=2.5
        )
        return run_pd(inst)

    def test_roundtrip_validates(self, result):
        menu = menu_covering_schedule(result, 8)
        d = discretize_schedule(result.schedule, menu)
        d.validate()

    def test_energy_at_least_continuous(self, result):
        menu = menu_covering_schedule(result, 6)
        d = discretize_schedule(result.schedule, menu)
        assert d.energy >= d.continuous_energy - 1e-12
        assert d.overhead >= 1.0

    def test_cost_adds_unchanged_lost_value(self, result):
        menu = menu_covering_schedule(result, 6)
        d = discretize_schedule(result.schedule, menu)
        assert d.lost_value == pytest.approx(result.schedule.lost_value)
        assert d.cost == pytest.approx(d.energy + d.lost_value)

    def test_overhead_bounded_by_envelope_factor(self, result):
        for count in (2, 4, 8, 16):
            menu = menu_covering_schedule(result, count)
            d = discretize_schedule(result.schedule, menu)
            bound = worst_overhead_factor(menu, result.schedule.instance.alpha)
            assert d.overhead <= bound + 1e-9

    def test_overhead_vanishes_as_menu_refines(self, result):
        overheads = [
            discretize_schedule(
                result.schedule, menu_covering_schedule(result, c)
            ).overhead
            for c in (2, 16, 256)
        ]
        assert overheads[2] < overheads[1] < overheads[0]
        assert overheads[2] < 1.001

    def test_work_per_job_matches_loads(self, result):
        menu = menu_covering_schedule(result, 5)
        d = discretize_schedule(result.schedule, menu)
        want = result.schedule.work_done()
        got = d.work_by_job()
        for j, w in enumerate(want):
            assert got.get(j, 0.0) == pytest.approx(w, abs=1e-9)


# ---------------------------------------------------------------------------
# run_pd_discrete end-to-end
# ---------------------------------------------------------------------------
class TestRunPDDiscrete:
    def test_no_screening_on_covering_menu(self):
        inst = poisson_instance(n=8, m=2, alpha=3.0, seed=3)
        cont = run_pd(inst)
        menu = menu_covering_schedule(cont, 12)
        res = run_pd_discrete(inst, menu)
        assert res.screened_ids == ()
        assert res.cost >= cont.cost - 1e-12
        res.discrete.validate()

    def test_infeasible_mask_flags_dense_jobs(self):
        inst = Instance.from_tuples(
            [(0.0, 1.0, 5.0, 1.0), (0.0, 2.0, 1.0, 1.0)], m=1, alpha=3.0
        )
        mask = menu_infeasible_mask(inst, SpeedSet([2.0]))
        assert mask.tolist() == [True, False]

    def test_screened_job_pays_value(self):
        inst = Instance.from_tuples(
            [(0.0, 1.0, 5.0, 7.5), (0.0, 2.0, 0.5, 100.0)], m=1, alpha=3.0
        )
        res = run_pd_discrete(inst, SpeedSet([1.0]))
        assert res.screened_ids == (0,)
        assert res.screened_value == pytest.approx(7.5)
        assert res.cost >= 7.5

    def test_all_jobs_screened_raises(self):
        inst = Instance.from_tuples([(0.0, 1.0, 5.0, 1.0)], m=1, alpha=3.0)
        with pytest.raises(InvalidParameterError):
            run_pd_discrete(inst, SpeedSet([1.0]))

    def test_degradation_drops_stacked_jobs(self):
        # Two individually feasible jobs that stack above the cap: each has
        # density 0.9 <= 1, but both live in [0,1) on one processor.
        inst = Instance.from_tuples(
            [(0.0, 1.0, 0.9, 50.0), (0.0, 1.0, 0.9, 40.0)], m=1, alpha=3.0
        )
        res = run_pd_discrete(inst, SpeedSet([1.0]))
        # The cheaper job is degraded away; the expensive one survives.
        assert res.screened_ids == (1,)
        assert res.accepted_original_ids == (0,)
        res.discrete.validate()

    def test_summary_mentions_menu_and_overhead(self):
        inst = poisson_instance(n=5, m=1, alpha=2.0, seed=1)
        cont = run_pd(inst)
        menu = menu_covering_schedule(cont, 4)
        text = run_pd_discrete(inst, menu).summary()
        assert "level" in text and "overhead" in text

    def test_menu_covering_rejects_empty_schedule(self):
        inst = Instance.from_tuples(
            [(0.0, 1.0, 1.0, 1e-9)], m=1, alpha=3.0
        )  # value so small the job is rejected
        res = run_pd(inst)
        assert not res.accepted_mask.any()
        with pytest.raises(InvalidParameterError):
            menu_covering_schedule(res, 4)

    def test_single_level_menu_runs(self):
        inst = Instance.from_tuples(
            [(0.0, 4.0, 1.0, 10.0), (1.0, 5.0, 0.5, 10.0)], m=2, alpha=3.0
        )
        res = run_pd_discrete(inst, SpeedSet([2.0]))
        assert res.screened_ids == ()
        res.discrete.validate()
        # Everything runs at the single level.
        assert {seg.speed for seg in res.discrete.segments} == {2.0}

    @given(seed=st.integers(min_value=0, max_value=15))
    @SETTINGS
    def test_pipeline_invariants_random(self, seed):
        inst = poisson_instance(n=7, m=2, alpha=3.0, seed=seed)
        cont = run_pd(inst)
        menu = menu_covering_schedule(cont, 10)
        res = run_pd_discrete(inst, menu)
        res.discrete.validate()
        assert res.overhead >= 1.0 - 1e-12
        bound = worst_overhead_factor(menu, 3.0)
        assert res.overhead <= bound + 1e-9
        # End-to-end: discrete cost within overhead factor of continuous.
        assert res.cost <= bound * cont.cost + 1e-9
