"""Unit tests for jobs and instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidInstanceError, InvalidJobError, InvalidParameterError
from repro.model.job import Instance, Job


class TestJob:
    def test_basic_construction(self):
        j = Job(1.0, 3.0, 2.0, 5.0, name="x")
        assert j.window == (1.0, 3.0)
        assert j.span == 2.0
        assert j.density == 1.0
        assert j.label() == "x"

    def test_default_label_uses_index(self):
        assert Job(0.0, 1.0, 1.0, 1.0).label(7) == "J7"

    @pytest.mark.parametrize(
        "release,deadline,workload,value",
        [
            (-1.0, 1.0, 1.0, 1.0),  # negative release
            (1.0, 1.0, 1.0, 1.0),  # empty window
            (2.0, 1.0, 1.0, 1.0),  # inverted window
            (0.0, 1.0, 0.0, 1.0),  # zero workload
            (0.0, 1.0, -1.0, 1.0),  # negative workload
            (0.0, 1.0, 1.0, -1.0),  # negative value
            (0.0, float("inf"), 1.0, 1.0),  # infinite deadline
            (float("nan"), 1.0, 1.0, 1.0),  # NaN release
        ],
    )
    def test_invalid_jobs_rejected(self, release, deadline, workload, value):
        with pytest.raises(InvalidJobError):
            Job(release, deadline, workload, value)

    def test_zero_value_allowed(self):
        assert Job(0.0, 1.0, 1.0, 0.0).value == 0.0

    def test_with_value(self):
        j = Job(0.0, 1.0, 1.0, 1.0)
        assert j.with_value(9.0).value == 9.0
        assert j.value == 1.0  # original unchanged

    def test_jobs_are_immutable(self):
        j = Job(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(AttributeError):
            j.workload = 2.0  # type: ignore[misc]


class TestInstance:
    def test_from_tuples_and_arrays(self):
        inst = Instance.from_tuples(
            [(0.0, 2.0, 1.0, 3.0), (1.0, 4.0, 2.0, 5.0)], m=2, alpha=2.5
        )
        assert inst.n == 2
        np.testing.assert_allclose(inst.releases, [0.0, 1.0])
        np.testing.assert_allclose(inst.deadlines, [2.0, 4.0])
        np.testing.assert_allclose(inst.workloads, [1.0, 2.0])
        np.testing.assert_allclose(inst.values, [3.0, 5.0])
        assert inst.total_value == 8.0
        assert inst.horizon == (0.0, 4.0)

    def test_classical_jobs_have_huge_values(self):
        inst = Instance.classical([(0.0, 1.0, 1.0)])
        assert inst[0].value >= 1e29

    def test_event_times_deduplicated_sorted(self):
        inst = Instance.from_tuples(
            [(0.0, 2.0, 1.0, 1.0), (0.0, 1.0, 1.0, 1.0), (1.0, 2.0, 1.0, 1.0)]
        )
        np.testing.assert_allclose(inst.event_times(), [0.0, 1.0, 2.0])

    def test_invalid_machine(self):
        with pytest.raises(InvalidParameterError):
            Instance((Job(0, 1, 1, 1),), m=0)
        with pytest.raises(InvalidParameterError):
            Instance((Job(0, 1, 1, 1),), m=1, alpha=1.0)

    def test_sorted_by_release_tiebreak_deadline(self):
        inst = Instance.from_tuples(
            [(0.0, 3.0, 1.0, 1.0), (0.0, 1.0, 1.0, 1.0), (0.0, 2.0, 1.0, 1.0)]
        )
        ordered = inst.sorted_by_release()
        assert [j.deadline for j in ordered.jobs] == [1.0, 2.0, 3.0]

    def test_arrival_order_matches_sorted(self):
        inst = Instance.from_tuples(
            [(2.0, 3.0, 1.0, 1.0), (0.0, 1.0, 1.0, 1.0), (1.0, 2.0, 1.0, 1.0)]
        )
        order = inst.arrival_order()
        assert order == [1, 2, 0]

    def test_restrict(self):
        inst = Instance.from_tuples(
            [(0.0, 1.0, 1.0, 1.0), (1.0, 2.0, 2.0, 2.0), (2.0, 3.0, 3.0, 3.0)]
        )
        sub = inst.restrict([2, 0])
        assert sub.n == 2
        assert sub[0].workload == 3.0
        assert sub[1].workload == 1.0

    def test_with_machine(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1.0)], m=1, alpha=2.0)
        other = inst.with_machine(m=4)
        assert other.m == 4 and other.alpha == 2.0
        other2 = inst.with_machine(alpha=3.0)
        assert other2.m == 1 and other2.alpha == 3.0

    def test_with_values_length_check(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1.0)])
        with pytest.raises(InvalidInstanceError):
            inst.with_values([1.0, 2.0])
        assert inst.with_values([7.0])[0].value == 7.0

    def test_scaled(self):
        inst = Instance.from_tuples([(1.0, 3.0, 2.0, 5.0)])
        s = inst.scaled(time=2.0, work=3.0)
        assert s[0].release == 2.0
        assert s[0].deadline == 6.0
        assert s[0].workload == 6.0
        assert s[0].value == 5.0  # values do not scale

    def test_scaled_invalid(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1.0)])
        with pytest.raises(InvalidParameterError):
            inst.scaled(time=0.0)

    def test_describe_contains_counts(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1.0)], m=3, alpha=2.0)
        text = inst.describe()
        assert "n=1" in text and "m=3" in text

    def test_iteration_and_indexing(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1.0), (0.0, 2.0, 2.0, 2.0)])
        assert len(inst) == 2
        assert [j.workload for j in inst] == [1.0, 2.0]
        assert inst[1].workload == 2.0
