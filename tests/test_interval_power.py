"""Tests for the interval energy ``P_k``, its gradient, and water queries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chen.interval_power import (
    SortedLoads,
    added_job_speed,
    interval_energy,
    interval_energy_gradient,
    job_speeds,
    max_load_at_speed,
    pool_level,
)
from repro.errors import InvalidParameterError
from repro.model.power import PolynomialPower

from conftest import numeric_gradient

loads_strategy = st.lists(
    st.floats(min_value=0.0, max_value=20.0), min_size=0, max_size=10
)
pos_loads_strategy = st.lists(
    st.floats(min_value=0.01, max_value=20.0), min_size=1, max_size=10
)
m_strategy = st.integers(min_value=1, max_value=6)
alpha_strategy = st.sampled_from([1.5, 2.0, 2.5, 3.0])


class TestIntervalEnergy:
    def test_zero_loads_zero_energy(self):
        p = PolynomialPower(3.0)
        assert interval_energy(np.zeros(4), 2, 1.0, p) == 0.0

    def test_single_processor_closed_form(self):
        # On one processor everything pools: E = l * (U/l)^alpha.
        p = PolynomialPower(3.0)
        loads = np.array([1.0, 2.0, 0.5])
        lk = 2.0
        expected = lk * (loads.sum() / lk) ** 3
        assert interval_energy(loads, 1, lk, p) == pytest.approx(expected)

    def test_paper_equation6(self):
        # m=2, loads [5,3,1]: dedicated {5}, pool {3,1} on one processor.
        p = PolynomialPower(3.0)
        expected = 1.0 * 5.0**3 + 1.0 * 4.0**3
        assert interval_energy(np.array([5.0, 3.0, 1.0]), 2, 1.0, p) == pytest.approx(
            expected
        )

    def test_invalid_length(self):
        with pytest.raises(InvalidParameterError):
            interval_energy(np.array([1.0]), 1, 0.0, PolynomialPower(2.0))

    @given(loads=loads_strategy, m=m_strategy, alpha=alpha_strategy)
    @settings(max_examples=150)
    def test_energy_nonnegative_and_monotone_in_m(self, loads, m, alpha):
        """More processors can only lower the minimal energy."""
        p = PolynomialPower(alpha)
        arr = np.array(loads)
        e_m = interval_energy(arr, m, 1.0, p)
        e_m1 = interval_energy(arr, m + 1, 1.0, p)
        assert e_m >= -1e-12
        assert e_m1 <= e_m + 1e-9

    @given(loads=pos_loads_strategy, m=m_strategy, alpha=alpha_strategy)
    @settings(max_examples=150)
    def test_convexity_along_random_segment(self, loads, m, alpha):
        """P_k is convex: midpoint value at most the average of endpoints."""
        p = PolynomialPower(alpha)
        a = np.array(loads)
        rng = np.random.default_rng(42)
        b = a * rng.uniform(0.0, 2.0, size=a.size)
        mid = 0.5 * (a + b)
        e_mid = interval_energy(mid, m, 1.0, p)
        e_avg = 0.5 * (
            interval_energy(a, m, 1.0, p) + interval_energy(b, m, 1.0, p)
        )
        assert e_mid <= e_avg + 1e-7 * max(1.0, e_avg)

    @given(loads=pos_loads_strategy, m=m_strategy)
    @settings(max_examples=100)
    def test_energy_is_minimum_over_explicit_schedules(self, loads, m):
        """P_k never exceeds the energy of the naive one-job-per-speed plan."""
        p = PolynomialPower(3.0)
        arr = np.array(loads)
        # Naive comparison plan: each of the (<= m) largest jobs alone at
        # constant speed, rest bunched on the last processor.
        arr_sorted = np.sort(arr)[::-1]
        own = arr_sorted[: m - 1] if m > 1 else np.array([])
        rest = arr_sorted[m - 1 :].sum() if m >= 1 else 0.0
        naive = float(np.sum(own**3)) + rest**3
        assert interval_energy(arr, m, 1.0, p) <= naive + 1e-7 * max(1.0, naive)


class TestGradient:
    @given(loads=pos_loads_strategy, m=m_strategy, alpha=alpha_strategy)
    @settings(max_examples=150, deadline=None)
    def test_gradient_matches_finite_differences(self, loads, m, alpha):
        """Proposition 1(b): dP_k/du_j = P'(s_j), checked numerically."""
        p = PolynomialPower(alpha)
        arr = np.array(loads)
        lk = 1.3
        grad = interval_energy_gradient(arr, m, lk, p)
        num = numeric_gradient(lambda x: interval_energy(x, m, lk, p), arr)
        np.testing.assert_allclose(grad, num, rtol=5e-4, atol=5e-4)

    def test_zero_load_prices_at_pool_level(self):
        p = PolynomialPower(3.0)
        loads = np.array([5.0, 3.0, 1.0, 0.0])
        grad = interval_energy_gradient(loads, 2, 1.0, p)
        # Pool level is 4.0 -> marginal 3 * 16 = 48 for the zero-load job.
        assert grad[3] == pytest.approx(p.derivative(4.0))

    def test_gradient_speeds_match_job_speeds(self):
        p = PolynomialPower(2.5)
        loads = np.array([5.0, 3.0, 1.0])
        g = interval_energy_gradient(loads, 2, 2.0, p)
        s = job_speeds(loads, 2, 2.0)
        np.testing.assert_allclose(g, p.derivative_array(s))


class TestPoolLevel:
    def test_existing_pool(self):
        assert pool_level(np.array([5.0, 3.0, 1.0]), 2) == pytest.approx(4.0)

    def test_all_dedicated_forces_new_pool(self):
        # m=2, loads [5, 3]: both dedicated; a new infinitesimal job would
        # share with the 3-load job at level 3.
        assert pool_level(np.array([5.0, 3.0]), 2) == pytest.approx(3.0)

    def test_idle_processor_gives_zero_level(self):
        assert pool_level(np.array([5.0]), 2) == 0.0
        assert pool_level(np.array([]), 3) == 0.0

    @given(loads=loads_strategy, m=m_strategy)
    @settings(max_examples=200)
    def test_matches_tiny_job_limit(self, loads, m):
        arr = np.array(loads)
        level = pool_level(arr, m)
        s = added_job_speed(arr, 1e-9, m, 1.0)
        assert s == pytest.approx(level, abs=1e-6)


class TestWaterQueries:
    @given(
        loads=loads_strategy,
        m=m_strategy,
        target=st.floats(min_value=0.01, max_value=50.0),
    )
    @settings(max_examples=300)
    def test_inversion_consistency(self, loads, m, target):
        """max_load_at_speed returns the exact inverse of added_job_speed."""
        arr = np.array(loads)
        z = max_load_at_speed(arr, target, m, 1.0)
        if z > 1e-9:
            s = added_job_speed(arr, z, m, 1.0)
            assert s <= target * (1.0 + 1e-7)
        # A slightly larger load must exceed the target.
        bump = max(z * 1e-6, 1e-9)
        s_plus = added_job_speed(arr, z + bump, m, 1.0)
        assert s_plus >= target * (1.0 - 1e-5) or z == 0.0

    @given(loads=loads_strategy, m=m_strategy)
    @settings(max_examples=150)
    def test_added_speed_monotone_in_z(self, loads, m):
        arr = np.array(loads)
        zs = [0.1, 0.5, 1.0, 5.0, 20.0]
        speeds = [added_job_speed(arr, z, m, 1.0) for z in zs]
        assert all(b >= a - 1e-9 for a, b in zip(speeds, speeds[1:]))

    @given(
        loads=loads_strategy,
        m=m_strategy,
        t1=st.floats(min_value=0.01, max_value=20.0),
        t2=st.floats(min_value=0.01, max_value=20.0),
    )
    @settings(max_examples=150)
    def test_max_load_monotone_in_target(self, loads, m, t1, t2):
        arr = np.array(loads)
        lo, hi = min(t1, t2), max(t1, t2)
        assert max_load_at_speed(arr, lo, m, 1.0) <= max_load_at_speed(
            arr, hi, m, 1.0
        ) + 1e-9

    def test_zero_target_zero_load(self):
        assert max_load_at_speed(np.array([1.0]), 0.0, 2, 1.0) == 0.0

    def test_dedicated_regime(self):
        # Empty machine: any target is achieved by a dedicated job.
        assert max_load_at_speed(np.array([]), 2.0, 1, 3.0) == pytest.approx(6.0)

    def test_pool_regime(self):
        # Loads [4,2,1] on m=3: level for target 2.5 dedicates {4},
        # pool balance (3 + z) / 2 = 2.5 -> z = 2.
        z = max_load_at_speed(np.array([4.0, 2.0, 1.0]), 2.5, 3, 1.0)
        assert z == pytest.approx(2.0)

    def test_saturated_machine_accepts_nothing(self):
        # All processors already above the target level.
        z = max_load_at_speed(np.array([5.0, 5.0]), 1.0, 2, 1.0)
        assert z == 0.0

    def test_sorted_loads_cache_agrees(self):
        arr = np.array([4.0, 2.0, 1.0])
        cache = SortedLoads(arr, 3, 1.5)
        for target in [0.3, 1.0, 2.5, 8.0]:
            assert cache.max_load_at_speed(target) == pytest.approx(
                max_load_at_speed(arr, target, 3, 1.5)
            )
        assert cache.zero_load_speed() == pytest.approx(
            pool_level(arr, 3) / 1.5
        )
