"""Tests for the offline convex solver and the exact (IMP) solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classical.yds import yds
from repro.core.pd import run_pd
from repro.errors import InvalidParameterError
from repro.model.job import Instance
from repro.offline import (
    reject_all_upper_bound,
    solo_choice_lower_bound,
    solo_energy,
    solve_exact,
    solve_min_energy,
)
from repro.offline.convex import kkt_residual
from repro.workloads import poisson_instance


def random_classical(n: int, seed: int, m: int = 1, alpha: float = 3.0) -> Instance:
    rng = np.random.default_rng(seed)
    rows = []
    t = 0.0
    for _ in range(n):
        t += float(rng.uniform(0.0, 1.0))
        rows.append((t, t + float(rng.uniform(0.5, 3.0)), float(rng.uniform(0.2, 2.0))))
    return Instance.classical(rows, m=m, alpha=alpha)


class TestConvexSolver:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_yds_on_single_processor(self, seed):
        inst = random_classical(7, seed=seed)
        sol = solve_min_energy(inst)
        assert sol.converged
        assert sol.energy == pytest.approx(yds(inst).energy, rel=1e-6)

    def test_kkt_residual_near_zero_at_optimum(self):
        inst = random_classical(6, seed=1)
        sol = solve_min_energy(inst)
        assert sol.kkt < 1e-7

    def test_kkt_residual_positive_off_optimum(self):
        inst = random_classical(4, seed=2)
        sol = solve_min_energy(inst)
        # Perturb: push all of job 0's work into its first interval.
        loads = sol.schedule.loads.copy()
        grid = sol.schedule.grid
        ks = list(grid.covering(inst[0].release, inst[0].deadline))
        if len(ks) > 1:
            loads[0, :] = 0.0
            loads[0, ks[0]] = inst[0].workload
            assert kkt_residual(inst, grid, loads, range(inst.n)) > 1e-3

    @pytest.mark.parametrize("m", [2, 3, 5])
    def test_multiprocessor_monotone_in_m(self, m):
        inst = random_classical(6, seed=3, m=m)
        e_m = solve_min_energy(inst).energy
        e_1 = solve_min_energy(inst.with_machine(m=1)).energy
        assert e_m <= e_1 + 1e-9

    def test_subset_acceptance(self):
        inst = random_classical(5, seed=4)
        full = solve_min_energy(inst).energy
        partial = solve_min_energy(inst, accepted=[0, 2]).energy
        assert partial <= full + 1e-9
        sched = solve_min_energy(inst, accepted=[0, 2]).schedule
        assert list(np.nonzero(sched.finished)[0]) == [0, 2]
        # Unaccepted jobs receive no work.
        assert sched.loads[[1, 3, 4], :].sum() == pytest.approx(0.0)

    def test_batch_two_processors_closed_form(self):
        # Two equal jobs, two processors, one interval: each runs alone.
        inst = Instance.classical([(0.0, 1.0, 1.0), (0.0, 1.0, 1.0)], m=2, alpha=3.0)
        assert solve_min_energy(inst).energy == pytest.approx(2.0)

    def test_invalid_accepted_ids(self):
        inst = random_classical(3, seed=5)
        with pytest.raises(InvalidParameterError):
            solve_min_energy(inst, accepted=[7])


class TestExactSolver:
    def test_tiny_instance_brute_force(self):
        """Cross-check against literal enumeration without pruning."""
        inst = Instance.from_tuples(
            [(0.0, 2.0, 1.0, 0.8), (0.0, 1.0, 1.0, 5.0), (1.0, 3.0, 2.0, 0.2)],
            m=1,
            alpha=2.0,
        )
        exact = solve_exact(inst)
        # Literal: all 8 subsets.
        from itertools import combinations

        best = inst.total_value
        for size in range(1, 4):
            for subset in combinations(range(3), size):
                energy = solve_min_energy(inst, accepted=subset).energy
                rejected = inst.total_value - sum(inst[j].value for j in subset)
                best = min(best, energy + rejected)
        assert exact.cost == pytest.approx(best, rel=1e-7)

    def test_reject_all_when_values_tiny(self):
        inst = Instance.from_tuples(
            [(0.0, 1.0, 1.0, 1e-9), (0.0, 1.0, 1.0, 1e-9)], m=1, alpha=3.0
        )
        exact = solve_exact(inst)
        assert exact.accepted == ()
        assert exact.cost == pytest.approx(2e-9)

    def test_accept_all_when_values_huge(self):
        inst = Instance.classical([(0.0, 1.0, 0.5), (0.0, 2.0, 0.5)], m=1, alpha=3.0)
        exact = solve_exact(inst)
        assert set(exact.accepted) == {0, 1}
        assert exact.cost == pytest.approx(yds(inst).energy, rel=1e-6)

    def test_pruning_counts(self):
        inst = poisson_instance(8, m=1, alpha=2.0, seed=0)
        exact = solve_exact(inst)
        assert exact.subsets_solved + exact.subsets_pruned == 2**8 - 1

    def test_size_cap(self):
        inst = poisson_instance(19, m=1, seed=0)
        with pytest.raises(InvalidParameterError):
            solve_exact(inst)

    @pytest.mark.parametrize("seed", range(4))
    def test_pd_within_alpha_alpha_of_exact(self, seed):
        """Theorem 3 against the true optimum on small instances."""
        inst = poisson_instance(7, m=1, alpha=2.0, seed=seed)
        opt = solve_exact(inst).cost
        pd = run_pd(inst).cost
        assert pd <= 2.0**2.0 * opt * (1.0 + 1e-6)

    def test_multiprocessor_exact(self):
        inst = poisson_instance(6, m=2, alpha=2.0, seed=9)
        exact = solve_exact(inst)
        pd = run_pd(inst)
        assert pd.cost <= 4.0 * exact.cost * (1.0 + 1e-6)
        assert exact.cost <= pd.cost * (1.0 + 1e-9)


class TestBounds:
    def test_solo_energy(self):
        inst = Instance.from_tuples([(0.0, 2.0, 4.0, 1.0)], alpha=3.0)
        assert solo_energy(inst, 0) == pytest.approx(2.0 * 8.0)

    def test_solo_choice_lower_bound_below_exact(self):
        for seed in range(4):
            inst = poisson_instance(6, m=1, alpha=2.0, seed=seed)
            lb = solo_choice_lower_bound(inst)
            assert lb <= solve_exact(inst).cost * (1.0 + 1e-9)

    def test_reject_all_upper_bound_above_exact(self):
        inst = poisson_instance(6, m=1, alpha=2.0, seed=1)
        assert reject_all_upper_bound(inst) >= solve_exact(inst).cost - 1e-9
