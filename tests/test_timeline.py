"""Tests for IntervalSet algebra and the EDF executor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.classical.timeline import IntervalSet, edf_execute
from repro.errors import InfeasibleScheduleError, InvalidParameterError


def iset(*parts):
    return IntervalSet.from_parts(parts)


class TestIntervalSet:
    def test_from_parts_merges_touching(self):
        s = iset((0.0, 1.0), (1.0, 2.0), (3.0, 4.0))
        assert s.parts == ((0.0, 2.0), (3.0, 4.0))
        assert s.measure == pytest.approx(3.0)

    def test_degenerate_parts_dropped(self):
        assert iset((0.0, 0.0), (1.0, 1.0 + 1e-15)).is_empty

    def test_invalid_direct_construction(self):
        with pytest.raises(InvalidParameterError):
            IntervalSet(parts=((1.0, 0.5),))
        with pytest.raises(InvalidParameterError):
            IntervalSet(parts=((0.0, 2.0), (1.0, 3.0)))

    def test_measure_within(self):
        s = iset((0.0, 2.0), (3.0, 5.0))
        assert s.measure_within(1.0, 4.0) == pytest.approx(2.0)
        assert s.measure_within(5.0, 9.0) == 0.0

    def test_contains(self):
        s = iset((0.0, 1.0))
        assert s.contains(0.0)
        assert s.contains(0.5)
        assert not s.contains(1.0)  # half-open

    def test_union(self):
        a, b = iset((0.0, 1.0)), iset((0.5, 2.0))
        assert a.union(b).parts == ((0.0, 2.0),)

    def test_subtract_middle(self):
        s = iset((0.0, 3.0)).subtract(iset((1.0, 2.0)))
        assert s.parts == ((0.0, 1.0), (2.0, 3.0))

    def test_subtract_everything(self):
        assert iset((0.0, 1.0)).subtract(iset((0.0, 2.0))).is_empty

    def test_intersect_window(self):
        s = iset((0.0, 2.0), (3.0, 5.0)).intersect_window(1.0, 4.0)
        assert s.parts == ((1.0, 2.0), (3.0, 4.0))

    @given(
        parts=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            max_size=6,
        ),
        window=st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.floats(min_value=0.0, max_value=10.0),
        ),
    )
    @settings(max_examples=200)
    def test_subtract_union_measures(self, parts, window):
        """measure(A) == measure(A - B) + measure(A ∩ B) (via window B)."""
        a = IntervalSet.from_parts((min(p), max(p)) for p in parts)
        lo, hi = min(window), max(window)
        b = IntervalSet.span(lo, hi) if hi > lo + 1e-9 else IntervalSet.empty()
        inter = a.intersect_window(lo, hi) if not b.is_empty else IntervalSet.empty()
        assert a.subtract(b).measure + inter.measure == pytest.approx(
            a.measure, abs=1e-7
        )


class TestEdfExecute:
    def test_single_job(self):
        segs = edf_execute(
            job_ids=[0],
            releases=[0.0],
            deadlines=[1.0],
            workloads=[0.5],
            region=IntervalSet.span(0.0, 1.0),
            speed=1.0,
        )
        assert len(segs) == 1
        job, a, b, s = segs[0]
        assert (job, a, s) == (0, 0.0, 1.0)
        assert b == pytest.approx(0.5)

    def test_edf_priority(self):
        # Tighter-deadline job 1 preempts nothing but runs first.
        segs = edf_execute(
            job_ids=[0, 1],
            releases=[0.0, 0.0],
            deadlines=[2.0, 1.0],
            workloads=[1.0, 1.0],
            region=IntervalSet.span(0.0, 2.0),
            speed=1.0,
        )
        assert segs[0][0] == 1  # earliest deadline first
        assert segs[1][0] == 0

    def test_late_release_waits(self):
        segs = edf_execute(
            job_ids=[0],
            releases=[1.0],
            deadlines=[2.0],
            workloads=[0.5],
            region=IntervalSet.span(0.0, 2.0),
            speed=1.0,
        )
        assert segs[0][1] == pytest.approx(1.0)

    def test_disconnected_region(self):
        segs = edf_execute(
            job_ids=[0],
            releases=[0.0],
            deadlines=[4.0],
            workloads=[2.0],
            region=iset((0.0, 1.0), (3.0, 4.0)),
            speed=1.0,
        )
        assert len(segs) == 2
        spans = [(a, b) for _, a, b, _ in segs]
        assert spans == [(0.0, 1.0), (3.0, 4.0)]

    def test_infeasible_speed_detected(self):
        with pytest.raises(InfeasibleScheduleError):
            edf_execute(
                job_ids=[0],
                releases=[0.0],
                deadlines=[1.0],
                workloads=[5.0],
                region=IntervalSet.span(0.0, 1.0),
                speed=1.0,
            )

    def test_zero_speed_rejected(self):
        with pytest.raises(InvalidParameterError):
            edf_execute(
                job_ids=[0],
                releases=[0.0],
                deadlines=[1.0],
                workloads=[0.5],
                region=IntervalSet.span(0.0, 1.0),
                speed=0.0,
            )

    def test_preemption_on_tighter_arrival(self):
        # Job 0 runs, job 1 (tighter) arrives at 0.5 and preempts.
        segs = edf_execute(
            job_ids=[0, 1],
            releases=[0.0, 0.5],
            deadlines=[3.0, 1.0],
            workloads=[2.0, 0.5],
            region=IntervalSet.span(0.0, 3.0),
            speed=1.0,
        )
        order = [j for j, *_ in segs]
        assert order == [0, 1, 0]

    def test_work_conservation(self):
        workloads = [0.7, 0.9, 0.4]
        segs = edf_execute(
            job_ids=[0, 1, 2],
            releases=[0.0, 0.2, 0.4],
            deadlines=[3.0, 2.0, 2.5],
            workloads=workloads,
            region=IntervalSet.span(0.0, 3.0),
            speed=1.0,
        )
        done = {j: 0.0 for j in range(3)}
        for j, a, b, s in segs:
            done[j] += (b - a) * s
        for j, w in enumerate(workloads):
            assert done[j] == pytest.approx(w, abs=1e-9)
