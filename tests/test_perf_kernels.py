"""Bit-parity suite for the incremental kernel layer (``repro.perf``).

The kernels promise that speed is an execution strategy, never a result
change: the incremental PD scheduler, the batched window evaluator, the
vectorized YDS scan, the inlined energy loop, and the vectorized
certificate helpers must produce **bitwise identical** outputs to the
historical implementations — same schedules, same costs, same
certificates, and therefore same cache keys (the engine's record
payloads hash identically, so every pre-kernel cache entry stays
valid). Each test here runs old and new side by side and compares with
exact equality, never tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.certificates import dual_certificate
from repro.chen.interval_power import SortedLoads
from repro.classical.oa import run_oa
from repro.classical.yds import yds
from repro.core.pd import run_pd
from repro.core.waterfill import waterfill_job
from repro.engine.runner import RECORD_VERSION, request_key
from repro.io.serialize import schedule_to_dict, stable_hash
from repro.model.intervals import Grid
from repro.model.job import Instance
from repro.perf.kernels import IntervalLoads, WindowKernel
from repro.perf.reference import run_pd_reference
from repro.workloads import (
    heavy_tail_instance,
    poisson_instance,
    uniform_instance,
)

#: (family, n, m) — includes multiprocessor and heavy-tail shapes.
FAMILIES = [
    (poisson_instance, 40, 1),
    (poisson_instance, 40, 4),
    (heavy_tail_instance, 32, 2),
    (uniform_instance, 24, 3),
]


def degenerate_single_interval(n: int = 12, m: int = 2) -> Instance:
    """Every job shares one window: the grid never refines past one
    atomic interval — the degenerate shape the split-copy path never
    sees and the insertion path sees constantly."""
    rng = np.random.default_rng(5)
    jobs = [
        (0.0, 4.0, float(w), float(v))
        for w, v in zip(
            rng.exponential(1.0, n) + 1e-3, rng.uniform(0.05, 8.0, n)
        )
    ]
    return Instance.from_tuples(jobs, m=m, alpha=3.0)


def assert_pd_parity(instance: Instance) -> None:
    new = run_pd(instance)
    old = run_pd_reference(instance)
    assert np.array_equal(new.schedule.loads, old.schedule.loads)
    assert np.array_equal(new.planned_loads, old.planned_loads)
    assert np.array_equal(new.lambdas, old.lambdas)
    assert np.array_equal(new.schedule.finished, old.schedule.finished)
    assert new.decisions == old.decisions
    assert new.schedule.energy == old.schedule.energy
    assert new.cost == old.cost
    cert_new, cert_old = dual_certificate(new), dual_certificate(old)
    assert cert_new.g == cert_old.g
    assert cert_new.ratio == cert_old.ratio
    assert cert_new.contributors == cert_old.contributors
    assert np.array_equal(cert_new.s_hat, cert_old.s_hat)


class TestPDParity:
    @pytest.mark.parametrize("family,n,m", FAMILIES)
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_families_bitwise_identical(self, family, n, m, seed):
        assert_pd_parity(family(n, m=m, alpha=3.0, seed=seed))

    def test_degenerate_single_interval_grid(self):
        assert_pd_parity(degenerate_single_interval())

    def test_classical_infinite_values(self):
        base = poisson_instance(24, m=1, alpha=3.0, seed=2)
        inst = Instance.classical(
            [(j.release, j.deadline, j.workload) for j in base.jobs],
            m=1,
            alpha=3.0,
        )
        assert_pd_parity(inst)

    def test_sweep_cells_share_cache_identity(self):
        """The engine contract behind 'same cache keys': the record
        version is unbumped, request keys depend only on inputs, and
        the serialized schedule payload — the record body that gets
        content-hashed — is byte-identical old vs new."""
        assert RECORD_VERSION == 2  # a bump would cold-start every cache
        inst = poisson_instance(30, m=2, alpha=3.0, seed=1)
        assert request_key("pd", inst) == request_key("pd", inst)
        new = run_pd(inst)
        old = run_pd_reference(inst)
        assert stable_hash(schedule_to_dict(new.schedule)) == stable_hash(
            schedule_to_dict(old.schedule)
        )


class TestKernelPrimitives:
    @pytest.mark.parametrize("m", [1, 2, 5])
    def test_interval_loads_matches_sorted_loads(self, m):
        rng = np.random.default_rng(9)
        store = IntervalLoads()
        inserted: list[float] = []
        length = 0.75
        for job_id in range(40):
            load = float(rng.exponential(1.0) + 1e-6)
            store.insert(job_id, load)
            inserted.append(load)
            reference = SortedLoads(np.array(inserted), m, length)
            for speed in (0.0, 0.3, 1.0, 2.7, float(rng.uniform(0, 5))):
                assert store.max_load_at_speed(
                    speed, m, length
                ) == reference.max_load_at_speed(speed)

    def test_interval_loads_split_matches_rescaled_sort(self):
        rng = np.random.default_rng(4)
        store = IntervalLoads()
        loads = rng.exponential(1.0, 25) + 1e-6
        for job_id, load in enumerate(loads):
            store.insert(job_id, float(load))
        fraction = 0.37
        child = store.split(fraction)
        reference = SortedLoads(loads * fraction, 3, 0.5)
        for speed in np.linspace(0.0, 4.0, 23):
            assert child.max_load_at_speed(
                float(speed), 3, 0.5
            ) == reference.max_load_at_speed(float(speed))

    @pytest.mark.parametrize("k", [1, 3, 31, 32, 40])
    def test_window_kernel_matches_python_sum(self, k):
        """Both kernel paths — the scalar loop (narrow windows) and the
        batched numpy pass (wide ones, k >= 32) — must equal the
        reference's left-to-right Python sum over SortedLoads bit for
        bit."""
        rng = np.random.default_rng(k)
        m = 3
        stores, caches, lengths = [], [], []
        for _ in range(k):
            p = int(rng.integers(0, 9))
            loads = rng.exponential(1.0, p) + 1e-6
            length = float(rng.uniform(0.1, 2.0))
            store = IntervalLoads()
            for job_id, load in enumerate(loads):
                store.insert(job_id, float(load))
            stores.append(store)
            caches.append(SortedLoads(loads, m, length))
            lengths.append(length)
        kernel = WindowKernel(stores, lengths, m)
        for speed in [0.0, *np.linspace(0.01, 6.0, 37)]:
            speed = float(speed)
            expected_total = float(
                sum(c.max_load_at_speed(speed) for c in caches)
            )
            expected_loads = np.array(
                [c.max_load_at_speed(speed) for c in caches]
            )
            assert kernel.total_at_speed(speed) == expected_total
            assert np.array_equal(kernel.loads_at_speed(speed), expected_loads)

    def test_waterfill_accepts_kernel_and_caches_identically(self):
        rng = np.random.default_rng(7)
        m = 2
        stores, caches, lengths = [], [], []
        for _ in range(5):
            loads = rng.exponential(1.0, 4) + 1e-6
            length = float(rng.uniform(0.2, 1.5))
            store = IntervalLoads()
            for job_id, load in enumerate(loads):
                store.insert(job_id, float(load))
            stores.append(store)
            caches.append(SortedLoads(loads, m, length))
            lengths.append(length)
        from repro.model.power import PolynomialPower

        power = PolynomialPower(3.0)
        for workload, value in [(0.7, 2.0), (3.0, 0.4), (1.2, np.inf)]:
            via_kernel = waterfill_job(
                WindowKernel(stores, lengths, m),
                workload=workload,
                value=value,
                delta=power.optimal_delta,
                power=power,
            )
            via_caches = waterfill_job(
                caches,
                workload=workload,
                value=value,
                delta=power.optimal_delta,
                power=power,
            )
            assert via_kernel.accepted == via_caches.accepted
            assert via_kernel.lam == via_caches.lam
            assert via_kernel.speed == via_caches.speed
            assert np.array_equal(via_kernel.loads, via_caches.loads)

    def test_interval_loads_rejects_nonpositive(self):
        store = IntervalLoads()
        with pytest.raises(Exception, match="> 0"):
            store.insert(0, 0.0)


class TestGridRefineParity:
    def _reference_refine(self, grid: Grid, new_points):
        """Transcription of the historical O(N log N) refine loop."""
        existing = grid.boundaries.tolist()
        eps = 1e-12
        fresh = [
            p
            for p in map(float, new_points)
            if not any(abs(p - b) <= eps for b in existing)
        ]
        merged: list[float] = []
        for p in sorted(set(fresh) | set(existing)):
            if not merged or p - merged[-1] > eps:
                merged.append(p)
        new = Grid(np.array(merged))
        parent = np.empty(new.size, dtype=np.int64)
        fraction = np.empty(new.size, dtype=np.float64)
        old_lo, old_hi = grid.span
        for k in range(new.size):
            a, b = new.interval(k)
            if a < old_lo - eps or b > old_hi + eps:
                parent[k] = -1
                fraction[k] = 1.0
                continue
            p = grid.locate(a)
            parent[k] = p
            fraction[k] = (b - a) / grid.length(p)
        return new, parent, fraction

    @pytest.mark.parametrize("seed", range(8))
    def test_random_refinements_bitwise_identical(self, seed):
        rng = np.random.default_rng(seed)
        boundaries = np.sort(rng.uniform(0.0, 10.0, 7))
        boundaries[0], boundaries[-1] = 0.0, 10.0
        grid = Grid(boundaries)
        points = rng.uniform(-2.0, 12.0, 5).tolist()
        points.append(float(boundaries[2]))  # exact boundary: must snap
        refinement = grid.refine(points)
        ref_grid, ref_parent, ref_fraction = self._reference_refine(
            grid, points
        )
        assert np.array_equal(refinement.grid.boundaries, ref_grid.boundaries)
        assert np.array_equal(refinement.parent, ref_parent)
        assert np.array_equal(refinement.fraction, ref_fraction)


class TestYdsOaParity:
    def classical(self, n, seed, family=poisson_instance):
        inst = family(n, m=1, alpha=3.0, seed=seed)
        return Instance.classical(
            [(j.release, j.deadline, j.workload) for j in inst.jobs],
            m=1,
            alpha=3.0,
        )

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize(
        "family", [poisson_instance, uniform_instance, heavy_tail_instance]
    )
    def test_yds_fast_scan_equals_reference(self, seed, family):
        inst = self.classical(18, seed, family)
        fast = yds(inst)
        slow = yds(inst, scan="reference")
        assert np.array_equal(fast.schedule.loads, slow.schedule.loads)
        assert np.array_equal(fast.job_speeds, slow.job_speeds)
        assert fast.groups == slow.groups
        assert fast.segments == slow.segments
        assert fast.energy == slow.energy

    def test_yds_exact_intensity_ties(self):
        """Symmetric windows with exactly equal critical intensities:
        the fast scan must keep the reference's first-wins tie rule."""
        inst = Instance.classical(
            [
                (0.0, 2.0, 1.0),
                (2.0, 4.0, 1.0),
                (4.0, 6.0, 1.0),
                (0.0, 6.0, 1.0),
                (1.0, 3.0, 1.0),
            ],
            m=1,
            alpha=3.0,
        )
        fast, slow = yds(inst), yds(inst, scan="reference")
        assert fast.groups == slow.groups
        assert np.array_equal(fast.schedule.loads, slow.schedule.loads)

    def test_yds_fully_frozen_windows_are_not_misread(self):
        """Laminar (nested-window) instances freeze whole sub-windows in
        early rounds; removal dust in the float workload buckets must
        not make an emptied, fully-frozen window look occupied (which
        would raise a spurious SolverError). Regression test."""
        inst = Instance.classical(
            [
                (0.0, 8.0, 1.7),
                (0.0, 4.0, 2.3),
                (1.0, 3.0, 1.9),
                (1.5, 2.5, 0.6),
                (4.0, 8.0, 0.9),
                (5.0, 7.0, 1.1),
            ],
            m=1,
            alpha=3.0,
        )
        fast, slow = yds(inst), yds(inst, scan="reference")
        assert fast.groups == slow.groups
        assert np.array_equal(fast.schedule.loads, slow.schedule.loads)

    def test_yds_rejects_unknown_scan(self):
        inst = self.classical(4, 0)
        with pytest.raises(Exception, match="scan"):
            yds(inst, scan="turbo")

    @pytest.mark.parametrize("seed", range(3))
    def test_oa_on_reference_plans_is_unchanged(self, seed, monkeypatch):
        """Three layers of OA parity at once: the incremental lazy-prefix
        replanner (default) vs the historical from-scratch replan, with
        the latter's YDS plans additionally pinned to the reference
        scan. Not one executed segment may differ across the stack."""
        import repro.classical.oa as oa_module

        inst = self.classical(24, seed)
        fast = run_oa(inst)
        original = oa_module.yds
        monkeypatch.setattr(
            oa_module, "yds", lambda sub: original(sub, scan="reference")
        )
        slow = run_oa(inst, replan="reference")
        assert fast.segments == slow.segments
        assert np.array_equal(fast.schedule.loads, slow.schedule.loads)
        assert fast.energy == slow.energy

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize(
        "family", [poisson_instance, uniform_instance, heavy_tail_instance]
    )
    def test_oa_incremental_replan_equals_reference(self, seed, family):
        """The incremental OA replanner (lazy YDS prefix per epoch) must
        reproduce the from-scratch replan bit for bit on every existing
        differential case."""
        from repro.classical.oa import oa_segments

        inst = self.classical(18, seed, family)
        ordered_inc, exec_inc = oa_segments(inst, replan="incremental")
        ordered_ref, exec_ref = oa_segments(inst, replan="reference")
        assert exec_inc == exec_ref
        fast = run_oa(inst)
        slow = run_oa(inst, replan="reference")
        assert fast.segments == slow.segments
        assert np.array_equal(fast.schedule.loads, slow.schedule.loads)
        assert fast.schedule.grid.same_as(slow.schedule.grid)
        assert fast.energy == slow.energy
        assert stable_hash(schedule_to_dict(fast.schedule)) == stable_hash(
            schedule_to_dict(slow.schedule)
        )

    def test_oa_incremental_slotted_ties(self):
        """Slotted instances maximize release ties and epoch reuse — the
        shape the incremental replanner is built for."""
        from repro.classical.oa import oa_segments
        from repro.workloads import slotted_instance

        inst = slotted_instance(300, slots=60, m=1, alpha=3.0, seed=3)
        _, exec_inc = oa_segments(inst, replan="incremental")
        _, exec_ref = oa_segments(inst, replan="reference")
        assert exec_inc == exec_ref

    def test_oa_rejects_unknown_replan(self):
        inst = self.classical(4, 0)
        with pytest.raises(Exception, match="replan"):
            run_oa(inst, replan="turbo")


class TestBatchedEnergyParity:
    """The all-columns energy kernel vs the retained per-column loop."""

    def _pd_schedules(self):
        for family, n, m in FAMILIES:
            for alpha in (2.0, 3.0):
                inst = family(n, m=m, alpha=alpha, seed=9)
                yield run_pd(inst).schedule

    def test_pd_schedules_bitwise_identical(self):
        from repro.perf.reference import schedule_energy_reference

        for schedule in self._pd_schedules():
            assert schedule.energy == schedule_energy_reference(schedule)

    def test_classical_schedules_bitwise_identical(self):
        from repro.perf.reference import schedule_energy_reference

        for n, seed in ((24, 0), (50, 1), (80, 2)):
            inst = Instance.classical(
                [
                    (j.release, j.deadline, j.workload)
                    for j in poisson_instance(n, m=1, alpha=3.0, seed=seed).jobs
                ],
                m=1,
                alpha=3.0,
            )
            for schedule in (run_oa(inst).schedule, yds(inst).schedule):
                assert schedule.energy == schedule_energy_reference(schedule)

    def test_degenerate_and_empty_columns(self):
        from repro.perf.energy import schedule_energy
        from repro.perf.reference import schedule_energy_reference

        sched = run_pd(degenerate_single_interval()).schedule
        assert sched.energy == schedule_energy_reference(sched)
        # all-zero matrix: exactly 0.0 either way
        empty = np.zeros((3, 4))
        assert (
            schedule_energy(empty, np.ones(4), 2, sched.instance.power) == 0.0
        )

    def test_stores_energy_matches_reference_loop(self):
        """``stores_energy`` off the live ``IntervalLoads`` states ==
        the historical per-column loop over the dense schedule, bit for
        bit — the kernel/reference differential pair ``repro lint``
        (RPR3xx) tracks by name."""
        from repro.core.pd import PDScheduler
        from repro.perf.energy import stores_energy
        from repro.perf.reference import schedule_energy_reference

        for family, n, m in FAMILIES:
            inst = family(n, m=m, alpha=3.0, seed=11)
            sched = PDScheduler(m=m, alpha=3.0)
            for job in inst.sorted_by_release().jobs:
                sched.arrive(job)
            live = stores_energy(
                sched._states, sched._grid.lengths, sched.m, sched.power
            )
            assert live == schedule_energy_reference(sched.finish().schedule)

    def test_streaming_stores_match_dense_finish(self):
        """PDScheduler.streaming_* off the live stores == the dense
        Schedule's cached properties, bit for bit."""
        from repro.core.pd import PDScheduler

        for family, n, m in FAMILIES:
            inst = family(n, m=m, alpha=3.0, seed=4)
            sched = PDScheduler(m=m, alpha=3.0)
            for job in inst.sorted_by_release().jobs:
                sched.arrive(job)
            energy = sched.streaming_energy()
            lost = sched.streaming_lost_value()
            cost = sched.streaming_cost()
            result = sched.finish()
            assert energy == result.schedule.energy
            assert lost == result.schedule.lost_value
            assert cost == result.schedule.cost


class TestCertificateHelpersParity:
    def test_contributing_jobs_matches_literal_rescan(self):
        from repro.analysis.certificates import contributing_jobs

        rng = np.random.default_rng(3)
        n, big_n, m = 30, 17, 3
        first = rng.integers(0, big_n - 1, n)
        width = rng.integers(1, 6, n)
        avail = np.zeros((n, big_n), dtype=bool)
        for j in range(n):
            avail[j, first[j] : min(big_n, first[j] + width[j])] = True
        s_hat = rng.exponential(1.0, n)
        s_hat[rng.random(n) < 0.2] = 0.0

        order_all = np.lexsort((np.arange(n), -s_hat))
        expected = []
        for k in range(big_n):
            picked = []
            for j in order_all:
                if len(picked) == m:
                    break
                if avail[j, k] and s_hat[j] > 0.0:
                    picked.append(int(j))
            expected.append(tuple(picked))
        assert contributing_jobs(avail, s_hat, m) == tuple(expected)

    def test_contributing_jobs_noncontiguous_fallback(self):
        from repro.analysis.certificates import contributing_jobs

        avail = np.array(
            [[True, False, True], [True, True, True]], dtype=bool
        )
        s_hat = np.array([2.0, 1.0])
        assert contributing_jobs(avail, s_hat, 1) == ((0,), (1,), (0,))

    def test_pool_level_matches_literal_scan(self):
        from repro.chen.interval_power import _LOAD_EPS, pool_level

        rng = np.random.default_rng(8)
        for m in (1, 2, 4, 9):
            for _ in range(30):
                p = int(rng.integers(0, 12))
                loads = rng.exponential(1.0, p)
                loads[rng.random(p) < 0.3] = 0.0
                arr = np.sort(loads)[::-1]
                suffix = np.concatenate(
                    (np.cumsum(arr[::-1])[::-1], [0.0])
                ) if p else np.zeros(1)
                expected = None
                for d in range(0, min(p, m - 1) + 1):
                    level = float(suffix[d]) / (m - d)
                    upper_ok = d == 0 or float(arr[d - 1]) >= level - _LOAD_EPS
                    lower_ok = d >= p or float(arr[d]) <= level + _LOAD_EPS
                    if upper_ok and lower_ok:
                        expected = max(level, 0.0)
                        break
                assert expected is not None
                assert pool_level(loads, m) == expected
