"""Tests for McNaughton's wrap-around layout."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chen.mcnaughton import mcnaughton_layout
from repro.errors import InfeasibleScheduleError
from repro.model.validation import (
    check_no_job_self_overlap,
    check_no_processor_overlap,
    check_segment_work,
)


def layout(durations, *, length=1.0, procs=2, speed=1.0, start=0.0, first=0):
    return mcnaughton_layout(
        list(range(len(durations))),
        durations,
        start=start,
        length=length,
        first_processor=first,
        num_processors=procs,
        speed=speed,
    )


class TestLayoutBasics:
    def test_single_job_single_processor(self):
        segs = layout([0.7], procs=1)
        assert len(segs) == 1
        assert segs[0].processor == 0
        assert segs[0].duration == pytest.approx(0.7)

    def test_wrap_splits_job_across_processors(self):
        # Jobs 0.8 + 0.8 on 2 processors of length 1: job 1 wraps.
        segs = layout([0.8, 0.8])
        by_job = {}
        for s in segs:
            by_job.setdefault(s.job, []).append(s)
        assert len(by_job[0]) == 1
        assert len(by_job[1]) == 2
        # The two pieces of job 1 do not overlap in time.
        check_no_job_self_overlap(segs)

    def test_work_conservation(self):
        durations = [0.5, 0.9, 0.3, 0.3]
        segs = layout(durations, procs=2, speed=2.0)
        expected = {i: d * 2.0 for i, d in enumerate(durations)}
        check_segment_work(segs, expected)

    def test_zero_duration_jobs_skipped(self):
        segs = layout([0.0, 0.5, 0.0])
        assert {s.job for s in segs} == {1}

    def test_first_processor_offset(self):
        segs = layout([0.5], first=3)
        assert segs[0].processor == 3

    def test_start_offset(self):
        segs = layout([0.5], start=10.0)
        assert segs[0].start == pytest.approx(10.0)

    def test_overfull_pool_rejected(self):
        with pytest.raises(InfeasibleScheduleError):
            layout([1.0, 1.0, 1.0], procs=2)

    def test_single_overlong_job_rejected(self):
        with pytest.raises(InfeasibleScheduleError):
            layout([1.5], procs=2)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(InfeasibleScheduleError):
            mcnaughton_layout(
                [0, 1],
                [0.5],
                start=0.0,
                length=1.0,
                first_processor=0,
                num_processors=1,
                speed=1.0,
            )


class TestLayoutProperties:
    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=10
        ),
        procs=st.integers(min_value=1, max_value=5),
        length=st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=200)
    def test_always_feasible_when_capacity_suffices(self, durations, procs, length):
        scaled = [d * length for d in durations]  # each fits one strip
        if sum(scaled) > procs * length:
            return  # capacity exceeded; covered by the rejection test
        segs = layout(scaled, procs=procs, length=length)
        check_no_processor_overlap(segs)
        check_no_job_self_overlap(segs)
        total = sum(s.duration for s in segs)
        assert total == pytest.approx(sum(scaled), abs=1e-7)

    @given(
        durations=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=10
        ),
    )
    @settings(max_examples=100)
    def test_segments_stay_inside_interval(self, durations):
        procs = len(durations)  # always enough capacity
        segs = layout(durations, procs=procs, length=1.0, start=5.0)
        for s in segs:
            assert s.start >= 5.0 - 1e-9
            assert s.end <= 6.0 + 1e-9

    @given(
        durations=st.lists(
            st.floats(min_value=0.01, max_value=0.99), min_size=2, max_size=8
        ),
    )
    @settings(max_examples=100)
    def test_at_most_procs_minus_one_migrations(self, durations):
        """McNaughton's classic guarantee: at most m-1 jobs are split."""
        procs = max(2, int(np.ceil(sum(durations))) + 1)
        segs = layout(durations, procs=procs, length=1.0)
        split_jobs = set()
        seen = set()
        for s in segs:
            if s.job in seen:
                split_jobs.add(s.job)
            seen.add(s.job)
        assert len(split_jobs) <= procs - 1
