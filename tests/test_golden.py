"""Golden regression tests: exact expected numbers for fixed inputs.

Unlike the property tests (which allow any correct behaviour), these pin
the *specific* outputs of the current implementation on hand-computed or
previously validated instances. A legitimate algorithm change that moves
these numbers should update them consciously — that is the point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.certificates import dual_certificate
from repro.classical.oa import run_oa
from repro.classical.yds import yds
from repro.core.pd import run_pd
from repro.model.job import Instance
from repro.offline.optimal import solve_exact
from repro.workloads import lower_bound_instance


class TestHandComputed:
    def test_two_jobs_one_processor(self):
        """Hand computation: jobs (0,2,1) and (1,2,1), alpha=2, values huge.

        Job 1 spreads at speed 1/2 over [0,2). Job 2 water-fills [1,2):
        its marginal there starts at pool speed 1/2; adding z gives speed
        1/2 + z; placing z=1 -> speed 3/2. Energy = 1*(1/2)^2 +
        1*(3/2)^2 = 0.25 + 2.25 = 2.5.
        """
        inst = Instance.classical([(0.0, 2.0, 1.0), (1.0, 2.0, 1.0)], m=1, alpha=2.0)
        result = run_pd(inst)
        assert result.cost == pytest.approx(2.5, rel=1e-9)
        # OPT (YDS): critical interval [1,2] has intensity... jobs inside
        # [1,2]: job 2 only -> g=1. Window [0,2]: (1+1)/2 = 1 too; the
        # algorithm finds intensity 1 everywhere: OPT = 2 * 1^2 = 2.
        assert yds(inst).energy == pytest.approx(2.0, rel=1e-9)

    def test_rejection_value_exactly_at_threshold(self):
        """alpha=2: lone unit job, planned energy 1, threshold alpha^0*v=v.

        Value 1.0 sits exactly at the boundary; accepting and rejecting
        cost the same, and the implementation accepts (<= comparison).
        """
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1.0)], m=1, alpha=2.0)
        result = run_pd(inst)
        assert result.cost == pytest.approx(1.0, rel=1e-9)

    def test_figure3_instance_exact_costs(self):
        inst = Instance.classical([(0.0, 3.0, 1.5), (1.0, 2.0, 1.2)], m=1, alpha=3.0)
        pd = run_pd(inst)
        oa = run_oa(inst)
        # PD: speeds 0.5, 1.7, 0.5 -> 0.125 + 4.913 + 0.125 = 5.163.
        assert pd.cost == pytest.approx(0.5**3 + 1.7**3 + 0.5**3, rel=1e-9)
        # OA: speeds 0.5, 1.2, 1.0 -> 0.125 + 1.728 + 1.0 = 2.853.
        assert oa.energy == pytest.approx(0.5**3 + 1.2**3 + 1.0**3, rel=1e-7)

    def test_batch_two_processors_three_jobs(self):
        """Loads [3,1,1] on m=2 over [0,1): dedicated {3}, pool {1,1}.

        Energy = 3^3 + 2^3 = 35.
        """
        inst = Instance.classical(
            [(0.0, 1.0, 3.0), (0.0, 1.0, 1.0), (0.0, 1.0, 1.0)], m=2, alpha=3.0
        )
        assert run_pd(inst).cost == pytest.approx(35.0, rel=1e-9)


class TestFrozenRegressionValues:
    """Previously validated outputs, frozen against drift."""

    def test_lower_bound_n10_alpha3(self):
        inst = lower_bound_instance(10, 3.0)
        assert run_pd(inst).cost == pytest.approx(13.9158300, rel=1e-6)
        assert yds(inst).energy == pytest.approx(2.9289683, rel=1e-6)

    def test_exact_solver_small_profitable(self):
        inst = Instance.from_tuples(
            [(0.0, 2.0, 1.0, 0.8), (0.0, 1.0, 1.0, 5.0), (1.0, 3.0, 2.0, 0.2)],
            m=1,
            alpha=2.0,
        )
        exact = solve_exact(inst)
        assert exact.cost == pytest.approx(2.0, rel=1e-7)
        assert exact.accepted == (1,)

    def test_pd_certificate_poisson_seed0(self):
        from repro.workloads import poisson_instance

        inst = poisson_instance(20, m=2, alpha=3.0, seed=0)
        result = run_pd(inst)
        cert = dual_certificate(result)
        assert result.cost == pytest.approx(1147.0926, rel=1e-4)
        assert cert.g == pytest.approx(297.3855, rel=1e-4)
        assert int(result.accepted_mask.sum()) == int(
            result.accepted_mask.sum()
        )  # stable acceptance pattern:
        np.testing.assert_array_equal(
            result.accepted_mask,
            run_pd(inst).accepted_mask,
        )
