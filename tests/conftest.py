"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.job import Instance


@pytest.fixture
def simple_single_proc() -> Instance:
    """Four overlapping must-finish jobs on one processor."""
    return Instance.classical(
        [(0.0, 4.0, 2.0), (1.0, 2.0, 1.5), (2.5, 3.5, 0.8), (0.5, 3.0, 1.0)],
        m=1,
        alpha=3.0,
    )


@pytest.fixture
def simple_multi_proc() -> Instance:
    """Same jobs on two processors."""
    return Instance.classical(
        [(0.0, 4.0, 2.0), (1.0, 2.0, 1.5), (2.5, 3.5, 0.8), (0.5, 3.0, 1.0)],
        m=2,
        alpha=3.0,
    )


@pytest.fixture
def profitable_instance() -> Instance:
    """Small instance with a value spread that forces mixed decisions."""
    return Instance.from_tuples(
        [
            (0.0, 2.0, 1.0, 0.8),
            (0.0, 1.0, 1.0, 5.0),
            (1.0, 3.0, 2.0, 0.2),
            (1.5, 4.0, 0.5, 2.0),
        ],
        m=1,
        alpha=2.0,
    )


def numeric_gradient(f, x: np.ndarray, h: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar function of a vector."""
    g = np.zeros_like(x, dtype=float)
    for i in range(x.size):
        xp = x.copy()
        xm = x.copy()
        xp[i] += h
        xm[i] = max(xm[i] - h, 0.0)
        g[i] = (f(xp) - f(xm)) / (xp[i] - xm[i])
    return g
