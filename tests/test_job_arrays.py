"""Struct-of-array instance storage: round trips and algorithm parity.

``JobArrays`` is a columnar view of an instance's jobs; ``Instance``
can be built from it lazily (``from_arrays``) with ``Job`` objects
materialized only on demand. The contract is absolute: the columnar
path must be indistinguishable from the historical tuple-of-``Job``
path — exact float round trips, identical validation errors, and
byte-identical schedule payloads and cache keys from every algorithm.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import InvalidJobError, InvalidParameterError
from repro.io.serialize import schedule_to_dict, stable_hash
from repro.model.job import Instance, Job
from repro.model.job_arrays import JobArrays
from repro.workloads import slotted_instance


def random_jobs(n: int, seed: int = 0) -> tuple[Job, ...]:
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        r = float(rng.uniform(0.0, 50.0))
        jobs.append(
            Job(
                release=r,
                deadline=r + float(rng.uniform(0.5, 8.0)),
                workload=float(rng.exponential(1.0) + 1e-3),
                value=float(rng.uniform(0.0, 9.0)),
                name=f"j{i}" if i % 3 == 0 else None,
            )
        )
    return tuple(jobs)


class TestRoundTrip:
    @pytest.mark.parametrize("n", [1, 2, 17, 300])
    def test_jobs_to_arrays_to_jobs_exact(self, n):
        jobs = random_jobs(n, seed=n)
        arrays = JobArrays.from_jobs(jobs)
        back = arrays.to_jobs()
        assert len(back) == n
        for original, rebuilt in zip(jobs, back):
            # exact float equality, not approx — the columns must hold
            # the very same doubles the Job objects did
            assert rebuilt.release == original.release
            assert rebuilt.deadline == original.deadline
            assert rebuilt.workload == original.workload
            assert rebuilt.value == original.value

    def test_single_job_accessor_matches(self):
        jobs = random_jobs(9, seed=3)
        arrays = JobArrays.from_jobs(jobs)
        for i, job in enumerate(jobs):
            one = arrays.job(i)
            assert (one.release, one.deadline, one.workload, one.value) == (
                job.release,
                job.deadline,
                job.workload,
                job.value,
            )

    def test_columns_are_frozen(self):
        arrays = JobArrays.from_jobs(random_jobs(4))
        for column in (
            arrays.releases,
            arrays.deadlines,
            arrays.workloads,
            arrays.values,
        ):
            assert not column.flags.writeable
            with pytest.raises(ValueError):
                column[0] = 99.0

    def test_instance_from_arrays_equals_eager(self):
        jobs = random_jobs(40, seed=7)
        eager = Instance(jobs, m=2, alpha=2.5)
        lazy = Instance.from_arrays(
            JobArrays.from_jobs(jobs), m=2, alpha=2.5
        )
        assert lazy.n == eager.n and len(lazy) == len(eager)
        assert np.array_equal(lazy.releases, eager.releases)
        assert np.array_equal(lazy.deadlines, eager.deadlines)
        assert np.array_equal(lazy.workloads, eager.workloads)
        assert np.array_equal(lazy.values, eager.values)
        assert lazy.arrival_order() == eager.arrival_order()
        # jobs materialize on demand and carry the same floats
        for a, b in zip(lazy.jobs, eager.jobs):
            assert (a.release, a.deadline, a.workload, a.value) == (
                b.release,
                b.deadline,
                b.workload,
                b.value,
            )

    def test_sorted_by_release_stays_columnar(self):
        inst = slotted_instance(200, slots=20, m=1, alpha=3.0, seed=5)
        assert "jobs" not in inst.__dict__
        ordered = inst.sorted_by_release()
        assert "jobs" not in ordered.__dict__  # still lazy after the sort
        eager = Instance(tuple(inst.jobs), m=1, alpha=3.0).sorted_by_release()
        assert np.array_equal(ordered.releases, eager.releases)
        assert np.array_equal(ordered.workloads, eager.workloads)

    def test_lazy_instance_pickles(self):
        inst = slotted_instance(50, slots=10, m=2, alpha=3.0, seed=1)
        clone = pickle.loads(pickle.dumps(inst))
        assert clone.n == inst.n
        assert np.array_equal(clone.workloads, inst.workloads)

    def test_permuted_reorders_all_columns(self):
        arrays = JobArrays.from_jobs(random_jobs(6, seed=2))
        order = [5, 3, 1, 0, 2, 4]
        moved = arrays.permuted(order)
        assert np.array_equal(moved.releases, arrays.releases[order])
        assert np.array_equal(moved.values, arrays.values[order])


class TestValidation:
    """Bad columns raise the canonical per-job errors, not numpy noise."""

    def _cols(self, **overrides):
        base = dict(
            releases=[0.0, 1.0],
            deadlines=[2.0, 3.0],
            workloads=[1.0, 1.0],
            values=[1.0, 1.0],
        )
        base.update(overrides)
        return base

    def test_accepts_clean_columns(self):
        arrays = JobArrays(**self._cols())
        assert arrays.n == 2

    @pytest.mark.parametrize(
        "overrides",
        [
            {"releases": [0.0, float("nan")]},
            {"deadlines": [2.0, float("inf")]},
            {"releases": [-1.0, 1.0]},
            {"deadlines": [0.0, 3.0]},  # deadline == release
            {"workloads": [1.0, 0.0]},
            {"workloads": [1.0, -2.0]},
            {"values": [1.0, -0.5]},
        ],
    )
    def test_rejects_like_job_constructor(self, overrides):
        with pytest.raises(InvalidJobError):
            JobArrays(**self._cols(**overrides))

    def test_rejects_length_mismatch(self):
        with pytest.raises(InvalidJobError):
            JobArrays(**self._cols(values=[1.0, 1.0, 1.0]))

    def test_rejects_non_1d(self):
        with pytest.raises(InvalidJobError):
            JobArrays(**self._cols(releases=[[0.0, 1.0]]))

    def test_from_arrays_validates_m_and_type(self):
        from repro.errors import InvalidInstanceError

        arrays = JobArrays(**self._cols())
        with pytest.raises(InvalidParameterError):
            Instance.from_arrays(arrays, m=0)
        with pytest.raises(InvalidInstanceError):
            Instance.from_arrays([(0.0, 1.0, 1.0, 1.0)])  # not a JobArrays


class TestAlgorithmParity:
    """SoA-backed instances produce byte-identical records.

    The acceptance bar from the issue: PD/OA/YDS schedule payload
    hashes and engine cache keys must match the eager ``Job``-tuple
    path exactly at n in {1, 2, 200, 5000}.
    """

    SIZES = [1, 2, 200, 5000]

    def _pair(self, n: int, m: int = 1):
        lazy = slotted_instance(
            n, slots=max(4, n // 50), m=m, alpha=3.0, seed=n
        )
        eager = Instance(tuple(lazy.jobs), m=m, alpha=3.0)
        # fresh lazy copy so no cached state leaks across the pair
        fresh = slotted_instance(
            n, slots=max(4, n // 50), m=m, alpha=3.0, seed=n
        )
        assert "jobs" not in fresh.__dict__
        return fresh, eager

    @pytest.mark.parametrize("n", SIZES)
    def test_cache_keys_identical(self, n):
        from repro.engine.runner import request_key

        lazy, eager = self._pair(n)
        for algorithm in ("pd", "oa", "yds"):
            assert request_key(algorithm, lazy) == request_key(
                algorithm, eager
            )

    @pytest.mark.parametrize("n", SIZES)
    def test_pd_payload_hashes_identical(self, n):
        from repro.core.pd import run_pd

        lazy, eager = self._pair(n, m=2)
        a = run_pd(lazy)
        b = run_pd(eager)
        assert np.array_equal(a.schedule.loads, b.schedule.loads)
        assert stable_hash(schedule_to_dict(a.schedule)) == stable_hash(
            schedule_to_dict(b.schedule)
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_oa_payload_hashes_identical(self, n):
        from repro.classical.oa import run_oa

        lazy, eager = self._pair(n)
        a = run_oa(lazy)
        b = run_oa(eager)
        assert a.segments == b.segments
        assert stable_hash(schedule_to_dict(a.schedule)) == stable_hash(
            schedule_to_dict(b.schedule)
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_yds_payload_hashes_identical(self, n):
        from repro.classical.yds import yds

        lazy, eager = self._pair(n)
        a = yds(lazy)
        b = yds(eager)
        assert a.groups == b.groups
        assert stable_hash(schedule_to_dict(a.schedule)) == stable_hash(
            schedule_to_dict(b.schedule)
        )
