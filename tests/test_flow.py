"""Tests for Horn's max-flow feasibility oracle (:mod:`repro.offline.flow`).

The oracle is deliberately independent of the library's constructive
scheduling code (it rests on networkx max-flow), so these tests use it
both as a subject and as a cross-checker: its feasibility verdicts must
agree with hand-computable cases, with the analytic lower bounds, and
with the constructive Chen/McNaughton layer on random instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.classical.yds import yds
from repro.errors import InvalidParameterError
from repro.model.job import Instance
from repro.offline.flow import (
    check_feasible_at_speed,
    minimal_uniform_speed,
    run_uniform_speed,
)
from repro.workloads.random_instances import poisson_instance

SETTINGS = settings(max_examples=25, deadline=None, derandomize=True)


def _classical(rows, m=1, alpha=3.0):
    return Instance.classical(rows, m=m, alpha=alpha)


# ---------------------------------------------------------------------------
# Feasibility oracle
# ---------------------------------------------------------------------------
class TestFeasibilityOracle:
    def test_single_job_threshold(self):
        inst = _classical([(0.0, 2.0, 1.0)])
        assert check_feasible_at_speed(inst, 0.5).feasible
        assert check_feasible_at_speed(inst, 10.0).feasible
        assert not check_feasible_at_speed(inst, 0.4999).feasible

    def test_two_stacked_jobs_single_proc(self):
        # Both jobs live in [1,2): need combined speed 2 there, plus job 1
        # can use [0,1): feasible at speed 1... no — at speed 1 job 2
        # occupies all of [1,2) alone, job 1 must fit in [0,1): works.
        inst = _classical([(0.0, 2.0, 1.0), (1.0, 2.0, 1.0)])
        assert check_feasible_at_speed(inst, 1.0).feasible
        assert not check_feasible_at_speed(inst, 0.9).feasible

    def test_parallelism_cap_binds(self):
        # Three unit jobs in a unit window on two processors: a job cannot
        # run on two processors at once, so speed 1.5 is needed (not 1.0,
        # which total capacity alone would allow... total work 3 <= 2*1*1.5).
        inst = _classical(
            [(0.0, 1.0, 1.0)] * 3, m=2
        )
        assert check_feasible_at_speed(inst, 1.5).feasible
        assert not check_feasible_at_speed(inst, 1.2).feasible

    def test_speed_validation(self):
        inst = _classical([(0.0, 1.0, 1.0)])
        with pytest.raises(InvalidParameterError):
            check_feasible_at_speed(inst, 0.0)

    def test_accepted_subset_only(self):
        inst = _classical([(0.0, 1.0, 1.0), (0.0, 1.0, 5.0)])
        # Full set needs speed 6 on one processor; job 0 alone only 1.
        assert not check_feasible_at_speed(inst, 2.0).feasible
        assert check_feasible_at_speed(inst, 1.0, accepted=(0,)).feasible

    def test_empty_demand_feasible(self):
        inst = _classical([(0.0, 1.0, 1.0)])
        out = check_feasible_at_speed(inst, 1.0, accepted=())
        assert out.feasible and out.demand == 0.0

    def test_witness_respects_windows_and_capacities(self):
        inst = _classical(
            [(0.0, 3.0, 2.0), (1.0, 2.0, 1.0), (0.5, 2.5, 1.5)], m=2
        )
        s = minimal_uniform_speed(inst)
        witness = check_feasible_at_speed(inst, s)
        from repro.model.intervals import grid_for_instance

        grid = grid_for_instance(inst)
        avail = grid.availability_matrix(inst)
        busy = witness.busy_time
        assert (busy[~avail] == 0.0).all()
        # Per-job per-interval busy time never exceeds the interval.
        assert (busy <= grid.lengths[None, :] + 1e-9).all()
        # Per-interval total never exceeds m * length.
        assert (busy.sum(axis=0) <= inst.m * grid.lengths + 1e-9).all()


# ---------------------------------------------------------------------------
# Minimal uniform speed
# ---------------------------------------------------------------------------
class TestMinimalUniformSpeed:
    def test_single_job_density(self):
        inst = _classical([(0.0, 4.0, 2.0)])
        assert minimal_uniform_speed(inst) == pytest.approx(0.5)

    def test_window_bound_dominates(self):
        # Two unit jobs inside [0,1) on one processor: speed 2 needed.
        inst = _classical([(0.0, 1.0, 1.0), (0.0, 1.0, 1.0)])
        assert minimal_uniform_speed(inst) == pytest.approx(2.0)

    def test_parallelism_bound_needs_bisection(self):
        # Three unit jobs in [0,1) on m=2: analytic window bound gives
        # 3/2 = 1.5 which happens to be exact here; a staircase instance
        # where the bound is *not* tight exercises the bisection branch.
        inst = _classical(
            [(0.0, 1.0, 1.0), (0.0, 2.0, 1.8), (0.0, 2.0, 1.8)], m=2
        )
        s = minimal_uniform_speed(inst)
        assert check_feasible_at_speed(inst, s * 1.0000001).feasible
        assert not check_feasible_at_speed(inst, s * 0.999).feasible

    def test_no_jobs_raises(self):
        inst = _classical([(0.0, 1.0, 1.0)])
        with pytest.raises(InvalidParameterError):
            minimal_uniform_speed(inst, accepted=())

    @given(seed=st.integers(min_value=0, max_value=12))
    @SETTINGS
    def test_minimality_random(self, seed):
        inst = poisson_instance(6, m=2, alpha=3.0, seed=seed)
        s = minimal_uniform_speed(inst)
        assert check_feasible_at_speed(inst, s * (1 + 1e-7)).feasible
        assert not check_feasible_at_speed(inst, s * 0.99).feasible


# ---------------------------------------------------------------------------
# Uniform-speed baseline schedule
# ---------------------------------------------------------------------------
class TestUniformSpeedBaseline:
    def test_schedule_validates_and_finishes_everything(self):
        inst = _classical(
            [(0.0, 3.0, 2.0), (1.0, 2.0, 1.0), (0.5, 2.5, 1.5)], m=2
        )
        result = run_uniform_speed(inst)
        result.schedule.validate()
        assert result.schedule.finished.all()
        assert result.lost_value == 0.0
        # Pinned-speed energy never undercuts the energy-minimal
        # realization of the same loads.
        assert result.energy >= result.schedule.energy - 1e-9

    def test_energy_is_work_times_speed_power(self):
        inst = _classical([(0.0, 2.0, 1.0), (1.0, 2.0, 1.0)])
        s = minimal_uniform_speed(inst)
        result = run_uniform_speed(inst)
        total_work = float(inst.workloads.sum())
        # All busy time runs at speed s: E = (work / s) * s^alpha.
        assert result.energy == pytest.approx(
            (total_work / s) * s**inst.alpha, rel=1e-6
        )

    def test_explicit_speed_must_be_feasible(self):
        inst = _classical([(0.0, 1.0, 1.0)])
        with pytest.raises(InvalidParameterError):
            run_uniform_speed(inst, speed=0.5)
        result = run_uniform_speed(inst, speed=2.0)
        assert result.energy == pytest.approx(0.5 * 2.0**3)

    def test_yds_never_worse_than_uniform_single_proc(self):
        # YDS is the offline optimum; the uniform baseline is feasible,
        # so YDS's energy is a lower bound — strictly lower whenever the
        # optimal profile is non-constant.
        inst = _classical(
            [(0.0, 1.0, 1.0), (0.0, 4.0, 0.5), (2.0, 3.0, 1.2)]
        )
        uniform = run_uniform_speed(inst)
        optimal = yds(inst)
        assert optimal.energy <= uniform.energy + 1e-9
        assert optimal.energy < uniform.energy * 0.95  # non-constant here

    @given(seed=st.integers(min_value=0, max_value=10))
    @SETTINGS
    def test_uniform_upper_bounds_yds_random(self, seed):
        inst = poisson_instance(5, m=1, alpha=3.0, seed=seed).with_values(
            [1e30] * 5
        )
        uniform = run_uniform_speed(inst)
        uniform.schedule.validate()
        assert yds(inst).energy <= uniform.energy + 1e-7

    def test_subset_accepted_marks_rest_unfinished(self):
        inst = Instance.from_tuples(
            [(0.0, 1.0, 1.0, 2.0), (0.0, 1.0, 1.0, 3.0)], m=1, alpha=3.0
        )
        result = run_uniform_speed(inst, accepted=(1,))
        assert result.schedule.finished.tolist() == [False, True]
        assert result.lost_value == pytest.approx(2.0)
        assert result.cost == pytest.approx(result.energy + 2.0)


class TestFlowVsYds:
    """On one processor the minimal uniform speed equals YDS's peak
    speed: both are the maximum density over critical intervals. Two
    entirely independent code paths (max-flow bisection vs the
    combinatorial YDS peeling) must agree on this number."""

    @given(seed=st.integers(min_value=0, max_value=15))
    @SETTINGS
    def test_minimal_speed_equals_yds_peak_single_proc(self, seed):
        inst = poisson_instance(6, m=1, alpha=3.0, seed=seed).with_values(
            [1e30] * 6
        )
        s_flow = minimal_uniform_speed(inst)
        speeds = yds(inst).schedule.processor_speed_matrix()
        s_yds_peak = float(speeds.max())
        assert s_flow == pytest.approx(s_yds_peak, rel=1e-6)

    def test_handcrafted_peak(self):
        # Critical interval [1,2) with 2 units of work: peak 2.0.
        inst = _classical(
            [(0.0, 3.0, 1.0), (1.0, 2.0, 2.0)], m=1
        )
        assert minimal_uniform_speed(inst) == pytest.approx(2.0)
        speeds = yds(inst).schedule.processor_speed_matrix()
        assert float(speeds.max()) == pytest.approx(2.0)
