"""RPR103 fixture: payload vocabulary drifted under a registered version."""

RECORD_VERSION = 2

_RECORD_PAYLOAD_KEYS = frozenset({"kind", "cost", "freshly_added_field"})
