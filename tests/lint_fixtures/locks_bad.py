"""RPR201 fixture: a lock-owning class writing shared state unlocked."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._log = []

    def bump(self):
        self._count += 1

    def tricky(self):
        self._count = "# noqa"  # the string must not suppress anything

    def record(self, item):
        self._log[0] = item

    def safe_bump(self):
        with self._lock:
            self._count += 1

    def safe_nested(self):
        with self._lock:
            with open("/dev/null") as sink:
                self._count = 0
                sink.read(0)
