"""RPR101/RPR102 fixture: nondeterminism in a key producer's closure."""

import time


def _salt():
    return time.time()


def gather(payload):
    tags = [tag for tag in {"a", "b"}]
    return [payload, tags, _salt()]


def make_key(payload):
    return stable_hash(gather(payload))  # noqa: F821 - fixture, name-level edge
