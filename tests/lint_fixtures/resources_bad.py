"""RPR401/RPR402/RPR403 fixture: unbalanced shm, lifecycle-less backend."""

from multiprocessing.shared_memory import SharedMemory


def leaky_create(blob):
    shm = SharedMemory(create=True, size=max(1, len(blob)))
    shm.buf[: len(blob)] = blob
    return shm.name


def leaky_attach(name, nbytes):
    shm = SharedMemory(name=name)
    return bytes(shm.buf[:nbytes])


def balanced_create(blob):
    shm = SharedMemory(create=True, size=max(1, len(blob)))
    try:
        shm.buf[: len(blob)] = blob
        return shm.name
    finally:
        shm.close()
        shm.unlink()


class BadBackend:
    def __init__(self):
        self._data = {}

    def get(self, key):
        return self._data.get(key)

    def put(self, key, value):
        self._data[key] = value

    def keys(self):
        return list(self._data)
