"""Planted-violation fixtures for tests/test_static_lint.py.

Every file in this package deliberately violates one RPR rule family;
the lint test suite asserts the corresponding checker fires on it (and
that ``# noqa`` silences it where planted). None of these modules is
ever imported by product code.
"""
