"""noqa fixture: the same plants as the *_bad files, all audited away."""

import threading
import time


def _salt():
    return time.time()  # noqa: RPR101 - fixture: exercising suppression


def make_key(payload):
    return stable_hash([payload, _salt()])  # noqa: F821 - name-level edge


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        self._count += 1  # noqa: RPR2 - fixture: family-prefix suppression

    def reset(self):
        self._count = 0  # noqa
