"""RPR104 fixture: a RECORD_VERSION with no registered fingerprint."""

RECORD_VERSION = 99

_RECORD_PAYLOAD_KEYS = frozenset({"kind", "cost", "mystery_field"})
