"""Tests for schedule metrics and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import empirical_ratio, schedule_metrics
from repro.core.pd import run_pd
from repro.errors import (
    CertificateError,
    ConvergenceError,
    GridMismatchError,
    InfeasibleScheduleError,
    InvalidInstanceError,
    InvalidJobError,
    InvalidParameterError,
    ReproError,
    SolverError,
)
from repro.model.job import Instance
from repro.workloads import poisson_instance


class TestScheduleMetrics:
    def test_basic_fields(self):
        inst = poisson_instance(10, m=2, alpha=3.0, seed=0)
        result = run_pd(inst)
        metrics = schedule_metrics(result.schedule)
        assert metrics.cost == pytest.approx(result.cost)
        assert metrics.energy == pytest.approx(result.schedule.energy)
        assert metrics.lost_value == pytest.approx(result.schedule.lost_value)
        assert metrics.accepted + metrics.rejected == inst.n
        assert metrics.peak_speed >= metrics.mean_busy_speed >= 0.0

    def test_idle_schedule_metrics(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1e-12)], m=1, alpha=3.0)
        metrics = schedule_metrics(run_pd(inst).schedule)
        assert metrics.peak_speed == 0.0
        assert metrics.mean_busy_speed == 0.0
        assert metrics.accepted == 0

    def test_row_rendering(self):
        inst = poisson_instance(5, m=1, alpha=2.0, seed=1)
        row = schedule_metrics(run_pd(inst).schedule).row()
        assert "cost=" in row and "peak=" in row

    def test_mean_busy_speed_weighted_by_time(self):
        # Speed 2 for 1 unit, speed 1 for 3 units -> mean 1.25.
        inst = Instance.classical(
            [(0.0, 1.0, 2.0), (1.0, 4.0, 3.0)], m=1, alpha=3.0
        )
        metrics = schedule_metrics(run_pd(inst).schedule)
        assert metrics.mean_busy_speed == pytest.approx(1.25, rel=1e-6)
        assert metrics.peak_speed == pytest.approx(2.0, rel=1e-6)


class TestEmpiricalRatio:
    def test_normal(self):
        assert empirical_ratio(4.0, 2.0) == 2.0

    def test_zero_zero(self):
        assert empirical_ratio(0.0, 0.0) == 1.0

    def test_positive_over_zero(self):
        assert empirical_ratio(1.0, 0.0) == float("inf")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidJobError,
            InvalidInstanceError,
            InvalidParameterError,
            InfeasibleScheduleError,
            GridMismatchError,
            SolverError,
            ConvergenceError,
            CertificateError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_valueerror(self):
        for exc in (InvalidJobError, InvalidInstanceError, InvalidParameterError):
            assert issubclass(exc, ValueError)

    def test_convergence_error_carries_best(self):
        err = ConvergenceError("no luck", best={"x": 1})
        assert err.best == {"x": 1}
        assert isinstance(err, SolverError)

    def test_certificate_error_is_assertion(self):
        assert issubclass(CertificateError, AssertionError)

    def test_library_raises_only_repro_errors_on_bad_input(self):
        with pytest.raises(ReproError):
            Instance((), m=0)
        with pytest.raises(ReproError):
            poisson_instance(0)
