"""Tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classical.yds import yds
from repro.core.pd import run_pd
from repro.errors import InvalidParameterError
from repro.workloads import (
    agreeable_instance,
    batch_instance,
    diurnal_instance,
    diurnal_intensity,
    heavy_tail_instance,
    laminar_instance,
    lower_bound_instance,
    optimal_cost_closed_form,
    pd_cost_closed_form,
    poisson_instance,
    tight_instance,
    uniform_instance,
)

GENERATORS = [
    lambda seed: poisson_instance(10, seed=seed),
    lambda seed: heavy_tail_instance(10, seed=seed),
    lambda seed: uniform_instance(10, seed=seed),
    lambda seed: diurnal_instance(10, seed=seed),
    lambda seed: agreeable_instance(10, seed=seed),
    lambda seed: laminar_instance(3, seed=seed),
    lambda seed: batch_instance(10, seed=seed),
    lambda seed: tight_instance(10, seed=seed),
]


class TestGeneratorContracts:
    @pytest.mark.parametrize("gen", range(len(GENERATORS)))
    def test_deterministic_given_seed(self, gen):
        a = GENERATORS[gen](seed=123)
        b = GENERATORS[gen](seed=123)
        assert a.jobs == b.jobs

    @pytest.mark.parametrize("gen", range(len(GENERATORS)))
    def test_different_seeds_differ(self, gen):
        a = GENERATORS[gen](seed=1)
        b = GENERATORS[gen](seed=2)
        assert a.jobs != b.jobs

    @pytest.mark.parametrize("gen", range(len(GENERATORS)))
    def test_instances_are_valid_and_runnable(self, gen):
        inst = GENERATORS[gen](seed=0)
        assert inst.n > 0
        result = run_pd(inst)
        result.schedule.validate()

    @pytest.mark.parametrize("gen", range(len(GENERATORS)))
    def test_generator_accepts_generator_object(self, gen):
        rng = np.random.default_rng(7)
        inst = GENERATORS[gen](seed=rng)
        assert inst.n > 0


class TestLowerBoundFamily:
    def test_structure(self):
        inst = lower_bound_instance(5, 3.0)
        assert inst.n == 5
        assert inst.m == 1
        for j, job in enumerate(inst.jobs, start=1):
            assert job.release == j - 1
            assert job.deadline == 5.0
            assert job.workload == pytest.approx((5 - j + 1) ** (-1 / 3))

    def test_bad_n(self):
        with pytest.raises(InvalidParameterError):
            lower_bound_instance(0, 3.0)

    @pytest.mark.parametrize("n", [1, 4, 9])
    @pytest.mark.parametrize("alpha", [2.0, 3.0])
    def test_closed_forms_match_simulation(self, n, alpha):
        inst = lower_bound_instance(n, alpha)
        assert run_pd(inst).cost == pytest.approx(
            pd_cost_closed_form(n, alpha), rel=1e-7
        )
        assert yds(inst).energy == pytest.approx(
            optimal_cost_closed_form(n, alpha), rel=1e-9
        )

    def test_ratio_grows_with_n(self):
        alpha = 3.0
        ratios = [
            pd_cost_closed_form(n, alpha) / optimal_cost_closed_form(n, alpha)
            for n in [2, 8, 32, 128]
        ]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] < alpha**alpha  # approaches but never exceeds


class TestFamilyShapes:
    def test_agreeable_ordering(self):
        inst = agreeable_instance(20, seed=0)
        order = np.argsort(inst.releases, kind="stable")
        deadlines = inst.deadlines[order]
        assert np.all(np.diff(deadlines) >= -1e-12)

    def test_laminar_nesting(self):
        inst = laminar_instance(3, seed=0)
        windows = sorted((j.release, -j.deadline) for j in inst.jobs)
        # Any two windows either nest or are disjoint.
        for a in inst.jobs:
            for b in inst.jobs:
                lo = max(a.release, b.release)
                hi = min(a.deadline, b.deadline)
                if hi <= lo:  # disjoint
                    continue
                nested = (
                    a.release >= b.release - 1e-12 and a.deadline <= b.deadline + 1e-12
                ) or (
                    b.release >= a.release - 1e-12 and b.deadline <= a.deadline + 1e-12
                )
                assert nested

    def test_batch_common_window(self):
        inst = batch_instance(10, deadline=2.0, seed=0)
        assert all(j.release == 0.0 and j.deadline == 2.0 for j in inst.jobs)

    def test_tight_slack(self):
        inst = tight_instance(10, slack=1.3, seed=0)
        for j in inst.jobs:
            assert j.span == pytest.approx(1.3 * j.workload)

    def test_diurnal_intensity_bounds(self):
        ts = np.linspace(0, 48, 200)
        vals = [diurnal_intensity(float(t)) for t in ts]
        assert min(vals) >= 0.15 - 1e-12
        assert max(vals) <= 1.0 + 1e-12

    def test_diurnal_mix(self):
        inst = diurnal_instance(40, seed=0, interactive_fraction=0.5)
        names = [j.name or "" for j in inst.jobs]
        assert any(n.startswith("web") for n in names)
        assert any(n.startswith("batch") for n in names)

    def test_value_ratio_validation(self):
        with pytest.raises(InvalidParameterError):
            poisson_instance(5, value_ratio=(0.0, 1.0), seed=0)
        with pytest.raises(InvalidParameterError):
            poisson_instance(5, value_ratio=(2.0, 1.0), seed=0)


class TestBurstyFamily:
    def test_spike_windows_tightened(self):
        from repro.workloads import bursty_instance

        inst = bursty_instance(8, burstiness=4.0, spike_period=4, seed=0)
        spans = inst.deadlines - inst.releases
        for i in range(inst.n):
            if i % 4 == 3:
                assert spans[i] == pytest.approx(0.5)
            else:
                assert spans[i] == pytest.approx(2.0)

    def test_flat_at_burstiness_one(self):
        from repro.workloads import bursty_instance

        inst = bursty_instance(6, burstiness=1.0, seed=1)
        spans = inst.deadlines - inst.releases
        assert np.allclose(spans, spans[0])

    def test_jobs_are_must_finish(self):
        from repro.workloads import bursty_instance

        inst = bursty_instance(5, seed=2)
        assert (inst.values >= 1e29).all()

    def test_validation(self):
        from repro.errors import InvalidParameterError
        from repro.workloads import bursty_instance

        with pytest.raises(InvalidParameterError):
            bursty_instance(0)
        with pytest.raises(InvalidParameterError):
            bursty_instance(4, burstiness=0.5)
        with pytest.raises(InvalidParameterError):
            bursty_instance(4, spike_period=1)

    def test_uniform_over_yds_grows_with_burstiness(self):
        from repro.classical.yds import yds
        from repro.offline.flow import run_uniform_speed
        from repro.workloads import bursty_instance

        ratios = []
        for b in (1.0, 8.0):
            inst = bursty_instance(8, burstiness=b, seed=3)
            ratios.append(
                run_uniform_speed(inst).energy / yds(inst).energy
            )
        assert ratios[1] > ratios[0]
