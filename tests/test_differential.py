"""Randomized differential testing across independent implementations.

Strategy: generate many small random instances and cross-check every pair
of components that compute the same quantity by different algorithms —
the strongest practical defence against "plausible but wrong" scheduling
code. All generators are seeded; failures print the offending seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.certificates import dual_certificate
from repro.classical.oa import run_oa
from repro.classical.yds import yds
from repro.core.cll import run_cll
from repro.core.pd import run_pd
from repro.model.job import Instance, Job
from repro.offline.convex import solve_min_energy
from repro.offline.optimal import solve_exact
from repro.workloads.random_instances import poisson_instance


def tiny_instance(seed: int, n: int = 5, m: int = 1, alpha: float = 2.0) -> Instance:
    """Small random profitable instance with adversarial value spread."""
    rng = np.random.default_rng(seed)
    jobs = []
    t = 0.0
    for _ in range(n):
        t += float(rng.uniform(0.0, 1.5))
        span = float(rng.uniform(0.3, 2.5))
        w = float(rng.uniform(0.1, 2.0))
        solo = (w / span) ** (alpha - 1.0) * w
        value = solo * float(rng.choice([0.05, 0.3, 1.0, 3.0, 30.0]))
        jobs.append(Job(t, t + span, w, value))
    return Instance(tuple(jobs), m=m, alpha=alpha)


class TestPdVsExactOptimum:
    """The theorem chain on many random instances, exactly solved."""

    @pytest.mark.parametrize("seed", range(20))
    def test_single_processor(self, seed):
        inst = tiny_instance(seed, n=5, m=1, alpha=2.0)
        pd = run_pd(inst)
        cert = dual_certificate(pd)
        opt = solve_exact(inst.sorted_by_release()).cost
        assert cert.g <= opt * (1 + 1e-6) + 1e-9, f"seed {seed}: dual above OPT"
        assert opt <= pd.cost * (1 + 1e-6) + 1e-9, f"seed {seed}: OPT above PD"
        assert pd.cost <= 4.0 * opt * (1 + 1e-6) + 1e-9, f"seed {seed}: ratio > 4"

    @pytest.mark.parametrize("seed", range(10))
    def test_two_processors(self, seed):
        inst = tiny_instance(seed, n=5, m=2, alpha=2.0)
        pd = run_pd(inst)
        opt = solve_exact(inst.sorted_by_release()).cost
        assert pd.cost <= 4.0 * opt * (1 + 1e-6) + 1e-9
        assert dual_certificate(pd).g <= opt * (1 + 1e-6) + 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_alpha_three(self, seed):
        inst = tiny_instance(seed, n=5, m=1, alpha=3.0)
        pd = run_pd(inst)
        opt = solve_exact(inst.sorted_by_release()).cost
        assert pd.cost <= 27.0 * opt * (1 + 1e-6) + 1e-9


class TestOfflineSolversAgree:
    """Combinatorial YDS vs numeric block-coordinate descent."""

    @pytest.mark.parametrize("seed", range(15))
    def test_yds_vs_bcd(self, seed):
        inst = tiny_instance(seed, n=6, m=1, alpha=3.0)
        classical = inst.with_values([1e12] * inst.n)
        a = yds(classical).energy
        b = solve_min_energy(classical).energy
        assert a == pytest.approx(b, rel=1e-5), f"seed {seed}"

    @pytest.mark.parametrize("seed", range(8))
    def test_bcd_beats_any_feasible_start(self, seed):
        """The solver must not exceed the AVR warm start it begins from."""
        inst = tiny_instance(seed, n=6, m=2, alpha=3.0).with_values([1e12] * 6)
        from repro.classical.avr import run_avr

        assert solve_min_energy(inst).energy <= run_avr(inst).energy * (1 + 1e-9)


class TestOnlineAlgorithmsConsistent:
    @pytest.mark.parametrize("seed", range(10))
    def test_pd_classical_limit_equals_high_value_run(self, seed):
        """PD with huge values == PD where rejection is impossible: both
        accept everything and produce identical schedules."""
        inst = tiny_instance(seed, n=6, m=1, alpha=3.0)
        high = inst.with_values([1e14] * inst.n)
        higher = inst.with_values([1e16] * inst.n)
        r1, r2 = run_pd(high), run_pd(higher)
        assert r1.accepted_mask.all() and r2.accepted_mask.all()
        assert r1.cost == pytest.approx(r2.cost, rel=1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_oa_vs_pd_on_batch_arrivals(self, seed):
        """All jobs released together: PD (high values) and OA both solve
        the same static convex problem."""
        rng = np.random.default_rng(seed)
        rows = [
            (0.0, float(rng.uniform(0.5, 4.0)), float(rng.uniform(0.2, 2.0)))
            for _ in range(5)
        ]
        inst = Instance.classical(rows, m=1, alpha=3.0)
        assert run_pd(inst).cost == pytest.approx(run_oa(inst).energy, rel=1e-5)

    @pytest.mark.parametrize("seed", range(10))
    def test_cll_and_pd_reject_same_obviously_bad_jobs(self, seed):
        """Jobs worth < 1% of their solo energy must be rejected by both."""
        inst = tiny_instance(seed, n=6, m=1, alpha=3.0)
        values = []
        for job in inst.jobs:
            solo = (job.workload / job.span) ** 2.0 * job.workload
            values.append(solo * 0.001)
        cheap = inst.with_values(values)
        pd = run_pd(cheap)
        cll = run_cll(cheap.sorted_by_release())
        assert not pd.accepted_mask.any()
        assert not cll.accepted_mask.any()


class TestScheduleEnergyAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_assignment_energy_equals_segment_energy(self, seed):
        """Schedule.energy (via P_k) == sum of P(speed)*duration over the
        realized segments — two independent accounting paths."""
        inst = tiny_instance(seed, n=6, m=2, alpha=3.0)
        sched = run_pd(inst).schedule
        power = sched.instance.power
        seg_energy = sum(
            power(seg.speed) * seg.duration
            for isched in sched.realize()
            for seg in isched.segments
        )
        assert seg_energy == pytest.approx(sched.energy, rel=1e-7)

    @pytest.mark.parametrize("seed", range(6))
    def test_grid_refinement_energy_invariance(self, seed):
        inst = tiny_instance(seed, n=5, m=2, alpha=2.5)
        sched = run_pd(inst).schedule
        mids = [
            (a + b) / 2.0
            for a, b in zip(sched.grid.boundaries, sched.grid.boundaries[1:])
        ]
        finer = sched.on_grid(sched.grid.refine(mids).grid)
        assert finer.energy == pytest.approx(sched.energy, rel=1e-9)


class TestGeneralizedDegeneracy:
    """The generalized machinery must reproduce the polynomial machinery
    exactly when the power collapses to a single monomial — across
    exponents, machine counts, and workload shapes."""

    @pytest.mark.parametrize("alpha", [1.5, 2.0, 2.5, 3.0])
    @pytest.mark.parametrize("m", [1, 3])
    def test_pd_general_equals_pd(self, alpha, m):
        from repro.general import SumPower, general_dual_bound, run_pd_general
        from repro.analysis.certificates import dual_certificate

        inst = poisson_instance(7, m=m, alpha=alpha, seed=17)
        delta = alpha ** (1.0 - alpha)
        gen = run_pd_general(inst, SumPower([1.0], [alpha]), delta=delta)
        ref = run_pd(inst)
        assert gen.cost == pytest.approx(ref.cost, rel=1e-10)
        assert np.array_equal(gen.accepted_mask, ref.accepted_mask)
        assert general_dual_bound(gen).g == pytest.approx(
            dual_certificate(ref).g, rel=1e-9
        )

    @pytest.mark.parametrize("alpha", [2.0, 3.0])
    def test_energy_with_power_equals_schedule_energy(self, alpha):
        from repro.general import SumPower, energy_with_power

        inst = poisson_instance(6, m=2, alpha=alpha, seed=18)
        schedule = run_pd(inst).schedule
        assert energy_with_power(
            schedule, SumPower([1.0], [alpha])
        ) == pytest.approx(schedule.energy, rel=1e-12)

    def test_discretize_with_exact_level_menu_is_identity_energy(self):
        """A menu containing every realized speed reproduces the
        continuous energy exactly (theta = 1 everywhere)."""
        from repro.discrete import SpeedSet, discretize_schedule

        inst = poisson_instance(6, m=2, alpha=3.0, seed=19)
        schedule = run_pd(inst).schedule
        speeds = sorted(
            {
                round(seg.speed, 12)
                for iv in schedule.realize()
                for seg in iv.segments
                if seg.speed > 0
            }
        )
        menu = SpeedSet(speeds)
        disc = discretize_schedule(schedule, menu)
        assert disc.energy == pytest.approx(schedule.energy, rel=1e-6)
        assert disc.overhead == pytest.approx(1.0, rel=1e-6)
