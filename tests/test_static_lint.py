"""Tests for ``repro lint`` — the static-analysis framework and checkers.

Three layers of assurance:

* **plants fire** — every RPR family produces its finding on the
  planted-violation fixtures in ``tests/lint_fixtures/``;
* **the repo is clean** — a self-run over ``src/`` returns zero
  findings, which is what the CI lint job gates on;
* **the plumbing holds** — noqa suppression (including family
  prefixes and string-literal immunity), ``--select`` filtering, text
  and JSON rendering, and the CLI exit-code contract.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.static import (
    all_checkers,
    collect_sources,
    format_findings,
    known_codes,
    run_lint,
)
from repro.analysis.static.determinism import (
    KNOWN_RECORD_SCHEMAS,
    DeterminismChecker,
    record_schema_fingerprint,
)
from repro.analysis.static.locks import LockCoverageChecker
from repro.analysis.static.parity import ParityPairChecker
from repro.analysis.static.registry_contracts import RegistryContractChecker
from repro.analysis.static.resources import ResourceBalanceChecker
from repro.errors import InvalidParameterError
from repro.io.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def codes_of(findings) -> list[str]:
    return [finding.code for finding in findings]


class TestDeterminismChecker:
    def test_producer_closure_catches_wall_clock_and_sets(self):
        findings = run_lint(
            [FIXTURES / "determinism_bad.py"],
            root=REPO_ROOT,
            checkers=[DeterminismChecker()],
        )
        assert "RPR101" in codes_of(findings)
        assert "RPR102" in codes_of(findings)
        rpr101 = next(f for f in findings if f.code == "RPR101")
        assert "time.time" in rpr101.message
        assert "_salt" in rpr101.message

    def test_unregistered_record_version_is_rpr104(self):
        findings = run_lint(
            [FIXTURES / "record_v99.py"],
            root=REPO_ROOT,
            checkers=[DeterminismChecker()],
        )
        assert codes_of(findings) == ["RPR104"]
        assert "99" in findings[0].message

    def test_schema_drift_under_registered_version_is_rpr103(self):
        findings = run_lint(
            [FIXTURES / "record_drift.py"],
            root=REPO_ROOT,
            checkers=[DeterminismChecker()],
        )
        assert codes_of(findings) == ["RPR103"]
        assert "RECORD_VERSION" in findings[0].message

    def test_registered_fingerprint_matches_the_live_payload(self):
        """The blessed fingerprint in the linter must track the actual
        runner vocabulary — otherwise the self-run below would fail."""
        from repro.engine.runner import _RECORD_PAYLOAD_KEYS, RECORD_VERSION

        assert KNOWN_RECORD_SCHEMAS[RECORD_VERSION] == (
            record_schema_fingerprint(sorted(_RECORD_PAYLOAD_KEYS))
        )

    def test_fingerprint_is_order_insensitive(self):
        assert record_schema_fingerprint(["b", "a"]) == (
            record_schema_fingerprint(["a", "b"])
        )
        assert record_schema_fingerprint(["a"]) != (
            record_schema_fingerprint(["a", "b"])
        )


class TestLockCoverageChecker:
    def lint(self, path):
        return run_lint(
            [path], root=REPO_ROOT, checkers=[LockCoverageChecker()]
        )

    def test_unlocked_writes_flagged_locked_writes_not(self):
        findings = self.lint(FIXTURES / "locks_bad.py")
        assert codes_of(findings) == ["RPR201", "RPR201", "RPR201"]
        methods = {f.message.split()[0] for f in findings}
        assert methods == {"Counter.bump", "Counter.tricky", "Counter.record"}

    def test_subscript_write_counts_as_attribute_write(self):
        findings = self.lint(FIXTURES / "locks_bad.py")
        assert any("_log" in f.message for f in findings)

    def test_noqa_in_string_literal_does_not_suppress(self):
        """``Counter.tricky`` assigns the literal string "# noqa";
        tokenize-based comment parsing must still flag the line."""
        findings = self.lint(FIXTURES / "locks_bad.py")
        assert any("tricky" in f.message for f in findings)

    def test_lockless_class_is_out_of_scope(self, tmp_path):
        (tmp_path / "plain.py").write_text(
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.x = 0\n"
            "    def bump(self):\n"
            "        self.x += 1\n"
        )
        assert self.lint(tmp_path / "plain.py") == []


class TestResourceBalanceChecker:
    def test_fixture_yields_one_of_each(self):
        findings = run_lint(
            [FIXTURES / "resources_bad.py"],
            root=REPO_ROOT,
            checkers=[ResourceBalanceChecker()],
        )
        assert sorted(codes_of(findings)) == ["RPR401", "RPR402", "RPR403"]
        by_code = {f.code: f for f in findings}
        assert "leaky_create" in by_code["RPR401"].message
        assert "leaky_attach" in by_code["RPR402"].message
        assert "BadBackend" in by_code["RPR403"].message

    def test_balanced_create_and_protocol_classes_pass(self, tmp_path):
        (tmp_path / "ok.py").write_text(
            "from typing import Protocol\n"
            "class CacheBackend(Protocol):\n"
            "    def get(self, key): ...\n"
            "    def put(self, key, value): ...\n"
            "    def keys(self): ...\n"
        )
        findings = run_lint(
            [tmp_path / "ok.py"],
            root=tmp_path,
            checkers=[ResourceBalanceChecker()],
        )
        assert findings == []


class TestParityPairChecker:
    def make_tree(self, tmp_path, *, reference: str, test_text: str):
        perf = tmp_path / "perf"
        perf.mkdir()
        (perf / "__init__.py").write_text("")
        (perf / "fast.py").write_text(
            '__all__ = ["fast_sum", "Widget"]\n'
            "def fast_sum(xs):\n    return sum(xs)\n"
            "class Widget:\n    pass\n"
        )
        (perf / "reference.py").write_text(reference)
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_diff.py").write_text(test_text)
        return tmp_path

    def lint(self, root):
        return run_lint([root], root=root, checkers=[ParityPairChecker()])

    def test_missing_counterpart_is_rpr301(self, tmp_path):
        root = self.make_tree(
            tmp_path,
            reference="def fast_sum_reference(xs):\n    return sum(xs)\n",
            test_text="from perf.fast import fast_sum\n"
            "from perf.reference import fast_sum_reference\n",
        )
        findings = self.lint(root)
        assert codes_of(findings) == ["RPR301"]
        assert "'Widget'" in findings[0].message

    def test_parity_pairs_table_satisfies_the_convention_gap(self, tmp_path):
        root = self.make_tree(
            tmp_path,
            reference='PARITY_PAIRS = {"Widget": "fast_sum_reference"}\n'
            "def fast_sum_reference(xs):\n    return sum(xs)\n",
            test_text="pairs = ['fast_sum', 'fast_sum_reference', 'Widget']\n",
        )
        assert self.lint(root) == []

    def test_untested_pair_is_rpr302(self, tmp_path):
        root = self.make_tree(
            tmp_path,
            reference='PARITY_PAIRS = {"Widget": "fast_sum_reference"}\n'
            "def fast_sum_reference(xs):\n    return sum(xs)\n",
            test_text="from perf.fast import fast_sum  # twin never named\n",
        )
        findings = self.lint(root)
        assert codes_of(findings) == ["RPR302", "RPR302"]

    def test_repo_parity_pairs_all_resolve(self):
        """Every entry in the real PARITY_PAIRS names a real reference
        attribute — the table must never rot."""
        import repro.perf.reference as ref

        for kernel, twin in ref.PARITY_PAIRS.items():
            assert hasattr(ref, twin), (kernel, twin)


class FakeInfo:
    def __init__(
        self,
        name,
        runner=lambda instance: None,
        certificate=None,
        caps=(),
        variant_params=None,
        params=None,
    ):
        self.name = name
        self.runner = runner
        self.certificate = certificate
        self._caps = frozenset(caps)
        self.variant_params = dict(variant_params or {})
        self.params = dict(params or {})

    def capabilities(self):
        return self._caps


class FakeAlgorithms:
    """Minimal registry double; ``broken`` raising and ``drift`` never
    reaching a canonical fixed point are the planted violations."""

    def __init__(self, infos, broken=(), drift=False):
        self._infos = {info.name: info for info in infos}
        self._broken = set(broken)
        self._drift = drift

    def names(self):
        return sorted(self._infos) + sorted(self._broken)

    def info(self, spec):
        if spec in self._broken:
            raise KeyError(f"algorithm {spec!r} is not registered")
        if "?" in spec:
            base, _, query = spec.partition("?")
            template = self._infos[base]
            name = f"{base}?{query}0" if self._drift else f"{base}?{query}"
            return FakeInfo(
                name,
                runner=template.runner,
                variant_params=template.variant_params,
                params={"q": query},
            )
        return self._infos[spec]


class FakeWorkloads:
    def __init__(self, build_fns, broken=()):
        self._build = dict(build_fns)
        self._broken = set(broken)

    def names(self):
        return sorted(self._build) + sorted(self._broken)

    def info(self, spec):
        if spec in self._broken:
            raise KeyError(f"workload {spec!r} is not registered")
        return FakeInfo(spec.partition("?")[0])

    def build(self, spec):
        name = spec.partition("?")[0]
        return self._build[name]()


def anchored_tree(tmp_path):
    """A lint root containing both registry anchor files."""
    for sub in ("engine", "workloads"):
        (tmp_path / sub).mkdir()
        (tmp_path / sub / "registry.py").write_text("# anchor\n")
    return tmp_path


class TestRegistryContractChecker:
    def lint(self, root, algorithms, workloads):
        checker = RegistryContractChecker(
            algorithms=algorithms, workloads=workloads
        )
        return run_lint([root], root=root, checkers=[checker])

    def empty_workloads(self):
        return FakeWorkloads({})

    def test_clean_fakes_produce_no_findings(self, tmp_path):
        from repro.workloads import poisson_instance

        algorithms = FakeAlgorithms([FakeInfo("good")])
        workloads = FakeWorkloads(
            {"steady": lambda: poisson_instance(6, m=1, alpha=3.0, seed=3)}
        )
        root = anchored_tree(tmp_path)
        assert self.lint(root, algorithms, workloads) == []

    def test_unresolvable_entries_are_rpr501(self, tmp_path):
        algorithms = FakeAlgorithms([FakeInfo("good")], broken=["ghost"])
        workloads = FakeWorkloads({}, broken=["phantom"])
        root = anchored_tree(tmp_path)
        findings = self.lint(root, algorithms, workloads)
        assert codes_of(findings).count("RPR501") == 2
        joined = " ".join(f.message for f in findings)
        assert "ghost" in joined and "phantom" in joined

    def test_capability_certificate_mismatch_is_rpr502(self, tmp_path):
        algorithms = FakeAlgorithms(
            [FakeInfo("claims", caps=("certificate-producing",))]
        )
        root = anchored_tree(tmp_path)
        findings = self.lint(root, algorithms, self.empty_workloads())
        assert codes_of(findings) == ["RPR502"]

    def test_bad_certificate_arity_is_rpr502(self, tmp_path):
        algorithms = FakeAlgorithms(
            [
                FakeInfo(
                    "twoarg",
                    certificate=lambda raw, extra: None,
                    caps=("certificate-producing",),
                )
            ]
        )
        root = anchored_tree(tmp_path)
        findings = self.lint(root, algorithms, self.empty_workloads())
        assert codes_of(findings) == ["RPR502"]
        assert "one positional argument" in findings[0].message

    def test_variant_canonicalization_drift_is_rpr503(self, tmp_path):
        algorithms = FakeAlgorithms(
            [FakeInfo("pd", variant_params={"delta": float})], drift=True
        )
        root = anchored_tree(tmp_path)
        findings = self.lint(root, algorithms, self.empty_workloads())
        assert codes_of(findings) == ["RPR503"]
        assert "fixed point" in findings[0].message

    def test_nondeterministic_workload_is_rpr504(self, tmp_path):
        from repro.workloads import poisson_instance

        seeds = iter(range(100))
        workloads = FakeWorkloads(
            {
                "flaky": lambda: poisson_instance(
                    6, m=1, alpha=3.0, seed=next(seeds)
                )
            }
        )
        root = anchored_tree(tmp_path)
        findings = self.lint(root, FakeAlgorithms([]), workloads)
        assert codes_of(findings) == ["RPR504"]
        assert "nondeterministic" in findings[0].message

    def test_broken_build_contract_is_rpr505(self, tmp_path):
        def explode():
            raise TypeError("unexpected keyword argument 'seed'")

        workloads = FakeWorkloads({"grumpy": explode})
        root = anchored_tree(tmp_path)
        findings = self.lint(root, FakeAlgorithms([]), workloads)
        assert codes_of(findings) == ["RPR505"]

    def test_no_anchor_files_no_registry_pass(self, tmp_path):
        """Linting sources that do not include the registry modules must
        not import (or validate) the live registries."""
        (tmp_path / "other.py").write_text("x = 1\n")

        class Bomb:
            def names(self):
                raise AssertionError("registry touched without an anchor")

        checker = RegistryContractChecker(algorithms=Bomb(), workloads=Bomb())
        assert run_lint([tmp_path], root=tmp_path, checkers=[checker]) == []

    def test_live_registries_pass(self):
        """The real REGISTRY/WORKLOADS satisfy their own contracts."""
        from repro.engine.registry import REGISTRY
        from repro.workloads.registry import WORKLOADS

        sources, errors = collect_sources(
            [
                REPO_ROOT / "src" / "repro" / "engine" / "registry.py",
                REPO_ROOT / "src" / "repro" / "workloads" / "registry.py",
            ],
            REPO_ROOT,
        )
        assert errors == []
        checker = RegistryContractChecker(
            algorithms=REGISTRY, workloads=WORKLOADS
        )
        assert checker.check_repo(sources, REPO_ROOT) == []


class TestFrameworkPlumbing:
    def test_noqa_suppresses_exact_family_and_bare(self):
        findings = run_lint([FIXTURES / "suppressed.py"], root=REPO_ROOT)
        assert findings == []

    def test_select_filters_by_prefix(self):
        findings = run_lint(
            [FIXTURES / "resources_bad.py"], root=REPO_ROOT, select=["RPR40"]
        )
        assert sorted(codes_of(findings)) == ["RPR401", "RPR402", "RPR403"]
        only = run_lint(
            [FIXTURES / "resources_bad.py"], root=REPO_ROOT, select=["RPR403"]
        )
        assert codes_of(only) == ["RPR403"]

    def test_syntax_error_becomes_rpr001(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        findings = run_lint([bad], root=tmp_path)
        assert codes_of(findings) == ["RPR001"]
        assert "cannot parse" in findings[0].message

    def test_missing_target_raises_input_error(self):
        with pytest.raises(InvalidParameterError, match="does not exist"):
            run_lint([REPO_ROOT / "no" / "such" / "dir"], root=REPO_ROOT)

    def test_findings_sort_and_render(self):
        findings = run_lint([FIXTURES / "locks_bad.py"], root=REPO_ROOT)
        assert findings == sorted(findings)
        rendered = findings[0].render()
        assert rendered.startswith("tests/lint_fixtures/locks_bad.py:")
        assert "RPR201" in rendered

    def test_format_text_and_json(self):
        findings = run_lint([FIXTURES / "locks_bad.py"], root=REPO_ROOT)
        text = format_findings(findings, "text")
        assert text.endswith(f"{len(findings)} finding(s)")
        payload = json.loads(format_findings(findings, "json"))
        assert payload["count"] == len(findings)
        assert payload["findings"][0]["code"] == "RPR201"
        assert format_findings([], "text") == "clean: no findings"
        with pytest.raises(InvalidParameterError, match="format"):
            format_findings(findings, "yaml")

    def test_known_codes_cover_every_family(self):
        codes = known_codes()
        assert "RPR001" in codes
        for family in ("RPR1", "RPR2", "RPR3", "RPR4", "RPR5"):
            assert any(code.startswith(family) for code in codes)

    def test_every_checker_declares_its_codes(self):
        for checker in all_checkers():
            assert checker.codes, checker.name
            assert all(code.startswith("RPR") for code in checker.codes)


class TestSelfRun:
    def test_repo_src_is_clean(self):
        """The invariant CI gates on: the shipped tree has no findings."""
        assert run_lint([REPO_ROOT / "src"], root=REPO_ROOT) == []


class TestExternalLinters:
    """ruff/mypy run against the committed pyproject.toml config when the
    tools are present (CI's lint job installs them; the offline test
    container may not have them, hence the skips)."""

    @pytest.mark.skipif(
        shutil.which("ruff") is None, reason="ruff not installed"
    )
    def test_ruff_clean(self):
        proc = subprocess.run(
            ["ruff", "check", "src", "tests"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.skipif(
        shutil.which("mypy") is None, reason="mypy not installed"
    )
    def test_mypy_typed_core_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestCli:
    def test_lint_clean_exit_zero(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src" / "repro" / "model")]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_lint_findings_exit_one(self, capsys):
        assert main(["lint", str(FIXTURES / "locks_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "RPR201" in out and "finding(s)" in out

    def test_lint_json_format(self, capsys):
        code = main(
            ["lint", "--format", "json", str(FIXTURES / "resources_bad.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 3

    def test_lint_select(self, capsys):
        code = main(
            [
                "lint",
                "--select",
                "RPR403",
                str(FIXTURES / "resources_bad.py"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR403" in out and "RPR401" not in out

    def test_lint_select_comma_separated(self, capsys):
        code = main(
            [
                "lint",
                "--select",
                "RPR401,RPR402",
                str(FIXTURES / "resources_bad.py"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR401" in out and "RPR403" not in out

    def test_list_codes(self, capsys):
        assert main(["lint", "--list-codes"]) == 0
        out = capsys.readouterr().out
        assert "RPR101" in out and "RPR501" in out

    def test_missing_target_exit_two(self, capsys):
        assert main(["lint", str(REPO_ROOT / "definitely-not-here")]) == 2
        assert "does not exist" in capsys.readouterr().err
