"""Differential suite for arrival-epoch batched execution.

``repro.perf.epochs`` replays the per-arrival PD loop in vectorized
blocks — and promises the replay is invisible: same decisions, same
stores, same planned loads, same payload hashes, same cache keys, with
:data:`repro.engine.runner.RECORD_VERSION` unbumped. Every test here
runs the epoch path (:func:`repro.perf.epochs.arrive_epochs` and its
wrappers) against the per-arrival twin
(:func:`repro.perf.reference.arrive_epochs_reference` — one scalar
``arrive()`` per job) and compares with exact equality, never
tolerances. The OA epoch bookkeeping loop gets the same treatment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.classical.oa import oa_segments, run_oa
from repro.core.pd import PDScheduler, run_pd
from repro.engine.experiment import ExperimentSpec
from repro.engine.runner import (
    RECORD_VERSION,
    RunRequest,
    evaluate_request,
    request_key,
)
from repro.errors import InvalidParameterError
from repro.io.serialize import schedule_to_dict, stable_hash
from repro.model.job import Instance
from repro.perf.epochs import (
    DEFAULT_EPOCH_SIZE,
    arrive_epochs,
    batch_mode,
    current_batch_mode,
)
from repro.perf.reference import arrive_epochs_reference
from repro.workloads import (
    diurnal_instance,
    heavy_tail_instance,
    slotted_instance,
)

#: (family, n, m) across the workload shapes the epoch layer must not
#: distort: slot-aligned streams (wide blocks, heavy screening),
#: heavy-tail elephants (grid churn), and the datacenter mix (dense
#: distinct releases — blocks split at nearly every refinement).
FAMILIES = [
    (slotted_instance, 300, 1),
    (slotted_instance, 300, 4),
    (heavy_tail_instance, 120, 1),
    (heavy_tail_instance, 120, 4),
    (diurnal_instance, 150, 1),
    (diurnal_instance, 150, 4),
]


def degenerate_single_interval(n: int = 16, m: int = 2) -> Instance:
    """Every job shares one window: the grid never refines past one
    atomic interval, so after the bootstrap arrival every block runs at
    full width against a single store."""
    rng = np.random.default_rng(5)
    jobs = [
        (0.0, 4.0, float(w), float(v))
        for w, v in zip(
            rng.exponential(1.0, n) + 1e-3, rng.uniform(0.05, 8.0, n)
        )
    ]
    return Instance.from_tuples(jobs, m=m, alpha=3.0)


def tie_at_epoch_boundary(n: int = 24) -> Instance:
    """Byte-identical jobs in one shared window: every price computation
    ties exactly, so any ordering slip between the batched and the
    sequential path would flip which job the tie-break admits. With
    ``epoch_size=7`` the tie pairs straddle block boundaries."""
    jobs = [(0.0, 3.0, 1.0, 2.5)] * n
    return Instance.from_tuples(jobs, m=2, alpha=3.0)


def assert_epoch_parity(instance: Instance, **epoch_kwargs) -> None:
    """Full-result bitwise comparison of epoch vs per-arrival PD."""
    new = run_pd(instance, batch="epoch", **epoch_kwargs)
    old = run_pd(instance, batch="arrival")
    assert np.array_equal(new.schedule.loads, old.schedule.loads)
    assert np.array_equal(new.planned_loads, old.planned_loads)
    assert np.array_equal(new.lambdas, old.lambdas)
    assert np.array_equal(new.schedule.finished, old.schedule.finished)
    assert new.decisions == old.decisions
    assert new.schedule.instance.jobs == old.schedule.instance.jobs
    assert new.schedule.energy == old.schedule.energy
    assert new.cost == old.cost
    # The record body that gets content-hashed is byte-identical, so
    # cached pre-epoch records keep answering epoch-mode requests.
    assert stable_hash(schedule_to_dict(new.schedule)) == stable_hash(
        schedule_to_dict(old.schedule)
    )


class TestPDEpochParity:
    @pytest.mark.parametrize("family,n,m", FAMILIES)
    @pytest.mark.parametrize("seed", [0, 11])
    def test_families_bitwise_identical(self, family, n, m, seed):
        assert_epoch_parity(family(n, m=m, alpha=3.0, seed=seed))

    def test_degenerate_single_interval_grid(self):
        assert_epoch_parity(degenerate_single_interval())

    def test_exact_price_ties_across_epoch_boundaries(self):
        assert_epoch_parity(tie_at_epoch_boundary(), epoch_size=7)

    @pytest.mark.parametrize("epoch_size", [1, 7, 300])
    def test_epoch_size_invariant(self, epoch_size):
        """The block length is pure tuning: size 1 (every job scalar),
        a prime that misaligns with everything, and n (one block)."""
        inst = slotted_instance(300, slots=40, m=4, alpha=3.0, seed=2)
        assert_epoch_parity(inst, epoch_size=epoch_size)

    def test_scheduler_state_identical(self):
        """Not just the results — the live stores themselves: loads,
        insertion-order ids, flushed suffixes, planned lists."""
        inst = slotted_instance(400, slots=60, m=4, alpha=3.0, seed=1)
        arrays = inst.sorted_by_release().arrays
        fast = PDScheduler(m=4, alpha=3.0, batch="epoch")
        arrive_epochs(fast, arrays, epoch_size=64)
        slow = PDScheduler(m=4, alpha=3.0)
        arrive_epochs_reference(slow, arrays)
        fast._flush_suffixes()
        assert np.array_equal(fast._grid.boundaries, slow._grid.boundaries)
        for fs, ss in zip(fast._states, slow._states):
            assert fs.loads == ss.loads
            assert fs.ids == ss.ids
            assert fs.suffix == ss.suffix
        assert fast._planned == slow._planned
        assert fast.streaming_cost() == slow.streaming_cost()
        assert fast.streaming_energy() == slow.streaming_energy()
        assert fast.streaming_lost_value() == slow.streaming_lost_value()
        assert np.array_equal(fast.snapshot_loads(), slow.snapshot_loads())

    def test_named_jobs_survive_epoch_runs(self):
        jobs = [
            (0.0, 2.0, 1.0, 3.0, "first"),
            (0.5, 2.5, 0.5, 0.001, "junk"),
            (1.0, 3.0, 1.5, 5.0, "big"),
        ]
        inst = Instance.from_tuples(jobs, m=1, alpha=3.0)
        new = run_pd(inst, batch="epoch")
        old = run_pd(inst, batch="arrival")
        assert [j.name for j in new.schedule.instance.jobs] == [
            j.name for j in old.schedule.instance.jobs
        ]
        assert stable_hash(schedule_to_dict(new.schedule)) == stable_hash(
            schedule_to_dict(old.schedule)
        )


class TestEpochErrors:
    def test_epoch_size_must_be_positive(self):
        sched = PDScheduler(m=1, alpha=3.0, batch="epoch")
        arrays = slotted_instance(5, slots=3, seed=0).sorted_by_release().arrays
        with pytest.raises(InvalidParameterError, match="epoch_size"):
            arrive_epochs(sched, arrays, epoch_size=0)

    def test_cannot_mix_arrive_with_epoch_batches(self):
        inst = slotted_instance(6, slots=3, seed=0).sorted_by_release()
        sched = PDScheduler(m=1, alpha=3.0, batch="epoch")
        sched.arrive_many(inst.arrays)
        with pytest.raises(InvalidParameterError, match="cannot mix"):
            sched.arrive(inst.jobs[0])
        other = PDScheduler(m=1, alpha=3.0)
        other.arrive(inst.jobs[0])
        with pytest.raises(InvalidParameterError, match="cannot mix"):
            arrive_epochs(other, inst.arrays)

    def test_release_order_violation_processes_prefix_first(self):
        """Mid-block violations must leave the scheduler exactly where
        the sequential loop would: valid prefix processed, then raise."""
        from repro.model.job_arrays import JobArrays

        arrays = JobArrays(
            releases=np.array([0.0, 1.0, 2.0, 0.5]),
            deadlines=np.array([2.0, 3.0, 4.0, 2.5]),
            workloads=np.ones(4),
            values=np.full(4, 2.0),
        )
        fast = PDScheduler(m=1, alpha=3.0, batch="epoch")
        with pytest.raises(InvalidParameterError, match="release order"):
            arrive_epochs(fast, arrays, epoch_size=8)
        slow = PDScheduler(m=1, alpha=3.0)
        with pytest.raises(InvalidParameterError, match="release order"):
            arrive_epochs_reference(slow, arrays)
        assert fast._count == 3
        fast._flush_suffixes()
        for fs, ss in zip(fast._states, slow._states):
            assert fs.loads == ss.loads

    def test_invalid_batch_mode_rejected(self):
        inst = slotted_instance(4, slots=2, seed=0)
        with pytest.raises(InvalidParameterError, match="batch"):
            run_pd(inst, batch="bogus")
        with pytest.raises(InvalidParameterError, match="batch"):
            PDScheduler(m=1, alpha=3.0, batch="bogus")


class TestBatchModeContext:
    def test_default_is_arrival(self):
        assert current_batch_mode() == "arrival"

    def test_context_sets_and_restores(self):
        with batch_mode("epoch"):
            assert current_batch_mode() == "epoch"
            with batch_mode(None):  # None is a no-op wrap
                assert current_batch_mode() == "epoch"
            with batch_mode("arrival"):
                assert current_batch_mode() == "arrival"
            assert current_batch_mode() == "epoch"
        assert current_batch_mode() == "arrival"

    def test_invalid_mode_rejected(self):
        with pytest.raises(InvalidParameterError, match="batch"):
            with batch_mode("turbo"):
                pass  # pragma: no cover

    def test_run_pd_defers_to_ambient_mode(self):
        inst = slotted_instance(60, slots=10, m=2, alpha=3.0, seed=4)
        old = run_pd(inst)
        with batch_mode("epoch"):
            new = run_pd(inst)
        assert new.decisions == old.decisions
        assert new.cost == old.cost

    def test_default_epoch_size_is_sane(self):
        assert DEFAULT_EPOCH_SIZE >= 1


class TestOAEpochParity:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_segments_bitwise_identical(self, seed):
        for family, n in [
            (slotted_instance, 250),
            (heavy_tail_instance, 120),
            (diurnal_instance, 150),
        ]:
            inst = family(n, m=1, alpha=3.0, seed=seed)
            _, old = oa_segments(inst, batch="arrival")
            _, new = oa_segments(inst, batch="epoch")
            assert new == old

    def test_run_oa_schedule_identical(self):
        inst = slotted_instance(150, slots=25, m=1, alpha=3.0, seed=3)
        old = run_oa(inst, batch="arrival")
        new = run_oa(inst, batch="epoch")
        assert np.array_equal(new.schedule.loads, old.schedule.loads)
        assert new.segments == old.segments
        assert new.energy == old.energy
        assert stable_hash(schedule_to_dict(new.schedule)) == stable_hash(
            schedule_to_dict(old.schedule)
        )

    def test_reference_replan_excludes_epoch_batching(self):
        inst = slotted_instance(10, slots=4, m=1, alpha=3.0, seed=0)
        with pytest.raises(InvalidParameterError, match="replan"):
            oa_segments(inst, replan="reference", batch="epoch")

    def test_ambient_mode_reaches_oa(self):
        inst = slotted_instance(80, slots=12, m=1, alpha=3.0, seed=6)
        _, old = oa_segments(inst)
        with batch_mode("epoch"):
            _, new = oa_segments(inst)
        assert new == old


class TestEngineCacheIdentity:
    def test_record_version_unbumped(self):
        # Epoch batching changes HOW results are computed, never WHAT —
        # a version bump here would cold-start every cache for nothing.
        assert RECORD_VERSION == 2

    def test_request_key_ignores_batch(self):
        inst = slotted_instance(30, slots=6, m=2, alpha=3.0, seed=1)
        assert request_key("pd", inst) == request_key("pd", inst)
        ra = RunRequest("pd", inst, batch="arrival")
        re_ = RunRequest("pd", inst, batch="epoch")
        assert request_key(ra.algorithm, ra.instance) == request_key(
            re_.algorithm, re_.instance
        )

    @pytest.mark.parametrize("algorithm", ["pd", "oa"])
    def test_evaluate_request_payload_identical(self, algorithm):
        inst = slotted_instance(40, slots=8, m=1, alpha=3.0, seed=2)
        pa = evaluate_request(RunRequest(algorithm, inst, batch="arrival"))
        pe = evaluate_request(RunRequest(algorithm, inst, batch="epoch"))
        pa.pop("wall_time")
        pe.pop("wall_time")
        assert pa == pe

    def test_experiment_spec_threads_batch_mode(self):
        spec = ExperimentSpec(
            name="t",
            family="poisson",
            grid={"alpha": [3.0], "m": [1]},
            n=12,
            seeds=(0,),
            batch_mode="epoch",
        )
        assert all(r.batch == "epoch" for r in spec.requests())
        plain = ExperimentSpec(
            name="t",
            family="poisson",
            grid={"alpha": [3.0], "m": [1]},
            n=12,
            seeds=(0,),
        )
        assert all(r.batch is None for r in plain.requests())

    def test_experiment_spec_rejects_unknown_batch_mode(self):
        with pytest.raises(InvalidParameterError, match="batch_mode"):
            ExperimentSpec(name="t", family="poisson", batch_mode="turbo")
