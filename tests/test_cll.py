"""Tests for the Chan–Lam–Li baseline scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classical.yds import yds
from repro.core.cll import cll_admits, run_cll
from repro.core.pd import run_pd
from repro.errors import InvalidParameterError
from repro.model.job import Instance
from repro.workloads import poisson_instance


class TestAdmissionPredicate:
    def test_threshold_form(self):
        # alpha = 3: admit iff w * s^2 <= 3 * v.
        assert cll_admits(workload=1.0, value=1.0, planned_speed=1.7, alpha=3.0)
        assert not cll_admits(workload=1.0, value=1.0, planned_speed=1.8, alpha=3.0)

    def test_alpha_two_threshold(self):
        # alpha = 2: admit iff w * s <= v exactly (factor alpha^0 = 1).
        assert cll_admits(workload=2.0, value=1.0, planned_speed=0.49, alpha=2.0)
        assert not cll_admits(workload=2.0, value=1.0, planned_speed=0.51, alpha=2.0)


class TestRunCLL:
    def test_rejects_multiprocessor(self):
        with pytest.raises(InvalidParameterError):
            run_cll(Instance.classical([(0.0, 1.0, 1.0)], m=2))

    def test_high_value_jobs_all_finished_at_oa_cost(self):
        inst = Instance.classical(
            [(0.0, 3.0, 1.0), (1.0, 4.0, 1.5), (2.0, 5.0, 0.5)], m=1, alpha=3.0
        )
        result = run_cll(inst)
        result.schedule.validate()
        assert result.accepted_mask.all()
        assert result.cost >= yds(inst).energy - 1e-9

    def test_worthless_job_rejected(self):
        inst = Instance.from_tuples(
            [(0.0, 1.0, 1.0, 1e-9), (0.0, 2.0, 1.0, 1e9)], m=1, alpha=3.0
        )
        result = run_cll(inst)
        accepted = result.accepted_mask
        assert not accepted[list(result.schedule.instance.arrival_order()).index(0)]
        assert accepted.sum() == 1

    def test_single_job_threshold_matches_pd(self):
        """On a lone job CLL and PD implement the same rejection rule."""
        for value in [0.1, 0.3, 0.35, 0.5, 2.0]:
            inst = Instance.from_tuples([(0.0, 1.0, 1.0, value)], m=1, alpha=3.0)
            assert bool(run_cll(inst).accepted_mask[0]) == bool(
                run_pd(inst).accepted_mask[0]
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_high_decision_agreement_with_pd(self, seed):
        """Same policy, different planned schedules: decisions agree on
        the overwhelming majority of jobs (the paper's Section 3 remark)."""
        inst = poisson_instance(15, m=1, alpha=3.0, seed=seed)
        pd = run_pd(inst)
        cll = run_cll(inst.sorted_by_release())
        agreement = float(np.mean(pd.accepted_mask == cll.accepted_mask))
        assert agreement >= 0.8

    def test_planned_speeds_recorded(self):
        inst = poisson_instance(8, m=1, alpha=3.0, seed=3)
        result = run_cll(inst.sorted_by_release())
        assert (result.planned_speeds >= 0).all()
        # Admitted jobs must satisfy the admission inequality at their
        # recorded planned speed.
        ordered = inst.sorted_by_release()
        for j in range(ordered.n):
            if result.accepted_mask[j]:
                assert cll_admits(
                    workload=ordered[j].workload,
                    value=ordered[j].value,
                    planned_speed=result.planned_speeds[j] * (1 - 1e-9),
                    alpha=3.0,
                )

    def test_all_rejected_schedule_is_empty(self):
        inst = Instance.from_tuples(
            [(0.0, 1.0, 1.0, 1e-12), (0.5, 1.5, 1.0, 1e-12)], m=1, alpha=3.0
        )
        result = run_cll(inst)
        assert not result.accepted_mask.any()
        assert result.schedule.energy == 0.0
