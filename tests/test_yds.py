"""Tests for the YDS optimal offline algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.classical.yds import yds
from repro.errors import InvalidParameterError
from repro.model.job import Instance
from repro.model.power import optimal_constant_speed_energy
from repro.offline.convex import solve_min_energy
from repro.workloads import lower_bound_instance, optimal_cost_closed_form


def random_classical(n: int, seed: int, alpha: float = 3.0) -> Instance:
    rng = np.random.default_rng(seed)
    rows = []
    t = 0.0
    for _ in range(n):
        t += float(rng.uniform(0.0, 1.0))
        span = float(rng.uniform(0.5, 3.0))
        rows.append((t, t + span, float(rng.uniform(0.2, 2.0))))
    return Instance.classical(rows, m=1, alpha=alpha)


class TestYdsExamples:
    def test_single_job_constant_speed(self):
        inst = Instance.classical([(0.0, 2.0, 4.0)], alpha=3.0)
        result = yds(inst)
        assert result.energy == pytest.approx(2.0 * 2.0**3)
        assert result.job_speeds[0] == pytest.approx(2.0)

    def test_two_disjoint_jobs(self):
        inst = Instance.classical([(0.0, 1.0, 1.0), (2.0, 3.0, 2.0)], alpha=2.0)
        result = yds(inst)
        assert result.energy == pytest.approx(1.0 + 4.0)
        np.testing.assert_allclose(result.job_speeds, [1.0, 2.0])

    def test_nested_critical_interval(self):
        # A tight inner job forces a high-speed critical interval.
        inst = Instance.classical(
            [(0.0, 4.0, 2.0), (1.0, 2.0, 3.0)], alpha=2.0
        )
        result = yds(inst)
        # Critical: [1,2) with job 1 at speed 3. Job 0 spreads over the
        # remaining 3 time units at speed 2/3.
        assert result.job_speeds[1] == pytest.approx(3.0)
        assert result.job_speeds[0] == pytest.approx(2.0 / 3.0)
        assert result.energy == pytest.approx(1.0 * 9.0 + 3.0 * (2.0 / 3.0) ** 2)

    def test_rejects_multiprocessor(self):
        inst = Instance.classical([(0.0, 1.0, 1.0)], m=2)
        with pytest.raises(InvalidParameterError):
            yds(inst)

    def test_lower_bound_closed_form(self):
        for n in [1, 3, 8]:
            inst = lower_bound_instance(n, 3.0)
            assert yds(inst).energy == pytest.approx(
                optimal_cost_closed_form(n, 3.0), rel=1e-9
            )

    def test_schedule_is_valid_and_finishes_everything(self):
        inst = random_classical(12, seed=7)
        result = yds(inst)
        result.schedule.validate()
        assert result.schedule.finished.all()
        np.testing.assert_allclose(
            result.schedule.work_done(), inst.workloads, rtol=1e-7
        )


class TestYdsOptimality:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_convex_optimum(self, seed):
        """YDS (combinatorial) and BCD (numeric) agree on the optimum."""
        inst = random_classical(8, seed=seed)
        combinatorial = yds(inst).energy
        numeric = solve_min_energy(inst).energy
        assert combinatorial == pytest.approx(numeric, rel=1e-6)

    @pytest.mark.parametrize("alpha", [1.5, 2.0, 3.0])
    def test_alpha_sweep(self, alpha):
        inst = random_classical(6, seed=1, alpha=alpha)
        assert yds(inst).energy == pytest.approx(
            solve_min_energy(inst).energy, rel=1e-6
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_never_beaten_by_single_job_bound(self, seed):
        """Optimal energy is at least every job's solo optimum sum."""
        inst = random_classical(5, seed=seed)
        lower = sum(
            optimal_constant_speed_energy(inst.alpha, j.workload, j.span)
            for j in inst.jobs
        )
        # Solo optima ignore contention, so they lower-bound YDS.
        assert yds(inst).energy >= lower - 1e-9

    def test_critical_groups_have_decreasing_speeds(self):
        inst = random_classical(10, seed=3)
        result = yds(inst)
        speeds = [g for g, _, _ in result.groups]
        assert all(a >= b - 1e-9 for a, b in zip(speeds, speeds[1:]))
