"""Living-documentation tests: every tutorial snippet must execute.

``docs/tutorial.md`` promises copy-pasteable snippets; this module
extracts each fenced ``python`` block and runs them in order in a shared
namespace (as a reader following along would). A snippet that raises
fails the build, so the tutorial cannot silently rot.
"""

from __future__ import annotations

import contextlib
import io
import re
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"


def _blocks(name: str) -> list[str]:
    text = (DOCS / name).read_text()
    return re.findall(r"```python\n(.*?)```", text, re.S)


def test_tutorial_snippets_run_in_order():
    blocks = _blocks("tutorial.md")
    assert len(blocks) >= 8, "tutorial lost its snippets"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                exec(block, namespace)  # noqa: S102 - the point of the test
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial block {i} raised {type(exc).__name__}: {exc}")


def test_docs_reference_only_real_modules():
    """Module paths mentioned in the docs must exist (no phantom docs)."""
    import importlib

    pattern = re.compile(r"`repro\.([a-z_.]+)`")
    seen = set()
    for doc in DOCS.glob("*.md"):
        for match in pattern.finditer(doc.read_text()):
            dotted = f"repro.{match.group(1)}".rstrip(".")
            if dotted in seen:
                continue
            seen.add(dotted)
            parts = dotted.split(".")
            # Try module import; fall back to attribute of parent module.
            try:
                importlib.import_module(dotted)
                continue
            except ImportError:
                pass
            parent = ".".join(parts[:-1])
            mod = importlib.import_module(parent)
            assert hasattr(mod, parts[-1]), f"docs mention phantom {dotted}"
    assert seen, "no module references found in docs — regex broken?"
