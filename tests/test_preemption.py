"""Tests for preemption/migration accounting (:mod:`repro.analysis.preemption`).

Pins the structural bounds of the realization substrate: McNaughton's
per-interval migration cap, zero migrations on a single processor, and
sane counting on hand-built schedules where the answer is known.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import run_pd
from repro.analysis.preemption import preemption_stats
from repro.chen.scheduler import schedule_interval
from repro.model.job import Instance
from repro.model.power import PolynomialPower
from repro.workloads.random_instances import poisson_instance

SETTINGS = settings(max_examples=30, deadline=None, derandomize=True)


def _interval_migrations(loads, m):
    """Count wrap migrations in one realized atomic interval."""
    interval = schedule_interval(
        loads, m=m, start=0.0, end=1.0, power=PolynomialPower(3.0)
    )
    by_job: dict[int, list] = {}
    for seg in interval.segments:
        by_job.setdefault(seg.job, []).append(seg)
    count = 0
    for runs in by_job.values():
        runs.sort(key=lambda s: s.start)
        count += sum(
            1 for a, b in zip(runs, runs[1:]) if a.processor != b.processor
        )
    return count


class TestMcNaughtonBound:
    @given(
        n_jobs=st.integers(min_value=1, max_value=12),
        m=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=50),
    )
    @SETTINGS
    def test_per_interval_migrations_below_m_minus_1(self, n_jobs, m, seed):
        rng = np.random.default_rng(seed)
        loads = rng.uniform(0.01, 1.0, size=n_jobs)
        assert _interval_migrations(loads, m) <= max(m - 1, 0)

    def test_equal_pool_jobs_wrap(self):
        # 5 equal jobs on 3 processors: all pool; the virtual timeline is
        # cut twice, so exactly 2 jobs migrate (the m-1 bound is tight).
        assert _interval_migrations([1.0] * 5, 3) == 2

    def test_dedicated_jobs_never_migrate(self):
        # One giant + tiny rest: giant is dedicated, others pool on m=2.
        assert _interval_migrations([100.0, 0.1, 0.1], 2) <= 1


class TestScheduleLevelStats:
    def test_single_processor_never_migrates(self):
        inst = poisson_instance(10, m=1, alpha=3.0, seed=3)
        stats = preemption_stats(run_pd(inst).schedule)
        assert stats.migrations == 0
        assert stats.max_migrations_per_interval == 0
        assert stats.segments > 0

    def test_single_job_has_no_preemptions(self):
        inst = Instance.from_tuples([(0.0, 2.0, 1.0, 10.0)], m=1, alpha=3.0)
        stats = preemption_stats(run_pd(inst).schedule)
        assert stats.preemptions == 0
        assert stats.migrations == 0
        assert stats.segments == 1

    def test_two_disjoint_jobs_no_preemptions(self):
        inst = Instance.from_tuples(
            [(0.0, 1.0, 0.5, 10.0), (2.0, 3.0, 0.5, 10.0)], m=1, alpha=3.0
        )
        stats = preemption_stats(run_pd(inst).schedule)
        assert stats.preemptions == 0

    def test_interleaved_jobs_count_preemptions(self):
        # A long job interrupted by a tight one: the long job's work is
        # split around the middle interval -> at least one preemption.
        inst = Instance.from_tuples(
            [(0.0, 3.0, 1.0, 100.0), (1.0, 2.0, 1.5, 100.0)], m=1, alpha=3.0
        )
        stats = preemption_stats(run_pd(inst).schedule)
        assert stats.preemptions >= 1
        assert stats.migrations == 0  # single processor

    @given(seed=st.integers(min_value=0, max_value=20))
    @SETTINGS
    def test_bounds_hold_on_random_multiproc(self, seed):
        inst = poisson_instance(8, m=3, alpha=3.0, seed=seed)
        stats = preemption_stats(run_pd(inst).schedule)
        assert stats.max_migrations_per_interval <= inst.m - 1
        # Every migration is also a preemption by our counting.
        assert stats.preemptions + stats.migrations >= stats.migrations
        assert stats.segments >= int(run_pd(inst).accepted_mask.sum())

    def test_row_rendering(self):
        inst = poisson_instance(5, m=2, alpha=3.0, seed=1)
        text = preemption_stats(run_pd(inst).schedule).row()
        assert "migrations=" in text and "segments=" in text
