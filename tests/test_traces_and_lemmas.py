"""Tests for job traces (Section 4.2) and Lemmas 9–11 / Propositions 7–8."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.categories import categorize, category_threshold, lemma_bounds
from repro.analysis.certificates import dual_certificate
from repro.analysis.traces import build_traces, check_proposition7
from repro.core.pd import run_pd
from repro.workloads import (
    heavy_tail_instance,
    lower_bound_instance,
    poisson_instance,
    tight_instance,
)

FAMILIES = [
    lambda seed: poisson_instance(15, m=1, alpha=3.0, seed=seed),
    lambda seed: poisson_instance(15, m=3, alpha=3.0, seed=seed),
    lambda seed: poisson_instance(15, m=2, alpha=1.5, seed=seed),
    lambda seed: heavy_tail_instance(12, m=2, alpha=2.5, seed=seed),
    lambda seed: tight_instance(12, m=1, alpha=2.0, seed=seed),
]


class TestTraces:
    @pytest.mark.parametrize("family", range(len(FAMILIES)))
    def test_traces_pairwise_disjoint(self, family):
        result = run_pd(FAMILIES[family](seed=0))
        rep = build_traces(result)
        seen: set[tuple[int, int]] = set()
        for slots in rep.trace:
            for slot in slots:
                assert slot not in seen, f"slot {slot} traced twice"
                seen.add(slot)

    @pytest.mark.parametrize("family", range(len(FAMILIES)))
    def test_traced_energy_bounded_by_total(self, family):
        result = run_pd(FAMILIES[family](seed=1))
        rep = build_traces(result)
        assert rep.total_traced_energy <= result.schedule.energy * (1.0 + 1e-7)

    @pytest.mark.parametrize("family", range(len(FAMILIES)))
    @pytest.mark.parametrize("seed", range(3))
    def test_proposition7_speed_bounds(self, family, seed):
        result = run_pd(FAMILIES[family](seed=seed))
        problems = check_proposition7(result)
        assert problems == []

    def test_trace_ranks_within_m(self):
        inst = poisson_instance(20, m=3, alpha=3.0, seed=2)
        result = run_pd(inst)
        rep = build_traces(result)
        for slots in rep.trace:
            for _, rank in slots:
                assert 0 <= rank < 3

    def test_finished_jobs_on_fastest_ranks(self):
        """Within each interval, finished contributors precede unfinished."""
        inst = tight_instance(15, m=2, alpha=3.0, seed=3)
        result = run_pd(inst)
        cert = dual_certificate(result)
        rep = build_traces(result, cert)
        finished = result.schedule.finished
        per_interval: dict[int, list[tuple[int, bool]]] = {}
        for j, slots in enumerate(rep.trace):
            for k, rank in slots:
                per_interval.setdefault(k, []).append((rank, bool(finished[j])))
        for k, entries in per_interval.items():
            entries.sort()
            flags = [fin for _, fin in entries]
            # Once we see an unfinished job, no finished job may follow.
            seen_unfinished = False
            for fin in flags:
                if not fin:
                    seen_unfinished = True
                assert not (seen_unfinished and fin), f"interval {k}: {flags}"


class TestCategories:
    def test_threshold_value(self):
        # alpha = 3: (3 - 3^(-2)) / 2 = (3 - 1/9)/2 = 13/9.
        assert category_threshold(3.0) == pytest.approx(13.0 / 9.0)

    @pytest.mark.parametrize("family", range(len(FAMILIES)))
    def test_partition_is_exhaustive_and_disjoint(self, family):
        result = run_pd(FAMILIES[family](seed=4))
        cats = categorize(result)
        all_ids = sorted(cats.j1 + cats.j2 + cats.j3)
        assert all_ids == list(range(result.schedule.instance.n))

    @pytest.mark.parametrize("family", range(len(FAMILIES)))
    def test_category_contributions_sum_to_g(self, family):
        result = run_pd(FAMILIES[family](seed=5))
        cert = dual_certificate(result)
        cats = categorize(result, cert)
        assert cats.g == pytest.approx(cert.g, rel=1e-9, abs=1e-9)

    def test_j1_is_exactly_the_accepted_set(self):
        result = run_pd(poisson_instance(15, m=1, alpha=3.0, seed=6))
        cats = categorize(result)
        np.testing.assert_array_equal(
            sorted(cats.j1), np.nonzero(result.schedule.finished)[0]
        )


class TestLemmas:
    @pytest.mark.parametrize("family", range(len(FAMILIES)))
    @pytest.mark.parametrize("seed", range(3))
    def test_lemmas_hold_with_optimal_delta(self, family, seed):
        result = run_pd(FAMILIES[family](seed=seed))
        bounds = lemma_bounds(result)
        assert bounds.holds, bounds.violations()

    def test_lemmas_on_lower_bound_family(self):
        result = run_pd(lower_bound_instance(12, 3.0))
        assert lemma_bounds(result).holds

    def test_lemma_combination_implies_theorem3(self):
        """Recombining the three lemma bounds reproduces the final chain:
        g >= alpha^-alpha * cost(PD)."""
        result = run_pd(poisson_instance(18, m=2, alpha=3.0, seed=7))
        cert = dual_certificate(result)
        alpha = 3.0
        assert cert.g >= alpha ** (-alpha) * cert.cost * (1.0 - 1e-7)

    def test_smaller_delta_keeps_lemma11(self):
        """Lemma 11 requires delta <= alpha^(1-alpha); any smaller delta
        must also satisfy it."""
        inst = tight_instance(12, m=1, alpha=3.0, seed=8)
        result = run_pd(inst, delta=0.5 * 3.0**-2)
        bounds = lemma_bounds(result)
        v = bounds.violations()
        assert not [msg for msg in v if "Lemma 11" in msg], v
