"""Edge cases and numerical stress across the stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.certificates import dual_certificate
from repro.classical.yds import yds
from repro.core.pd import PDScheduler, run_pd
from repro.model.job import Instance, Job
from repro.offline.convex import solve_min_energy


class TestDegenerateInstances:
    def test_single_job(self):
        inst = Instance.classical([(0.0, 1.0, 1.0)], m=1, alpha=3.0)
        result = run_pd(inst)
        assert result.cost == pytest.approx(1.0)
        dual_certificate(result).require()

    def test_single_job_many_processors(self):
        inst = Instance.classical([(0.0, 1.0, 1.0)], m=64, alpha=3.0)
        result = run_pd(inst)
        assert result.cost == pytest.approx(1.0)  # extra processors idle

    def test_identical_jobs(self):
        inst = Instance.classical([(0.0, 1.0, 1.0)] * 5, m=1, alpha=2.0)
        result = run_pd(inst)
        assert result.accepted_mask.all()
        assert result.cost == pytest.approx(1.0 * 5.0**2)

    def test_simultaneous_arrivals_order_independent_cost(self):
        rows = [
            (0.0, 2.0, 1.0, 1e9),
            (0.0, 1.0, 0.5, 1e9),
            (0.0, 3.0, 2.0, 1e9),
        ]
        costs = set()
        for perm in [(0, 1, 2), (2, 1, 0), (1, 2, 0)]:
            inst = Instance.from_tuples([rows[i] for i in perm], m=1, alpha=3.0)
            costs.add(round(run_pd(inst).cost, 9))
        # run_pd sorts ties by deadline, so all permutations coincide.
        assert len(costs) == 1

    def test_non_overlapping_jobs_are_independent(self):
        inst = Instance.classical(
            [(0.0, 1.0, 1.0), (5.0, 6.0, 2.0), (10.0, 11.0, 0.5)], m=1, alpha=3.0
        )
        result = run_pd(inst)
        expected = 1.0 + 8.0 + 0.125
        assert result.cost == pytest.approx(expected)

    def test_zero_value_job_among_valuable_ones(self):
        inst = Instance.from_tuples(
            [(0.0, 1.0, 1.0, 0.0), (0.0, 2.0, 1.0, 1e9)], m=1, alpha=3.0
        )
        result = run_pd(inst)
        # Arrival order: deadline 1 first -> job with value 0 rejected.
        assert result.accepted_mask.sum() == 1
        assert result.cost < 1e9

    def test_gap_between_jobs_keeps_processor_idle(self):
        inst = Instance.classical([(0.0, 1.0, 1.0), (3.0, 4.0, 1.0)], m=1, alpha=3.0)
        sched = run_pd(inst).schedule
        k_gap = sched.grid.locate(2.0)
        assert sched.processor_speed_matrix()[0, k_gap] == pytest.approx(0.0)


class TestExtremeParameters:
    @pytest.mark.parametrize("alpha", [1.05, 1.1, 5.0, 8.0])
    def test_alpha_extremes(self, alpha):
        inst = Instance.classical(
            [(0.0, 2.0, 1.0), (1.0, 3.0, 1.0)], m=1, alpha=alpha
        )
        result = run_pd(inst)
        dual_certificate(result).require()
        assert result.cost >= yds(inst).energy * (1.0 - 1e-7)

    def test_tiny_workloads(self):
        inst = Instance.classical([(0.0, 1.0, 1e-9), (0.0, 1.0, 1e-9)], m=1, alpha=3.0)
        result = run_pd(inst)
        assert result.accepted_mask.all()
        assert result.cost == pytest.approx((2e-9) ** 3, rel=1e-6)

    def test_huge_workloads(self):
        inst = Instance.classical([(0.0, 1.0, 1e6)], m=1, alpha=2.0)
        result = run_pd(inst)
        assert result.cost == pytest.approx(1e12)

    def test_long_horizon_short_jobs(self):
        inst = Instance.classical(
            [(0.0, 1e6, 1.0), (5e5, 5e5 + 1.0, 1.0)], m=1, alpha=3.0
        )
        result = run_pd(inst)
        result.schedule.validate()
        dual_certificate(result).require()

    def test_very_tight_windows(self):
        inst = Instance.classical(
            [(0.0, 1e-6, 1.0), (0.0, 2e-6, 1.0)], m=2, alpha=2.0
        )
        result = run_pd(inst)
        result.schedule.validate()
        assert np.isfinite(result.cost)

    @pytest.mark.parametrize("m", [1, 7, 32])
    def test_many_processors_batch(self, m):
        inst = Instance.classical([(0.0, 1.0, 1.0)] * 10, m=m, alpha=3.0)
        result = run_pd(inst)
        # With m >= 10 every job runs alone at speed 1.
        if m >= 10:
            assert result.cost == pytest.approx(10.0)
        dual_certificate(result).require()


class TestSchedulerStateMachine:
    def test_interleaved_queries_do_not_corrupt_state(self):
        sched = PDScheduler(m=2, alpha=3.0)
        d1 = sched.arrive(Job(0.0, 2.0, 1.0, 1e9))
        d2 = sched.arrive(Job(0.5, 1.5, 0.5, 1e9))
        d3 = sched.arrive(Job(1.0, 3.0, 2.0, 1e9))
        assert d1.accepted and d2.accepted and d3.accepted
        result = sched.finish()
        result.schedule.validate()
        # finish() is idempotent enough to call twice.
        again = sched.finish()
        assert again.cost == pytest.approx(result.cost)

    def test_equal_release_and_degenerate_refinements(self):
        sched = PDScheduler(m=1, alpha=2.0)
        sched.arrive(Job(0.0, 1.0, 1.0, 1e9))
        sched.arrive(Job(0.0, 1.0, 1.0, 1e9))  # identical window: no refine
        sched.arrive(Job(0.0, 1.0 + 1e-13, 1.0, 1e9))  # near-duplicate point
        result = sched.finish()
        result.schedule.validate()
        assert result.cost == pytest.approx(9.0, rel=1e-6)

    def test_deadline_beyond_known_horizon_extends_grid(self):
        sched = PDScheduler(m=1, alpha=3.0)
        sched.arrive(Job(0.0, 1.0, 1.0, 1e9))
        sched.arrive(Job(0.5, 10.0, 1.0, 1e9))  # extends horizon
        result = sched.finish()
        assert result.schedule.grid.span == (0.0, 10.0)
        result.schedule.validate()


class TestOfflineEdgeCases:
    def test_empty_acceptance_set(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1.0)], m=1, alpha=2.0)
        sol = solve_min_energy(inst, accepted=[])
        assert sol.energy == 0.0
        assert sol.schedule.cost == pytest.approx(1.0)  # pays the value

    def test_one_interval_instance(self):
        inst = Instance.classical([(0.0, 1.0, 1.0), (0.0, 1.0, 2.0)], m=1, alpha=3.0)
        sol = solve_min_energy(inst)
        assert sol.energy == pytest.approx(27.0)  # (1+2)^3 over unit time

    def test_disjoint_windows_decompose(self):
        inst = Instance.classical(
            [(0.0, 1.0, 1.0), (2.0, 3.0, 1.0)], m=1, alpha=3.0
        )
        assert solve_min_energy(inst).energy == pytest.approx(2.0)


class TestExtensionEdgeCases:
    """Degenerate and boundary inputs for the extension layer."""

    def test_discrete_single_job_at_exact_level(self):
        from repro.discrete import SpeedSet, run_pd_discrete

        inst = Instance.from_tuples([(0.0, 2.0, 1.0, 100.0)], m=1, alpha=3.0)
        # PD runs the job at speed 0.5; the menu contains exactly that.
        res = run_pd_discrete(inst, SpeedSet([0.5]))
        assert res.overhead == pytest.approx(1.0, rel=1e-9)
        assert res.screened_ids == ()

    def test_discrete_alpha_close_to_one(self):
        from repro.discrete import SpeedSet, worst_overhead_factor

        # Near-linear power: interpolation gap collapses (P nearly linear
        # means the envelope nearly coincides with P between levels).
        menu = SpeedSet.geometric(0.5, 4.0, 4)
        assert worst_overhead_factor(menu, 1.01) < 1.01

    def test_profit_of_all_rejected_equals_zero(self):
        from repro.profit import profit_of_result

        inst = Instance.from_tuples(
            [(0.0, 0.5, 5.0, 1e-6), (1.0, 1.2, 3.0, 1e-6)], m=1, alpha=3.0
        )
        result = run_pd(inst)
        assert not result.accepted_mask.any()
        p = profit_of_result(result)
        assert p.profit == pytest.approx(0.0, abs=1e-12)
        assert p.loss == pytest.approx(inst.total_value)

    def test_augmentation_huge_epsilon_accepts_everything(self):
        from repro.profit import run_pd_augmented

        inst = Instance.from_tuples(
            [(0.0, 1.0, 2.0, 0.5), (0.0, 1.0, 1.0, 0.2)], m=1, alpha=3.0
        )
        aug = run_pd_augmented(inst, 1e3)
        assert aug.inner.accepted_mask.all()
        assert aug.energy < 1e-3  # nearly free at that speed advantage

    def test_flow_oracle_more_processors_than_jobs(self):
        from repro.offline.flow import minimal_uniform_speed

        inst = Instance.classical([(0.0, 2.0, 1.0)], m=8, alpha=3.0)
        # Extra processors cannot help a single nonparallel job.
        assert minimal_uniform_speed(inst) == pytest.approx(0.5)

    def test_flow_oracle_zero_length_window_between_jobs(self):
        from repro.offline.flow import check_feasible_at_speed

        # Jobs meeting exactly at t=1: no shared interval.
        inst = Instance.classical(
            [(0.0, 1.0, 1.0), (1.0, 2.0, 1.0)], m=1, alpha=3.0
        )
        assert check_feasible_at_speed(inst, 1.0).feasible
        assert not check_feasible_at_speed(inst, 0.99).feasible

    def test_sumpower_extreme_exponent_mix(self):
        from repro.general import SumPower

        p = SumPower([1e-6, 1e6], [8.0, 1.0])
        for marginal in (1e6 + 1e-3, 2e6, 1e9):
            s = p.derivative_inverse(marginal)
            assert p.derivative(s) == pytest.approx(marginal, rel=1e-6)

    def test_policy_on_single_job(self):
        from repro.core.policies import run_oracle_admission

        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 10.0)], m=1, alpha=3.0)
        r = run_oracle_admission(inst)
        assert r.admitted_ids == (0,)
        assert r.cost == pytest.approx(1.0)  # speed 1 for 1 time unit

    def test_adversary_search_zero_rounds_returns_seed(self):
        from repro.analysis.adversary import search_adversarial

        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 10.0)], m=1, alpha=3.0)
        out = search_adversarial([inst], rounds=0, rng=0)
        assert out.instance.jobs == inst.jobs
        assert out.evaluations == 1
