"""Zero-copy record transport: wire round trips and runner parity.

The transport moves result payloads through shared memory instead of
the pool's result pipe. It must be invisible: identical records (and
identical cache contents) whatever wire carried them, with a graceful
per-call fallback to the pickle wire when shared memory is missing.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.engine import transport as tr
from repro.engine.runner import BatchRunner, RunRequest, record_to_payload
from repro.errors import InvalidParameterError
from repro.workloads import poisson_instance

PAYLOAD = {
    "kind": "run-record",
    "algorithm": "pd",
    "cost": 12.5,
    "schedule": {"loads": [[0, 1, 0.25]] * 200, "boundaries": [0.0, 1.0]},
    "wall_time": 0.01,
}


def canonical(payload: dict) -> dict:
    """Record payload with measured/provenance fields normalized.

    ``wall_time`` is a measurement, ``cached`` is delivery provenance
    (a hit of the same bytes), and NaN compares unequal to itself —
    none of them is record content.
    """
    out = dict(payload)
    out.pop("wall_time", None)
    out.pop("cached", None)
    for key in ("certified_ratio", "dual_g"):
        if isinstance(out.get(key), float) and math.isnan(out[key]):
            out[key] = "NaN"
    return out


class TestWire:
    def test_pickle_wire_round_trip(self):
        wire = tr.encode_payload(PAYLOAD, "pickle")
        assert wire[0] == "pickle"
        assert tr.decode_wire(wire) == PAYLOAD

    @pytest.mark.skipif(
        not tr.shm_available(), reason="no shared memory on this host"
    )
    def test_shm_wire_round_trip(self):
        wire = tr.encode_payload(PAYLOAD, "shm")
        assert wire[0] == "shm"
        assert tr.decode_wire(wire) == PAYLOAD

    @pytest.mark.skipif(
        not tr.shm_available(), reason="no shared memory on this host"
    )
    def test_shm_ticket_is_constant_size(self):
        """The pipe footprint of an shm ticket must not scale with the
        payload — that's the entire point of the transport."""
        small = tr.encode_payload({"cost": 1.0}, "shm")
        big = tr.encode_payload(PAYLOAD, "shm")
        try:
            assert tr.wire_bytes(big) < 100
            assert abs(tr.wire_bytes(big) - tr.wire_bytes(small)) < 16
            assert tr.wire_bytes(
                tr.encode_payload(PAYLOAD, "pickle")
            ) > 5 * tr.wire_bytes(big)
        finally:
            tr.decode_wire(small)
            tr.decode_wire(big)

    def test_shm_wire_survives_pipe_pickling(self):
        """The result queue pickles the wire itself; an shm ticket must
        decode identically after that hop."""
        if not tr.shm_available():
            pytest.skip("no shared memory on this host")
        wire = tr.encode_payload(PAYLOAD, "shm")
        piped = pickle.loads(pickle.dumps(wire))
        assert tr.decode_wire(piped) == PAYLOAD

    def test_encode_falls_back_when_shm_fails(self, monkeypatch):
        import multiprocessing.shared_memory as shm_mod

        def broken(*args, **kwargs):
            raise OSError("no shm for you")

        monkeypatch.setattr(shm_mod, "SharedMemory", broken)
        wire = tr.encode_payload(PAYLOAD, "shm")
        assert wire[0] == "pickle"
        assert tr.decode_wire(wire) == PAYLOAD

    def test_shm_failure_after_create_releases_segment(self, monkeypatch):
        """If the segment is created but the write into it fails, encode
        must close *and* unlink it before degrading to the pickle wire —
        otherwise every degraded call leaks a ``/dev/shm`` file for the
        lifetime of the worker (the RPR4xx resource-balance contract)."""
        if not tr.shm_available():
            pytest.skip("no shared memory on this host")
        import multiprocessing.shared_memory as shm_mod

        real = shm_mod.SharedMemory
        events: list[str] = []

        class FailsOnWrite:
            def __init__(self, *args, **kwargs):
                self._shm = real(*args, **kwargs)

            @property
            def buf(self):
                raise BufferError("simulated write failure")

            @property
            def name(self):
                return self._shm.name

            def close(self):
                events.append("close")
                self._shm.close()

            def unlink(self):
                events.append("unlink")
                self._shm.unlink()

        monkeypatch.setattr(shm_mod, "SharedMemory", FailsOnWrite)
        wire = tr.encode_payload(PAYLOAD, "shm")
        assert wire == ("pickle", PAYLOAD)
        assert events == ["close", "unlink"]
        assert tr.decode_wire(wire) == PAYLOAD

    def test_decode_rejects_unknown_kind(self):
        with pytest.raises(InvalidParameterError, match="wire kind"):
            tr.decode_wire(("carrier-pigeon", "x"))

    def test_resolve_transport(self):
        assert tr.resolve_transport("pickle") == "pickle"
        assert tr.resolve_transport("shm") == "shm"
        assert tr.resolve_transport("auto") in ("shm", "pickle")
        with pytest.raises(InvalidParameterError, match="transport"):
            tr.resolve_transport("osmosis")


class TestRunnerParity:
    """Records are byte-identical whatever transport carried them."""

    def requests(self):
        instances = [
            poisson_instance(n, m=1, alpha=3.0, seed=seed)
            for n, seed in ((20, 1), (30, 2), (25, 3))
        ]
        return [
            RunRequest(algorithm, instance)
            for instance in instances
            for algorithm in ("pd", "yds")
        ]

    def test_rejects_unknown_transport(self):
        with pytest.raises(InvalidParameterError, match="transport"):
            BatchRunner(workers=2, transport="osmosis")

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_pool_records_match_serial(self, transport):
        requests = self.requests()
        serial = BatchRunner(workers=1).run(requests)
        pooled = BatchRunner(workers=2, transport=transport).run(requests)
        assert len(serial) == len(pooled)
        for a, b in zip(serial, pooled):
            assert a.key == b.key
            assert canonical(record_to_payload(a)) == canonical(
                record_to_payload(b)
            )

    def test_cache_contents_transport_independent(self, tmp_path):
        """A cache warmed through the shm transport serves the pickle
        path (and vice versa) — same keys, same payloads."""
        requests = self.requests()
        shm_runner = BatchRunner(
            workers=2, cache=tmp_path / "c", transport="shm"
        )
        first = shm_runner.run(requests)
        assert shm_runner.stats.computed > 0
        pickle_runner = BatchRunner(
            workers=2, cache=tmp_path / "c", transport="pickle"
        )
        second = pickle_runner.run(requests)
        assert pickle_runner.stats.computed == 0  # all hits
        for a, b in zip(first, second):
            assert a.key == b.key
            assert canonical(record_to_payload(a)) == canonical(
                record_to_payload(b)
            )

    def test_stolen_path_uses_transport(self):
        from repro.engine.runner import InProcessClaimTable

        requests = self.requests()
        serial = BatchRunner(workers=1).run(requests)
        claims = InProcessClaimTable(len(requests))
        stolen = sorted(
            BatchRunner(workers=2, transport="shm").iter_stolen(
                requests, claims
            ),
            key=lambda pair: pair[0],
        )
        assert [position for position, _ in stolen] == list(
            range(len(requests))
        )
        for a, (_, b) in zip(serial, stolen):
            assert canonical(record_to_payload(a)) == canonical(
                record_to_payload(b)
            )
