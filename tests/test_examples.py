"""Smoke tests: the example scripts must stay runnable.

Examples are the library's living documentation; a broken example is a
broken promise. Each fast example is executed in-process (``runpy``)
with stdout captured and sanity-checked for its headline output. The
four slow examples (10–35 s each: ``datacenter_profit``,
``hindsight_regret``, ``lowerbound_tightness``, ``admission_policies``)
are exercised by the benchmarks and the CI-style full runs instead —
keeping this module's budget around ten seconds.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: (script, substring its stdout must contain)
FAST_EXAMPLES = [
    ("quickstart.py", "certificate"),
    ("online_stream.py", ""),
    ("figure2_chen_structure.py", ""),
    ("figure3_pd_vs_oa.py", ""),
    ("algorithm_shootout.py", ""),
    ("admission_curve.py", ""),
    ("discrete_speeds.py", "menu"),
    ("profit_vs_loss.py", "margin"),
    ("adversary_hunt.py", "bound"),
    ("leakage_power.py", "leak"),
    ("pd_10k_jobs.py", "certificate holds"),
]


@pytest.mark.parametrize("script,marker", FAST_EXAMPLES)
def test_example_runs(script, marker, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"
    if marker:
        assert marker in out, f"{script} output lacks {marker!r}"


def test_every_example_has_module_docstring():
    for path in sorted(EXAMPLES.glob("*.py")):
        head = path.read_text().lstrip()
        assert head.startswith('#!') or head.startswith('"""'), path.name
        assert '"""' in head.split("\n\n")[0] or head.count('"""') >= 2, (
            f"{path.name} lacks a docstring"
        )
