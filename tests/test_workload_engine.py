"""Tests for streaming cost-aware execution and the workload registry.

Four guarantees, each load-bearing for large distributed sweeps:

* **workload identity** — every spelling of a parameterized workload
  spec (``heavy-tail?n=64&alpha=3.0``) resolves to one canonical name,
  builds the identical instance, and therefore shares one batch-runner
  cache key;
* **streaming parity** — :meth:`BatchRunner.iter_records` yields every
  record exactly once (serial or process pool), callbacks fire in
  completion order, and :meth:`BatchRunner.run` stays byte-identical to
  the pre-streaming request-order output;
* **cost-aware sharding** — LPT shard schedules built from measured
  (cached) per-cell wall times merge back bit-identical to round-robin
  and unsharded runs;
* **timing round-trip** — the measured ``wall_time`` survives cache and
  shard-file round-trips, and unknown payload keys fail loudly.
"""

from __future__ import annotations

import math

import pytest

from repro.engine import (
    BatchRunner,
    DirectoryCache,
    ExperimentSpec,
    RunRequest,
    SqliteCache,
    aggregate_records,
    merge_shards,
    record_from_payload,
    record_to_payload,
    request_key,
    run_experiment,
    shard_assignment,
    shard_requests,
)
from repro.errors import InvalidParameterError, ReproError
from repro.workloads import WORKLOADS, named_families, poisson_instance
from repro.workloads.registry import register_workload


@pytest.fixture(scope="module")
def requests():
    insts = [poisson_instance(5, m=1, alpha=3.0, seed=s) for s in range(3)]
    return [
        RunRequest(a, i, tag={"seed": s})
        for s, i in enumerate(insts)
        for a in ("pd", "oa", "cll")
    ]


def _comparable(record, *, cached=True):
    """NaN-safe, measurement-only comparison form of a record.

    Dataclass equality on records from *different* pool runs trips over
    ``NaN != NaN`` (pickling breaks the ``math.nan`` identity shortcut),
    so cross-run assertions compare this form instead; ``cached=False``
    additionally ignores the bookkeeping flag for warm-vs-cold checks.
    """
    return (
        record.algorithm,
        record.cost,
        record.energy,
        record.lost_value,
        record.acceptance,
        None if math.isnan(record.certified_ratio) else record.certified_ratio,
        None if math.isnan(record.dual_g) else record.dual_g,
        record.schedule,
        record.key,
        record.cached if cached else None,
        record.tag,
    )


class TestWorkloadRegistry:
    """Tentpole: workloads are first-class, parameterized registry entries."""

    def test_named_families_is_backed_by_the_registry(self):
        families = named_families()
        assert set(families) == set(WORKLOADS.names())
        # the shim returns the registered generators themselves
        assert families["poisson"] is WORKLOADS.info("poisson").generator
        assert families["poisson"] is poisson_instance

    def test_shim_sees_late_registrations(self):
        @register_workload("stub-family", summary="test stub")
        def stub(n, *, m=1, alpha=3.0, seed=0):
            return poisson_instance(n, m=m, alpha=alpha, seed=seed)

        try:
            assert named_families()["stub-family"] is stub
            assert "stub-family" in WORKLOADS
        finally:
            WORKLOADS._infos.pop("stub-family", None)
            WORKLOADS._resolved.clear()

    def test_spec_resolves_to_canonical_name(self):
        info = WORKLOADS.info("heavy-tail?seed=7&n=64&alpha=3.0")
        assert info.name == "heavy-tail?alpha=3.0&n=64&seed=7"
        assert info.base == "heavy-tail"
        assert dict(info.params) == {"alpha": 3.0, "n": 64, "seed": 7}
        # base entries are untouched
        base = WORKLOADS.info("heavy-tail")
        assert base.name == base.base == "heavy-tail" and not base.params

    def test_spelling_variants_build_identical_instances(self):
        a = WORKLOADS.build("heavy-tail?n=16&alpha=3.0&seed=5")
        b = WORKLOADS.build("heavy-tail?alpha=3&seed=5&n=16")
        assert a.jobs == b.jobs and a.m == b.m and a.alpha == b.alpha

    def test_unknown_family_param_and_malformed_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown workload family"):
            WORKLOADS.info("nope")
        with pytest.raises(InvalidParameterError, match="unknown parameter"):
            WORKLOADS.info("poisson?gamma=1")
        with pytest.raises(InvalidParameterError, match="bad value"):
            WORKLOADS.info("poisson?n=lots")
        for bad in ["poisson?", "?n=1", "poisson?n", "poisson?n=1&n=2"]:
            with pytest.raises(InvalidParameterError):
                WORKLOADS.info(bad)
        assert "poisson?n=8" in WORKLOADS and "poisson?gamma=1" not in WORKLOADS

    def test_pinned_params_clash_with_call_site_kwargs(self):
        info = WORKLOADS.info("poisson?alpha=2.0")
        with pytest.raises(InvalidParameterError, match="pinned"):
            info.build(8, alpha=3.0)

    def test_family_knobs_reach_the_generator(self):
        calm = WORKLOADS.build("poisson?arrival_rate=0.25", 10, seed=1)
        busy = WORKLOADS.build("poisson?arrival_rate=4.0", 10, seed=1)
        # slower arrivals spread the same number of jobs over more time
        assert max(j.release for j in calm.jobs) > max(
            j.release for j in busy.jobs
        )

    def test_registry_tags(self):
        assert "deterministic" in WORKLOADS.info("lowerbound").tags()
        assert "classical" in WORKLOADS.info("bursty").tags()
        seeded = {i.name for i in WORKLOADS.select(deterministic=False)}
        assert "poisson" in seeded and "lowerbound" not in seeded

    def test_jitter_composite_family(self):
        base = WORKLOADS.build("poisson", 8, seed=3)
        jittered = WORKLOADS.build("jitter?base=poisson&rel=0.2", 8, seed=3)
        assert [j.workload for j in jittered.jobs] == [
            j.workload for j in base.jobs
        ]
        assert [j.value for j in jittered.jobs] != [j.value for j in base.jobs]
        for job, orig in zip(jittered.jobs, base.jobs):
            assert 0.8 * orig.value <= job.value <= 1.2 * orig.value
        with pytest.raises(InvalidParameterError, match="wrap itself"):
            WORKLOADS.build("jitter?base=jitter", 8)


class TestWorkloadAxis:
    """Tentpole: ``ExperimentSpec(workloads=...)`` replaces instance lists."""

    def test_spelling_variants_share_cache_keys(self):
        # The acceptance criterion, verbatim: two spellings of one
        # workload spec compile to request lists with identical
        # content-addressed cache keys.
        keys = []
        for spelling in ("heavy-tail?n=64&alpha=3.0", "heavy-tail?alpha=3&n=64"):
            spec = ExperimentSpec(
                name="t", workloads=[spelling], algorithms=("pd",), seeds=(0, 1)
            )
            keys.append(
                [request_key(r.algorithm, r.instance) for r in spec.requests()]
            )
        assert keys[0] == keys[1]

    def test_workload_axis_matches_family_runs(self):
        axis = run_experiment(
            ExperimentSpec(
                name="t",
                workloads=["poisson", "tight"],
                algorithms=("pd",),
                n=6,
                seeds=(0, 1),
            )
        )
        assert [c.params["workload"] for c in axis] == ["poisson", "tight"]
        for cell in axis:
            (manual,) = run_experiment(
                ExperimentSpec(
                    name="t",
                    family=cell.params["workload"],
                    algorithms=("pd",),
                    n=6,
                    seeds=(0, 1),
                )
            )
            assert cell.mean_cost == manual.mean_cost
            assert cell.runs == manual.runs == 2

    def test_workloads_cross_grid_order(self):
        spec = ExperimentSpec(
            name="t",
            workloads=["poisson", "uniform"],
            grid={"alpha": [2.0, 3.0]},
            algorithms=("pd",),
            n=5,
            seeds=(0,),
        )
        cells = run_experiment(spec)
        assert [(c.params["workload"], c.params["alpha"]) for c in cells] == [
            ("poisson", 2.0),
            ("poisson", 3.0),
            ("uniform", 2.0),
            ("uniform", 3.0),
        ]

    def test_pinned_n_and_seed(self):
        spec = ExperimentSpec(
            name="t",
            workloads=["poisson?n=9&seed=5", "poisson?n=4"],
            algorithms=("pd",),
            n=6,
            seeds=(0, 1, 2),
        )
        requests = spec.requests()
        # pinned seed collapses replicates; pinned n overrides n=
        pinned = [r for r in requests if r.tag["params"]["workload"].endswith("seed=5")]
        assert len(pinned) == 1 and pinned[0].instance.n == 9
        assert pinned[0].tag["seed"] == 5
        rest = [r for r in requests if r not in pinned]
        assert len(rest) == 3 and all(r.instance.n == 4 for r in rest)

    def test_validation(self):
        with pytest.raises(InvalidParameterError, match="exactly one"):
            ExperimentSpec(name="t", workloads=["poisson"], family="poisson")
        with pytest.raises(InvalidParameterError, match="exactly one"):
            ExperimentSpec(name="t")
        with pytest.raises(InvalidParameterError, match="spec strings"):
            ExperimentSpec(name="t", workloads=[poisson_instance])
        with pytest.raises(InvalidParameterError, match="reserved"):
            ExperimentSpec(
                name="t", workloads=["poisson"], grid={"workload": ["a"]}
            )
        spec = ExperimentSpec(
            name="t",
            workloads=["poisson?alpha=2.0"],
            grid={"alpha": [2.0, 3.0]},
        )
        with pytest.raises(InvalidParameterError, match="grid axes"):
            spec.requests()
        # a grid axis some family on the axis does not accept fails up
        # front with a clear error, not a TypeError deep in generation
        foreign = ExperimentSpec(
            name="t",
            workloads=["poisson", "heavy-tail"],
            grid={"pareto_shape": [2.0]},
        )
        with pytest.raises(InvalidParameterError, match="not parameters"):
            foreign.requests()
        # ... and the same up-front check covers family_kwargs, which
        # apply to every (heterogeneous) family on the axis
        kwargs_spec = ExperimentSpec(
            name="t",
            workloads=["poisson", "uniform"],
            family_kwargs={"horizon": 10.0},  # poisson has no horizon
        )
        with pytest.raises(InvalidParameterError, match="not parameters"):
            kwargs_spec.requests()
        dup = ExperimentSpec(
            name="t", workloads=["poisson?alpha=2.0", "poisson?alpha=2"]
        )
        with pytest.raises(InvalidParameterError, match="more than once"):
            dup.requests()

    def test_family_slot_accepts_parameterized_specs(self):
        cells = run_experiment(
            ExperimentSpec(
                name="t",
                family="heavy-tail?pareto_shape=2.5",
                algorithms=("pd",),
                n=5,
                seeds=(0,),
            )
        )
        assert len(cells) == 1 and cells[0].mean_cost > 0
        with pytest.raises(InvalidParameterError, match="pins n/seed"):
            run_experiment(
                ExperimentSpec(
                    name="t", family="poisson?n=5", algorithms=("pd",)
                )
            )

    def test_workload_comparison_sweep(self):
        from repro.analysis.sweeps import workload_comparison

        cells = workload_comparison(
            ["poisson", "heavy-tail?pareto_shape=2.0"],
            algorithms=("pd", "oa"),
            n=5,
            seeds=(0,),
        )
        assert [(c.params["workload"], c.params["algorithm"]) for c in cells] == [
            ("poisson", "pd"),
            ("poisson", "oa"),
            ("heavy-tail?pareto_shape=2.0", "pd"),
            ("heavy-tail?pareto_shape=2.0", "oa"),
        ]


class TestStreaming:
    """Satellite: iter_records yields once per cell; run() stays ordered."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_every_record_yielded_exactly_once(self, workers, requests):
        runner = BatchRunner(workers=workers)
        indexes = []
        records = {}
        for index, record in runner.iter_records(requests):
            indexes.append(index)
            records[index] = record
        assert sorted(indexes) == list(range(len(requests)))
        assert len(indexes) == len(set(indexes)) == len(requests)
        # fully consumed stream sorted by index == run() output
        rerun = BatchRunner(workers=workers).run(requests)
        assert [
            _comparable(records[i]) for i in range(len(requests))
        ] == [_comparable(r) for r in rerun]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_run_matches_request_order(self, workers, requests):
        records = BatchRunner(workers=workers).run(requests)
        assert [r.algorithm for r in records] == [
            r.algorithm for r in requests
        ]
        assert [r.tag for r in records] == [r.tag for r in requests]

    def test_callbacks_fire_in_completion_order(self, requests, tmp_path):
        runner = BatchRunner(cache=tmp_path / "c")
        seen = []
        runner.run(
            requests,
            on_record=lambda rec, done, total: seen.append(
                (done, total, rec.cached)
            ),
        )
        total = len(requests)
        assert [d for d, _, _ in seen] == list(range(1, total + 1))
        assert all(t == total for _, t, _ in seen)
        assert not any(cached for _, _, cached in seen)

        # Warm: every record arrives as a cache hit, callbacks still
        # count 1..total, and cache hits stream before anything else.
        warm = []
        BatchRunner(cache=tmp_path / "c").run(
            requests,
            on_record=lambda rec, done, total: warm.append(rec.cached),
        )
        assert warm == [True] * total

    def test_abandoning_the_stream_cancels_queued_cells(self, monkeypatch):
        import repro.engine.runner as runner_mod

        calls = []
        real = runner_mod.evaluate_request

        def counting(request):
            calls.append(request.algorithm)
            return real(request)

        monkeypatch.setattr(runner_mod, "evaluate_request", counting)
        inst = poisson_instance(5, m=1, alpha=3.0, seed=7)
        reqs = [RunRequest(a, inst) for a in ("pd", "oa", "cll", "avr")]
        stream = BatchRunner().iter_records(reqs)
        next(stream)
        stream.close()  # consumer bails after the first record
        assert calls == ["pd"]  # remaining cells were never evaluated

    def test_abandoning_a_parallel_stream_does_not_hang(self, requests):
        stream = BatchRunner(workers=2).iter_records(requests)
        next(stream)
        # Close must cancel the queued futures and return promptly
        # rather than blocking until the whole grid is computed.
        stream.close()

    def test_duplicates_stream_with_their_computation(self):
        inst = poisson_instance(5, m=1, alpha=3.0, seed=7)
        runner = BatchRunner()
        pairs = list(
            runner.iter_records(
                [RunRequest("pd", inst), RunRequest("oa", inst), RunRequest("pd", inst)]
            )
        )
        by_index = dict(pairs)
        assert not by_index[0].cached and by_index[2].cached  # in-batch dup
        assert by_index[0].cost == by_index[2].cost
        assert runner.stats.deduplicated == 1

    def test_wall_time_measured_and_cached(self, requests, tmp_path):
        runner = BatchRunner(cache=tmp_path / "c")
        fresh = runner.run(requests)
        assert all(
            math.isfinite(r.wall_time) and r.wall_time >= 0.0 for r in fresh
        )
        warm = BatchRunner(cache=tmp_path / "c").run(requests)
        # a cache hit serves the original computation's measured time
        assert [r.wall_time for r in warm] == [r.wall_time for r in fresh]
        # ... and identical measurements (only the cached flag differs)
        assert [_comparable(r, cached=False) for r in warm] == [
            _comparable(r, cached=False) for r in fresh
        ]

    def test_wall_time_roundtrips_through_payload(self, requests):
        record = BatchRunner().run(requests[:1])[0]
        back = record_from_payload(record_to_payload(record))
        assert back == record
        assert back.wall_time == record.wall_time

    def test_unknown_payload_keys_rejected(self, requests):
        payload = record_to_payload(BatchRunner().run(requests[:1])[0])
        payload["surprise"] = 1
        with pytest.raises(ReproError, match="unknown record payload key"):
            record_from_payload(payload)

    def test_progress_through_run_experiment(self):
        spec = ExperimentSpec(
            name="t", workloads=["poisson"], algorithms=("pd",), n=5, seeds=(0, 1)
        )
        ticks = []
        cells = run_experiment(
            spec, progress=lambda rec, done, total: ticks.append((done, total))
        )
        assert ticks == [(1, 2), (2, 2)]
        assert len(cells) == 1 and cells[0].runs == 2


class TestCostAwareSharding:
    """Tentpole: LPT schedules from measured costs merge bit-identical."""

    def test_rr_assignment_is_positional(self):
        assert shard_assignment(7, 3) == [0, 1, 2, 0, 1, 2, 0]

    def test_lpt_balances_measured_costs(self):
        costs = [8.0, 1.0, 1.0, 1.0, 1.0, 4.0, 2.0, 2.0]
        assignment = shard_assignment(8, 2, strategy="lpt", costs=costs)
        loads = [0.0, 0.0]
        for position, shard in enumerate(assignment):
            loads[shard] += costs[position]
        assert abs(loads[0] - loads[1]) <= 2.0  # vs 10 for contiguous halves
        # deterministic: same inputs, same schedule
        assert assignment == shard_assignment(8, 2, strategy="lpt", costs=costs)

    def test_lpt_without_costs_balances_counts(self):
        assignment = shard_assignment(10, 3, strategy="lpt")
        sizes = [assignment.count(s) for s in range(3)]
        assert sorted(sizes) == [3, 3, 4]

    def test_lpt_validation(self):
        with pytest.raises(InvalidParameterError, match="one cost per request"):
            shard_assignment(3, 2, strategy="lpt", costs=[1.0])
        with pytest.raises(InvalidParameterError, match="finite"):
            shard_assignment(2, 2, strategy="lpt", costs=[1.0, math.nan])
        with pytest.raises(InvalidParameterError, match="unknown shard strategy"):
            shard_assignment(2, 2, strategy="fair")

    @pytest.mark.parametrize("count", [2, 3])
    def test_lpt_shards_merge_to_unsharded_measurements(self, count, requests):
        full = BatchRunner().run(requests)
        costs = [float(i % 4 + 1) for i in range(len(requests))]
        shards = [
            BatchRunner().run(
                requests, shard=(index, count), strategy="lpt", costs=costs
            )
            for index in range(count)
        ]
        assignment = shard_assignment(
            len(requests), count, strategy="lpt", costs=costs
        )
        merged = merge_shards(shards, assignment=assignment)
        assert merged == full  # equality excludes only wall_time

    def test_lpt_shards_partition_the_request_list(self, requests):
        costs = [float(i + 1) for i in range(len(requests))]
        slices = [
            shard_requests(requests, (i, 3), strategy="lpt", costs=costs)
            for i in range(3)
        ]
        assert sum(len(s) for s in slices) == len(requests)
        flat = [id(r) for s in slices for r in s]
        assert sorted(flat) == sorted(id(r) for r in requests)

    def test_merge_with_assignment_validates_shapes(self, requests):
        costs = [1.0] * len(requests)
        shards = [
            BatchRunner().run(requests, shard=(i, 2), strategy="lpt", costs=costs)
            for i in range(2)
        ]
        assignment = shard_assignment(len(requests), 2, strategy="lpt", costs=costs)
        with pytest.raises(InvalidParameterError, match="assignment"):
            merge_shards([shards[0], shards[1][:-1]], assignment=assignment)
        with pytest.raises(InvalidParameterError, match="assignment"):
            merge_shards(shards, assignment=assignment[:-1])

    def test_estimate_costs_memoizes_duplicate_cells(self, tmp_path):
        inst = poisson_instance(5, m=1, alpha=3.0, seed=7)
        cache = SqliteCache(tmp_path / "c.db")
        BatchRunner(cache=cache).run_one("pd", inst)
        lookups = []
        real = cache.get_timing

        def counting(key):
            lookups.append(key)
            return real(key)

        cache.get_timing = counting
        runner = BatchRunner(cache=cache)
        estimates = runner.estimate_costs([RunRequest("pd", inst)] * 4)
        assert len(set(estimates)) == 1 and len(lookups) == 1

    def test_estimate_costs_reads_cached_timings(self, requests, tmp_path):
        cold = BatchRunner(cache=tmp_path / "c")
        assert cold.estimate_costs(requests) == [1.0] * len(requests)
        assert cold.estimate_costs(requests, default=2.5) == [2.5] * len(requests)
        fresh = cold.run(requests)
        warm = BatchRunner(cache=tmp_path / "c")
        estimates = warm.estimate_costs(requests)
        assert estimates == [r.wall_time for r in fresh]
        assert BatchRunner().estimate_costs(requests) == [1.0] * len(requests)

    @pytest.mark.parametrize("backend", [DirectoryCache, SqliteCache])
    def test_estimates_work_on_any_backend(self, backend, requests, tmp_path):
        target = tmp_path / ("c" if backend is DirectoryCache else "c.db")
        BatchRunner(cache=backend(target)).run(requests[:3])
        estimates = BatchRunner(cache=backend(target)).estimate_costs(requests[:3])
        assert all(math.isfinite(e) and e > 0.0 for e in estimates)

    def test_sqlite_timing_column_fast_path(self, requests, tmp_path):
        cache = SqliteCache(tmp_path / "c.db")
        records = BatchRunner(cache=cache).run(requests[:2])
        assert cache.get_timing(records[0].key) == records[0].wall_time
        assert cache.get_timing("missing") is None
        # a payload without a usable timing answers None, not a crash
        cache.put("odd", {"v": 1})
        assert cache.get_timing("odd") is None
        # legacy rows (NULL column) fall back to the payload itself
        cache._connect().execute(
            "UPDATE entries SET wall_time = NULL WHERE key = ?",
            (records[0].key,),
        )
        cache._connect().commit()
        assert cache.get_timing(records[0].key) == records[0].wall_time

    def test_sqlite_pre_timing_database_migrates(self, tmp_path):
        import sqlite3

        path = tmp_path / "old.db"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE entries (key TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        conn.execute(
            "INSERT INTO entries VALUES ('k', '{\"wall_time\": 0.5}')"
        )
        conn.commit()
        conn.close()
        cache = SqliteCache(path)  # ALTER TABLE migration runs here
        assert cache.get_timing("k") == 0.5
        cache.put("k2", {"wall_time": 0.25})
        assert cache.get_timing("k2") == 0.25


class TestCacheClose:
    """Satellite: close()/context-manager protocol on cache backends."""

    def test_sqlite_close_checkpoints_wal_sidecars(self, tmp_path):
        path = tmp_path / "c.db"
        cache = SqliteCache(path)
        cache.put("k", {"v": 1})
        assert (tmp_path / "c.db-wal").exists()  # WAL mode is on
        cache.close()
        assert not (tmp_path / "c.db-wal").exists()
        assert not (tmp_path / "c.db-shm").exists()
        cache.close()  # idempotent
        assert cache.get("k") == {"v": 1}  # lazily reopens

    def test_context_manager_protocol(self, tmp_path):
        with SqliteCache(tmp_path / "c.db") as cache:
            cache.put("k", {"v": 1})
        assert cache._conn is None  # closed on exit
        with DirectoryCache(tmp_path / "d") as dcache:
            dcache.put("k", {"v": 2})
        assert dcache.get("k") == {"v": 2}
