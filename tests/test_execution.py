"""Tests for schedule_from_segments — the executor-to-schedule bridge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classical.execution import schedule_from_segments
from repro.errors import InfeasibleScheduleError
from repro.model.job import Instance


@pytest.fixture
def inst():
    return Instance.classical([(0.0, 2.0, 1.0), (0.0, 2.0, 1.0)], m=1, alpha=3.0)


class TestScheduleFromSegments:
    def test_boundaries_refine_grid(self, inst):
        # A speed change at t=0.7 (not an event point) must become a grid
        # boundary so the energy accounting stays exact.
        segments = [(0, 0.0, 0.7, 1.0), (0, 0.7, 1.0, 1.0), (1, 1.0, 2.0, 1.0)]
        sched = schedule_from_segments(inst, segments, [True, True])
        assert 0.7 in sched.grid.boundaries.tolist()

    def test_energy_matches_piecewise_integral(self, inst):
        # Speed 2 for 0.5 units then speed 1 for 1 unit on job 0.
        segments = [(0, 0.0, 0.5, 2.0), (1, 0.5, 1.5, 1.0)]
        sched = schedule_from_segments(inst, segments, [True, True])
        expected = 0.5 * 2.0**3 + 1.0 * 1.0**3
        assert sched.energy == pytest.approx(expected, rel=1e-9)

    def test_segment_straddling_event_point_splits_work(self, inst):
        # Instance event points are {0, 2}; add a third job event via a
        # segment crossing t=1 on a refined grid.
        segments = [(0, 0.5, 1.5, 1.0)]
        sched = schedule_from_segments(inst, segments, [False, False])
        assert sched.work_done()[0] == pytest.approx(1.0)

    def test_unknown_job_rejected(self, inst):
        with pytest.raises(InfeasibleScheduleError):
            schedule_from_segments(inst, [(7, 0.0, 1.0, 1.0)], [False, False])

    def test_zero_length_segments_ignored(self, inst):
        sched = schedule_from_segments(
            inst, [(0, 1.0, 1.0, 5.0)], [False, False]
        )
        assert sched.energy == 0.0

    def test_multiprocessor_parallel_segments_exact_energy(self):
        inst = Instance.classical([(0.0, 1.0, 2.0), (0.0, 1.0, 1.0)], m=2, alpha=3.0)
        segments = [(0, 0.0, 1.0, 2.0), (1, 0.0, 1.0, 1.0)]
        sched = schedule_from_segments(inst, segments, [True, True])
        # Both dedicated: 2^3 + 1^3 = 9.
        assert sched.energy == pytest.approx(9.0, rel=1e-9)

    def test_finished_claims_validated_downstream(self, inst):
        sched = schedule_from_segments(
            inst, [(0, 0.0, 1.0, 1.0)], [True, False]
        )
        sched.validate()  # job 0 got its full unit of work
        with pytest.raises(InfeasibleScheduleError):
            schedule_from_segments(inst, [(0, 0.0, 0.5, 1.0)], [True, False]).validate()
