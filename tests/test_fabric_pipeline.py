"""Tests for the high-throughput fabric: connection pooling, deflate
negotiation, retry backoff, batched claims, lock-free stats, and the
pipelined steal loop.

The companion of ``test_cache_fabric.py`` (protocol parity and fault
tolerance): everything here is about the *throughput* machinery added
on top — keep-alive sockets that survive and transparently redial,
compression that only engages after negotiation, ``/stats`` that never
waits on a slow backend, ``?k=N`` claim batches, and a steal loop that
overlaps claim/probe round trips with compute while a write-behind
batcher flushes puts.
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.request
import zlib

import pytest

from repro.engine import (
    BatchRunner,
    HttpCache,
    HttpClaimTable,
    MemoryCache,
    RunRequest,
)
from repro.engine.remote import (
    COMPRESS_MIN_BYTES,
    HttpConnectionPool,
    RetryPolicy,
)
from repro.engine.runner import _PutBatcher, request_key
from repro.errors import CacheError, InvalidParameterError
from repro.io.server import CacheServer, FabricStats
from repro.workloads import poisson_instance


@pytest.fixture(scope="module")
def requests():
    insts = [poisson_instance(5, m=1, alpha=3.0, seed=s) for s in range(2)]
    return [
        RunRequest(a, i, tag={"seed": s})
        for s, i in enumerate(insts)
        for a in ("pd", "oa")
    ]


@pytest.fixture(scope="module")
def plain_records(requests):
    return BatchRunner().run(requests)


@pytest.fixture()
def server():
    backend = MemoryCache()
    srv = CacheServer(backend).start()
    yield srv
    srv.stop()


def _strip(records):  # NaN-safe comparison form (NaN != NaN)
    return [
        (r.algorithm, r.cost, r.energy,
         None if math.isnan(r.certified_ratio) else r.certified_ratio,
         r.schedule)
        for r in records
    ]


class TestConnectionPool:
    """Keep-alive reuse, stale-socket redial, per-request escape hatch."""

    def test_keep_alive_reuses_one_socket(self, server):
        with HttpConnectionPool(server.url) as pool:
            assert pool.idle_count() == 0
            for _ in range(5):
                status, _, _ = pool.request("GET", "/stats")
                assert status == 200
            # Sequential traffic parks and reuses exactly one socket.
            assert pool.idle_count() == 1

    def test_keep_alive_false_parks_nothing(self, server):
        with HttpConnectionPool(server.url, keep_alive=False) as pool:
            for _ in range(3):
                status, _, _ = pool.request("GET", "/stats")
                assert status == 200
            assert pool.idle_count() == 0

    def test_stale_socket_redials_transparently(self, server):
        cache = HttpCache(server.url)
        cache.put("k", {"v": 1})
        assert cache.pool.idle_count() == 1
        host, port = server.address
        server.stop()  # severs the parked connection
        revived = CacheServer(MemoryCache(), host=host, port=port).start()
        try:
            revived.cache.put("k2", {"v": 2})
            # The parked socket is dead; the pool must redial once and
            # answer from the revived server without surfacing a fault.
            assert cache.get("k2") == {"v": 2}
        finally:
            revived.stop()
            cache.close()

    def test_pool_close_is_not_fatal(self, server):
        cache = HttpCache(server.url)
        cache.put("k", {"v": 1})
        cache.close()
        assert cache.pool.idle_count() == 0
        assert cache.get("k") == {"v": 1}  # fresh dial, same answer
        cache.close()

    def test_max_idle_validated(self, server):
        with pytest.raises(InvalidParameterError, match="max_idle"):
            HttpConnectionPool(server.url, max_idle=0)


class TestCompressionNegotiation:
    """Deflate engages only after the peer advertises it (RFC-7694)."""

    def test_first_request_is_identity_then_negotiated(self, server):
        cache = HttpCache(server.url)
        assert not cache.pool.peer_accepts_deflate
        cache.put("probe", {"v": 0})  # first exchange: identity
        assert cache.pool.peer_accepts_deflate
        cache.close()

    def test_large_bodies_deflate_both_directions(self, server):
        cache = HttpCache(server.url)
        big = {"body": "x" * (4 * COMPRESS_MIN_BYTES)}
        cache.put("warm", {"v": 0})  # negotiate
        entries = {f"big-{i}": big for i in range(4)}
        cache.put_many(entries)  # request body deflated
        assert cache.get_many(list(entries)) == entries  # response deflated
        fabric = server.stats_counters.snapshot()
        assert fabric["deflate_bodies_in"] >= 1
        assert fabric["deflate_bodies_out"] >= 1
        cache.close()

    def test_small_bodies_stay_identity(self, server):
        cache = HttpCache(server.url)
        cache.put("warm", {"v": 0})
        cache.put("small", {"v": 1})  # far below COMPRESS_MIN_BYTES
        assert server.stats_counters.deflate_bodies_in == 0
        cache.close()

    def test_compress_false_never_deflates_requests(self, server):
        cache = HttpCache(server.url, compress=False)
        big = {"body": "x" * (4 * COMPRESS_MIN_BYTES)}
        cache.put("warm", {"v": 0})
        cache.put("big", big)
        assert server.stats_counters.deflate_bodies_in == 0
        assert cache.get("big") == big
        cache.close()

    def test_plain_client_gets_identity_responses(self, server):
        """An old client that never advertises deflate must receive
        plain JSON even for large bodies."""
        cache = HttpCache(server.url)
        big = {"body": "y" * (4 * COMPRESS_MIN_BYTES)}
        cache.put("big", big)
        cache.close()
        with urllib.request.urlopen(f"{server.url}/records/big") as reply:
            raw = reply.read()
            assert reply.headers.get("Content-Encoding") is None
        assert json.loads(raw) == big

    def test_deflated_garbage_is_a_400(self, server):
        with HttpConnectionPool(server.url) as pool:
            status, _, _ = pool.request(
                "PUT",
                "/records/bad",
                b"not deflate at all",
                {"Content-Encoding": "deflate"},
            )
            assert status == 400

    def test_handrolled_deflate_request_accepted(self, server):
        """A client may deflate unprompted — the server's standing
        offer — and the payload must land bit-identical."""
        payload = {"body": "z" * (4 * COMPRESS_MIN_BYTES)}
        raw = zlib.compress(json.dumps(payload).encode("utf-8"))
        with HttpConnectionPool(server.url) as pool:
            status, _, _ = pool.request(
                "PUT",
                "/records/handrolled",
                raw,
                {"Content-Encoding": "deflate"},
            )
        assert status in (200, 204)
        assert server.cache.get("handrolled") == payload


class TestRetryPolicy:
    """Seeded jitter, bounded growth, shared by every lenient route."""

    def test_delays_are_deterministic_per_seed(self):
        first = list(RetryPolicy(5, seed=7).delays())
        second = list(RetryPolicy(5, seed=7).delays())
        other = list(RetryPolicy(5, seed=8).delays())
        assert first == second
        assert first != other

    def test_delays_bounded_and_growing(self):
        policy = RetryPolicy(
            6, base_delay=0.05, max_delay=0.4, jitter=0.25, seed=0
        )
        delays = list(policy.delays())
        assert len(delays) == 6
        assert all(0 < d <= 0.4 * 1.25 for d in delays)
        # Exponential growth dominates the +-25% jitter early on.
        assert delays[2] > delays[0]

    def test_zero_retries_is_single_shot(self):
        assert list(RetryPolicy(0).delays()) == []

    def test_validation(self):
        with pytest.raises(InvalidParameterError, match="retries"):
            RetryPolicy(-1)
        with pytest.raises(InvalidParameterError, match="jitter"):
            RetryPolicy(1, jitter=2.0)
        with pytest.raises(InvalidParameterError, match="delays"):
            RetryPolicy(1, base_delay=-0.1)

    def test_lenient_routes_back_off_then_miss(self, monkeypatch):
        import socket as socket_mod

        sock = socket_mod.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        naps: list[float] = []
        monkeypatch.setattr(
            "repro.engine.remote.time.sleep", naps.append
        )
        cache = HttpCache(
            f"http://127.0.0.1:{port}",
            timeout=0.5,
            retry=RetryPolicy(3, seed=1),
        )
        assert cache.get("anything") is None  # miss, not a crash
        assert naps == list(RetryPolicy(3, seed=1).delays())

    def test_claim_traffic_never_retries(self, monkeypatch):
        """Claim faults must stay loud and immediate — backoff there
        would let two workers guess at overlapping positions."""
        import socket as socket_mod

        sock = socket_mod.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        naps: list[float] = []
        monkeypatch.setattr(
            "repro.engine.remote.time.sleep", naps.append
        )
        with pytest.raises(CacheError, match="unreachable"):
            HttpClaimTable(f"http://127.0.0.1:{port}", "t", 2, timeout=0.5)
        assert naps == []


class TestBatchedClaims:
    """``?k=N`` leases N positions in one round trip."""

    def test_claim_batch_is_one_round_trip(self, server):
        table = HttpClaimTable(server.url, "batched", 12)
        before = server.stats_counters.claim_requests
        assert table.claim(5) == [0, 1, 2, 3, 4]
        assert server.stats_counters.claim_requests == before + 1
        assert table.claim(100) == list(range(5, 12))  # clamped to tail
        table.close()

    def test_query_k_overrides_body_count(self, server):
        HttpClaimTable(server.url, "wire", 9).close()
        with HttpConnectionPool(server.url) as pool:
            status, _, raw = pool.request(
                "POST",
                "/claims/wire/next?k=3",
                json.dumps({"count": 1}).encode("utf-8"),
            )
            assert status == 200
            assert json.loads(raw)["positions"] == [0, 1, 2]
            # Old-style body-only claims keep working on the new server.
            status, _, raw = pool.request(
                "POST",
                "/claims/wire/next",
                json.dumps({"count": 2}).encode("utf-8"),
            )
            assert status == 200
            assert json.loads(raw)["positions"] == [3, 4]
            status, _, _ = pool.request(
                "POST",
                "/claims/wire/next?k=nope",
                json.dumps({"count": 1}).encode("utf-8"),
            )
            assert status == 400


class TestLockFreeStats:
    """Satellite: ``GET /stats`` answers while the backend is busy."""

    def test_stats_fast_does_not_wait_on_a_slow_backend(self):
        entered = threading.Event()
        release = threading.Event()

        class SlowCache(MemoryCache):
            thread_safe = True

            def get(self, key):
                entered.set()
                release.wait(timeout=10.0)
                return super().get(key)

        srv = CacheServer(SlowCache()).start()
        try:
            slow = HttpCache(srv.url)
            blocker = threading.Thread(
                target=slow.get, args=("stuck",), daemon=True
            )
            blocker.start()
            assert entered.wait(timeout=5.0)
            # The backend (and its stripe) is now held mid-get; the
            # fast snapshot must come back anyway, and quickly.
            probe = HttpCache(srv.url)
            start = time.perf_counter()
            snapshot = probe.stats(deep=False)
            elapsed = time.perf_counter() - start
            assert elapsed < 1.0
            assert snapshot["deep"] is False
            assert snapshot["backend"] == "http(memory)"
            # The blocked get hasn't finished, so it isn't a
            # record_get yet — but its dispatch was counted.
            assert snapshot["fabric"]["requests"] >= 1
        finally:
            release.set()
            blocker.join(timeout=5.0)
            slow.close()
            probe.close()
            srv.stop()

    def test_entry_counter_tracks_new_vs_overwrite(self, server):
        cache = HttpCache(server.url)
        assert cache.stats(deep=False)["entries"] == 0
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.put("a", {"v": 3})  # overwrite: count must not move
        fast = cache.stats(deep=False)
        assert fast["entries"] == 2
        assert fast["fabric"]["record_puts"] == 3
        assert fast["fabric"]["new_records"] == 2
        deep = cache.stats(deep=True)
        assert deep["deep"] is True
        assert deep["entries"] == 2
        cache.close()

    def test_fast_snapshot_counts_hits_and_misses(self, server):
        cache = HttpCache(server.url)
        cache.put("hit", {"v": 1})
        assert cache.get("hit") is not None
        assert cache.get("miss") is None
        fabric = cache.stats(deep=False)["fabric"]
        assert fabric["record_gets"] == 2
        assert fabric["record_hits"] == 1
        cache.close()

    def test_fabric_stats_counters_are_plain(self):
        stats = FabricStats()
        stats.note_put(new=True)
        stats.note_put(new=False)
        stats.note_removed(1)
        assert stats.entries == 0
        assert stats.snapshot()["record_puts"] == 2
        assert stats.snapshot()["new_records"] == 1


class TestStripedLocks:
    def test_stripes_require_thread_safe_backend(self, tmp_path):
        from repro.engine import SqliteCache

        sqlite = SqliteCache(tmp_path / "c.db")
        try:
            srv = CacheServer(sqlite)  # collapses to one stripe
            assert len(srv._records) == 1
            with pytest.raises(InvalidParameterError, match="thread"):
                CacheServer(sqlite, stripes=4)
        finally:
            sqlite.close()

    def test_thread_safe_backend_gets_striped(self):
        srv = CacheServer(MemoryCache())
        assert len(srv._records) > 1
        narrow = CacheServer(MemoryCache(), stripes=2)
        assert len(narrow._records) == 2
        with pytest.raises(InvalidParameterError, match="stripes"):
            CacheServer(MemoryCache(), stripes=0)


class TestPipelinedSteal:
    """The batched, pipelined loop yields exactly the plain run."""

    def test_serial_claim_batch_matches_run(
        self, requests, plain_records, server
    ):
        cache = HttpCache(server.url)
        claims = HttpClaimTable(server.url, "serial-batch", len(requests))
        runner = BatchRunner(cache=cache, claim_batch=3)
        try:
            pairs = runner.run_stolen(requests, claims)
        finally:
            claims.close()
            cache.close()
        assert [p for p, _ in pairs] == list(range(len(requests)))
        assert _strip([r for _, r in pairs]) == _strip(plain_records)

    def test_pooled_claim_batch_matches_run(
        self, requests, plain_records, server
    ):
        cache = HttpCache(server.url)
        claims = HttpClaimTable(server.url, "pooled-batch", len(requests))
        runner = BatchRunner(workers=2, cache=cache, claim_batch=2)
        try:
            pairs = runner.run_stolen(requests, claims)
        finally:
            claims.close()
            cache.close()
        assert _strip([r for _, r in pairs]) == _strip(plain_records)

    def test_write_behind_flusher_lands_every_put(self, requests, server):
        cache = HttpCache(server.url)
        claims = HttpClaimTable(server.url, "flush", len(requests))
        runner = BatchRunner(cache=cache, claim_batch=2)
        try:
            runner.run_stolen(requests, claims)
            # run_stolen closed its flusher before returning, so every
            # computed record must already be on the server.
            keys = {
                request_key(r.algorithm, r.instance) for r in requests
            }
            assert set(cache.keys()) == keys
        finally:
            claims.close()
            cache.close()

    def test_warm_batched_steal_is_all_hits(self, requests, server):
        cache = HttpCache(server.url)
        BatchRunner(cache=cache).run(requests)
        claims = HttpClaimTable(server.url, "warm-batch", len(requests))
        runner = BatchRunner(cache=cache, claim_batch=4)
        try:
            pairs = runner.run_stolen(requests, claims)
        finally:
            claims.close()
            cache.close()
        assert all(record.cached for _, record in pairs)
        assert runner.stats.computed == 0
        assert runner.stats.cache_hits == len(requests)

    def test_claim_batch_validated(self):
        with pytest.raises(InvalidParameterError, match="claim_batch"):
            BatchRunner(claim_batch=0)
        with pytest.raises(InvalidParameterError, match="claim_batch"):
            BatchRunner(claim_batch=True)

    def test_put_batcher_flushes_and_propagates_failures(self):
        class Sink:
            batch_size = 4

            def __init__(self):
                self.entries: dict = {}
                self.flushes = 0

            def put_many(self, entries):
                self.flushes += 1
                self.entries.update(entries)

        sink = Sink()
        batcher = _PutBatcher(sink, batch_size=4)
        for i in range(10):
            batcher.put(f"k{i}", {"v": i})
        batcher.close()
        assert len(sink.entries) == 10
        assert sink.entries["k7"] == {"v": 7}
        assert sink.flushes >= 3  # 10 puts / batch of 4

        class Exploding:
            batch_size = 2

            def put_many(self, entries):
                raise CacheError("disk on fire")

        failing = _PutBatcher(Exploding())
        failing.put("k", {"v": 1})
        with pytest.raises(CacheError, match="disk on fire"):
            failing.close()


class TestConcurrentStress:
    """Satellite: threads hammer one live server; nothing is lost."""

    def test_mixed_traffic_under_contention(self, server):
        total = 60
        writers = 3
        per_writer = 40
        HttpClaimTable(server.url, "stress", total).close()
        errors: list[BaseException] = []
        claimed: dict[int, list[int]] = {}
        barrier = threading.Barrier(writers + 3)

        def write_and_verify(slot: int, compress: bool) -> None:
            cache = HttpCache(server.url, compress=compress, batch_size=16)
            try:
                barrier.wait(timeout=10.0)
                entries = {
                    f"w{slot}-{i}": {
                        "slot": slot,
                        "i": i,
                        "body": "x" * (COMPRESS_MIN_BYTES if compress else 8),
                    }
                    for i in range(per_writer)
                }
                cache.put_many(entries)
                # Sever the parked sockets underneath the pool: the
                # next round trip reuses a dead connection and must
                # recover through the transparent redial, mid-batch.
                for conn in list(cache.pool._idle):
                    if conn.sock is not None:
                        conn.sock.close()
                found = cache.get_many(list(entries))
                if found != entries:
                    raise AssertionError(
                        f"writer {slot} lost {len(entries) - len(found)}"
                    )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                cache.close()

        def claimer(slot: int) -> None:
            table = HttpClaimTable(server.url, "stress", total)
            try:
                barrier.wait(timeout=10.0)
                got: list[int] = []
                while True:
                    batch = table.claim(4)
                    if not batch:
                        break
                    got.extend(batch)
                    table.done(batch)
                claimed[slot] = got
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                table.close()

        def chaos() -> None:
            cache = HttpCache(server.url)
            try:
                barrier.wait(timeout=10.0)
                for _ in range(10):
                    cache.put("chaos", {"v": 1})
                    # Churn connections mid-run: every put after a
                    # close dials fresh while the writers are severing
                    # and redialing their own sockets.
                    cache.pool.close()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                cache.close()

        threads = [
            threading.Thread(target=write_and_verify, args=(s, s % 2 == 0))
            for s in range(writers)
        ]
        threads += [
            threading.Thread(target=claimer, args=(s,)) for s in range(2)
        ]
        threads.append(threading.Thread(target=chaos))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        handed = sorted(claimed[0] + claimed[1])
        assert handed == list(range(total))  # exact partition, no doubles
        check = HttpCache(server.url)
        try:
            assert check.stats(deep=True)["entries"] == (
                writers * per_writer + 1  # +1 for the chaos key
            )
        finally:
            check.close()

    def test_concurrent_steal_merge_is_byte_identical(
        self, requests, plain_records, server
    ):
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            cache = HttpCache(server.url, compress=slot % 2 == 0)
            table = HttpClaimTable(server.url, "stress-steal", len(requests))
            try:
                results[slot] = BatchRunner(
                    cache=cache, claim_batch=2
                ).run_stolen(requests, table)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                table.close()
                cache.close()

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors
        merged = sorted(results[0] + results[1])
        assert [p for p, _ in merged] == list(range(len(requests)))
        assert _strip([r for _, r in merged]) == _strip(plain_records)
