"""Tests for the PD primal-dual online algorithm (the paper's Listing 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classical.oa import run_oa
from repro.classical.yds import yds
from repro.core.pd import PDScheduler, run_pd
from repro.errors import InvalidParameterError
from repro.model.job import Instance, Job
from repro.workloads import (
    lower_bound_instance,
    pd_cost_closed_form,
    poisson_instance,
)


class TestBasicBehaviour:
    def test_single_job_runs_at_minimal_speed(self):
        inst = Instance.classical([(0.0, 2.0, 4.0)], m=1, alpha=3.0)
        result = run_pd(inst)
        assert result.accepted_mask.all()
        assert result.cost == pytest.approx(2.0 * 2.0**3)

    def test_worthless_job_rejected(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0, 1e-9)], m=1, alpha=3.0)
        result = run_pd(inst)
        assert not result.accepted_mask.any()
        assert result.cost == pytest.approx(1e-9)
        assert result.schedule.energy == 0.0

    def test_rejection_threshold_single_job(self):
        """A lone job is rejected iff planned energy > alpha^(alpha-2) * v.

        This is the paper's Section 3 observation about the rejection
        policy with the optimal delta (here: energy 1, alpha = 3, so the
        threshold value is 1/3).
        """
        for value, expect in [(0.34, True), (0.32, False)]:
            inst = Instance.from_tuples([(0.0, 1.0, 1.0, value)], m=1, alpha=3.0)
            assert bool(run_pd(inst).accepted_mask[0]) is expect

    def test_decisions_recorded(self):
        inst = Instance.from_tuples(
            [(0.0, 1.0, 1.0, 100.0), (0.0, 1.0, 1.0, 1e-9)], m=1, alpha=3.0
        )
        result = run_pd(inst)
        assert len(result.decisions) == 2
        assert result.decisions[0].accepted or result.decisions[1].accepted
        for d in result.decisions:
            assert d.lam >= 0.0
            assert d.planned_speed >= 0.0

    def test_schedule_validates(self):
        inst = poisson_instance(25, m=3, alpha=2.5, seed=0)
        result = run_pd(inst)
        result.schedule.validate()

    def test_summary_text(self):
        inst = Instance.classical([(0.0, 1.0, 1.0)], m=1, alpha=3.0)
        text = run_pd(inst).summary()
        assert "delta" in text


class TestOnlineDiscipline:
    def test_out_of_order_arrivals_rejected(self):
        sched = PDScheduler(m=1, alpha=3.0)
        sched.arrive(Job(1.0, 2.0, 1.0, 1.0))
        with pytest.raises(InvalidParameterError):
            sched.arrive(Job(0.0, 3.0, 1.0, 1.0))

    def test_finish_without_jobs_rejected(self):
        with pytest.raises(InvalidParameterError):
            PDScheduler(m=1, alpha=3.0).finish()

    def test_frozen_assignments_never_move(self):
        """PD never redistributes earlier jobs (the Figure 3 property)."""
        sched = PDScheduler(m=1, alpha=3.0)
        sched.arrive(Job(0.0, 4.0, 2.0, 1e9))
        loads_before = sched.snapshot_loads()
        grid_before = sched._grid
        sched.arrive(Job(1.0, 2.0, 1.0, 1e9))
        # Re-express the old loads on the new grid: they must be exactly
        # the proportional split, with all new work on the new row.
        ref = grid_before.refine([1.0, 2.0])
        expected_row0 = ref.split_row(loads_before[0])
        np.testing.assert_allclose(
            sched.snapshot_loads()[0], expected_row0, rtol=1e-12
        )

    def test_grid_refinement_transparent(self):
        """Feeding the same jobs with a pre-known grid changes nothing.

        The paper's Section 3: refinement with proportional splitting
        produces the identical schedule.
        """
        jobs = [
            (0.0, 8.0, 2.0, 1e9),
            (1.0, 5.0, 1.0, 1e9),
            (2.0, 3.0, 0.5, 1e9),
            (2.5, 7.0, 1.5, 1e9),
        ]
        inst = Instance.from_tuples(jobs, m=1, alpha=3.0)
        r1 = run_pd(inst)
        # Shuffled input order must not matter (run_pd sorts by release).
        inst2 = Instance.from_tuples([jobs[2], jobs[0], jobs[3], jobs[1]], m=1, alpha=3.0)
        r2 = run_pd(inst2)
        assert r1.cost == pytest.approx(r2.cost, rel=1e-9)


class TestAgainstClassicalAlgorithms:
    def test_matches_oa_on_lower_bound_family(self):
        """High-value single-proc: PD spreads like OA on this family."""
        for n in [3, 7, 12]:
            inst = lower_bound_instance(n, 3.0)
            pd_cost = run_pd(inst).cost
            oa_cost = run_oa(inst).energy
            assert pd_cost == pytest.approx(oa_cost, rel=1e-7)
            assert pd_cost == pytest.approx(pd_cost_closed_form(n, 3.0), rel=1e-7)

    def test_batch_instance_single_proc_matches_optimal(self):
        """With one arrival epoch PD has full information: optimal."""
        inst = Instance.classical(
            [(0.0, 1.0, 1.0), (0.0, 2.0, 1.0), (0.0, 4.0, 2.0)], m=1, alpha=3.0
        )
        assert run_pd(inst).cost == pytest.approx(yds(inst).energy, rel=1e-6)

    @pytest.mark.parametrize("alpha", [1.5, 2.0, 2.5, 3.0])
    def test_within_competitive_bound_of_optimal(self, alpha):
        inst = poisson_instance(12, m=1, alpha=alpha, seed=42)
        classical = inst.with_values([1e12] * inst.n)
        pd_cost = run_pd(classical).cost
        opt = yds(classical.with_machine(m=1)).energy
        assert pd_cost <= alpha**alpha * opt * (1.0 + 1e-6)
        assert pd_cost >= opt * (1.0 - 1e-9)


class TestMultiprocessor:
    def test_two_identical_jobs_two_processors(self):
        inst = Instance.classical([(0.0, 1.0, 2.0), (0.0, 1.0, 2.0)], m=2, alpha=3.0)
        result = run_pd(inst)
        assert result.cost == pytest.approx(2 * 2.0**3)

    def test_more_processors_never_hurt(self):
        base = poisson_instance(15, m=1, alpha=3.0, seed=5)
        costs = [run_pd(base.with_machine(m=m)).cost for m in [1, 2, 4, 8]]
        for a, b in zip(costs, costs[1:]):
            assert b <= a * (1.0 + 1e-6)

    def test_heavy_job_gets_dedicated_processor(self):
        inst = Instance.classical(
            [(0.0, 1.0, 10.0), (0.0, 1.0, 1.0), (0.0, 1.0, 1.0)], m=2, alpha=3.0
        )
        result = run_pd(inst)
        speeds = result.schedule.processor_speed_matrix()
        assert speeds[0, 0] == pytest.approx(10.0)
        assert speeds[1, 0] == pytest.approx(2.0)

    def test_m_at_least_n_all_independent(self):
        """With a processor per job everyone runs at solo-optimal speed."""
        inst = Instance.classical(
            [(0.0, 2.0, 1.0), (0.0, 2.0, 2.0), (0.0, 2.0, 3.0)], m=3, alpha=3.0
        )
        result = run_pd(inst)
        expected = sum(2.0 * (w / 2.0) ** 3 for w in [1.0, 2.0, 3.0])
        assert result.cost == pytest.approx(expected, rel=1e-9)


class TestDeltaParameter:
    def test_custom_delta_accepted(self):
        inst = Instance.classical([(0.0, 1.0, 1.0)], m=1, alpha=3.0)
        result = run_pd(inst, delta=0.05)
        assert result.delta == 0.05

    def test_invalid_delta(self):
        with pytest.raises(InvalidParameterError):
            PDScheduler(m=1, alpha=3.0, delta=-1.0)

    def test_smaller_delta_rejects_more(self):
        """Delta scales the marginal price: smaller delta makes jobs look
        cheaper, hence *larger* delta rejects more."""
        inst = Instance.from_tuples(
            [(0.0, 1.0, 1.0, 0.5), (0.5, 2.0, 1.0, 0.5)], m=1, alpha=3.0
        )
        acc_small = run_pd(inst, delta=0.01).accepted_mask.sum()
        acc_large = run_pd(inst, delta=5.0).accepted_mask.sum()
        assert acc_small >= acc_large
