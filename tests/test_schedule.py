"""Tests for the full-horizon Schedule object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GridMismatchError, InfeasibleScheduleError
from repro.model.intervals import Grid, grid_for_instance
from repro.model.job import Instance
from repro.model.schedule import Schedule
from repro.model.validation import validate_segments


@pytest.fixture
def two_job_instance() -> Instance:
    return Instance.from_tuples(
        [(0.0, 2.0, 2.0, 5.0), (1.0, 3.0, 1.0, 3.0)], m=1, alpha=3.0
    )


def make_schedule(inst: Instance, loads, finished) -> Schedule:
    return Schedule(
        instance=inst,
        grid=grid_for_instance(inst),
        loads=np.array(loads, dtype=float),
        finished=np.array(finished, dtype=bool),
    )


class TestCost:
    def test_energy_and_lost_value(self, two_job_instance):
        # Grid: [0,1), [1,2), [2,3). Job 0 fully in [0,2), job 1 rejected.
        sched = make_schedule(
            two_job_instance,
            [[1.0, 1.0, 0.0], [0.0, 0.0, 0.0]],
            [True, False],
        )
        # Single processor: speed 1 in each of the two unit intervals.
        assert sched.energy == pytest.approx(2.0)
        assert sched.lost_value == pytest.approx(3.0)
        assert sched.cost == pytest.approx(5.0)
        breakdown = sched.cost_breakdown()
        assert breakdown.total == pytest.approx(5.0)
        assert "energy" in str(breakdown)

    def test_empty_schedule_costs_total_value(self, two_job_instance):
        sched = Schedule.empty(two_job_instance, grid_for_instance(two_job_instance))
        assert sched.energy == 0.0
        assert sched.cost == pytest.approx(8.0)

    def test_from_portions(self, two_job_instance):
        grid = grid_for_instance(two_job_instance)
        x = np.array([[0.5, 0.5, 0.0], [0.0, 0.5, 0.5]])
        sched = Schedule.from_portions(
            two_job_instance, grid, x, np.array([True, True])
        )
        np.testing.assert_allclose(sched.loads[0], [1.0, 1.0, 0.0])
        np.testing.assert_allclose(sched.loads[1], [0.0, 0.5, 0.5])


class TestValidation:
    def test_shape_mismatch_rejected(self, two_job_instance):
        with pytest.raises(GridMismatchError):
            make_schedule(two_job_instance, [[1.0, 0.0, 0.0]], [True, False])

    def test_negative_load_rejected(self, two_job_instance):
        sched = make_schedule(
            two_job_instance, [[-1.0, 0.0, 0.0], [0.0, 0.0, 0.0]], [False, False]
        )
        with pytest.raises(InfeasibleScheduleError):
            sched.validate()

    def test_work_outside_window_rejected(self, two_job_instance):
        # Job 1 is not available in [0,1).
        sched = make_schedule(
            two_job_instance, [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]], [False, False]
        )
        with pytest.raises(InfeasibleScheduleError):
            sched.validate()

    def test_underfilled_finish_claim_rejected(self, two_job_instance):
        sched = make_schedule(
            two_job_instance, [[0.5, 0.0, 0.0], [0.0, 0.0, 0.0]], [True, False]
        )
        with pytest.raises(InfeasibleScheduleError):
            sched.validate()
        sched.validate(strict_finish=False)  # tolerated when asked

    def test_valid_schedule_passes(self, two_job_instance):
        sched = make_schedule(
            two_job_instance,
            [[1.0, 1.0, 0.0], [0.0, 0.5, 0.5]],
            [True, True],
        )
        sched.validate()


class TestAccounting:
    def test_work_done_and_fractions(self, two_job_instance):
        sched = make_schedule(
            two_job_instance,
            [[1.0, 0.5, 0.0], [0.0, 0.5, 0.5]],
            [False, True],
        )
        np.testing.assert_allclose(sched.work_done(), [1.5, 1.0])
        np.testing.assert_allclose(sched.completion_fractions(), [0.75, 1.0])

    def test_portions_roundtrip(self, two_job_instance):
        loads = [[1.0, 1.0, 0.0], [0.0, 0.5, 0.5]]
        sched = make_schedule(two_job_instance, loads, [True, True])
        x = sched.portions()
        np.testing.assert_allclose(x[0], [0.5, 0.5, 0.0])
        np.testing.assert_allclose(x[1], [0.0, 0.5, 0.5])


class TestRealizeAndSpeeds:
    def test_realize_segments_valid(self, two_job_instance):
        sched = make_schedule(
            two_job_instance,
            [[1.0, 1.0, 0.0], [0.0, 0.5, 0.5]],
            [True, True],
        )
        segments = [
            seg for isched in sched.realize() for seg in isched.segments
        ]
        validate_segments(segments, m=1)
        work = {}
        for seg in segments:
            work[seg.job] = work.get(seg.job, 0.0) + seg.work
        assert work[0] == pytest.approx(2.0)
        assert work[1] == pytest.approx(1.0)

    def test_processor_speed_matrix_descending(self, two_job_instance):
        inst = two_job_instance.with_machine(m=2)
        sched = Schedule(
            instance=inst,
            grid=grid_for_instance(inst),
            loads=np.array([[1.0, 1.0, 0.0], [0.0, 0.5, 0.5]]),
            finished=np.array([True, True]),
        )
        mat = sched.processor_speed_matrix()
        assert mat.shape == (2, 3)
        assert np.all(np.diff(mat, axis=0) <= 1e-12)  # rows sorted fast->slow

    def test_on_grid_preserves_cost(self, two_job_instance):
        sched = make_schedule(
            two_job_instance,
            [[1.0, 1.0, 0.0], [0.0, 0.5, 0.5]],
            [True, True],
        )
        finer = Grid.from_points([0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0])
        rebased = sched.on_grid(finer)
        assert rebased.cost == pytest.approx(sched.cost)
        assert rebased.energy == pytest.approx(sched.energy)
        np.testing.assert_allclose(
            rebased.work_done(), sched.work_done()
        )

    def test_on_grid_requires_refinement(self, two_job_instance):
        sched = make_schedule(
            two_job_instance,
            [[1.0, 1.0, 0.0], [0.0, 0.5, 0.5]],
            [True, True],
        )
        coarser = Grid.from_points([0.0, 3.0])
        with pytest.raises(GridMismatchError):
            sched.on_grid(coarser)

    def test_summary_mentions_acceptance(self, two_job_instance):
        sched = make_schedule(
            two_job_instance,
            [[1.0, 1.0, 0.0], [0.0, 0.0, 0.0]],
            [True, False],
        )
        assert "1/2" in sched.summary()
