"""Tests for the exact water-filling step of PD."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chen.interval_power import SortedLoads, job_speeds
from repro.core.waterfill import waterfill_job
from repro.errors import InvalidParameterError
from repro.model.power import PolynomialPower

POWER = PolynomialPower(3.0)
DELTA = POWER.optimal_delta


def caches_for(loads_per_interval, m=1, lengths=None):
    lengths = lengths or [1.0] * len(loads_per_interval)
    return [
        SortedLoads(np.array(loads), m, l)
        for loads, l in zip(loads_per_interval, lengths)
    ]


class TestAcceptance:
    def test_empty_machine_single_interval(self):
        out = waterfill_job(
            caches_for([[]]), workload=2.0, value=np.inf, delta=DELTA, power=POWER
        )
        assert out.accepted
        np.testing.assert_allclose(out.loads, [2.0])
        assert out.speed == pytest.approx(2.0)
        assert out.lam == pytest.approx(DELTA * 2.0 * POWER.derivative(2.0))

    def test_spreads_evenly_over_identical_intervals(self):
        out = waterfill_job(
            caches_for([[], [], []]),
            workload=3.0,
            value=np.inf,
            delta=DELTA,
            power=POWER,
        )
        assert out.accepted
        np.testing.assert_allclose(out.loads, [1.0, 1.0, 1.0], rtol=1e-9)

    def test_prefers_cheaper_interval(self):
        # Interval 0 already carries load 2, interval 1 is empty: new work
        # should flow to interval 1 until marginals equalize.
        out = waterfill_job(
            caches_for([[2.0], []]),
            workload=1.0,
            value=np.inf,
            delta=DELTA,
            power=POWER,
        )
        assert out.accepted
        assert out.loads[1] > out.loads[0]
        assert out.loads.sum() == pytest.approx(1.0)

    def test_marginals_equalized_on_support(self):
        caches = caches_for([[1.5], [0.3], [4.0]])
        out = waterfill_job(
            caches, workload=2.0, value=np.inf, delta=DELTA, power=POWER
        )
        assert out.accepted
        # Recompute realized speeds per interval; the marginal price
        # delta*w*P'(s) must be equal on every interval receiving load
        # and no lower on the others.
        speeds = []
        for cache, z in zip(caches, out.loads):
            base = [1.5, 0.3, 4.0][caches.index(cache)]
            s = job_speeds(np.array([base, z]), 1, 1.0)[1] if z > 1e-12 else None
            speeds.append(s)
        priced = [s for s in speeds if s is not None]
        assert max(priced) - min(priced) < 1e-6

    def test_respects_interval_lengths(self):
        # A longer interval absorbs proportionally more load at the same
        # speed.
        out = waterfill_job(
            caches_for([[], []], lengths=[1.0, 3.0]),
            workload=4.0,
            value=np.inf,
            delta=DELTA,
            power=POWER,
        )
        assert out.accepted
        np.testing.assert_allclose(out.loads, [1.0, 3.0], rtol=1e-8)

    def test_multiprocessor_pool_entry(self):
        # m=2 with one heavy job: the new job gets the second processor
        # almost for free until it reaches the pool level.
        out = waterfill_job(
            caches_for([[10.0]], m=2),
            workload=1.0,
            value=np.inf,
            delta=DELTA,
            power=POWER,
        )
        assert out.accepted
        assert out.speed == pytest.approx(1.0)  # alone on processor 2

    def test_workload_exactly_placed(self):
        out = waterfill_job(
            caches_for([[0.5], [1.0], [2.0], [0.1]]),
            workload=3.3,
            value=np.inf,
            delta=DELTA,
            power=POWER,
        )
        assert out.accepted
        assert out.loads.sum() == pytest.approx(3.3, rel=1e-9)


class TestRejection:
    def test_low_value_rejected(self):
        # Placing workload 1 on an empty unit interval costs ~1 energy;
        # value far below that must be rejected.
        out = waterfill_job(
            caches_for([[]]), workload=1.0, value=1e-6, delta=DELTA, power=POWER
        )
        assert not out.accepted
        assert out.lam == pytest.approx(1e-6)
        assert out.planned_work < 1.0

    def test_rejection_keeps_planned_loads(self):
        out = waterfill_job(
            caches_for([[], []]), workload=5.0, value=0.01, delta=DELTA, power=POWER
        )
        assert not out.accepted
        assert out.loads.shape == (2,)
        assert 0.0 < out.planned_work < 5.0

    def test_zero_value_rejects_instantly(self):
        out = waterfill_job(
            caches_for([[]]), workload=1.0, value=0.0, delta=DELTA, power=POWER
        )
        assert not out.accepted
        assert out.planned_work == 0.0

    def test_no_intervals_rejects(self):
        out = waterfill_job(
            [], workload=1.0, value=10.0, delta=DELTA, power=POWER
        )
        assert not out.accepted
        assert out.lam == 10.0

    def test_borderline_value_accepted(self):
        # Energy to place workload 1 alone is exactly 1; with the optimal
        # delta the job is accepted iff planned energy <= alpha^(alpha-2)v,
        # i.e. v >= 1/3 for alpha = 3.
        threshold = 1.0 / POWER.rejection_energy_factor
        accept = waterfill_job(
            caches_for([[]]),
            workload=1.0,
            value=threshold * 1.01,
            delta=DELTA,
            power=POWER,
        )
        reject = waterfill_job(
            caches_for([[]]),
            workload=1.0,
            value=threshold * 0.99,
            delta=DELTA,
            power=POWER,
        )
        assert accept.accepted
        assert not reject.accepted


class TestValidationAndProperties:
    def test_bad_workload(self):
        with pytest.raises(InvalidParameterError):
            waterfill_job(
                caches_for([[]]), workload=0.0, value=1.0, delta=DELTA, power=POWER
            )

    def test_bad_delta(self):
        with pytest.raises(InvalidParameterError):
            waterfill_job(
                caches_for([[]]), workload=1.0, value=1.0, delta=0.0, power=POWER
            )

    @given(
        existing=st.lists(
            st.lists(st.floats(min_value=0.0, max_value=5.0), max_size=4),
            min_size=1,
            max_size=5,
        ),
        workload=st.floats(min_value=0.05, max_value=10.0),
        m=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=150, deadline=None)
    def test_accepted_loads_sum_to_workload(self, existing, workload, m):
        out = waterfill_job(
            caches_for(existing, m=m),
            workload=workload,
            value=np.inf,
            delta=DELTA,
            power=POWER,
        )
        assert out.accepted
        assert out.loads.sum() == pytest.approx(workload, rel=1e-8)
        assert np.all(out.loads >= -1e-12)

    @given(
        workload=st.floats(min_value=0.05, max_value=5.0),
        value=st.floats(min_value=1e-4, max_value=1e4),
    )
    @settings(max_examples=150, deadline=None)
    def test_lambda_never_exceeds_value(self, workload, value):
        out = waterfill_job(
            caches_for([[0.7], [0.1]]),
            workload=workload,
            value=value,
            delta=DELTA,
            power=POWER,
        )
        assert out.lam <= value * (1.0 + 1e-9)

    @given(v1=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_acceptance_monotone_in_value(self, v1):
        """If a job is accepted at value v it stays accepted at 2v."""
        kwargs = dict(workload=1.3, delta=DELTA, power=POWER)
        a = waterfill_job(caches_for([[1.0], []]), value=v1, **kwargs)
        b = waterfill_job(caches_for([[1.0], []]), value=2 * v1, **kwargs)
        if a.accepted:
            assert b.accepted
