"""Tests for the experiment sweep utilities."""

from __future__ import annotations

import math

import pytest

from repro.analysis.sweeps import (
    acceptance_curve,
    format_cells,
    processor_scaling_curve,
    ratio_sweep,
)
from repro.errors import InvalidParameterError
from repro.workloads import poisson_instance


class TestRatioSweep:
    def test_grid_shape(self):
        cells = ratio_sweep(
            poisson_instance, alphas=[2.0, 3.0], ms=[1, 2], n=8, seeds=[0]
        )
        assert len(cells) == 4
        params = {(c.params["alpha"], c.params["m"]) for c in cells}
        assert params == {(2.0, 1), (2.0, 2), (3.0, 1), (3.0, 2)}

    def test_ratios_within_bounds(self):
        cells = ratio_sweep(
            poisson_instance, alphas=[2.0, 3.0], ms=[1, 2], n=10, seeds=[0, 1]
        )
        for cell in cells:
            bound = cell.params["alpha"] ** cell.params["alpha"]
            assert cell.worst_certified_ratio <= bound * (1 + 1e-7)
            assert cell.runs == 2

    def test_empty_seeds_rejected(self):
        with pytest.raises(InvalidParameterError):
            ratio_sweep(poisson_instance, alphas=[2.0], ms=[1], seeds=[])


class TestAcceptanceCurve:
    def test_monotone_endpoints(self):
        cells = acceptance_curve(
            poisson_instance,
            value_multipliers=[1e-4, 1.0, 1e4],
            n=12,
            seeds=[0, 1],
        )
        accs = [c.mean_acceptance for c in cells]
        assert accs[0] < 0.3  # near-worthless jobs mostly rejected
        assert accs[-1] > 0.9  # hugely valuable jobs mostly accepted
        assert accs[0] <= accs[1] <= accs[-1] + 1e-9

    def test_params_recorded(self):
        cells = acceptance_curve(
            poisson_instance, value_multipliers=[0.5], n=6, seeds=[0]
        )
        assert cells[0].params == {"value_x": 0.5}


class TestProcessorScalingCurve:
    def test_cost_monotone_in_m(self):
        inst = poisson_instance(12, m=1, alpha=3.0, seed=0)
        cells = processor_scaling_curve(inst, ms=[1, 2, 4])
        costs = [c.mean_cost for c in cells]
        assert all(b <= a * (1 + 1e-9) for a, b in zip(costs, costs[1:]))
        for c in cells:
            assert c.worst_certified_ratio <= 27.0 * (1 + 1e-7)

    def test_non_pd_algorithm_has_nan_ratio(self):
        inst = poisson_instance(6, m=1, alpha=3.0, seed=1).with_values([1e12] * 6)
        cells = processor_scaling_curve(inst, ms=[1], algorithm="oa")
        assert math.isnan(cells[0].worst_certified_ratio)


class TestFormatting:
    def test_format_cells(self):
        cells = ratio_sweep(poisson_instance, alphas=[2.0], ms=[1], n=5, seeds=[0])
        text = format_cells(cells, title="demo")
        assert text.startswith("demo")
        assert "worst_ratio" in text


class TestExtensionCurves:
    def test_menu_granularity_curve_invariants(self):
        from repro.analysis import menu_granularity_curve
        from repro.workloads import poisson_instance

        rows = menu_granularity_curve(
            poisson_instance, level_counts=[2, 8, 32], n=8, seeds=(0, 1)
        )
        assert [r[0] for r in rows] == [2, 8, 32]
        for _, worst, bound in rows:
            assert 1.0 - 1e-12 <= worst <= bound + 1e-9
        # refinement helps
        assert rows[-1][1] < rows[0][1]

    def test_menu_granularity_curve_validation(self):
        from repro.analysis import menu_granularity_curve
        from repro.errors import InvalidParameterError
        from repro.workloads import poisson_instance

        with pytest.raises(InvalidParameterError):
            menu_granularity_curve(poisson_instance, level_counts=[])

    def test_augmentation_curve_on_trap(self):
        from repro.analysis import augmentation_curve
        from repro.profit import vanishing_margin_instance

        inst = vanishing_margin_instance(0.01, 3.0)
        rows = augmentation_curve(inst, epsilons=[0.0, 0.2, 0.5])
        profits = [p for _, p, _ in rows]
        energies = [e for _, _, e in rows]
        assert profits == sorted(profits)        # more speed, more profit
        assert energies == sorted(energies, reverse=True)

    def test_augmentation_curve_validation(self):
        from repro.analysis import augmentation_curve
        from repro.errors import InvalidParameterError
        from repro.workloads import poisson_instance

        with pytest.raises(InvalidParameterError):
            augmentation_curve(poisson_instance(3, seed=0), epsilons=[])

    def test_augmentation_curve_matches_direct_runs(self):
        from repro.analysis import augmentation_curve
        from repro.profit import run_pd_augmented, vanishing_margin_instance

        inst = vanishing_margin_instance(0.05, 3.0)
        rows = augmentation_curve(inst, epsilons=[0.0, 0.3])
        for eps, profit, energy in rows:
            direct = run_pd_augmented(inst, eps)
            assert profit == pytest.approx(direct.profit.profit, abs=1e-12)
            assert energy == direct.energy

    def test_delta_ablation_curve_degrades_away_from_optimum(self):
        from repro.analysis.sweeps import delta_ablation_curve
        from repro.errors import InvalidParameterError
        from repro.workloads import poisson_instance

        alpha = 3.0
        delta_star = alpha ** (1.0 - alpha)
        cells = delta_ablation_curve(
            poisson_instance,
            deltas=[0.25 * delta_star, delta_star],
            n=10,
            alpha=alpha,
            seeds=(0, 1),
        )
        assert [c.params["delta"] for c in cells] == [
            0.25 * delta_star, delta_star,
        ]
        # the certified ratio is worse below the paper's optimum
        assert cells[0].worst_certified_ratio > cells[1].worst_certified_ratio
        assert cells[1].worst_certified_ratio <= alpha**alpha * (1 + 1e-7)
        with pytest.raises(InvalidParameterError):
            delta_ablation_curve(poisson_instance, deltas=[])
