"""End-to-end integration tests across the whole stack.

Each test exercises several subsystems together: generators -> online
algorithms -> schedules -> realizations -> validators -> certificates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Instance,
    dual_certificate,
    run_algorithm,
    run_cll,
    run_pd,
    schedule_metrics,
    solve_exact,
    solve_min_energy,
    yds,
)
from repro.analysis import check_proposition7, lemma_bounds
from repro.model.validation import validate_segments
from repro.workloads import (
    diurnal_instance,
    heavy_tail_instance,
    lower_bound_instance,
    poisson_instance,
)


class TestFullPipeline:
    @pytest.mark.parametrize("m", [1, 2, 4])
    @pytest.mark.parametrize("alpha", [1.5, 2.0, 3.0])
    def test_pd_pipeline_certified(self, m, alpha):
        inst = poisson_instance(20, m=m, alpha=alpha, seed=99)
        result = run_pd(inst)
        # Schedule level.
        result.schedule.validate()
        # Realization level.
        segments = [
            seg for isched in result.schedule.realize() for seg in isched.segments
        ]
        validate_segments(segments, m=m)
        # Analysis level.
        cert = dual_certificate(result).require()
        assert lemma_bounds(result, cert).holds
        assert check_proposition7(result) == []

    def test_datacenter_day_all_algorithms(self):
        inst = diurnal_instance(30, m=4, alpha=3.0, seed=0)
        pd = run_pd(inst)
        pd.schedule.validate()
        cert = dual_certificate(pd).require()
        metrics = schedule_metrics(pd.schedule)
        assert metrics.cost == pytest.approx(pd.cost)
        assert 0 < metrics.accepted <= inst.n

    def test_profitable_vs_classical_cost_ordering(self):
        """PD with values never pays more than the finish-everything cost
        and never less than the offline optimum."""
        inst = heavy_tail_instance(10, m=1, alpha=2.0, seed=2)
        pd_cost = run_pd(inst).cost
        finish_all = solve_min_energy(inst.sorted_by_release()).energy
        opt = solve_exact(inst.sorted_by_release()).cost
        assert opt <= pd_cost * (1.0 + 1e-9)
        # PD could have chosen to finish everything; its online choice may
        # be worse than the offline finish-all only up to the ratio.
        assert pd_cost <= 2.0**2.0 * opt * (1.0 + 1e-6)
        del finish_all  # ordering vs finish_all is instance-dependent

    def test_single_vs_multi_processor_scaling(self):
        inst = poisson_instance(25, m=1, alpha=3.0, seed=17)
        costs = {}
        for m in [1, 2, 4, 8, 16]:
            result = run_pd(inst.with_machine(m=m))
            dual_certificate(result).require()
            costs[m] = result.cost
        values = [costs[m] for m in [1, 2, 4, 8, 16]]
        assert all(b <= a * (1 + 1e-9) for a, b in zip(values, values[1:]))

    def test_registry_cross_comparison_classical(self):
        """On a must-finish instance: YDS <= every online algorithm."""
        inst = poisson_instance(8, m=1, alpha=3.0, seed=4).with_values([1e12] * 8)
        opt = run_algorithm("yds", inst).energy
        for name in ["oa", "avr", "bkp", "qoa", "pd"]:
            online = run_algorithm(name, inst).energy
            assert online >= opt * (1.0 - 1e-9), name

    def test_pd_vs_cll_single_processor(self):
        inst = heavy_tail_instance(12, m=1, alpha=3.0, seed=5)
        pd = run_pd(inst)
        cll = run_cll(inst.sorted_by_release())
        # Both carry valid schedules and comparable costs.
        pd.schedule.validate()
        cll.schedule.validate()
        assert pd.cost <= 10 * cll.cost
        assert cll.cost <= 10 * pd.cost

    def test_lower_bound_family_ratio_trajectory(self):
        alpha = 2.0
        ratios = []
        for n in [2, 4, 8, 16]:
            inst = lower_bound_instance(n, alpha)
            ratios.append(run_pd(inst).cost / yds(inst).energy)
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] <= alpha**alpha

    def test_work_conservation_end_to_end(self):
        inst = poisson_instance(15, m=2, alpha=2.5, seed=6)
        result = run_pd(inst)
        done = result.schedule.work_done()
        w = result.schedule.instance.workloads
        for j in range(inst.n):
            if result.accepted_mask[j]:
                assert done[j] == pytest.approx(w[j], rel=1e-7)
            else:
                assert done[j] == pytest.approx(0.0, abs=1e-9)

    def test_idempotent_runs(self):
        inst = poisson_instance(10, m=2, alpha=3.0, seed=7)
        r1, r2 = run_pd(inst), run_pd(inst)
        assert r1.cost == r2.cost
        np.testing.assert_array_equal(r1.accepted_mask, r2.accepted_mask)
        np.testing.assert_allclose(r1.lambdas, r2.lambdas)


class TestExtensionCrossCutting:
    """Cross-cutting invariants over the extension layer."""

    def test_profit_loss_complementarity_all_algorithms(self):
        """profit + loss = total value for every registered algorithm's
        schedule — the identity is schedule-level, so no algorithm can
        break it without corrupting its schedule."""
        from repro.core import available_algorithms, run_algorithm
        from repro.profit import loss_profit_gap

        inst = poisson_instance(6, m=1, alpha=3.0, seed=11)
        for name in available_algorithms():
            outcome = run_algorithm(name, inst)
            assert loss_profit_gap(outcome.schedule) < 1e-6, name

    def test_every_registry_algorithm_validates(self):
        from repro.core import available_algorithms, run_algorithm

        from repro.errors import InvalidParameterError

        inst = poisson_instance(5, m=2, alpha=3.0, seed=12)
        single_proc_only = set()
        for name in available_algorithms():
            try:
                outcome = run_algorithm(name, inst)
            except InvalidParameterError:
                single_proc_only.add(name)
                continue
            outcome.schedule.validate(strict_finish=True)
        # Exactly the algorithms documented as single-processor refuse.
        assert single_proc_only == {"cll", "bkp", "qoa", "yds"}

    def test_discrete_roundtrip_of_offline_optimum(self):
        """The discretizer accepts any library schedule, including the
        exact offline optimum's."""
        from repro.discrete import discretize_schedule, SpeedSet
        from repro.offline.optimal import solve_exact

        inst = poisson_instance(5, m=2, alpha=3.0, seed=13)
        sol = solve_exact(inst)
        speeds = sol.schedule.processor_speed_matrix()
        top = float(speeds.max()) if speeds.size else 1.0
        menu = SpeedSet.geometric(max(top * 0.01, 1e-6), top * 1.01, 12)
        disc = discretize_schedule(sol.schedule, menu)
        disc.validate()
        assert disc.energy >= sol.schedule.energy - 1e-9

    def test_flow_oracle_confirms_pd_acceptance_feasible(self):
        """Whatever PD accepts must be feasible at *some* uniform speed;
        the Horn oracle independently confirms it (and the minimal such
        speed is at most PD's own peak)."""
        from repro.offline.flow import (
            check_feasible_at_speed,
            minimal_uniform_speed,
        )

        inst = poisson_instance(7, m=2, alpha=3.0, seed=14)
        result = run_pd(inst)
        accepted = tuple(
            int(j) for j in np.nonzero(result.accepted_mask)[0]
        )
        if not accepted:
            pytest.skip("nothing accepted on this seed")
        ordered = inst.sorted_by_release()
        s_min = minimal_uniform_speed(ordered, accepted=accepted)
        peak = float(result.schedule.processor_speed_matrix().max())
        assert s_min <= peak * (1.0 + 1e-6)
        assert check_feasible_at_speed(
            ordered, s_min * (1 + 1e-9), accepted=accepted
        ).feasible

    def test_preemption_stats_for_all_profit_aware_algorithms(self):
        from repro.analysis import preemption_stats
        from repro.core import run_algorithm

        inst = poisson_instance(6, m=3, alpha=3.0, seed=15)
        for name in ("pd", "accept-all", "oracle-admission"):
            schedule = run_algorithm(name, inst).schedule
            stats = preemption_stats(schedule)
            assert stats.max_migrations_per_interval <= inst.m - 1
