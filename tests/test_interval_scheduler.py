"""Tests for the per-interval schedule realization (Chen + McNaughton)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chen.interval_power import interval_energy
from repro.chen.scheduler import schedule_interval
from repro.errors import InfeasibleScheduleError
from repro.model.power import PolynomialPower
from repro.model.validation import validate_segments

POWER = PolynomialPower(3.0)

loads_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=10
)


class TestScheduleInterval:
    def test_energy_matches_pk(self):
        loads = [5.0, 3.0, 1.0, 0.5]
        sched = schedule_interval(loads, m=2, start=0.0, end=2.0, power=POWER)
        assert sched.energy == pytest.approx(
            interval_energy(np.array(loads), 2, 2.0, POWER)
        )

    def test_segment_energy_equals_reported_energy(self):
        loads = [5.0, 3.0, 1.0, 0.5]
        sched = schedule_interval(loads, m=2, start=0.0, end=2.0, power=POWER)
        seg_energy = sum(POWER(s.speed) * s.duration for s in sched.segments)
        assert seg_energy == pytest.approx(sched.energy)

    def test_work_by_job(self):
        loads = [2.0, 1.0, 0.0, 0.7]
        sched = schedule_interval(loads, m=3, start=1.0, end=2.5, power=POWER)
        work = sched.work_by_job()
        for j, u in enumerate(loads):
            assert work.get(j, 0.0) == pytest.approx(u, abs=1e-9)

    def test_custom_job_ids(self):
        sched = schedule_interval(
            [1.0, 2.0], job_ids=[17, 42], m=2, start=0.0, end=1.0, power=POWER
        )
        assert {s.job for s in sched.segments} == {17, 42}

    def test_dedicated_jobs_span_whole_interval(self):
        sched = schedule_interval([9.0, 1.0, 1.0], m=2, start=0.0, end=1.0, power=POWER)
        dedicated_segs = [s for s in sched.segments if s.processor == 0]
        assert len(dedicated_segs) == 1
        assert dedicated_segs[0].start == 0.0 and dedicated_segs[0].end == 1.0
        assert dedicated_segs[0].speed == pytest.approx(9.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(InfeasibleScheduleError):
            schedule_interval([1.0], m=1, start=1.0, end=1.0, power=POWER)

    def test_misaligned_ids_rejected(self):
        with pytest.raises(InfeasibleScheduleError):
            schedule_interval([1.0], job_ids=[1, 2], m=1, start=0.0, end=1.0, power=POWER)

    def test_zero_loads_produce_empty_schedule(self):
        sched = schedule_interval([0.0, 0.0], m=2, start=0.0, end=1.0, power=POWER)
        assert sched.segments == ()
        assert sched.energy == 0.0
        assert sched.busy_processors() == 0

    def test_processor_speed_profile(self):
        sched = schedule_interval([4.0, 1.0, 1.0], m=2, start=0.0, end=1.0, power=POWER)
        runs = sched.processor_speed_profile(0)
        assert runs == [(0.0, 1.0, pytest.approx(4.0))]


class TestRealizationProperties:
    @given(loads=loads_strategy, m=st.integers(min_value=1, max_value=5))
    @settings(max_examples=200)
    def test_realization_always_valid(self, loads, m):
        """Both feasibility constraints hold, and work is conserved."""
        sched = schedule_interval(loads, m=m, start=0.0, end=1.5, power=POWER)
        expected = {
            j: u for j, u in enumerate(loads) if u > 1e-12
        }
        validate_segments(list(sched.segments), expected_work=expected, m=m)

    @given(loads=loads_strategy, m=st.integers(min_value=1, max_value=5))
    @settings(max_examples=200)
    def test_energy_is_jensen_minimal(self, loads, m):
        """No per-processor speed profile with the same loads beats P_k.

        Sanity-check against the trivial lower bound: total work at the
        average speed across m processors.
        """
        arr = np.array(loads)
        total = float(arr.sum())
        if total <= 0:
            return
        length = 1.5
        sched = schedule_interval(loads, m=m, start=0.0, end=length, power=POWER)
        avg_speed = total / (m * length)
        lower = m * length * POWER(avg_speed)
        assert sched.energy >= lower - 1e-9 * max(1.0, lower)
