"""Unit tests for the power-function layer."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidParameterError
from repro.model.power import (
    PolynomialPower,
    energy_at_constant_speed,
    optimal_constant_speed_energy,
)

ALPHAS = [1.2, 2.0, 2.5, 3.0, 4.0]


class TestPolynomialPower:
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_zero_speed_zero_power(self, alpha):
        assert PolynomialPower(alpha)(0.0) == 0.0

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_power_value(self, alpha):
        p = PolynomialPower(alpha)
        assert p(2.0) == pytest.approx(2.0**alpha)

    def test_negative_speed_clamps(self):
        assert PolynomialPower(3.0)(-1.0) == 0.0
        assert PolynomialPower(3.0).derivative(-1.0) == 0.0

    @pytest.mark.parametrize("alpha", [1.0, 0.5, 0.0, -2.0, math.nan, math.inf])
    def test_invalid_alpha_rejected(self, alpha):
        with pytest.raises(InvalidParameterError):
            PolynomialPower(alpha)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_derivative_matches_finite_difference(self, alpha):
        p = PolynomialPower(alpha)
        s, h = 1.7, 1e-7
        fd = (p(s + h) - p(s - h)) / (2 * h)
        assert p.derivative(s) == pytest.approx(fd, rel=1e-5)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_derivative_inverse_roundtrip(self, alpha):
        p = PolynomialPower(alpha)
        for s in [0.1, 1.0, 3.7, 50.0]:
            assert p.derivative_inverse(p.derivative(s)) == pytest.approx(s)

    def test_derivative_inverse_of_nonpositive_is_zero(self):
        p = PolynomialPower(2.5)
        assert p.derivative_inverse(0.0) == 0.0
        assert p.derivative_inverse(-3.0) == 0.0

    def test_job_energy_formula(self):
        # workload w at speed s: duration w/s, energy (w/s) * s^alpha.
        p = PolynomialPower(3.0)
        w, s = 2.0, 1.5
        assert p.job_energy(w, s) == pytest.approx((w / s) * s**3)

    def test_energy_negative_duration_rejected(self):
        with pytest.raises(InvalidParameterError):
            PolynomialPower(2.0).energy(1.0, -1.0)

    def test_array_operations_match_scalar(self):
        p = PolynomialPower(2.7)
        speeds = np.array([0.0, 0.5, 1.0, 2.0, 10.0])
        np.testing.assert_allclose(
            p.power_array(speeds), [p(float(s)) for s in speeds]
        )
        np.testing.assert_allclose(
            p.derivative_array(speeds), [p.derivative(float(s)) for s in speeds]
        )

    def test_paper_constants(self):
        p = PolynomialPower(3.0)
        assert p.competitive_ratio_pd == pytest.approx(27.0)
        assert p.competitive_ratio_cll == pytest.approx(27.0 + 2 * math.e**3)
        assert p.optimal_delta == pytest.approx(3.0**-2)
        assert p.rejection_energy_factor == pytest.approx(3.0)

    @given(
        alpha=st.floats(min_value=1.05, max_value=5.0),
        s=st.floats(min_value=1e-3, max_value=1e3),
    )
    def test_convexity_of_derivative(self, alpha, s):
        """P' is increasing: the water-filling inverse is well-defined."""
        p = PolynomialPower(alpha)
        assert p.derivative(s * 1.01) >= p.derivative(s)


class TestConstantSpeedEnergy:
    def test_constant_speed_is_optimal(self):
        # Splitting the work across two speeds can only cost more.
        p = PolynomialPower(3.0)
        w, t = 2.0, 1.0
        base = energy_at_constant_speed(p, w, t)
        for frac in [0.1, 0.3, 0.5, 0.9]:
            split = p(w * frac / (t / 2)) * (t / 2) + p(
                w * (1 - frac) / (t / 2)
            ) * (t / 2)
            assert split >= base - 1e-12

    def test_zero_workload_zero_energy(self):
        assert energy_at_constant_speed(PolynomialPower(2.0), 0.0, 0.0) == 0.0

    def test_positive_work_zero_time_raises(self):
        with pytest.raises(InvalidParameterError):
            energy_at_constant_speed(PolynomialPower(2.0), 1.0, 0.0)

    def test_closed_form_wrapper(self):
        assert optimal_constant_speed_energy(3.0, 2.0, 4.0) == pytest.approx(
            4.0 * (0.5**3)
        )

    @given(
        w=st.floats(min_value=0.01, max_value=100.0),
        t=st.floats(min_value=0.01, max_value=100.0),
        alpha=st.floats(min_value=1.1, max_value=4.0),
    )
    def test_scaling_law(self, w, t, alpha):
        """Energy scales as work^alpha * time^(1-alpha)."""
        e1 = optimal_constant_speed_energy(alpha, w, t)
        e2 = optimal_constant_speed_energy(alpha, 2 * w, t)
        assert e2 == pytest.approx(2**alpha * e1, rel=1e-9)
        e3 = optimal_constant_speed_energy(alpha, w, 2 * t)
        assert e3 == pytest.approx(2 ** (1 - alpha) * e1, rel=1e-9)
