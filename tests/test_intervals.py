"""Unit and property tests for the atomic-interval grid."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GridMismatchError, InvalidParameterError
from repro.model.intervals import Grid, grid_for_instance
from repro.model.job import Instance, Job


def make_grid(*points):
    return Grid.from_points(points)


class TestGridBasics:
    def test_from_points_dedupes_and_sorts(self):
        g = make_grid(3.0, 0.0, 1.0, 1.0 + 1e-15, 3.0)
        np.testing.assert_allclose(g.boundaries, [0.0, 1.0, 3.0])
        assert g.size == 2
        np.testing.assert_allclose(g.lengths, [1.0, 2.0])

    def test_needs_two_boundaries(self):
        with pytest.raises(InvalidParameterError):
            Grid.from_points([1.0])

    def test_interval_and_length(self):
        g = make_grid(0.0, 1.0, 4.0)
        assert g.interval(1) == (1.0, 4.0)
        assert g.length(1) == 3.0
        assert g.span == (0.0, 4.0)

    def test_locate(self):
        g = make_grid(0.0, 1.0, 2.0)
        assert g.locate(0.0) == 0
        assert g.locate(0.99) == 0
        assert g.locate(1.0) == 1  # half-open: boundary belongs to the right
        with pytest.raises(IndexError):
            g.locate(2.0)
        with pytest.raises(IndexError):
            g.locate(-0.5)

    def test_covering_requires_aligned_endpoints(self):
        g = make_grid(0.0, 1.0, 2.0, 3.0)
        assert list(g.covering(1.0, 3.0)) == [1, 2]
        with pytest.raises(GridMismatchError):
            g.covering(0.5, 3.0)

    def test_availability_mask(self):
        g = make_grid(0.0, 1.0, 2.0, 3.0)
        job = Job(1.0, 3.0, 1.0, 1.0)
        np.testing.assert_array_equal(g.availability(job), [False, True, True])

    def test_availability_matrix(self):
        inst = Instance.from_tuples(
            [(0.0, 2.0, 1.0, 1.0), (1.0, 3.0, 1.0, 1.0)]
        )
        g = grid_for_instance(inst)
        mat = g.availability_matrix(inst)
        np.testing.assert_array_equal(
            mat, [[True, True, False], [False, True, True]]
        )

    def test_grid_for_instance_has_at_most_2n_minus_1_intervals(self):
        inst = Instance.from_tuples(
            [(0.0, 5.0, 1.0, 1.0), (1.0, 2.0, 1.0, 1.0), (3.0, 4.0, 1.0, 1.0)]
        )
        g = grid_for_instance(inst)
        assert g.size <= 2 * inst.n - 1


class TestRefinement:
    def test_refine_splits_proportionally(self):
        g = make_grid(0.0, 4.0)
        ref = g.refine([1.0])
        np.testing.assert_allclose(ref.grid.boundaries, [0.0, 1.0, 4.0])
        np.testing.assert_array_equal(ref.parent, [0, 0])
        np.testing.assert_allclose(ref.fraction, [0.25, 0.75])
        row = ref.split_row(np.array([8.0]))
        np.testing.assert_allclose(row, [2.0, 6.0])

    def test_refine_preserves_row_sums(self):
        g = make_grid(0.0, 2.0, 5.0)
        ref = g.refine([0.7, 3.3, 4.9])
        row = np.array([3.0, 10.0])
        split = ref.split_row(row)
        assert split.sum() == pytest.approx(row.sum())

    def test_refine_extends_beyond_span(self):
        g = make_grid(1.0, 2.0)
        ref = g.refine([0.0, 3.0])
        np.testing.assert_allclose(ref.grid.boundaries, [0.0, 1.0, 2.0, 3.0])
        np.testing.assert_array_equal(ref.parent, [-1, 0, -1])
        row = ref.split_row(np.array([5.0]), fill=0.0)
        np.testing.assert_allclose(row, [0.0, 5.0, 0.0])

    def test_carry_row_copies_values(self):
        g = make_grid(0.0, 2.0)
        ref = g.refine([1.0])
        np.testing.assert_allclose(ref.carry_row(np.array([3.5])), [3.5, 3.5])

    def test_noop_refinement(self):
        g = make_grid(0.0, 1.0, 2.0)
        ref = g.refine([1.0])
        assert ref.grid.same_as(g)

    @given(
        points=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=8
        ).filter(lambda xs: max(xs) - min(xs) > 1e-6),
        new_points=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=5
        ),
    )
    def test_refinement_row_sum_invariant(self, points, new_points):
        """Splitting loads proportionally never changes their total."""
        try:
            g = Grid.from_points(points)
        except InvalidParameterError:
            return  # degenerate point set
        ref = g.refine(new_points)
        rng = np.random.default_rng(0)
        row = rng.uniform(0.0, 10.0, size=g.size)
        split = ref.split_row(row)
        assert split.sum() == pytest.approx(row.sum(), rel=1e-9)

    @given(
        points=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=8
        ).filter(lambda xs: max(xs) - min(xs) > 1e-6),
    )
    def test_refinement_preserves_speeds(self, points):
        """Proportional splitting keeps per-interval speeds unchanged.

        The paper's Section 3 argument: load/length is invariant under
        the split because both scale with the sub-interval length.
        """
        try:
            g = Grid.from_points(points)
        except InvalidParameterError:
            return
        mids = [(a + b) / 2 for a, b in zip(g.boundaries, g.boundaries[1:])]
        ref = g.refine(mids)
        row = np.linspace(1.0, 2.0, g.size)
        speeds_before = row / g.lengths
        split = ref.split_row(row)
        speeds_after = split / ref.grid.lengths
        for k_new in range(ref.grid.size):
            parent = ref.parent[k_new]
            if parent >= 0:
                assert speeds_after[k_new] == pytest.approx(
                    speeds_before[parent], rel=1e-9
                )
