"""The perf harness: scenario runs, BENCH json schema, baseline gate."""

from __future__ import annotations

import json

import pytest

from repro.errors import InvalidParameterError
from repro.perf.bench import (
    SCENARIOS,
    compare_to_baseline,
    load_result,
    run_scenario,
    write_result,
)


def _series(rows, calibration=0.05, scenario="pd-scaling"):
    return {
        "schema": 1,
        "kind": "bench-series",
        "scenario": scenario,
        "environment": {"calibration_seconds": calibration},
        "series": rows,
    }


class TestScenarios:
    def test_known_scenarios_are_registered(self):
        assert {
            "pd-scaling",
            "oa-scaling",
            "yds-scaling",
            "grid-refine",
            "cache-micro",
        } <= set(SCENARIOS)

    def test_smoke_grids_are_subsets_of_full(self):
        for scenario in SCENARIOS.values():
            full = {tuple(sorted(p.items())) for p in scenario.full}
            smoke = {tuple(sorted(p.items())) for p in scenario.smoke}
            assert smoke <= full, scenario.name

    def test_run_scenario_emits_schema(self, tmp_path):
        lines = []
        payload = run_scenario(
            "cache-micro", grid="smoke", progress=lines.append
        )
        assert payload["kind"] == "bench-series"
        assert payload["scenario"] == "cache-micro"
        assert payload["environment"]["calibration_seconds"] > 0.0
        assert len(lines) == len(payload["series"]) == 3
        for row in payload["series"]:
            assert {"n", "m", "wall_time"} <= set(row)
            assert row["wall_time"] >= 0.0
        path = write_result(payload, str(tmp_path))
        assert path.endswith("BENCH_cache-micro.json")
        assert load_result(path) == json.load(open(path))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown bench"):
            run_scenario("warp-drive")
        with pytest.raises(InvalidParameterError, match="grid"):
            run_scenario("cache-micro", grid="huge")

    def test_load_rejects_non_bench_payloads(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"kind": "sweep"}')
        with pytest.raises(InvalidParameterError, match="not a BENCH"):
            load_result(str(path))


class TestBaselineGate:
    def test_regression_detected_beyond_factor(self):
        base = _series([{"n": 100, "m": 1, "wall_time": 0.10}])
        slow = _series([{"n": 100, "m": 1, "wall_time": 0.25}])
        fine = _series([{"n": 100, "m": 1, "wall_time": 0.19}])
        assert compare_to_baseline(slow, base, factor=2.0)
        assert not compare_to_baseline(fine, base, factor=2.0)

    def test_identity_keys_must_match(self):
        base = _series([{"n": 100, "m": 1, "wall_time": 0.01}])
        other_point = _series([{"n": 200, "m": 1, "wall_time": 9.9}])
        # unmatched points are ignored (smoke grid vs full baseline)
        assert not compare_to_baseline(other_point, base)

    def test_measured_fields_do_not_affect_identity(self):
        base = _series(
            [{"n": 50, "m": 1, "wall_time": 0.10, "cost": 1.0}]
        )
        current = _series(
            [{"n": 50, "m": 1, "wall_time": 0.15, "cost": 2.0}]
        )
        assert not compare_to_baseline(current, base, factor=2.0)

    def test_calibration_rescales_budget(self):
        base = _series([{"n": 1, "m": 1, "wall_time": 0.10}], calibration=0.05)
        # Same measured time on a machine twice as slow: not a regression.
        current = _series(
            [{"n": 1, "m": 1, "wall_time": 0.30}], calibration=0.10
        )
        assert not compare_to_baseline(current, base, factor=2.0)
        # On an equally fast machine the same point fails the gate.
        current_fast = _series(
            [{"n": 1, "m": 1, "wall_time": 0.30}], calibration=0.05
        )
        assert compare_to_baseline(current_fast, base, factor=2.0)

    def test_factor_validated(self):
        base = _series([])
        with pytest.raises(InvalidParameterError, match="factor"):
            compare_to_baseline(base, base, factor=1.0)


class TestBenchCli:
    def test_bench_cli_smoke_with_gate(self, tmp_path):
        from repro.io.cli import main

        out = tmp_path / "results"
        baseline = tmp_path / "baseline"
        argv = ["bench", "--scenario", "cache-micro", "--out", str(out)]
        assert main(
            [*argv, "--grid", "full", "--update-baseline", str(baseline)]
        ) == 0
        assert (out / "BENCH_cache-micro.json").exists()
        assert (baseline / "BENCH_cache-micro.json").exists()
        # A smoke run gated against the full baseline must pass.
        assert main(
            [*argv, "--grid", "smoke", "--baseline", str(baseline)]
        ) == 0

    def test_update_baseline_requires_full_grid(self, tmp_path):
        from repro.io.cli import main

        code = main(
            [
                "bench",
                "--scenario",
                "cache-micro",
                "--grid",
                "smoke",
                "--out",
                str(tmp_path / "r"),
                "--update-baseline",
                str(tmp_path / "b"),
            ]
        )
        assert code == 2
        assert not (tmp_path / "b").exists()

    def test_bench_cli_rejects_unknown_scenario(self):
        from repro.io.cli import main

        assert main(["bench", "--scenario", "nope"]) == 2
