#!/usr/bin/env python
"""Quickstart: schedule a handful of valuable jobs with PD.

Demonstrates the three-step workflow of the library:

1. describe an instance (jobs + machine environment),
2. run the paper's primal-dual algorithm PD,
3. inspect the schedule and verify the Theorem 3 certificate.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

from repro import Instance, dual_certificate, gantt, run_pd, speed_profile


def main() -> None:
    # Four jobs on two speed-scalable processors with cubic power (the
    # classical CMOS exponent alpha = 3). Each row is
    # (release, deadline, workload, value).
    instance = Instance.from_tuples(
        [
            (0.0, 4.0, 2.0, 10.0),   # relaxed, valuable: expect accept
            (0.0, 1.0, 2.0, 0.5),    # tight and cheap: expect reject
            (1.0, 3.0, 1.5, 6.0),    # moderate: accept
            (2.0, 4.0, 1.0, 4.0),    # late arrival: accept
        ],
        m=2,
        alpha=3.0,
    )
    print(instance.describe())
    print()

    result = run_pd(instance)
    print(result.summary())
    print()

    ordered = result.schedule.instance
    for j, decision in enumerate(result.decisions):
        job = ordered[j]
        verdict = "ACCEPT" if decision.accepted else "reject"
        print(
            f"  {job.label(j):>4}: window [{job.release:g}, {job.deadline:g}) "
            f"work {job.workload:g} value {job.value:g} -> {verdict} "
            f"(dual lambda = {decision.lam:.4f})"
        )
    print()

    # Theorem 3, checked on this very run: cost(PD) <= alpha^alpha * g(lambda).
    cert = dual_certificate(result).require()
    print(
        f"certificate: cost {cert.cost:.4f} <= {cert.bound:.0f} * g "
        f"(g = {cert.g:.4f}, ratio = {cert.ratio:.2f})"
    )
    print()

    print("Gantt chart (letters = jobs, '.' = idle):")
    print(gantt(result.schedule, width=64))
    print()
    print("Total speed over time:")
    print(speed_profile(result.schedule, width=64, height=6))


if __name__ == "__main__":
    main()
