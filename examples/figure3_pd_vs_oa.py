#!/usr/bin/env python
"""Regenerate the paper's Figure 3: PD's schedule vs. OA's schedule.

Both PD (with high job values) and Optimal Available raise speeds when
new work arrives, but they differ structurally: when a job arrives, OA
*re-plans everything* — it may redistribute previously assigned work —
while PD only adds the new job where marginal energy is cheapest and
never moves earlier jobs. The paper's Figure 3 illustrates this on two
jobs: PD's resulting profile is more conservative, leaving more slack in
the late intervals for future arrivals.

Run: ``python examples/figure3_pd_vs_oa.py``
"""

from __future__ import annotations

from repro import Instance, run_oa, run_pd
from repro.viz import speed_profile


def main() -> None:
    # The Figure 3 setup: a long relaxed job whose window extends past the
    # horizon of a tighter job arriving later (single processor). The
    # overhang is what makes the two algorithms diverge: OA may move job
    # A's remaining work into the late interval, PD cannot.
    instance = Instance.classical(
        [
            (0.0, 3.0, 1.5),  # job A: available the whole horizon
            (1.0, 2.0, 1.2),  # job B: arrives at t=1 with a tight deadline
        ],
        m=1,
        alpha=3.0,
    )

    pd = run_pd(instance)
    oa = run_oa(instance)

    print("PD schedule (Fig. 3a) — job A's early assignment is frozen:")
    print(speed_profile(pd.schedule, width=64, height=6))
    print(f"energy: {pd.cost:.4f}\n")

    print("OA schedule (Fig. 3b) — re-optimizes everything at t=1:")
    print(speed_profile(oa.schedule, width=64, height=6))
    print(f"energy: {oa.energy:.4f}\n")

    # Quantify the structural difference: speed in the *final* atomic
    # interval [2, 3). When job B arrived, OA re-planned job A's remaining
    # work into the late interval; PD left A's early assignment frozen, so
    # its late speed stays at A's original uniform rate.
    def late_speed(schedule) -> float:
        grid = schedule.grid
        k = grid.locate(2.5)
        return float(schedule.processor_speed_matrix()[0, k])

    pd_late, oa_late = late_speed(pd.schedule), late_speed(oa.schedule)
    print(f"speed during [2, 3):   PD = {pd_late:.4f}   OA = {oa_late:.4f}")
    assert pd_late < oa_late, "expected PD to be more conservative here"
    print(
        "PD's last interval is slower: more room for jobs that might still "
        "arrive (the paper's Figure 3 observation)"
    )
    # OA is optimal-available: for the *known* jobs it is cheaper; PD pays
    # a premium for conservatism on this fixed instance.
    print(f"energy premium of PD here: {100 * (pd.cost / oa.energy - 1):.2f}%")


if __name__ == "__main__":
    main()
