"""PD at 1,000,000 jobs: the arrival-epoch batched main loop at full tier.

The million-job point of the ``pd-1m`` bench scenario, as a runnable
walkthrough. The per-arrival loop prices one job per Python
``arrive()`` call; at this tier the interpreter choreography around
each call (window lookup, kernel build, decision object) costs more
than the water-filling arithmetic itself. The arrival-epoch layer
(:mod:`repro.perf.epochs`) consumes the columnar job stream in blocks:
one vectorized release-order check, one batched window lookup, and a
cheap-reject pre-screen per block, with only the jobs that actually
move water falling through to the scalar kernel. Decisions are
bit-identical — batching changes how, never what.

The script first races both modes on a 100k-job prefix of the same
stream (cheap enough to run twice) and checks the costs match to the
bit, then runs the full million jobs through the epoch path.

Run it:

    PYTHONPATH=src python examples/pd_1m_jobs.py

Expected: the 100k calibration shows the epoch speedup with identical
costs, and the full 1M-job epoch run finishes in tens of seconds where
the per-arrival loop would take minutes.
"""

from __future__ import annotations

import time

from repro.core.pd import PDScheduler
from repro.workloads import slotted_instance


def timed_run(arrays, m: int, alpha: float, batch: str) -> tuple[float, float]:
    """(wall seconds, streaming cost) of one full pass in ``batch`` mode."""
    sched = PDScheduler(m=m, alpha=alpha, batch=batch)
    t0 = time.perf_counter()
    sched.arrive_many(arrays)
    cost = sched.streaming_cost()
    return time.perf_counter() - t0, cost


def main() -> None:
    m, alpha = 4, 3.0

    # --- calibration: both modes on a 100k prefix, bit-compared -------
    small = slotted_instance(100_000, slots=1000, m=m, alpha=alpha, seed=0)
    arrays = small.sorted_by_release().arrays
    t_arr, cost_arr = timed_run(arrays, m, alpha, "arrival")
    t_epo, cost_epo = timed_run(arrays, m, alpha, "epoch")
    assert cost_epo == cost_arr, "epoch batching must not change a bit"
    print(
        f"100k calibration: arrival {t_arr:.2f} s, epoch {t_epo:.2f} s "
        f"({t_arr / t_epo:.1f}x), costs byte-identical"
    )

    # --- the full tier: 1M jobs through the epoch path ----------------
    t0 = time.perf_counter()
    big = slotted_instance(1_000_000, slots=1000, m=m, alpha=alpha, seed=0)
    big_arrays = big.sorted_by_release().arrays
    t_gen = time.perf_counter() - t0
    print(f"1M-job instance built columnar in {t_gen:.2f} s")

    wall, cost = timed_run(big_arrays, m, alpha, "epoch")
    print(
        f"epoch mode, 1M jobs: {wall:6.2f} s "
        f"({1e6 * wall / big_arrays.n:.1f} us/job), cost {cost:.1f}"
    )
    print("million-job epoch pipeline: done")


if __name__ == "__main__":
    main()
