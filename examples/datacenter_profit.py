#!/usr/bin/env python
"""A day in a profit-oriented data center.

The paper's introduction motivates the model with exactly this scenario:
jobs of different sizes and values arrive over time; finishing a job earns
its value, but processing costs energy, so some jobs are not worth
running. This example simulates one synthetic diurnal day on a small
cluster and compares three operating policies:

* **PD** — the paper's algorithm: invests energy only where it pays off.
* **finish-everything** — classical speed scaling (values ignored, online
  OA on m processors): never loses revenue but overspends on energy.
* **reject-everything** — the do-nothing baseline.

Run: ``python examples/datacenter_profit.py``
"""

from __future__ import annotations

from repro import run_pd, schedule_metrics
from repro.classical import run_oa_multiprocessor
from repro.workloads import diurnal_instance


def main() -> None:
    instance = diurnal_instance(60, m=4, alpha=3.0, seed=2013)
    print(instance.describe())
    interactive = sum(1 for j in instance.jobs if (j.name or "").startswith("web"))
    print(f"  mix: {interactive} interactive / {instance.n - interactive} batch")
    print()

    # Policy 1: the paper's PD.
    pd = run_pd(instance)
    pd_metrics = schedule_metrics(pd.schedule)

    # Policy 2: finish everything (values ignored -> cost is pure energy).
    classical = instance.with_values([1e15] * instance.n)
    finish_all = run_oa_multiprocessor(classical)
    finish_all_cost = finish_all.energy  # no value is ever lost

    # Policy 3: reject everything.
    reject_all_cost = instance.total_value

    print(f"{'policy':<22} {'cost':>12} {'energy':>12} {'lost value':>12} {'accepted':>9}")
    print("-" * 72)
    print(
        f"{'PD (paper)':<22} {pd_metrics.cost:>12.2f} {pd_metrics.energy:>12.2f} "
        f"{pd_metrics.lost_value:>12.2f} {pd_metrics.accepted:>6d}/{instance.n}"
    )
    print(
        f"{'finish everything':<22} {finish_all_cost:>12.2f} {finish_all_cost:>12.2f} "
        f"{0.0:>12.2f} {instance.n:>6d}/{instance.n}"
    )
    print(
        f"{'reject everything':<22} {reject_all_cost:>12.2f} {0.0:>12.2f} "
        f"{reject_all_cost:>12.2f} {0:>6d}/{instance.n}"
    )
    print()

    savings_vs_finish = (1.0 - pd_metrics.cost / finish_all_cost) * 100.0
    savings_vs_reject = (1.0 - pd_metrics.cost / reject_all_cost) * 100.0
    print(f"PD saves {savings_vs_finish:.1f}% vs finishing everything")
    print(f"PD saves {savings_vs_reject:.1f}% vs rejecting everything")

    # Which jobs did PD drop? Mostly batch elephants at peak load.
    ordered = pd.schedule.instance
    dropped = [
        ordered[j].name or f"J{j}"
        for j in range(ordered.n)
        if not pd.accepted_mask[j]
    ]
    print(f"\nrejected jobs ({len(dropped)}): {', '.join(dropped) or '(none)'}")


if __name__ == "__main__":
    main()
