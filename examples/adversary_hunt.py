#!/usr/bin/env python
"""Hunting hard instances: stress-testing Theorem 3 by local search.

The paper guarantees ``cost(PD) <= alpha^alpha * g(lambda~)`` on *every*
instance. This example turns that theorem into a game: randomized
hill-climbing mutates instances to maximize the certified ratio, trying
(and necessarily failing) to breach the bound. Along the way it shows

1. where typical random instances sit relative to the bound,
2. how much harder local search can make them, and
3. how the paper's analytic staircase family compares at equal size.

Run: ``python examples/adversary_hunt.py``
"""

from __future__ import annotations

from repro import dual_certificate, run_pd
from repro.analysis import search_adversarial
from repro.workloads import lower_bound_instance, poisson_instance

ALPHA = 3.0
BOUND = ALPHA**ALPHA


def main() -> None:
    seeds = [poisson_instance(6, m=1, alpha=ALPHA, seed=s) for s in range(3)]
    seed_ratios = [dual_certificate(run_pd(s)).ratio for s in seeds]
    print(f"bound alpha^alpha = {BOUND:.0f}")
    print(f"random seeds' certified ratios: "
          f"{', '.join(f'{r:.2f}' for r in seed_ratios)}")
    print()

    print("hill-climbing (120 rounds per seed)...")
    found = search_adversarial(seeds, rounds=120, rng=0, max_jobs=12)
    print(f"  hardest found: ratio {found.ratio:.3f} "
          f"({100 * found.ratio / BOUND:.1f}% of the bound, "
          f"{found.evaluations} evaluations)")
    print(f"  improvement trajectory: "
          f"{' -> '.join(f'{r:.2f}' for r in found.history)}")
    print()

    hardest = found.instance
    print(f"the hardest instance has {hardest.n} jobs:")
    for i, job in enumerate(hardest.jobs):
        print(f"    J{i}: window [{job.release:.2f}, {job.deadline:.2f}) "
              f"work {job.workload:.3f} value {job.value:.3f}")
    print()

    staircase = lower_bound_instance(hardest.n, ALPHA)
    stair_ratio = dual_certificate(run_pd(staircase)).ratio
    print(f"the paper's staircase at the same size: ratio {stair_ratio:.3f}")
    print()
    print("Takeaways: the certificate held on every evaluation (it is a")
    print("theorem); local search beats the analytic family at small n")
    print("because the staircase is extremal only asymptotically.")


if __name__ == "__main__":
    main()
