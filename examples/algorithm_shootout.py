#!/usr/bin/env python
"""Run the whole algorithm zoo side by side on shared workloads.

Sweeps the registered algorithms over three instance families and prints
a cost matrix plus each online algorithm's empirical ratio to the
offline optimum — a compact view of forty years of speed-scaling theory:
YDS (1995, offline) through OA/AVR (1995), BKP (2004), qOA (2009),
CLL (2010), to the paper's PD (2013).

Run: ``python examples/algorithm_shootout.py``
"""

from __future__ import annotations

from repro import run_algorithm, yds
from repro.workloads import agreeable_instance, poisson_instance, tight_instance

ONLINE = ["oa", "qoa", "bkp", "avr", "cll", "pd"]


def main() -> None:
    families = [
        ("poisson", poisson_instance(14, m=1, alpha=3.0, seed=4)),
        ("agreeable", agreeable_instance(14, m=1, alpha=3.0, seed=4)),
        ("tight", tight_instance(14, m=1, alpha=3.0, seed=4)),
    ]

    print("costs on PROFITABLE instances (values respected by cll/pd only):\n")
    header = f"{'family':<11}" + "".join(f"{name:>10}" for name in ONLINE)
    print(header)
    print("-" * len(header))
    for name, inst in families:
        cells = []
        for algo in ONLINE:
            # Classical algorithms ignore values (they finish everything);
            # run them on the must-finish variant for a fair energy figure.
            target = (
                inst
                if algo in ("cll", "pd")
                else inst.with_values([1e12] * inst.n)
            )
            cells.append(run_algorithm(algo, target).cost)
        print(f"{name:<11}" + "".join(f"{c:>10.3f}" for c in cells))

    print("\nratios to the offline optimum on MUST-FINISH variants:\n")
    header = f"{'family':<11}" + "".join(f"{name:>10}" for name in ONLINE)
    print(header)
    print("-" * len(header))
    for name, inst in families:
        classical = inst.with_values([1e12] * inst.n)
        opt = yds(classical).energy
        cells = [run_algorithm(a, classical).energy / opt for a in ONLINE]
        print(f"{name:<11}" + "".join(f"{c:>10.3f}" for c in cells))
    print(
        "\nReading guide: OA tracks the optimum closely on benign inputs; "
        "qOA/BKP pay their speed premiums (their guarantees only bite "
        "adversarially); AVR is the crude baseline; CLL and PD match OA "
        "here because high-value jobs are all accepted. PD's edge — the "
        "alpha^alpha guarantee WITH values and multiprocessors — is "
        "exercised by the benchmarks (E1-E3) rather than visible on "
        "benign single-processor inputs."
    )


if __name__ == "__main__":
    main()
