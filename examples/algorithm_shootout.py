#!/usr/bin/env python
"""Run the whole algorithm zoo side by side on shared workloads.

Sweeps the registered algorithms over three instance families and prints
a cost matrix plus each online algorithm's empirical ratio to the
offline optimum — a compact view of forty years of speed-scaling theory:
YDS (1995, offline) through OA/AVR (1995), BKP (2004), qOA (2009),
CLL (2010), to the paper's PD (2013).

The whole matrix is a single :class:`repro.BatchRunner` batch: one
request per (family × algorithm × variant) cell, with the registry's
``profit_aware`` capability deciding which algorithms get to see real
job values. Pass ``workers=4`` (or ``cache=<dir>``) to the
:class:`~repro.BatchRunner` below and the matrix parallelizes — the
cells were always independent; the engine just makes that free.

Run: ``python examples/algorithm_shootout.py``
"""

from __future__ import annotations

from repro import REGISTRY, BatchRunner, RunRequest
from repro.workloads import WORKLOADS

ONLINE = ["oa", "qoa", "bkp", "avr", "cll", "pd"]

#: Workload-registry specs — every spelling of these canonicalizes to
#: the same instance content, hence the same batch-runner cache key.
FAMILIES = [
    "poisson?n=14&alpha=3.0&seed=4",
    "agreeable?n=14&alpha=3.0&seed=4",
    "tight?n=14&alpha=3.0&seed=4",
]


def main() -> None:
    families = [
        (WORKLOADS.info(spec).base, WORKLOADS.build(spec)) for spec in FAMILIES
    ]

    # One flat request list: per family, the profitable matrix, then the
    # YDS optimum plus the must-finish matrix.
    requests: list[RunRequest] = []
    for _name, inst in families:
        classical = inst.with_values([1e12] * inst.n)
        for algo in ONLINE:
            # Classical algorithms ignore values (they finish everything);
            # run them on the must-finish variant for a fair energy figure.
            target = inst if REGISTRY.info(algo).profit_aware else classical
            requests.append(RunRequest(algo, target))
        requests.append(RunRequest("yds", classical))
        requests.extend(RunRequest(a, classical) for a in ONLINE)
    records = iter(BatchRunner().run(requests))

    profitable: dict[str, list[float]] = {}
    ratios: dict[str, list[float]] = {}
    for name, _inst in families:
        profitable[name] = [next(records).cost for _ in ONLINE]
        opt = next(records).energy
        ratios[name] = [next(records).energy / opt for _ in ONLINE]

    print("costs on PROFITABLE instances (values respected by cll/pd only):\n")
    header = f"{'family':<11}" + "".join(f"{name:>10}" for name in ONLINE)
    print(header)
    print("-" * len(header))
    for name, _inst in families:
        print(f"{name:<11}" + "".join(f"{c:>10.3f}" for c in profitable[name]))

    print("\nratios to the offline optimum on MUST-FINISH variants:\n")
    print(header)
    print("-" * len(header))
    for name, _inst in families:
        print(f"{name:<11}" + "".join(f"{c:>10.3f}" for c in ratios[name]))
    print(
        "\nReading guide: OA tracks the optimum closely on benign inputs; "
        "qOA/BKP pay their speed premiums (their guarantees only bite "
        "adversarially); AVR is the crude baseline; CLL and PD match OA "
        "here because high-value jobs are all accepted. PD's edge — the "
        "alpha^alpha guarantee WITH values and multiprocessors — is "
        "exercised by the benchmarks (E1-E3) rather than visible on "
        "benign single-processor inputs."
    )


if __name__ == "__main__":
    main()
