#!/usr/bin/env python
"""Regenerate the paper's Figure 2: Chen et al.'s schedule structure.

Figure 2 shows how the energy-minimal schedule of one atomic interval on
four processors is organized into *dedicated* processors (one oversized
job each, run at its own minimal speed) and a *pool* (remaining jobs
wrapped across the remaining processors at a common speed) — and how the
arrival of a new job reshapes the partition: dedicated processors can be
absorbed into the pool, loads only grow, and no load grows by more than
the new job's size (Proposition 2).

Run: ``python examples/figure2_chen_structure.py``
"""

from __future__ import annotations

import numpy as np

from repro.chen import partition_loads, schedule_interval
from repro.model.power import PolynomialPower
from repro.viz import interval_gantt


def describe(loads: list[float], m: int, title: str) -> np.ndarray:
    power = PolynomialPower(3.0)
    part = partition_loads(np.array(loads), m)
    sched = schedule_interval(loads, m=m, start=0.0, end=1.0, power=power)
    print(f"--- {title} ---")
    print(f"loads: {loads}")
    print(
        f"dedicated jobs: {part.num_dedicated}, "
        f"pool level: {part.pool_load_per_processor:.3f}, "
        f"energy: {sched.energy:.3f}"
    )
    print(interval_gantt([sched], width=56, m=m))
    print()
    return part.processor_loads()


def main() -> None:
    m = 4
    # Before: one big job (dedicated) + three medium jobs (pool) — the
    # left panel of Figure 2.
    before = [3.0, 1.2, 1.0, 0.8]
    loads_before = describe(before, m, "before the new job arrives (Fig. 2a)")

    # After: a new job of size z arrives. The pool level rises and the
    # second-largest job may change roles — the right panel.
    z = 1.5
    after = before + [z]
    loads_after = describe(after, m, f"after a new job of size {z} (Fig. 2b)")

    print("--- Proposition 2 check ---")
    print(f"{'processor':>10} {'L_i before':>11} {'L_i after':>10} {'delta':>8}")
    for i, (a, b) in enumerate(zip(loads_before, loads_after), start=1):
        print(f"{i:>10} {a:>11.3f} {b:>10.3f} {b - a:>8.3f}")
    deltas = loads_after - loads_before
    assert np.all(deltas >= -1e-9), "Proposition 2 violated: a load decreased"
    assert np.all(deltas <= z + 1e-9), "Proposition 2 violated: delta exceeds z"
    print(f"\nall deltas within [0, z = {z}]  ✓ (Proposition 2)")


if __name__ == "__main__":
    main()
