"""PD at 100,000 jobs: columnar construction + streaming cost, no dense matrix.

Ten times ``pd_10k_jobs.py``. At this scale two more pieces of the
performance model come into play:

* the instance is generated straight into a columnar
  :class:`~repro.model.job_arrays.JobArrays` block (the ``slotted``
  workload family) and jobs are materialized one at a time as they
  arrive — the 100k ``Job`` objects the scheduler prices are the only
  ones ever built;
* cost is read off the scheduler's live per-interval stores with
  :meth:`PDScheduler.streaming_energy` / ``streaming_lost_value``
  instead of assembling the full ``(n, N)`` schedule matrix — the
  accessors are bit-identical to ``finish().schedule.energy`` (the
  parity suite asserts it), they just skip the gigabyte of zeros.

Run it:

    PYTHONPATH=src python examples/pd_100k_jobs.py

Expected: the full run completes in well under 15 seconds and prints
the streaming cost breakdown.
"""

from __future__ import annotations

import time

from repro.core.pd import PDScheduler
from repro.workloads import slotted_instance


def main() -> None:
    t0 = time.perf_counter()
    inst = slotted_instance(100_000, slots=1000, m=4, alpha=3.0, seed=0)
    ordered = inst.sorted_by_release()
    arrays = ordered.arrays
    t_gen = time.perf_counter() - t0
    print(
        f"instance: {ordered.n} jobs over 1000 slots, m={ordered.m}, "
        f"alpha={ordered.alpha} (built columnar in {t_gen:.2f} s)"
    )

    sched = PDScheduler(m=ordered.m, alpha=ordered.alpha)
    t0 = time.perf_counter()
    accepted = 0
    for i in range(arrays.n):
        if sched.arrive(arrays.job(i)).accepted:
            accepted += 1
    t_run = time.perf_counter() - t0
    print(
        f"PD run     : {t_run:6.2f} s "
        f"({1e6 * t_run / arrays.n:.0f} us/job, "
        f"{accepted}/{arrays.n} accepted)"
    )

    t0 = time.perf_counter()
    energy = sched.streaming_energy()
    lost = sched.streaming_lost_value()
    t_cost = time.perf_counter() - t0
    print(f"cost       : {t_cost:6.2f} s (streaming, no dense matrix)")
    print(
        f"cost {energy + lost:.1f} = energy {energy:.1f} "
        f"+ lost value {lost:.1f}"
    )
    print("100k-job streaming pipeline: done")


if __name__ == "__main__":
    main()
