"""PD at 100,000 jobs: columnar construction, epoch batching, streaming cost.

Ten times ``pd_10k_jobs.py``. At this scale three more pieces of the
performance model come into play:

* the instance is generated straight into a columnar
  :class:`~repro.model.job_arrays.JobArrays` block (the ``slotted``
  workload family) — no per-job ``Job`` objects are built up front;
* the main loop runs in **arrival epochs**
  (:mod:`repro.perf.epochs`): blocks of consecutive arrivals are
  consumed straight off the columns, with the release-order check,
  window lookups, and a cheap-reject pre-screen hoisted into batched
  numpy passes. The decisions are bit-identical to the per-arrival
  loop — the differential suite (``tests/test_epochs.py``) asserts it —
  batching only removes interpreter overhead;
* cost is read off the scheduler's live per-interval stores with
  :meth:`PDScheduler.streaming_energy` / ``streaming_lost_value``
  instead of assembling the full ``(n, N)`` schedule matrix.

The example runs *both* modes and prints their wall times side by side
(and checks the costs match to the bit), so you can see what the epoch
layer buys on your machine.

Run it:

    PYTHONPATH=src python examples/pd_100k_jobs.py

Expected: both runs complete in seconds, the epoch pass noticeably
faster, with byte-identical cost breakdowns.
"""

from __future__ import annotations

import time

from repro.core.pd import PDScheduler
from repro.workloads import slotted_instance


def run_mode(arrays, m: int, alpha: float, batch: str) -> tuple[float, float, float]:
    """One full pass in the given batch mode: (wall, energy, lost_value).

    Streaming accessors only — ``finish()`` would assemble the dense
    ``(n, N)`` matrix this example exists to avoid.
    """
    sched = PDScheduler(m=m, alpha=alpha, batch=batch)
    t0 = time.perf_counter()
    sched.arrive_many(arrays)
    energy = sched.streaming_energy()
    lost = sched.streaming_lost_value()
    wall = time.perf_counter() - t0
    return wall, energy, lost


def main() -> None:
    t0 = time.perf_counter()
    inst = slotted_instance(100_000, slots=1000, m=4, alpha=3.0, seed=0)
    ordered = inst.sorted_by_release()
    arrays = ordered.arrays
    t_gen = time.perf_counter() - t0
    print(
        f"instance: {ordered.n} jobs over 1000 slots, m={ordered.m}, "
        f"alpha={ordered.alpha} (built columnar in {t_gen:.2f} s)"
    )

    t_arr, energy_arr, lost_arr = run_mode(
        arrays, ordered.m, ordered.alpha, "arrival"
    )
    print(
        f"arrival mode: {t_arr:6.2f} s ({1e6 * t_arr / arrays.n:.0f} us/job)"
    )
    t_epo, energy_epo, lost_epo = run_mode(
        arrays, ordered.m, ordered.alpha, "epoch"
    )
    print(
        f"epoch mode  : {t_epo:6.2f} s "
        f"({1e6 * t_epo / arrays.n:.0f} us/job, {t_arr / t_epo:.1f}x faster)"
    )

    assert (energy_epo, lost_epo) == (energy_arr, lost_arr), (
        "epoch batching must not change a bit"
    )
    print(
        f"cost {energy_arr + lost_arr:.1f} = energy {energy_arr:.1f} "
        f"+ lost value {lost_arr:.1f} — byte-identical across both modes"
    )
    print("100k-job streaming pipeline: done")


if __name__ == "__main__":
    main()
