#!/usr/bin/env python
"""Profit vs. loss: two objectives, one schedule, two competitive theories.

The paper minimizes *loss* (energy + value of unfinished jobs); Pruhs &
Stein maximize *profit* (value of finished jobs - energy). On any fixed
schedule they are two sides of one coin — ``profit + loss = total
value`` — so the offline optimum is shared. Online, they diverge
dramatically. This example walks through:

1. the complementarity identity on a real PD run,
2. the margin-erosion trap where PD's profit is an arbitrarily thin
   margin while its loss guarantee stays intact, and
3. (1+eps)-speed resource augmentation rescuing the profit objective.

Run: ``python examples/profit_vs_loss.py``
"""

from __future__ import annotations

from repro import dual_certificate, run_pd, solve_exact
from repro.profit import (
    optimal_profit,
    profit_of_result,
    run_pd_augmented,
    vanishing_margin_instance,
)
from repro.workloads import poisson_instance

ALPHA = 3.0


def main() -> None:
    # --- 1. Complementarity on an ordinary workload --------------------
    instance = poisson_instance(10, m=2, alpha=ALPHA, seed=5)
    result = run_pd(instance)
    p = profit_of_result(result)
    print("ordinary workload:")
    print(f"  {p}")
    print(f"  loss  {result.cost:.4f}  (profit + loss = total value "
          f"{p.profit + result.cost:.4f} = {instance.total_value:.4f})")
    print()

    # --- 2. The margin-erosion trap -------------------------------------
    print("margin-erosion trap (alpha=3):")
    print(f"  {'margin':>8} {'PD profit':>10} {'OPT profit':>11} "
          f"{'profit ratio':>13} {'loss ratio':>11}")
    for margin in (0.5, 0.05, 0.005):
        trap = vanishing_margin_instance(margin, ALPHA)
        res = run_pd(trap)
        pd_profit = profit_of_result(res).profit
        opt = optimal_profit(trap)
        loss_ratio = res.cost / solve_exact(trap).cost
        assert dual_certificate(res).holds  # Theorem 3 is never in danger
        print(f"  {margin:>8.3f} {pd_profit:>10.4f} {opt:>11.4f} "
              f"{opt / pd_profit:>13.1f} {loss_ratio:>11.3f}")
    print("  -> profit ratio ~ 1/margin (unbounded); loss ratio flat.")
    print()

    # --- 3. Resource augmentation ----------------------------------------
    print("the Pruhs-Stein remedy: a (1+eps)-speed machine")
    trap = vanishing_margin_instance(0.005, ALPHA)
    opt = optimal_profit(trap)
    for eps in (0.0, 0.1, 0.3, 0.5):
        aug = run_pd_augmented(trap, eps)
        ratio = opt / aug.profit.profit
        print(f"  eps={eps:<4g} profit {aug.profit.profit:>8.4f}  "
              f"ratio {ratio:>8.2f}")
    print("  -> any fixed eps > 0 makes the ratio O(1) in the margin.")


if __name__ == "__main__":
    main()
