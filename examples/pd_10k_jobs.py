"""PD at production scale: 10,000 jobs through run + certificate.

The incremental kernel layer (PR 5, ``repro.perf``) prices each arrival
against live per-interval sorted-load stores instead of rebuilding
O(n · N) matrices, which moves PD's practical ceiling from a few
hundred jobs to tens of thousands. This demo runs the full pipeline —
online PD, then the machine-checkable Theorem 3 certificate — on a
10k-job slotted workload shaped like a datacenter request stream:
arrivals land on a coarse slot grid (requests batched per scheduling
quantum), so the atomic-interval grid stays compact (~hundreds of
intervals) while the job count scales freely.

The workload is the library's registered ``slotted`` family
(:func:`repro.workloads.slotted_instance`), which builds the instance
as a columnar :class:`~repro.model.job_arrays.JobArrays` block — no
per-job objects until an algorithm asks for them. For ten times this
scale, see ``pd_100k_jobs.py``.

Run it:

    PYTHONPATH=src python examples/pd_10k_jobs.py

Expected: both phases complete in seconds, the certificate holds, and
the certified ratio sits well under the alpha^alpha bound.
"""

from __future__ import annotations

import time

from repro import Instance, dual_certificate, run_pd
from repro.workloads import slotted_instance


def make_instance(n: int = 10_000) -> Instance:
    """10k jobs over 400 slots on 4 processors (seeded, reproducible)."""
    return slotted_instance(n, slots=400, m=4, alpha=3.0, seed=0)


def main() -> None:
    inst = make_instance()
    print(
        f"instance: {inst.n} jobs, m={inst.m}, alpha={inst.alpha}, "
        f"{len(set(inst.event_times().tolist()))} distinct event times"
    )

    t0 = time.perf_counter()
    result = run_pd(inst)
    t_run = time.perf_counter() - t0
    print(f"PD run     : {t_run:6.2f} s "
          f"({1e3 * t_run / inst.n:.3f} ms/job, "
          f"{int(result.accepted_mask.sum())}/{inst.n} accepted)")

    t0 = time.perf_counter()
    cert = dual_certificate(result)
    t_cert = time.perf_counter() - t0
    print(f"certificate: {t_cert:6.2f} s")

    assert cert.holds, "Theorem 3 certificate must hold"
    print(
        f"cost {result.cost:.1f} <= alpha^alpha * g = "
        f"{cert.bound:.1f} * {cert.g:.1f} "
        f"(certified ratio {cert.ratio:.3f} of bound {cert.bound:.3f})"
    )
    print("10k-job pipeline: certificate holds")


if __name__ == "__main__":
    main()
