#!/usr/bin/env python
"""Theorem 3 tightness: drive PD toward its alpha^alpha worst case.

The paper proves PD is alpha^alpha-competitive and that the bound is
tight: on the classic Bansal–Kimbrel–Pruhs instance family (job j arrives
at time j-1, workload (n-j+1)^(-1/alpha), common deadline n, values huge)
PD behaves exactly like Optimal Available, whose ratio approaches
alpha^alpha as n grows. This example sweeps n and shows the measured
ratio climbing toward the analytic ceiling, cross-checking the simulator
against the closed forms derived in repro.workloads.lowerbound.

Run: ``python examples/lowerbound_tightness.py``
"""

from __future__ import annotations

from repro import run_pd, yds
from repro.workloads import (
    lower_bound_instance,
    optimal_cost_closed_form,
    pd_cost_closed_form,
)


def main() -> None:
    alpha = 3.0
    bound = alpha**alpha
    print(f"alpha = {alpha}, competitive bound alpha^alpha = {bound:.1f}\n")
    print(
        f"{'n':>6} {'PD (sim)':>12} {'PD (closed)':>12} {'OPT':>10} "
        f"{'ratio':>8} {'% of bound':>11}"
    )
    print("-" * 64)
    for n in [2, 4, 8, 16, 32, 64, 128]:
        inst = lower_bound_instance(n, alpha)
        pd_cost = run_pd(inst).cost
        opt = yds(inst).energy
        closed_pd = pd_cost_closed_form(n, alpha)
        closed_opt = optimal_cost_closed_form(n, alpha)
        assert abs(pd_cost - closed_pd) / closed_pd < 1e-6
        assert abs(opt - closed_opt) / closed_opt < 1e-9
        ratio = pd_cost / opt
        print(
            f"{n:>6} {pd_cost:>12.4f} {closed_pd:>12.4f} {opt:>10.4f} "
            f"{ratio:>8.3f} {100 * ratio / bound:>10.1f}%"
        )
    print(
        "\nClosed forms for much larger n (simulation-free):"
    )
    for n in [1000, 10_000, 100_000]:
        ratio = pd_cost_closed_form(n, alpha) / optimal_cost_closed_form(n, alpha)
        print(f"{n:>8}: ratio {ratio:.3f} ({100 * ratio / bound:.1f}% of alpha^alpha)")
    print(
        "\nThe ratio increases monotonically toward alpha^alpha (slowly — "
        "the harmonic-number optimum grows only logarithmically)."
    )


if __name__ == "__main__":
    main()
