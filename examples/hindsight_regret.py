#!/usr/bin/env python
"""Itemize PD's online regret: bad admissions vs. conservative placement.

Theorem 3 says PD never pays more than alpha^alpha times the optimum —
but *where* does the gap come from on a concrete run? The hindsight
decomposition splits it exactly into

* admission regret — accepting/rejecting differently than the offline
  optimum would, and
* placement regret — spreading accepted work more conservatively than an
  offline scheduler (the Figure 3 effect).

Run: ``python examples/hindsight_regret.py``
"""

from __future__ import annotations

from repro.analysis import hindsight_decomposition
from repro.core.pd import run_pd
from repro.workloads import poisson_instance, tight_instance


def main() -> None:
    cases = [
        ("poisson, relaxed windows", poisson_instance(8, m=1, alpha=2.0, seed=4)),
        ("tight windows", tight_instance(8, m=1, alpha=2.0, seed=4)),
        ("poisson, two processors", poisson_instance(7, m=2, alpha=2.0, seed=4)),
    ]
    for title, inst in cases:
        result = run_pd(inst)
        decomposition = hindsight_decomposition(result)
        print(f"--- {title} (n={inst.n}, m={inst.m}, alpha={inst.alpha}) ---")
        print(decomposition.summary())
        print()
    print(
        "Placement regret is the price of never moving frozen work; "
        "admission regret is the price of deciding accept/reject without "
        "knowing the future. Theorem 3 caps their sum at "
        "(alpha^alpha - 1) x OPT; in practice both stay tiny on benign "
        "workloads."
    )


if __name__ == "__main__":
    main()
