#!/usr/bin/env python
"""Decomposing PD's cost: admission regret vs placement regret.

PD makes two kinds of decisions — *which* jobs to finish, and *where* to
put their work. This example holds the placement engine fixed and swaps
the admission policy to see what each rule costs:

* ``accept-all``        finish everything (classical regime);
* ``solo-threshold``    PD's own rule, but priced against an idle machine;
* ``pd``                the paper's load-aware dynamic rule;
* ``oracle-admission``  the offline optimum's acceptance set, placed online;
* ``exact``             the offline optimum (lower bound on everything).

Run: ``python examples/admission_policies.py``
"""

from __future__ import annotations

from repro.core import run_algorithm
from repro.model.job import Instance
from repro.workloads import poisson_instance

POLICIES = ["accept-all", "solo-threshold", "pd", "oracle-admission", "exact"]


def show(title: str, inst: Instance) -> None:
    print(title)
    print(f"  {'policy':>17} {'cost':>10} {'energy':>10} {'lost':>8} {'acc':>7}")
    for name in POLICIES:
        out = run_algorithm(name, inst)
        s = out.schedule
        print(
            f"  {name:>17} {s.cost:>10.4f} {s.energy:>10.4f} "
            f"{s.lost_value:>8.4f} {int(s.finished.sum()):>4d}/{inst.n}"
        )
    print()


def main() -> None:
    # A value spread: policies diverge when some jobs are marginal.
    base = poisson_instance(9, m=1, alpha=3.0, seed=2)
    show("mixed-value stream (values straddle the threshold):",
         base.with_values((base.values * 0.3).tolist()))

    # The load-awareness trap: five jobs, each worth finishing *alone*,
    # ruinous together. Static admission admits all five; PD prices the
    # k-th concurrent job at its true marginal cost and stops in time.
    trap = Instance.from_tuples(
        [(0.0, 1.0, 1.0, 4.0)] * 5, m=1, alpha=3.0
    )
    show("stacked burst (each job fine alone, ruinous together):", trap)

    print("Reading the tables:")
    print("- 'exact - oracle-admission' gap = pure placement regret")
    print("  (the price of never revisiting committed work).")
    print("- 'oracle-admission - pd' gap = pure admission regret.")
    print("- solo-threshold equals pd until jobs *stack*; then only the")
    print("  load-aware rule stops admitting (the paper's Listing 1).")


if __name__ == "__main__":
    main()
