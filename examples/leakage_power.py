#!/usr/bin/env python
"""Beyond s^alpha: PD with a cube-rule-plus-leakage power function.

The paper's conclusion conjectures its primal-dual framework extends to
richer models. This example runs the unchanged PD machinery with
``P(s) = s**3 + c*s`` — the classical cube rule plus a linear leakage
term — and shows what carries over:

1. pricing, placement, and rejection all work verbatim;
2. the generalized dual value still certifies a per-run competitive
   ratio (weak duality is power-independent);
3. leakage changes *behaviour* in the direction physics predicts:
   running slow is no longer nearly free, so marginal jobs flip from
   accepted to rejected as leakage grows.

Run: ``python examples/leakage_power.py``
"""

from __future__ import annotations

from repro.general import SumPower, general_dual_bound, run_pd_general
from repro.workloads import poisson_instance

ALPHA = 3.0
DELTA = ALPHA ** (1.0 - ALPHA)


def main() -> None:
    instance = poisson_instance(12, m=2, alpha=ALPHA, seed=8)
    print(f"workload: {instance.n} jobs on {instance.m} processors")
    print()
    print(f"  {'leak c':>7} {'cost':>10} {'energy':>10} {'accepted':>9} "
          f"{'cert. ratio':>12}")
    for leak in (0.0, 0.1, 0.5, 2.0, 10.0):
        power = (
            SumPower([1.0], [ALPHA])
            if leak == 0.0
            else SumPower([1.0, leak], [ALPHA, 1.0])
        )
        result = run_pd_general(instance, power, delta=DELTA)
        bound = general_dual_bound(result)
        acc = int(result.accepted_mask.sum())
        print(f"  {leak:>7.1f} {result.cost:>10.3f} {result.energy:>10.3f} "
              f"{acc:>5d}/{instance.n} {bound.ratio:>12.3f}")
    print()
    print("Reading the table: leakage makes low speeds expensive, so the")
    print("scheduler sheds marginal jobs (accepted column falls); every row")
    print("still carries a certified cost/g ratio via weak duality, even")
    print("though the alpha^alpha theorem only covers the c = 0 row.")


if __name__ == "__main__":
    main()
