#!/usr/bin/env python
"""Discrete speed levels: running PD on SpeedStep-style hardware.

The paper's motivation cites Intel SpeedStep and AMD PowerNow!, real
technologies with a *finite* menu of frequency steps. This example shows
the discrete substrate end to end:

1. run continuous PD on a bursty workload,
2. emulate the schedule on geometric menus of increasing granularity and
   watch the energy premium vanish,
3. tighten the menu's *top speed* until it bites and watch the pipeline
   degrade gracefully (screen dense jobs, re-plan, pay their value).

Run: ``python examples/discrete_speeds.py``
"""

from __future__ import annotations

from repro import run_pd
from repro.discrete import (
    SpeedSet,
    discretize_schedule,
    menu_covering_schedule,
    run_pd_discrete,
    worst_overhead_factor,
)
from repro.workloads import poisson_instance


def main() -> None:
    instance = poisson_instance(
        14, m=2, alpha=3.0, arrival_rate=1.5, seed=42
    )
    result = run_pd(instance)
    print("continuous PD:", result.schedule.cost_breakdown())
    print()

    # --- 1. How much does a finite menu cost? -------------------------
    print("menu granularity vs energy premium (geometric levels):")
    print(f"  {'levels':>7} {'overhead':>9} {'envelope bound':>15}")
    for count in (2, 4, 8, 16, 32):
        menu = menu_covering_schedule(result, count)
        disc = discretize_schedule(result.schedule, menu)
        bound = worst_overhead_factor(menu, instance.alpha)
        print(f"  {count:>7d} {disc.overhead:>9.4f} {bound:>15.4f}")
    print()

    # --- 2. A realistic 6-step menu ------------------------------------
    menu = menu_covering_schedule(result, 6)
    disc = discretize_schedule(result.schedule, menu)
    disc.validate()
    print(f"6-level menu: {[f'{s:.3f}' for s in menu]}")
    print(
        f"  discrete energy {disc.energy:.4f} vs continuous "
        f"{disc.continuous_energy:.4f} (x{disc.overhead:.4f})"
    )
    print(f"  segments: {len(disc.segments)} (two per continuous run)")
    print()
    from repro.viz import segment_gantt

    print("rounded schedule (each run split fast-then-slow):")
    print(segment_gantt(disc.segments, width=64, m=instance.m))
    print()

    # --- 3. When the top speed bites -----------------------------------
    speeds = result.schedule.processor_speed_matrix()
    s_top = float(speeds.max())
    print(f"fastest speed PD wants: {s_top:.4f}")
    print(f"  {'cap':>6} {'cost':>10} {'screened':>9} {'accepted':>9}")
    for frac in (1.0, 0.7, 0.5, 0.35):
        capped = SpeedSet.geometric(0.02 * s_top, frac * s_top, 16)
        res = run_pd_discrete(instance, capped)
        print(
            f"  {frac:>6.2f} {res.cost:>10.4f} "
            f"{len(res.screened_ids):>9d} "
            f"{len(res.accepted_original_ids):>9d}"
        )
    print()
    print(
        "Takeaway: discreteness is a second-order effect (premium < 1% by"
        " ~32 levels),\nbut a hard top-speed cap changes the *admission*"
        " problem - dense jobs become\nunservable and their value is an"
        " unavoidable loss on that hardware."
    )


if __name__ == "__main__":
    main()
