#!/usr/bin/env python
"""The admission S-curve: how PD's accept/reject policy responds to value.

Sweeps a global multiplier on all job values and plots (in ASCII) the
acceptance rate and the cost composition. At low values PD is a bouncer
(reject everything, pay the small values); at high values it is a
classical speed scaler (finish everything, pay energy); in between it
earns the model's whole point — trading the two against each other.

Run: ``python examples/admission_curve.py``
"""

from __future__ import annotations

from repro.analysis.sweeps import acceptance_curve
from repro.workloads import poisson_instance


def bar(fraction: float, width: int = 30) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    multipliers = [0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 100.0]
    cells = acceptance_curve(
        poisson_instance,
        value_multipliers=multipliers,
        n=25,
        m=2,
        alpha=3.0,
        seeds=range(4),
    )
    print("acceptance rate vs value multiplier (25 jobs, m=2, alpha=3):\n")
    print(f"{'value x':>9} {'accepted':>9}  {'':30}  {'mean cost':>11} {'worst ratio':>12}")
    print("-" * 78)
    for cell in cells:
        acc = cell.mean_acceptance
        print(
            f"{cell.params['value_x']:>9g} {100 * acc:>8.1f}%  {bar(acc)}  "
            f"{cell.mean_cost:>11.3f} {cell.worst_certified_ratio:>12.3f}"
        )
    print(
        "\nEvery row is still certified within alpha^alpha = 27 (Theorem 3 "
        "holds across the whole operating range, not just at the extremes)."
    )


if __name__ == "__main__":
    main()
