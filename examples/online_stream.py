#!/usr/bin/env python
"""Drive the PDScheduler interactively, job by job.

``run_pd`` wraps the whole online loop, but the scheduler is genuinely
online: you can feed arrivals one at a time, observe each accept/reject
decision as it is made, and stop whenever you like. This example streams
a Poisson arrival process through the scheduler and prints a running
commentary — the shape of an actual admission-control service built on
this library.

Run: ``python examples/online_stream.py``
"""

from __future__ import annotations

from repro import PDScheduler, dual_certificate
from repro.workloads import poisson_instance


def main() -> None:
    alpha, m = 3.0, 2
    instance = poisson_instance(
        18, m=m, alpha=alpha, seed=7, value_ratio=(0.2, 6.0)
    ).sorted_by_release()

    scheduler = PDScheduler(m=m, alpha=alpha)
    print(f"streaming {instance.n} jobs onto {m} processors (alpha={alpha})\n")
    print(f"{'t':>7} {'job':>5} {'work':>6} {'value':>8} {'decision':>9} {'lambda':>9}")
    print("-" * 50)

    accepted_value = rejected_value = 0.0
    for j, job in enumerate(instance.jobs):
        decision = scheduler.arrive(job)
        if decision.accepted:
            accepted_value += job.value
        else:
            rejected_value += job.value
        print(
            f"{job.release:>7.2f} {j:>5} {job.workload:>6.2f} {job.value:>8.2f} "
            f"{'ACCEPT' if decision.accepted else 'reject':>9} {decision.lam:>9.4f}"
        )

    result = scheduler.finish()
    cert = dual_certificate(result).require()
    print("-" * 50)
    print(f"\n{result.summary()}")
    print(f"value served: {accepted_value:.2f}, value lost: {rejected_value:.2f}")
    print(
        f"certificate: ratio {cert.ratio:.2f} <= alpha^alpha = {cert.bound:.0f}  ✓"
    )


if __name__ == "__main__":
    main()
