"""Shared type aliases and small typed helpers used across :mod:`repro`.

Centralizing the aliases keeps signatures short and consistent: time
points, speeds, workloads, and energies are all plain ``float`` values,
but annotating them with their semantic alias documents intent.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeAlias

import numpy as np
import numpy.typing as npt

__all__ = [
    "Time",
    "Speed",
    "Work",
    "Energy",
    "Value",
    "JobId",
    "ProcId",
    "IntervalIndex",
    "FloatArray",
    "IntArray",
    "BoolArray",
    "SpeedFunction",
    "Seed",
    "as_float_array",
    "as_int_array",
]

#: A point in (continuous) time.
Time: TypeAlias = float

#: A processor speed, in units of work per unit time.
Speed: TypeAlias = float

#: An amount of work.
Work: TypeAlias = float

#: An amount of energy (power integrated over time).
Energy: TypeAlias = float

#: A job's value (the loss suffered if it is not finished).
Value: TypeAlias = float

#: Index of a job within an :class:`repro.model.Instance` (0-based).
JobId: TypeAlias = int

#: Index of a processor, ``0 <= i < m``.
ProcId: TypeAlias = int

#: Index of an atomic interval within a grid (0-based).
IntervalIndex: TypeAlias = int

FloatArray: TypeAlias = npt.NDArray[np.float64]
IntArray: TypeAlias = npt.NDArray[np.int64]
BoolArray: TypeAlias = npt.NDArray[np.bool_]

#: A piecewise speed function sampled at arbitrary times.
SpeedFunction: TypeAlias = Callable[[float], float]

#: Anything acceptable to :func:`numpy.random.default_rng`.
Seed: TypeAlias = "int | np.random.Generator | None"


def as_float_array(values: Sequence[float] | FloatArray) -> FloatArray:
    """Return ``values`` as a contiguous 1-D ``float64`` array.

    A no-copy passthrough when the input already satisfies the contract.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {arr.shape}")
    return arr


def as_int_array(values: Sequence[int] | IntArray) -> IntArray:
    """Return ``values`` as a contiguous 1-D ``int64`` array."""
    arr = np.ascontiguousarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {arr.shape}")
    return arr
