"""Admission-policy comparators: what does PD's *rejection rule* buy?

PD makes two interleaved choices: *which* jobs to finish (admission) and
*where* to place their work (scheduling). To attribute cost to each
choice, this module runs the same online placement engine (PD's
water-filling, never revisiting committed work) under different admission
policies:

* ``accept-all`` — finish everything; the classical regime. Its cost
  explodes when low-value tight jobs show up.
* ``reject-all`` — finish nothing; cost = total value. The trivial upper
  bound every sane policy must beat.
* ``solo-threshold`` — a *static* version of PD's rule: admit job ``j``
  iff its solo energy (constant speed over its own window on an empty
  machine) is at most ``alpha**(alpha-2) * v_j``. This is what PD's
  Section 3 policy degenerates to when the machine is idle; comparing it
  to real PD isolates the value of pricing against the *current load*.
* ``oracle-admission`` — admit exactly the offline optimum's acceptance
  set (computed by the exact solver), then place online. The gap between
  this and the offline optimum is pure *placement* regret; the gap
  between PD and this is pure *admission* regret. (Complementary to
  :mod:`repro.analysis.hindsight`, which decomposes the same two regrets
  analytically.)

All policies return a standard :class:`PolicyResult` and are registered
with :func:`repro.core.simulator.run_algorithm` under the names above.
E15 sweeps value scales and shows the ranking the design predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from ..model.job import Instance
from ..model.power import optimal_constant_speed_energy
from ..model.schedule import Schedule
from .pd import PDResult, run_pd

__all__ = [
    "PolicyResult",
    "run_accept_all",
    "run_reject_all",
    "run_solo_threshold",
    "run_oracle_admission",
    "run_with_admission",
]

#: Value high enough that PD treats a job as must-finish.
_FORCE_VALUE = 1e30


@dataclass(frozen=True)
class PolicyResult:
    """Outcome of an admission policy + online placement.

    Attributes
    ----------
    policy:
        Human-readable policy name.
    schedule:
        Full-instance schedule; non-admitted jobs are unfinished and pay
        their value.
    admitted_ids:
        Job ids (arrival order of the sorted instance) the policy chose.
    inner:
        The placement run on the admitted sub-instance, when one was
        needed (``None`` for ``reject-all``).
    """

    policy: str
    schedule: Schedule
    admitted_ids: tuple[int, ...]
    inner: PDResult | None

    @property
    def cost(self) -> float:
        return self.schedule.cost


def run_with_admission(
    instance: Instance, admitted_ids: tuple[int, ...], *, policy: str
) -> PolicyResult:
    """Place an externally chosen acceptance set with PD's engine.

    Admitted jobs get their values raised to a must-finish sentinel so the
    water-filling engine never rejects them; everything else never enters
    the machine. The returned schedule is expressed on the *full*
    instance (original values), so costs are comparable across policies.
    """
    ordered = instance.sorted_by_release()
    ids = tuple(sorted(set(admitted_ids)))
    for j in ids:
        if not (0 <= j < ordered.n):
            raise InvalidParameterError(f"admitted id {j} out of range")
    from ..model.intervals import grid_for_instance

    if not ids:
        return PolicyResult(
            policy=policy,
            schedule=Schedule.empty(ordered, grid_for_instance(ordered)),
            admitted_ids=(),
            inner=None,
        )

    sub = ordered.restrict(ids).with_values([_FORCE_VALUE] * len(ids))
    inner = run_pd(sub)
    if not inner.accepted_mask.all():  # pragma: no cover - sentinel forces
        raise InvalidParameterError("placement engine rejected a forced job")

    # Re-express the sub-run's loads on the full instance's grid. The
    # sub-grid's boundaries are a subset of the full grid's (admitted
    # jobs' events are a subset of all events), so each sub-interval maps
    # onto a contiguous run of full intervals; splitting proportionally
    # to length leaves speeds — hence energy — unchanged (Section 3).
    full_grid = grid_for_instance(ordered)
    sub_grid = inner.schedule.grid
    loads = np.zeros((ordered.n, full_grid.size))
    finished = np.zeros(ordered.n, dtype=bool)
    full_lengths = full_grid.lengths
    for row, j in enumerate(ids):
        finished[j] = True
        for k in range(sub_grid.size):
            amount = float(inner.schedule.loads[row, k])
            if amount <= 0.0:
                continue
            a, b = sub_grid.interval(k)
            cover = list(full_grid.covering(a, b))
            total_len = float(full_lengths[cover].sum())
            for fk in cover:
                loads[j, fk] += amount * float(full_lengths[fk]) / total_len
    schedule = Schedule(
        instance=ordered, grid=full_grid, loads=loads, finished=finished
    )
    return PolicyResult(
        policy=policy, schedule=schedule, admitted_ids=ids, inner=inner
    )


def run_accept_all(instance: Instance) -> PolicyResult:
    """Admit every job, place online."""
    ordered = instance.sorted_by_release()
    return run_with_admission(
        ordered, tuple(range(ordered.n)), policy="accept-all"
    )


def run_reject_all(instance: Instance) -> PolicyResult:
    """Admit nothing; cost is the total value."""
    return run_with_admission(instance, (), policy="reject-all")


def run_solo_threshold(
    instance: Instance, *, factor: float | None = None
) -> PolicyResult:
    """Static admission: solo energy vs ``factor * value``.

    ``factor`` defaults to the paper's ``alpha**(alpha-2)`` — the
    idle-machine specialization of PD's dynamic rule.
    """
    ordered = instance.sorted_by_release()
    c = ordered.alpha ** (ordered.alpha - 2.0) if factor is None else factor
    if c <= 0.0:
        raise InvalidParameterError(f"factor must be > 0, got {c}")
    admitted = tuple(
        j
        for j in range(ordered.n)
        if optimal_constant_speed_energy(
            ordered.alpha, ordered[j].workload, ordered[j].span
        )
        <= c * ordered[j].value
    )
    return run_with_admission(ordered, admitted, policy="solo-threshold")


def run_oracle_admission(instance: Instance) -> PolicyResult:
    """Admit the offline optimum's acceptance set, place online.

    Needs the exact solver, so instance sizes are limited to its
    enumeration budget (n <= 18).
    """
    from ..offline.optimal import solve_exact

    ordered = instance.sorted_by_release()
    solution = solve_exact(ordered)
    return run_with_admission(
        ordered, tuple(solution.accepted), policy="oracle-admission"
    )


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


def _policy_adapter(fn):
    def runner(instance: Instance):
        result = fn(instance)
        return result.schedule, result

    return runner


for _name, _fn, _online, _summary in (
    ("accept-all", run_accept_all, True, "admit every job (classical regime)"),
    ("reject-all", run_reject_all, True, "admit nothing; pay the total value"),
    (
        "solo-threshold",
        run_solo_threshold,
        True,
        "static admission by solo energy vs alpha^(alpha-2) * value",
    ),
    (
        "oracle-admission",
        run_oracle_admission,
        False,
        "admit the offline optimum's acceptance set, place online",
    ),
):
    register_algorithm(
        _name,
        profit_aware=True,
        online=_online,
        multiprocessor=True,
        summary=_summary,
    )(_policy_adapter(_fn))
