"""Core: the paper's primal-dual algorithm PD and its profitable peers."""

from .cll import CLLResult, cll_admits, run_cll
from .pd import JobDecision, PDResult, PDScheduler, run_pd
from .policies import (
    PolicyResult,
    run_accept_all,
    run_oracle_admission,
    run_reject_all,
    run_solo_threshold,
    run_with_admission,
)
from .simulator import RunOutcome, available_algorithms, run_algorithm
from .waterfill import WaterfillOutcome, waterfill_job

__all__ = [
    "run_pd",
    "PDResult",
    "PDScheduler",
    "JobDecision",
    "run_cll",
    "CLLResult",
    "cll_admits",
    "waterfill_job",
    "WaterfillOutcome",
    "run_algorithm",
    "PolicyResult",
    "run_accept_all",
    "run_reject_all",
    "run_solo_threshold",
    "run_oracle_admission",
    "run_with_admission",
    "available_algorithms",
    "RunOutcome",
]
