"""The Chan–Lam–Li profitable scheduler (WAOA 2010) — PD's predecessor.

CLL handles job values on a *single* processor by bolting an admission
test onto Optimal Available: when a job arrives, compute the OA plan as if
the job were admitted; in that plan the new job runs at some constant
speed ``s`` (the intensity of its YDS critical group). Admit the job iff
its planned energy is worth it:

    ``w_j * s**(alpha-1) <= alpha**(alpha-2) * v_j``,

then keep following OA plans for the admitted jobs. Chan, Lam & Li proved
this is ``alpha**alpha + 2 e**alpha``-competitive; the paper's PD
algorithm improves the bound to ``alpha**alpha`` (and generalizes to
multiple processors) while — as Section 3 of the paper observes — making
*exactly the same* accept/reject decisions as CLL in the single-processor
case when run with the optimal ``delta``. Experiment E6 verifies that
equivalence empirically; experiment E3 compares the costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..classical.execution import schedule_from_segments
from ..classical.oa import oa_plan
from ..errors import InvalidParameterError
from ..model.job import Instance
from ..model.schedule import Schedule
from ..types import FloatArray

__all__ = ["CLLResult", "run_cll", "cll_admits"]

_EPS = 1e-12
_WORK_TOL = 1e-9


@dataclass(frozen=True)
class CLLResult:
    """A CLL run: schedule, admissions, and the per-job planned speeds."""

    schedule: Schedule
    planned_speeds: FloatArray
    admission_thresholds: FloatArray

    @property
    def cost(self) -> float:
        return self.schedule.cost

    @property
    def accepted_mask(self) -> np.ndarray:
        return self.schedule.finished


def cll_admits(
    *, workload: float, value: float, planned_speed: float, alpha: float
) -> bool:
    """CLL's admission predicate: planned energy vs ``alpha**(alpha-2) * v``."""
    planned_energy = workload * planned_speed ** (alpha - 1.0)
    return planned_energy <= alpha ** (alpha - 2.0) * value * (1.0 + 1e-12)


def run_cll(instance: Instance) -> CLLResult:
    """Simulate CLL on a single-processor profitable instance."""
    if instance.m != 1:
        raise InvalidParameterError(
            f"CLL is a single-processor algorithm; instance has m={instance.m}"
        )
    ordered = instance.sorted_by_release()
    n = ordered.n
    alpha = ordered.alpha
    releases = ordered.releases
    deadlines = {j: ordered[j].deadline for j in range(n)}

    admitted: list[bool] = [False] * n
    remaining: dict[int, float] = {}
    planned_speed = np.zeros(n)
    thresholds = np.zeros(n)
    executed: list[tuple[int, float, float, float]] = []

    # Group arrivals by epoch; within an epoch, admit one job at a time so
    # each admission sees the previous one's load.
    epochs = sorted(set(releases.tolist()))
    horizon_end = max(deadlines.values())

    for idx, t in enumerate(epochs):
        t_next = epochs[idx + 1] if idx + 1 < len(epochs) else horizon_end
        for j in range(n):
            if abs(releases[j] - t) > _EPS:
                continue
            job = ordered[j]
            # Tentative plan including the candidate job.
            tentative_remaining = dict(remaining)
            tentative_remaining[j] = job.workload
            plan = oa_plan(
                now=t,
                job_ids=sorted(tentative_remaining),
                remaining=tentative_remaining,
                deadlines=deadlines,
                alpha=alpha,
            )
            s = float(plan.job_speeds[j])
            planned_speed[j] = s
            thresholds[j] = alpha ** ((alpha - 2.0) / (alpha - 1.0)) * (
                job.value / job.workload
            ) ** (1.0 / (alpha - 1.0))
            if cll_admits(
                workload=job.workload, value=job.value, planned_speed=s, alpha=alpha
            ):
                admitted[j] = True
                remaining[j] = job.workload

        # Execute the OA plan for admitted work until the next epoch.
        alive = [
            j
            for j, wrem in remaining.items()
            if wrem > _WORK_TOL and deadlines[j] > t + _EPS
        ]
        if not alive:
            continue
        plan = oa_plan(
            now=t,
            job_ids=alive,
            remaining=remaining,
            deadlines=deadlines,
            alpha=alpha,
        )
        for job_id, a, b, speed in plan.segments:
            if a >= t_next - _EPS:
                break
            hi = min(b, t_next)
            if hi <= a + _EPS:
                continue
            executed.append((job_id, a, hi, speed))
            remaining[job_id] -= (hi - a) * speed
            if remaining[job_id] < 0.0:
                remaining[job_id] = 0.0

    schedule = schedule_from_segments(
        ordered, executed, np.array(admitted, dtype=bool)
    )
    return CLLResult(
        schedule=schedule,
        planned_speeds=planned_speed,
        admission_thresholds=thresholds,
    )


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


def _cll_certificate(result: CLLResult):
    """Dual certificate from CLL's planned admission speeds.

    Accepted jobs get the PD-style price ``alpha * w_j * s_j**(alpha-1)``
    of the speed they were admitted at (clamped at the value, as PD's
    duals always are); rejected jobs pay their value — the dual vector
    PD would hold under the Section 3 equivalence. Weak duality makes
    ``g`` of *any* nonnegative duals a lower bound on OPT, so each
    candidate yields a certified ratio and the best (largest ``g``)
    wins; only PD's own duals additionally carry the ``alpha**alpha``
    guarantee. Damped variants are tried because CLL's planned speeds
    are admission-time snapshots, not equilibrium prices — the raw
    vector can overshoot into the concave region where ``g`` collapses.
    """
    from ..analysis.certificates import certificate_from_duals

    inst = result.schedule.instance
    alpha = inst.alpha
    prices = alpha * inst.workloads * result.planned_speeds ** (alpha - 1.0)
    lam = np.where(
        result.accepted_mask, np.minimum(prices, inst.values), inst.values
    )
    candidates = (lam, 0.5 * lam, 0.25 * lam)
    return max(
        (certificate_from_duals(result.schedule, c) for c in candidates),
        key=lambda cert: cert.g,
    )


@register_algorithm(
    "cll",
    profit_aware=True,
    online=True,
    multiprocessor=False,
    certificate=_cll_certificate,
    summary="Chan-Lam-Li admission-filtered OA (single processor)",
)
def _run_cll_registered(instance: Instance) -> tuple[Schedule, object]:
    result = run_cll(instance)
    return result.schedule, result
