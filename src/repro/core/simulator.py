"""Uniform runner façade over the engine's algorithm registry.

Historically this module *was* the registry — a private string → runner
dict. That moved to the capability-aware
:class:`repro.engine.registry.AlgorithmRegistry` (see
``docs/architecture.md``); what remains here is the stable public
entry point benchmarks, examples, and downstream code import:

* :func:`run_algorithm` — run any registered algorithm by name,
* :func:`available_algorithms` — the sorted name list,
* :class:`RunOutcome` — the normalized result (re-exported from the
  engine).

Profit-aware algorithms (``pd``, ``pd-aug``, ``cll``, ``exact``, the
admission policies) respect job values; classical ones (``yds``, ``oa``,
``avr``, ``bkp``, ``qoa``) finish everything and simply ignore them —
their cost on a profitable instance is therefore pure energy. Capability
metadata (profit-aware, online/offline, multiprocessor,
certificate-producing) lives on the registry:
``repro.engine.REGISTRY.info(name)``.
"""

from __future__ import annotations

from ..engine.registry import REGISTRY, RunOutcome
from ..model.job import Instance

__all__ = ["RunOutcome", "run_algorithm", "available_algorithms"]


def available_algorithms() -> tuple[str, ...]:
    """Registered algorithm names, alphabetically."""
    return REGISTRY.names()


def run_algorithm(name: str, instance: Instance) -> RunOutcome:
    """Run a registered algorithm by name.

    Raises :class:`~repro.errors.InvalidParameterError` for unknown
    names — with the list of valid ones, because benchmark configs are
    hand-typed.
    """
    return REGISTRY.run(name, instance)
