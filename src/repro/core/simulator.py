"""Uniform runner registry for every scheduler in the library.

Benchmarks, examples, and comparison tables all want to say "run
algorithm X on instance I and give me a schedule + cost". This module
provides that single entry point with a string registry, hiding the
differences between result types (PD returns a :class:`PDResult`, OA an
:class:`OAResult`, AVR a bare :class:`Schedule`, ...).

Profit-aware algorithms (``pd``, ``cll``, ``exact``) respect job values;
classical ones (``yds``, ``oa``, ``avr``, ``bkp``, ``qoa``) finish
everything and simply ignore them — their cost on a profitable instance
is therefore pure energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import InvalidParameterError
from ..model.job import Instance
from ..model.schedule import Schedule

__all__ = ["RunOutcome", "run_algorithm", "available_algorithms"]


@dataclass(frozen=True)
class RunOutcome:
    """Normalized result of running any registered algorithm."""

    name: str
    schedule: Schedule
    raw: object

    @property
    def cost(self) -> float:
        return self.schedule.cost

    @property
    def energy(self) -> float:
        return self.schedule.energy


def _run_pd(instance: Instance) -> tuple[Schedule, object]:
    from .pd import run_pd

    result = run_pd(instance)
    return result.schedule, result


def _run_cll(instance: Instance) -> tuple[Schedule, object]:
    from .cll import run_cll

    result = run_cll(instance)
    return result.schedule, result


def _run_yds(instance: Instance) -> tuple[Schedule, object]:
    from ..classical.yds import yds

    result = yds(instance)
    return result.schedule, result


def _run_oa(instance: Instance) -> tuple[Schedule, object]:
    from ..classical.oa import run_oa, run_oa_multiprocessor

    result = run_oa(instance) if instance.m == 1 else run_oa_multiprocessor(instance)
    return result.schedule, result


def _run_avr(instance: Instance) -> tuple[Schedule, object]:
    from ..classical.avr import run_avr

    schedule = run_avr(instance)
    return schedule, schedule


def _run_bkp(instance: Instance) -> tuple[Schedule, object]:
    from ..classical.bkp import run_bkp

    schedule = run_bkp(instance)
    return schedule, schedule


def _run_qoa(instance: Instance) -> tuple[Schedule, object]:
    from ..classical.qoa import run_qoa

    schedule = run_qoa(instance)
    return schedule, schedule


def _run_offline_cp(instance: Instance) -> tuple[Schedule, object]:
    from ..offline.convex import solve_min_energy

    solution = solve_min_energy(instance)
    return solution.schedule, solution


def _run_exact(instance: Instance) -> tuple[Schedule, object]:
    from ..offline.optimal import solve_exact

    solution = solve_exact(instance)
    return solution.schedule, solution


def _policy_runner(name: str) -> Callable[[Instance], tuple[Schedule, object]]:
    def runner(instance: Instance) -> tuple[Schedule, object]:
        from . import policies

        fn = {
            "accept-all": policies.run_accept_all,
            "reject-all": policies.run_reject_all,
            "solo-threshold": policies.run_solo_threshold,
            "oracle-admission": policies.run_oracle_admission,
        }[name]
        result = fn(instance)
        return result.schedule, result

    return runner


_REGISTRY: dict[str, Callable[[Instance], tuple[Schedule, object]]] = {
    "pd": _run_pd,
    "cll": _run_cll,
    "yds": _run_yds,
    "oa": _run_oa,
    "avr": _run_avr,
    "bkp": _run_bkp,
    "qoa": _run_qoa,
    "offline-cp": _run_offline_cp,
    "exact": _run_exact,
    "accept-all": _policy_runner("accept-all"),
    "reject-all": _policy_runner("reject-all"),
    "solo-threshold": _policy_runner("solo-threshold"),
    "oracle-admission": _policy_runner("oracle-admission"),
}


def available_algorithms() -> tuple[str, ...]:
    """Registered algorithm names, alphabetically."""
    return tuple(sorted(_REGISTRY))


def run_algorithm(name: str, instance: Instance) -> RunOutcome:
    """Run a registered algorithm by name.

    Raises :class:`InvalidParameterError` for unknown names — with the
    list of valid ones, because benchmark configs are hand-typed.
    """
    try:
        runner = _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        ) from None
    schedule, raw = runner(instance)
    return RunOutcome(name=name, schedule=schedule, raw=raw)
