"""Exact water-filling step of the primal-dual algorithm.

When job ``j`` arrives, Listing 1 of the paper raises the variables
``x_{jk}`` of all atomic intervals inside ``[r_j, d_j)`` *continuously*,
always feeding the intervals whose marginal price

    ``lambda_{jk} = delta * w_j * P'(s_{jk})``

is currently smallest, until either the whole job is placed
(``sum_k x_{jk} = 1``) or the common price reaches the job's value
(rejection). Because every ``P_k`` is convex, this continuous procedure is
equivalent to a *single price query*: find the smallest common price
``lambda`` whose induced per-interval loads sum to the job's workload.

The load an interval accepts at price ``lambda`` is
``z_k(lambda) = max_load_at_speed(s(lambda))`` with
``s(lambda) = P'^{-1}(lambda / (delta * w_j))``, a closed-form
water-level query (see :mod:`repro.chen.interval_power`). The map
``s -> sum_k z_k(s)`` is piecewise linear, continuous, and non-decreasing,
so we bracket by doubling, bisect, and finish with Newton steps on the
piecewise-linear structure — giving machine-precision placements without
simulating the continuous process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..chen.interval_power import SortedLoads
from ..errors import InvalidParameterError
from ..model.power import PolynomialPower
from ..types import FloatArray

__all__ = ["WaterfillOutcome", "waterfill_job"]

#: Relative tolerance on the placed workload.
_WORK_TOL = 1e-11
_MAX_BISECT = 200


@dataclass(frozen=True)
class WaterfillOutcome:
    """Result of pricing one job against the frozen assignment.

    Attributes
    ----------
    accepted:
        Whether the job could be fully placed at a price below its value.
    lam:
        The job's dual variable ``lambda_j``: the clearing price when
        accepted, the job's value when rejected.
    speed:
        The planned speed ``s~_j`` at which the job's marginal was priced
        when ``lambda_j`` got fixed (Equation (10) of the paper).
    loads:
        Per-interval loads. For an accepted job these are the final
        assignment (summing to the workload); for a rejected job these are
        the loads *planned just before rejection* — the paper's ``x̌_{jk}``
        — which the analysis package needs for Propositions 7/8. The
        algorithm itself resets them to zero.
    planned_work:
        Sum of ``loads`` (equals the workload when accepted).
    """

    accepted: bool
    lam: float
    speed: float
    loads: FloatArray
    planned_work: float


def waterfill_job(
    caches: "Sequence[SortedLoads] | object",
    *,
    workload: float,
    value: float,
    delta: float,
    power: PolynomialPower,
) -> WaterfillOutcome:
    """Price job ``j`` against the intervals in ``caches``.

    Parameters
    ----------
    caches:
        The frozen pre-arrival assignment of the job's window: either
        one :class:`SortedLoads` per atomic interval (the historical
        shape, still used by the offline solver), or any object
        exposing batched ``total_at_speed(s)`` / ``loads_at_speed(s)``
        queries — in practice a
        :class:`~repro.perf.kernels.WindowKernel`, which evaluates the
        whole window per bisection step instead of looping interval by
        interval. Both shapes produce bit-identical outcomes.
    workload, value:
        The job's ``w_j`` and ``v_j``.
    delta:
        The PD aggressiveness parameter (Theorem 3 uses
        ``alpha**(1-alpha)``).
    power:
        The power function ``P_alpha``.
    """
    if workload <= 0.0:
        raise InvalidParameterError(f"workload must be > 0, got {workload}")
    if delta <= 0.0:
        raise InvalidParameterError(f"delta must be > 0, got {delta}")
    if len(caches) == 0:
        # No interval can host the job (can happen only with a stale
        # grid); the job is rejected at its value.
        return WaterfillOutcome(
            accepted=False,
            lam=value,
            speed=0.0,
            loads=np.zeros(0),
            planned_work=0.0,
        )

    if hasattr(caches, "total_at_speed"):
        total_at_speed = caches.total_at_speed
        loads_at_speed = caches.loads_at_speed
    else:

        def total_at_speed(s: float) -> float:
            return float(sum(c.max_load_at_speed(s) for c in caches))

        def loads_at_speed(s: float) -> FloatArray:
            return np.array(
                [c.max_load_at_speed(s) for c in caches], dtype=np.float64
            )

    # Price cap: lambda <= value <=> planned speed <= s_cap. An infinite
    # value (classical must-finish jobs, the offline solver's block
    # steps, or a near-1 exponent mapping a huge value to inf) means no
    # effective cap: bracket by doubling instead.
    s_cap = (
        power.derivative_inverse(value / (delta * workload))
        if np.isfinite(value)
        else math.inf
    )
    if not np.isfinite(s_cap):
        s_cap = max(1.0, workload)
        for _ in range(200):
            if total_at_speed(s_cap) >= workload:
                break
            s_cap *= 2.0

    placed_at_cap = total_at_speed(s_cap)
    if placed_at_cap < workload * (1.0 - _WORK_TOL):
        # Even at the job's full value the intervals cannot absorb the
        # workload cheaply enough: reject. Record the planned loads for
        # the analysis of unfinished jobs.
        return WaterfillOutcome(
            accepted=False,
            lam=value,
            speed=s_cap,
            loads=loads_at_speed(s_cap),
            planned_work=placed_at_cap,
        )

    # Bracket the clearing speed: total(0) == 0 <= workload <= total(s_cap).
    lo, hi = 0.0, s_cap
    # Shrink the bracket by bisection on the monotone piecewise-linear map.
    for _ in range(_MAX_BISECT):
        mid = 0.5 * (lo + hi)
        if total_at_speed(mid) >= workload:
            hi = mid
        else:
            lo = mid
        if hi - lo <= 1e-13 * max(1.0, hi):
            break

    # Newton polish on the piecewise-linear structure: the local slope is
    # sum over intervals in the interior regime of (m - d) * l_k, which a
    # symmetric finite difference recovers exactly within a linear piece.
    s = hi
    for _ in range(4):
        t = total_at_speed(s)
        gap = workload - t
        if abs(gap) <= _WORK_TOL * workload:
            break
        h = max(1e-9 * max(s, 1.0), 1e-12)
        slope = (total_at_speed(s + h) - total_at_speed(max(s - h, 0.0))) / (
            s + h - max(s - h, 0.0)
        )
        if slope <= 0.0:
            break
        s = min(max(s + gap / slope, lo), s_cap)

    loads = loads_at_speed(s)
    placed = float(loads.sum())
    if placed <= 0.0:
        # Degenerate: numerical cap hit; treat as rejection.
        return WaterfillOutcome(
            accepted=False, lam=value, speed=s_cap, loads=loads, planned_work=placed
        )
    if abs(placed - workload) > _WORK_TOL * workload:
        # Final exactness fix: scale within the (tiny) residual. The
        # relative correction is bounded by the bisection tolerance, so
        # marginal prices move negligibly.
        loads *= workload / placed
        placed = workload

    lam = delta * workload * power.derivative(s)
    lam = min(lam, value)
    return WaterfillOutcome(
        accepted=True, lam=lam, speed=s, loads=loads, planned_work=placed
    )
