"""The paper's online primal-dual algorithm **PD** (Listing 1).

PD processes jobs in arrival order. For each new job it prices the job's
workload against the atomic intervals of its window using the marginal
energy of Chen et al.'s schedules (water-filling; see
:mod:`repro.core.waterfill`), then either

* **accepts**: fixes the per-interval assignment at the clearing price
  ``lambda_j < v_j`` (the assignment of *earlier* jobs is never moved —
  the structural difference from Optimal Available highlighted by the
  paper's Figure 3), or
* **rejects**: resets the tentative assignment and pays the value
  (``lambda_j = v_j``).

With the parameter ``delta = alpha**(1 - alpha)`` the resulting schedule
is ``alpha**alpha``-competitive on any number of processors (Theorem 3),
and every run carries a machine-checkable certificate: the dual value
``g(lambda~)`` computed by :mod:`repro.analysis.certificates` satisfies
``cost(PD) <= alpha**alpha * g(lambda~) <= alpha**alpha * cost(OPT)``.

Implementation note (PR 5): the scheduler runs on the incremental
kernels of :mod:`repro.perf.kernels`. Each atomic interval owns a live
:class:`~repro.perf.kernels.IntervalLoads` store (descending-sorted
loads + suffix sums, maintained by sorted insertion on accept and
split-copy on refinement) instead of columns of a dense ``(n, N)``
matrix rebuilt per arrival; the dense matrices are materialized once,
in :meth:`PDScheduler.finish`. The outputs are bit-identical to the
historical implementation (kept as
:class:`repro.perf.reference.PDSchedulerReference` and differentially
tested), while the per-arrival cost drops from O(n·N) to
O(window + split intervals).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from ..model.intervals import Grid
from ..model.job import Instance, Job
from ..model.schedule import Schedule
from ..perf.kernels import IntervalLoads, WindowKernel
from ..types import FloatArray
from .waterfill import waterfill_job

__all__ = ["PDResult", "JobDecision", "PDScheduler", "run_pd"]


@dataclass(frozen=True)
class JobDecision:
    """Per-job record of what PD decided at arrival time.

    Attributes
    ----------
    job_id:
        Index of the job in the (arrival-ordered) instance.
    accepted:
        Whether PD finished the job (``y~_j``).
    lam:
        The dual variable ``lambda~_j``.
    planned_speed:
        The speed ``s~_j`` the job was priced at just before ``lambda_j``
        got fixed (Equation (10)).
    planned_loads:
        For rejected jobs: the loads PD *planned* just before rejecting
        (the paper's ``x̌``), keyed by the grid the job saw at arrival —
        re-expressed on the final grid, see :class:`PDResult`. Empty for
        accepted jobs (their final loads live in the schedule).
    """

    job_id: int
    accepted: bool
    lam: float
    planned_speed: float
    planned_work: float


@dataclass(frozen=True)
class PDResult:
    """Everything a PD run produces.

    ``schedule`` is the realized schedule; ``lambdas`` the dual vector
    ``lambda~`` (in job-id order of ``schedule.instance``);
    ``planned_loads`` holds, for every job, either its final loads
    (accepted) or the loads planned just before rejection (``x̌``), both
    on the final grid — the analysis package consumes these.
    """

    schedule: Schedule
    decisions: tuple[JobDecision, ...]
    lambdas: FloatArray
    planned_loads: FloatArray
    delta: float

    @property
    def cost(self) -> float:
        return self.schedule.cost

    @property
    def accepted_mask(self) -> np.ndarray:
        return self.schedule.finished

    def summary(self) -> str:
        """Human-readable run summary."""
        alpha = self.schedule.instance.alpha
        lines = [
            self.schedule.summary(),
            f"  delta = {self.delta:.6g} (optimal: {alpha ** (1 - alpha):.6g})",
        ]
        return "\n".join(lines)


class PDScheduler:
    """Stateful online scheduler implementing Listing 1.

    Feed jobs in non-decreasing release order via :meth:`arrive`; read the
    result off :meth:`finish`. The scheduler maintains the grid of atomic
    intervals induced by the jobs seen so far and refines it on each
    arrival, splitting frozen loads proportionally (the paper's
    load-preserving refinement, Section 3).

    Parameters
    ----------
    m, alpha:
        Machine environment.
    delta:
        Aggressiveness parameter; defaults to the Theorem 3 optimum
        ``alpha**(1 - alpha)`` (required explicitly when ``power``
        overrides the polynomial — no optimal default is known there).
    power:
        Power function override for the water-filling marginals. The
        paper's theory is for ``P(s) = s**alpha``; passing another convex
        :class:`~repro.model.power.PowerFunction` runs the same greedy
        primal-dual machinery in the generalized setting of
        :mod:`repro.general` (Gupta–Krishnaswamy–Pruhs framework). The
        ``alpha`` argument is then only used for result bookkeeping.
    """

    def __init__(
        self,
        *,
        m: int,
        alpha: float,
        delta: float | None = None,
        power=None,
        batch: str = "arrival",
    ) -> None:
        if m < 1:
            raise InvalidParameterError(f"m must be >= 1, got {m}")
        if batch not in ("arrival", "epoch"):
            raise InvalidParameterError(
                f"batch must be 'arrival' or 'epoch', got {batch!r}"
            )
        from ..model.power import PolynomialPower

        self.m = m
        if power is None:
            self.power = PolynomialPower(alpha)
            self.delta = (
                float(delta) if delta is not None else self.power.optimal_delta
            )
        else:
            self.power = power
            if delta is None:
                raise InvalidParameterError(
                    "delta must be given explicitly with a custom power "
                    "function (no Theorem 3 default applies)"
                )
            self.delta = float(delta)
        self._alpha = float(alpha)
        if self.delta <= 0.0:
            raise InvalidParameterError(f"delta must be > 0, got {self.delta}")

        self.batch = batch
        self._jobs: list[Job] = []
        self._grid: Grid | None = None
        #: One live sorted-load store per atomic interval (accepted work).
        self._states: list[IntervalLoads] = []
        #: Per interval, the planned ``(job_id, load)`` entries — final
        #: loads for accepted jobs, the pre-rejection ``x̌`` otherwise.
        self._planned: list[list[tuple[int, float]]] = []
        self._decisions: list[JobDecision] = []
        self._last_release = -np.inf
        #: Total arrivals so far (== len(self._jobs) on the per-arrival
        #: path; the epoch path stores columns instead of Job objects).
        self._count = 0
        #: Epoch-mode storage: per-block chunks of job columns
        #: (release, deadline, workload, value arrays) and decision
        #: columns (accepted, lam, speed, planned_work lists), appended
        #: by :func:`repro.perf.epochs.arrive_epochs`. Materialized into
        #: the historical Job/JobDecision shapes in :meth:`finish`.
        self._chunks: list[tuple] = []
        #: Optional pre-materialized job tuple for :meth:`finish` (set
        #: by ``run_pd(batch="epoch")`` when the instance already holds
        #: Job objects, preserving optional names bit for bit).
        self._finish_jobs: tuple[Job, ...] | None = None
        #: Intervals whose store has deferred (unflushed) suffix sums.
        self._dirty_suffix: set[int] = set()
        #: Intervals whose cached opening level is stale.
        self._stale_open: set[int] = set()
        #: Per-interval opening-speed envelope for the epoch pre-screen
        #: (length N+1, trailing +inf sentinel); None when grid changed.
        self._opens = None
        #: Grid lengths as a plain float list (cache; None when stale).
        self._len_list: list[float] | None = None

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------
    def arrive(self, job: Job) -> JobDecision:
        """Process the arrival of ``job`` and commit PD's decision."""
        if self._chunks:
            raise InvalidParameterError(
                "cannot mix arrive() with epoch-batched arrivals; feed "
                "this scheduler exclusively via arrive_many()"
            )
        if job.release < self._last_release - 1e-12:
            raise InvalidParameterError(
                f"jobs must arrive in release order: got release {job.release} "
                f"after {self._last_release}"
            )
        self._last_release = max(self._last_release, job.release)
        job_id = len(self._jobs)
        self._jobs.append(job)
        self._count = job_id + 1

        self._refine_grid(job.release, job.deadline)
        assert self._grid is not None
        ks = self._grid.covering(job.release, job.deadline)
        lengths = self._grid.lengths

        kernel = WindowKernel(
            [self._states[k] for k in ks],
            [float(lengths[k]) for k in ks],
            self.m,
        )
        outcome = waterfill_job(
            kernel,
            workload=job.workload,
            value=job.value,
            delta=self.delta,
            power=self.power,
        )

        # Commit: sorted insertion into each interval's live store for an
        # accept; either way the planned loads (``x̌``) are recorded.
        # Exact zeros carry no information (the dense materialization is
        # zero-initialized) and are skipped.
        for offset, k in enumerate(ks):
            z = float(outcome.loads[offset])
            if z == 0.0:
                continue
            if outcome.accepted:
                self._states[k].insert(job_id, z)
            self._planned[k].append((job_id, z))

        decision = JobDecision(
            job_id=job_id,
            accepted=outcome.accepted,
            lam=outcome.lam,
            planned_speed=outcome.speed,
            planned_work=outcome.planned_work,
        )
        self._decisions.append(decision)
        return decision

    def arrive_many(self, arrays, *, epoch_size: int | None = None) -> None:
        """Process a columnar block of arrivals (release-ordered).

        On the per-arrival path this is sugar for feeding
        ``arrays.job(i)`` one at a time. With ``batch="epoch"`` the block
        is consumed by :func:`repro.perf.epochs.arrive_epochs` — batched
        numpy passes over the columns, bit-identical decisions.
        """
        if self.batch == "epoch":
            from ..perf.epochs import DEFAULT_EPOCH_SIZE, arrive_epochs

            arrive_epochs(
                self,
                arrays,
                epoch_size=(
                    DEFAULT_EPOCH_SIZE if epoch_size is None else epoch_size
                ),
            )
            return
        for i in range(arrays.n):
            self.arrive(arrays.job(i))

    def _materialize(self) -> tuple[Instance, tuple[JobDecision, ...]]:
        """The (instance, decisions) pair in the historical shapes.

        Per-arrival runs stored both directly; epoch runs stored columns
        and materialize the identical objects here — same floats, same
        job order, names preserved when the caller provided Job objects.
        """
        if self._jobs:
            instance = Instance(tuple(self._jobs), m=self.m, alpha=self._alpha)
            return instance, tuple(self._decisions)
        decisions = []
        jobs: list[Job] = []
        job_id = 0
        for rel, dl, wl, val, acc, lam, spd, pw in self._chunks:
            rel_l = rel.tolist()
            dl_l = dl.tolist()
            wl_l = wl.tolist()
            val_l = val.tolist()
            for t in range(len(acc)):
                decisions.append(
                    JobDecision(
                        job_id=job_id,
                        accepted=acc[t],
                        lam=lam[t],
                        planned_speed=spd[t],
                        planned_work=pw[t],
                    )
                )
                if self._finish_jobs is None:
                    jobs.append(
                        Job(
                            release=rel_l[t],
                            deadline=dl_l[t],
                            workload=wl_l[t],
                            value=val_l[t],
                        )
                    )
                job_id += 1
        if self._finish_jobs is not None:
            job_tuple = self._finish_jobs
        else:
            job_tuple = tuple(jobs)
        instance = Instance(job_tuple, m=self.m, alpha=self._alpha)
        return instance, tuple(decisions)

    def finish(self) -> PDResult:
        """Assemble the final :class:`PDResult` after all arrivals."""
        if self._count == 0:
            raise InvalidParameterError("no jobs were processed")
        assert self._grid is not None
        self._flush_suffixes()
        instance, decisions = self._materialize()
        finished = np.array([d.accepted for d in decisions], dtype=bool)
        n = self._count
        big_n = self._grid.size
        loads = self.snapshot_loads()
        planned = np.zeros((n, big_n))
        for k, entries in enumerate(self._planned):
            for job_id, z in entries:
                planned[job_id, k] = z
        schedule = Schedule(
            instance=instance,
            grid=self._grid,
            loads=loads,
            finished=finished,
        )
        return PDResult(
            schedule=schedule,
            decisions=decisions,
            lambdas=np.array([d.lam for d in decisions]),
            planned_loads=planned,
            delta=self.delta,
        )

    def snapshot_loads(self) -> FloatArray:
        """Dense ``(jobs so far, N)`` view of the committed assignment.

        A materialization of the live per-interval stores on the current
        grid — the matrix the historical implementation carried around
        explicitly. Diagnostics/tests only; O(n·N) per call.
        """
        if self._grid is None:
            return np.zeros((0, 0))
        loads = np.zeros((self._count, self._grid.size))
        for k, state in enumerate(self._states):
            if state.ids:
                loads[state.ids, k] = state.loads
        return loads

    # ------------------------------------------------------------------
    # Streaming cost accessors
    # ------------------------------------------------------------------
    def streaming_energy(self) -> float:
        """Energy of the committed assignment, straight off the live stores.

        Evaluates Equation (6) per interval from the descending-sorted
        :class:`~repro.perf.kernels.IntervalLoads` stores without
        materializing the dense ``(n, N)`` load matrix — the matrix a
        million-job run cannot afford (``finish()`` would allocate tens
        of gigabytes). Bit-identical to ``finish().schedule.energy``
        on every instance where the dense matrix *is* affordable
        (asserted by the parity suite).
        """
        if self._grid is None:
            return 0.0
        from ..perf.energy import stores_energy  # lazy: layering

        self._flush_suffixes()
        return stores_energy(
            self._states, self._grid.lengths, self.m, self.power
        )

    def streaming_lost_value(self) -> float:
        """Sum of values of rejected jobs so far (no dense schedule)."""
        if self._count == 0:
            return 0.0
        if self._jobs:
            values = np.array([j.value for j in self._jobs], dtype=np.float64)
            finished = np.array(
                [d.accepted for d in self._decisions], dtype=bool
            )
        else:
            values = np.concatenate([c[3] for c in self._chunks])
            finished = np.array(
                [a for c in self._chunks for a in c[4]], dtype=bool
            )
        return float(values[~finished].sum())

    def streaming_cost(self) -> float:
        """Energy plus lost value of the run so far (Equation (1))."""
        return self.streaming_energy() + self.streaming_lost_value()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _flush_suffixes(self) -> None:
        """Rebuild every deferred suffix sum (epoch-mode bookkeeping)."""
        if self._dirty_suffix:
            for k in self._dirty_suffix:
                self._states[k].flush_suffix()
            self._dirty_suffix.clear()

    def _length_list(self) -> list[float]:
        """Grid lengths as plain floats (cached per grid version).

        Exactly the floats ``float(lengths[k])`` yields — ``tolist`` and
        scalar conversion both round-trip the same float64 — cached so
        the epoch hot loop can slice windows without per-interval numpy
        scalar boxing.
        """
        if self._len_list is None:
            assert self._grid is not None
            self._len_list = self._grid.lengths.tolist()
        return self._len_list

    def _refine_grid(self, release: float, deadline: float) -> bool:
        """Insert the new job's window endpoints, splitting frozen loads.

        A specialized two-point refinement: the generic
        :meth:`~repro.model.intervals.Grid.refine` computes parent and
        fraction arrays for *every* new interval, but an arrival only
        ever splits the (at most two) intervals its endpoints land in
        and possibly extends the span — so the surgery here touches
        exactly those stores and leaves every other store object in
        place. Unsplit intervals keep their exact loads: the reference
        path multiplied them by a fraction that is exactly ``1.0``
        (child and parent read their endpoints from the same boundary
        floats), a bitwise no-op. Split children scale by
        ``(child_end - child_start) / parent_length`` — the same single
        multiply, in the same float order, as
        :meth:`~repro.model.intervals.Refinement.split_row`.
        """
        if self._grid is None:
            self._grid = Grid.from_points([release, deadline])
            self._states = [IntervalLoads() for _ in range(self._grid.size)]
            self._planned = [[] for _ in range(self._grid.size)]
            self._len_list = None
            self._opens = None
            return True
        b = self._grid.boundaries
        fresh = self._grid.fresh_points([release, deadline])
        if not fresh:
            return False

        lo = float(b[0])
        hi = float(b[-1])
        front = sum(1 for p in fresh if p < lo)
        tail = sum(1 for p in fresh if p > hi)
        # Interior points grouped by the old interval they split.
        splits: dict[int, list[float]] = {}
        for p in fresh:
            if lo < p < hi:
                k = int(np.searchsorted(b, p, side="right")) - 1
                splits.setdefault(k, []).append(p)

        merged = np.sort(
            np.concatenate((b, np.asarray(fresh, dtype=np.float64)))
        )
        self._grid = Grid(merged)

        for k in sorted(splits, reverse=True):
            cuts = [float(b[k]), *splits[k], float(b[k + 1])]
            length = float(b[k + 1]) - float(b[k])
            fractions = [
                (cuts[i + 1] - cuts[i]) / length for i in range(len(cuts) - 1)
            ]
            state = self._states[k]
            self._states[k : k + 1] = [state.split(f) for f in fractions]
            entries = self._planned[k]
            self._planned[k : k + 1] = [
                [(job_id, z * f) for job_id, z in entries] for f in fractions
            ]
        if front:
            self._states[0:0] = [IntervalLoads() for _ in range(front)]
            self._planned[0:0] = [[] for _ in range(front)]
        if tail:
            self._states.extend(IntervalLoads() for _ in range(tail))
            self._planned.extend([] for _ in range(tail))
        # Interval indices shifted: drop the caches keyed by them.
        self._len_list = None
        self._opens = None
        return True


def run_pd(
    instance: Instance,
    *,
    delta: float | None = None,
    batch: str | None = None,
    epoch_size: int | None = None,
) -> PDResult:
    """Run PD on a full instance (jobs fed in arrival order).

    This is the main entry point of the library. Jobs are sorted by
    release time (deterministic tie-breaking); the returned result's
    instance reflects that order.

    ``batch`` selects the execution strategy — ``"arrival"`` (the
    historical one-``arrive()``-per-job loop) or ``"epoch"`` (the
    vectorized arrival-epoch layer of :mod:`repro.perf.epochs`,
    consuming jobs in blocks straight off the columnar storage).
    ``None`` defers to the ambient :func:`repro.perf.epochs.batch_mode`
    context (default ``"arrival"``). The results are bit-identical
    either way — batching is an execution strategy, never a result
    change — so the choice deliberately does not participate in cache
    keys. ``epoch_size`` tunes the epoch block length (epoch mode only).

    Examples
    --------
    >>> from repro import Instance, run_pd
    >>> inst = Instance.from_tuples(
    ...     [(0.0, 1.0, 1.0, 0.001), (0.0, 2.0, 1.0, 10.0)], m=1, alpha=2.0
    ... )
    >>> result = run_pd(inst)  # jobs in arrival order: low-value job first
    >>> [bool(a) for a in result.accepted_mask]
    [False, True]
    """
    from ..perf.epochs import current_batch_mode

    mode = batch if batch is not None else current_batch_mode()
    if mode not in ("arrival", "epoch"):
        raise InvalidParameterError(
            f"batch must be 'arrival' or 'epoch', got {mode!r}"
        )
    ordered = instance.sorted_by_release()
    scheduler = PDScheduler(
        m=ordered.m, alpha=ordered.alpha, delta=delta, batch=mode
    )
    if mode == "epoch":
        if "jobs" in ordered.__dict__:
            # Job objects already exist (possibly named): reuse them at
            # finish() so the epoch result is byte-identical even for
            # named jobs, which the columns cannot carry.
            scheduler._finish_jobs = ordered.jobs
        scheduler.arrive_many(ordered.arrays, epoch_size=epoch_size)
    else:
        for job in ordered.jobs:
            scheduler.arrive(job)
    return scheduler.finish()


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


def _pd_certificate(result: PDResult):
    from ..analysis.certificates import dual_certificate

    return dual_certificate(result)


@register_algorithm(
    "pd",
    profit_aware=True,
    online=True,
    multiprocessor=True,
    certificate=_pd_certificate,
    summary="the paper's primal-dual algorithm (alpha^alpha-competitive, any m)",
    variant_params={"delta": float},
)
def _run_pd_registered(
    instance: Instance, *, delta: float | None = None
) -> tuple[Schedule, object]:
    result = run_pd(instance, delta=delta)
    return result.schedule, result
