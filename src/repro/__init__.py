"""repro — Profitable scheduling on multiple speed-scalable processors.

A production-quality reproduction of Kling & Pietrzyk, *Profitable
Scheduling on Multiple Speed-Scalable Processors* (SPAA 2013,
arXiv:1209.3868), including every substrate the paper builds on.

Quickstart
----------
>>> from repro import Instance, run_pd, dual_certificate
>>> inst = Instance.from_tuples(
...     [(0.0, 2.0, 1.0, 5.0), (0.5, 1.5, 0.8, 0.05)], m=2, alpha=3.0
... )
>>> result = run_pd(inst)
>>> cert = dual_certificate(result).require()  # Theorem 3, checked
>>> cert.ratio <= cert.bound
True

Layout
------
* :mod:`repro.model` — jobs, power functions, atomic intervals, schedules.
* :mod:`repro.chen` — Chen et al.'s per-interval multiprocessor scheduler
  (the energy function ``P_k`` and its marginals).
* :mod:`repro.core` — the paper's primal-dual algorithm **PD**, the
  Chan–Lam–Li baseline, and a uniform algorithm runner.
* :mod:`repro.engine` — the experiment engine: capability-aware
  algorithm registry, streaming/cached batch runner with a
  measured-cost shard scheduler, declarative sweeps.
* :mod:`repro.classical` — YDS, OA, AVR, BKP, qOA.
* :mod:`repro.offline` — convex program + exact (IMP) solver.
* :mod:`repro.analysis` — dual certificates, Lemma/Proposition checks.
* :mod:`repro.discrete` — finite speed menus (SpeedStep-style hardware).
* :mod:`repro.general` — PD with arbitrary convex power functions.
* :mod:`repro.profit` — the Pruhs–Stein profit objective + augmentation.
* :mod:`repro.workloads` — adversarial / random / trace-like generators,
  all registered with the declarative workload registry (``WORKLOADS``).
* :mod:`repro.viz` — ASCII schedule rendering (the paper's figures).
"""

from .analysis import (
    DualCertificate,
    build_traces,
    categorize,
    check_proposition7,
    dual_certificate,
    lemma_bounds,
    schedule_metrics,
)
from .classical import run_avr, run_bkp, run_oa, run_oa_multiprocessor, run_qoa, yds
from .core import (
    PDResult,
    PDScheduler,
    run_algorithm,
    run_cll,
    run_pd,
)
from .discrete import SpeedSet, discretize_schedule, run_pd_discrete
from .engine import (
    REGISTRY,
    AlgorithmInfo,
    AlgorithmRegistry,
    BatchRunner,
    ExperimentSpec,
    ResultCache,
    RunRecord,
    RunRequest,
    run_experiment,
)
from .errors import ReproError
from .general import SumPower, general_dual_bound, run_pd_general
from .profit import profit_of, run_pd_augmented
from .model import Grid, Instance, Job, PolynomialPower, Schedule, grid_for_instance
from .offline import minimal_uniform_speed, run_uniform_speed, solve_exact, solve_min_energy
from .viz import gantt, speed_profile
from .workloads import WORKLOADS, WorkloadInfo, WorkloadRegistry

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # model
    "Job",
    "Instance",
    "Schedule",
    "Grid",
    "grid_for_instance",
    "PolynomialPower",
    # core
    "run_pd",
    "PDResult",
    "PDScheduler",
    "run_cll",
    "run_algorithm",
    # engine (registry / batch runner / declarative experiments)
    "REGISTRY",
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "BatchRunner",
    "ResultCache",
    "RunRequest",
    "RunRecord",
    "ExperimentSpec",
    "run_experiment",
    # workload registry
    "WORKLOADS",
    "WorkloadInfo",
    "WorkloadRegistry",
    # classical
    "yds",
    "run_oa",
    "run_oa_multiprocessor",
    "run_avr",
    "run_bkp",
    "run_qoa",
    # offline
    "solve_min_energy",
    "solve_exact",
    # analysis
    "dual_certificate",
    "DualCertificate",
    "categorize",
    "lemma_bounds",
    "build_traces",
    "check_proposition7",
    "schedule_metrics",
    # discrete speed levels
    "SpeedSet",
    "discretize_schedule",
    "run_pd_discrete",
    # generalized power functions
    "SumPower",
    "run_pd_general",
    "general_dual_bound",
    # profit objective
    "profit_of",
    "run_pd_augmented",
    # uniform-speed baseline
    "minimal_uniform_speed",
    "run_uniform_speed",
    # viz
    "gantt",
    "speed_profile",
    # errors
    "ReproError",
]
