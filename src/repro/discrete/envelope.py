"""The effective power function of a discrete speed menu.

**Two-adjacent-level emulation** (classical for speed scaling with
discrete levels, cf. Kwon & Kim and Li & Yao): to process work at average
speed ``s`` over a window, a processor restricted to the menu
``s_1 < ... < s_L`` minimizes energy by time-sharing between the two
levels adjacent to ``s`` — a fraction ``theta`` of the window at the
upper level and ``1 - theta`` at the lower, with
``theta * hi + (1 - theta) * lo = s``. Its average power is then the
*linear interpolation* of ``P`` between the two levels. Doing this for
every ``s`` yields a piecewise-linear effective power function: the lower
convex envelope of the points ``(0, 0), (s_1, P(s_1)), ..., (s_L,
P(s_L))``.

Optimality is convexity in disguise: any discrete profile with average
speed ``s`` is a convex combination of menu points, so its average power
is at least the envelope value at ``s`` (Jensen); the two-level schedule
achieves it exactly. :func:`envelope_energy` below is therefore both the
cost of the rounding in :mod:`repro.discrete.rounding` *and* a certified
lower bound for every discrete schedule with the same work assignment —
the pair of facts the discrete test-suite checks against brute force.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..errors import InvalidParameterError
from ..model.power import PowerFunction
from ..types import FloatArray
from .speedset import Bracket, SpeedSet

__all__ = ["DiscreteEnvelopePower", "envelope_energy", "worst_overhead_factor"]


@dataclass(frozen=True)
class DiscreteEnvelopePower:
    """Piecewise-linear effective power of a menu under a base power law.

    This object behaves like a power function for *accounting* purposes
    (``__call__``, :meth:`energy`) but is deliberately **not** a
    :class:`~repro.model.power.PowerFunction` for the primal-dual
    algorithm: its derivative is piecewise constant, so the marginal-price
    inversion PD relies on is set-valued at the kinks. The discrete
    substrate instead runs PD against the continuous ``P`` and rounds the
    realized schedule (see :mod:`repro.discrete.rounding`), which is the
    standard emulation route.

    Parameters
    ----------
    speed_set:
        The available levels.
    base:
        The underlying physical power law evaluated *at* the levels
        (the paper's ``P_alpha(s) = s**alpha``).
    """

    speed_set: SpeedSet
    base: PowerFunction

    @cached_property
    def _level_powers(self) -> FloatArray:
        return np.asarray(
            [self.base(s) for s in self.speed_set.levels], dtype=np.float64
        )

    def __call__(self, speed: float) -> float:
        """Envelope power at average speed ``speed``.

        Linear on each segment between adjacent levels (and between idle
        and the lowest level); raises above the top level.
        """
        bracket = self.speed_set.bracket(speed)
        return self._bracket_power(bracket)

    def _bracket_power(self, bracket: Bracket) -> float:
        p_lo = self.base(bracket.lo) if bracket.lo > 0.0 else 0.0
        p_hi = self.base(bracket.hi) if bracket.hi > 0.0 else 0.0
        return bracket.theta * p_hi + (1.0 - bracket.theta) * p_lo

    def energy(self, speed: float, duration: float) -> float:
        """Energy of the optimal two-level emulation of ``speed`` for ``duration``."""
        if duration < 0.0:
            raise InvalidParameterError(f"duration must be >= 0, got {duration}")
        return self(speed) * duration

    def overhead(self, speed: float) -> float:
        """Multiplicative envelope-over-continuous gap at ``speed``.

        ``envelope(speed) / P(speed)`` — equals 1 exactly at menu levels
        and peaks strictly between them. Returns 1.0 at speed 0.
        """
        if speed <= 0.0:
            return 1.0
        cont = self.base(speed)
        if cont <= 0.0:
            return 1.0
        return self(speed) / cont

    def power_array(self, speeds: FloatArray) -> FloatArray:
        """Vectorized envelope power (speeds must not exceed the top level)."""
        s = np.maximum(np.asarray(speeds, dtype=np.float64), 0.0)
        if float(s.max(initial=0.0)) > self.speed_set.max_speed * (1.0 + 1e-12):
            raise InvalidParameterError(
                "a speed exceeds the top level; instance infeasible for this menu"
            )
        s = np.minimum(s, self.speed_set.max_speed)
        levels = np.concatenate(([0.0], self.speed_set.as_array()))
        powers = np.concatenate(([0.0], self._level_powers))
        return np.interp(s, levels, powers)


def envelope_energy(
    speed_set: SpeedSet, base: PowerFunction, speed: float, duration: float
) -> float:
    """Convenience: optimal discrete energy to run at ``speed`` for ``duration``."""
    return DiscreteEnvelopePower(speed_set, base).energy(speed, duration)


def worst_overhead_factor(speed_set: SpeedSet, alpha: float) -> float:
    """Worst-case envelope/continuous ratio for ``P(s) = s**alpha``.

    For the polynomial power law the gap on a segment ``[lo, hi]`` depends
    only on the ratio ``rho = hi / lo``; maximizing the interpolation gap
    in closed form is messy, so we maximize numerically over each segment
    (the function is smooth and single-peaked between levels). Speeds
    below the lowest level are included: there the envelope interpolates
    towards idle, where the ratio ``theta*P(s_1) / P(s)`` grows without
    bound as ``s -> 0`` for ``alpha > 1``... *per unit of time*. Per unit
    of **work** the idle-segment overhead is bounded by
    ``(s_1 / s)**(alpha-1) * (s / s_1) ... `` — not informative — so this
    helper reports the supremum over ``[s_1, s_L]`` only, which is the
    regime the E11 ablation sweeps (workloads keep realized speeds above
    the bottom level).
    """
    if not (alpha > 1.0):
        raise InvalidParameterError(f"alpha must be > 1, got {alpha}")
    arr = speed_set.as_array()
    if arr.size == 1:
        return 1.0
    worst = 1.0
    for lo, hi in zip(arr[:-1], arr[1:]):
        # Sample densely; the ratio is smooth with one interior maximum.
        s = np.linspace(lo, hi, 513)[1:-1]
        p_lo, p_hi = lo**alpha, hi**alpha
        theta = (s - lo) / (hi - lo)
        env = theta * p_hi + (1.0 - theta) * p_lo
        worst = max(worst, float(np.max(env / s**alpha)))
    return worst
