"""Discrete speed levels — the SpeedStep/PowerNow! substrate.

The paper's introduction motivates speed scaling with real dynamic
voltage/frequency technologies, which expose a *finite* menu of speeds
rather than a continuum. This subpackage adapts the library to that
setting:

* :class:`SpeedSet` — a validated menu of levels with bracketing queries.
* :class:`DiscreteEnvelopePower` — the piecewise-linear effective power
  of a menu (the certified optimum for any fixed work assignment), plus
  :func:`worst_overhead_factor` bounding the discretization premium.
* :func:`discretize_schedule` — optimal two-adjacent-level emulation of
  any continuous schedule, preserving work and feasibility exactly.
* :func:`run_pd_discrete` — the end-to-end pipeline: screen
  menu-infeasible jobs, run the paper's PD, degrade gracefully past the
  top speed, round onto the menu.

The E11 ablation (``benchmarks/bench_e11_discrete.py``) sweeps menu
granularity and shows the measured overhead tracking the analytic
envelope bound and vanishing as the menu refines.
"""

from .envelope import DiscreteEnvelopePower, envelope_energy, worst_overhead_factor
from .pd_discrete import (
    DiscretePDResult,
    menu_covering_schedule,
    menu_infeasible_mask,
    run_pd_discrete,
)
from .rounding import DiscreteSchedule, discretize_schedule, discretize_segment
from .speedset import Bracket, SpeedSet

__all__ = [
    "SpeedSet",
    "Bracket",
    "DiscreteEnvelopePower",
    "envelope_energy",
    "worst_overhead_factor",
    "DiscreteSchedule",
    "discretize_schedule",
    "discretize_segment",
    "DiscretePDResult",
    "run_pd_discrete",
    "menu_infeasible_mask",
    "menu_covering_schedule",
]
