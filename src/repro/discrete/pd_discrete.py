"""PD on a discrete speed menu: screen, schedule, round.

The paper's algorithm assumes a speed continuum. Real SpeedStep-style
processors offer a finite menu with a *top speed*, which changes the
problem in two ways:

1. **Feasibility.** A job whose required average speed exceeds the top
   level can never finish (jobs are nonparallel, so extra processors do
   not help). Such jobs must be rejected up front — their value is an
   unavoidable loss on this hardware.
2. **Energy.** Between menu levels the processor time-shares two adjacent
   levels, paying the envelope premium analysed in
   :mod:`repro.discrete.envelope`.

:func:`run_pd_discrete` composes the continuous PD with both adaptations:
it force-rejects menu-infeasible jobs, runs PD on the rest, and if the
realized schedule still tops out above the fastest level (several
accepted jobs stacking up in a tight window) it degrades gracefully by
dropping the cheapest violating job and re-running — a deterministic
heuristic, clearly separated from the paper's theorem, whose behaviour
the E11 ablation quantifies. The resulting cost is within a factor
``worst_overhead_factor(menu, alpha)`` of the continuous PD cost whenever
no screening triggers, which combined with Theorem 3 gives an end-to-end
``overhead * alpha**alpha`` guarantee against the *continuous* optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..core.pd import PDResult, run_pd
from ..errors import InvalidParameterError
from ..model.job import Instance
from .rounding import DiscreteSchedule, discretize_schedule
from .speedset import SpeedSet

__all__ = [
    "DiscretePDResult",
    "run_pd_discrete",
    "menu_infeasible_mask",
    "menu_covering_schedule",
]

#: Safety margin when comparing realized speeds against the top level.
_CAP_TOL = 1e-9


def menu_infeasible_mask(instance: Instance, speed_set: SpeedSet) -> np.ndarray:
    """Boolean mask of jobs that cannot finish on this menu.

    A job needs average speed ``workload / span`` while it runs; since a
    job occupies at most one processor at a time, the menu's top level is
    a hard per-job speed limit regardless of ``m``.
    """
    spans = instance.deadlines - instance.releases
    return instance.workloads / spans > speed_set.max_speed * (1.0 + _CAP_TOL)


def menu_covering_schedule(
    result: PDResult, count: int, *, floor_fraction: float = 0.05
) -> SpeedSet:
    """A geometric menu that covers every speed a PD run actually used.

    Convenience for experiments: the top level is the fastest realized
    processor speed, the bottom level a ``floor_fraction`` of it (clamped
    to the slowest positive realized speed if that is lower). With this
    menu :func:`run_pd_discrete` never needs to screen or degrade, so the
    measured overhead isolates the pure two-level emulation premium.
    """
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    speeds = result.schedule.processor_speed_matrix()
    positive = speeds[speeds > 0.0]
    if positive.size == 0:
        raise InvalidParameterError("the schedule runs nothing; no menu to build")
    top = float(positive.max())
    bottom = min(float(positive.min()), top * floor_fraction)
    if count == 1 or bottom >= top:
        return SpeedSet([top])
    return SpeedSet.geometric(bottom, top, count)


@dataclass(frozen=True)
class DiscretePDResult:
    """Outcome of PD adapted to a finite speed menu.

    Attributes
    ----------
    instance:
        The *original* instance (including screened jobs).
    speed_set:
        The menu.
    continuous:
        The PD run on the surviving sub-instance (continuous speeds).
    discrete:
        The rounded schedule of that run.
    kept_ids:
        Original job ids of the jobs PD actually saw, in the order they
        appear in ``continuous.schedule.instance``.
    screened_ids:
        Original job ids force-rejected before (density cap) or during
        (stack cap) the run; their values are paid in full.
    """

    instance: Instance
    speed_set: SpeedSet
    continuous: PDResult
    discrete: DiscreteSchedule
    kept_ids: tuple[int, ...]
    screened_ids: tuple[int, ...]

    @cached_property
    def screened_value(self) -> float:
        """Total value of jobs rejected by screening/degradation."""
        return float(sum(self.instance.values[list(self.screened_ids)], 0.0))

    @property
    def cost(self) -> float:
        """Discrete energy + all lost value (screened jobs included)."""
        return self.discrete.energy + self.discrete.lost_value + self.screened_value

    @property
    def continuous_cost(self) -> float:
        """Cost of the continuous PD run plus screened value (comparison baseline)."""
        return self.continuous.cost + self.screened_value

    @property
    def overhead(self) -> float:
        """Energy-only rounding premium ``discrete.energy / continuous energy``."""
        return self.discrete.overhead

    @property
    def accepted_original_ids(self) -> tuple[int, ...]:
        """Original ids of jobs the discrete run finishes."""
        mask = self.continuous.accepted_mask
        return tuple(
            oid for oid, acc in zip(self.kept_ids, mask) if bool(acc)
        )

    def summary(self) -> str:
        """Human-readable run summary."""
        return (
            f"Discrete PD on {self.speed_set.count} level(s) "
            f"[{self.speed_set.min_speed:.4g}, {self.speed_set.max_speed:.4g}]\n"
            f"  screened {len(self.screened_ids)}/{self.instance.n} jobs, "
            f"energy overhead x{self.overhead:.4f}\n"
            f"  cost {self.cost:.6g} (continuous: {self.continuous_cost:.6g})"
        )


def _max_realized_speed(result: PDResult) -> tuple[float, int]:
    """Fastest realized speed and the sub-instance id of a job running at it."""
    best_speed, best_job = 0.0, -1
    for interval in result.schedule.realize():
        for seg in interval.segments:
            if seg.speed > best_speed:
                best_speed, best_job = seg.speed, seg.job
    return best_speed, best_job


def run_pd_discrete(
    instance: Instance,
    speed_set: SpeedSet,
    *,
    delta: float | None = None,
    max_degrade_rounds: int | None = None,
) -> DiscretePDResult:
    """Run PD and emulate the result on a finite speed menu.

    Pipeline:

    1. force-reject jobs whose density exceeds the top level
       (:func:`menu_infeasible_mask`);
    2. run continuous PD on the rest;
    3. while some realized segment exceeds the top level, force-reject the
       smallest-value *accepted* job running in such a segment and re-run
       (bounded by ``max_degrade_rounds``, default ``n``);
    4. round the final continuous schedule onto the menu.

    The returned :class:`DiscretePDResult` accounts the screened jobs'
    values into :attr:`~DiscretePDResult.cost`, so costs remain comparable
    with continuous runs on the full instance.

    Raises
    ------
    InvalidParameterError
        If every job gets screened (nothing left to schedule) or the
        degradation loop fails to reach feasibility within its budget
        (cannot happen: dropping all violating jobs is always sufficient).
    """
    ordered = instance.sorted_by_release()
    infeasible = menu_infeasible_mask(ordered, speed_set)
    kept = [j for j in range(ordered.n) if not infeasible[j]]
    screened = [j for j in range(ordered.n) if infeasible[j]]
    if not kept:
        raise InvalidParameterError(
            "every job exceeds the menu's top speed; nothing schedulable"
        )

    rounds = ordered.n if max_degrade_rounds is None else int(max_degrade_rounds)
    result = run_pd(ordered.restrict(kept), delta=delta)
    for _ in range(rounds + 1):
        top_speed, sub_job = _max_realized_speed(result)
        if top_speed <= speed_set.max_speed * (1.0 + _CAP_TOL):
            break
        # Drop the cheapest accepted job among those in violating segments.
        violating: set[int] = set()
        for interval in result.schedule.realize():
            for seg in interval.segments:
                if seg.speed > speed_set.max_speed * (1.0 + _CAP_TOL):
                    violating.add(seg.job)
        accepted = {
            j for j in violating if bool(result.accepted_mask[j])
        }
        if not accepted:  # pragma: no cover - defensive; speeds come from loads
            raise InvalidParameterError(
                "realized over-speed segment with no accepted job to drop"
            )
        sub = result.schedule.instance
        drop_sub_id = min(accepted, key=lambda j: (sub.jobs[j].value, j))
        drop_original = kept[drop_sub_id]
        screened.append(drop_original)
        kept = [j for j in kept if j != drop_original]
        if not kept:
            raise InvalidParameterError(
                "degradation screened every job; menu top speed too low"
            )
        result = run_pd(ordered.restrict(kept), delta=delta)
    else:  # pragma: no cover - loop always breaks: each round removes a job
        raise InvalidParameterError("degradation loop exceeded its budget")

    discrete = discretize_schedule(result.schedule, speed_set)
    return DiscretePDResult(
        instance=ordered,
        speed_set=speed_set,
        continuous=result,
        discrete=discrete,
        kept_ids=tuple(kept),
        screened_ids=tuple(sorted(screened)),
    )
