"""Round a continuous schedule onto a discrete speed menu.

Every algorithm in the library emits schedules whose realized segments run
at arbitrary real speeds. This module converts such a schedule into one
that only uses menu levels, by replacing each constant-speed segment with
its optimal two-level emulation (see :mod:`repro.discrete.envelope`):
the segment's time window is split into a leading part at the upper
adjacent level and a trailing part at the lower adjacent level (or idle),
preserving the work processed *exactly* and keeping the job on the same
processor in the same window — so feasibility (one job per processor, no
job on two processors at once) transfers verbatim from the continuous
schedule.

The resulting :class:`DiscreteSchedule` carries both energies, the lost
value (unchanged — rounding never alters acceptance decisions), and the
overhead ratio that the E11 ablation sweeps as the menu refines.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..chen.mcnaughton import Segment
from ..errors import InvalidParameterError
from ..model.power import PowerFunction
from ..model.schedule import Schedule
from .envelope import DiscreteEnvelopePower
from .speedset import SpeedSet

__all__ = ["DiscreteSchedule", "discretize_segment", "discretize_schedule"]

#: Sub-segments shorter than this are dropped (floating-point dust).
_DURATION_EPS = 1e-12


def discretize_segment(segment: Segment, speed_set: SpeedSet) -> list[Segment]:
    """Optimal two-level emulation of one constant-speed segment.

    The fast part comes first and the slow (possibly idle) part second;
    the order inside the window is irrelevant for both energy and
    feasibility, but fixing it keeps output deterministic. Work is
    preserved exactly: ``theta*hi + (1-theta)*lo == segment.speed`` by
    construction of the bracket.

    Raises
    ------
    InvalidParameterError
        If the segment's speed exceeds the menu's top level.
    """
    if segment.speed <= 0.0 or segment.duration <= _DURATION_EPS:
        return []
    bracket = speed_set.bracket(segment.speed)
    if bracket.theta >= 1.0 or bracket.lo == bracket.hi:
        # Already at a level (or rounded up to one by the bracket).
        return [
            Segment(
                job=segment.job,
                processor=segment.processor,
                start=segment.start,
                end=segment.end,
                speed=bracket.hi,
            )
        ]
    t_fast = bracket.theta * segment.duration
    out: list[Segment] = []
    if t_fast > _DURATION_EPS:
        out.append(
            Segment(
                job=segment.job,
                processor=segment.processor,
                start=segment.start,
                end=segment.start + t_fast,
                speed=bracket.hi,
            )
        )
    if bracket.lo > 0.0 and segment.duration - t_fast > _DURATION_EPS:
        out.append(
            Segment(
                job=segment.job,
                processor=segment.processor,
                start=segment.start + t_fast,
                end=segment.end,
                speed=bracket.lo,
            )
        )
    return out


@dataclass(frozen=True)
class DiscreteSchedule:
    """A continuous schedule together with its menu-level emulation.

    Attributes
    ----------
    source:
        The continuous schedule that was rounded.
    speed_set:
        The menu used.
    segments:
        All discrete segments across the horizon, each running at a menu
        level. Same processors and windows as the continuous realization.
    """

    source: Schedule
    speed_set: SpeedSet
    segments: tuple[Segment, ...]

    @cached_property
    def energy(self) -> float:
        """Total energy of the discrete segments under the instance's power law."""
        power: PowerFunction = self.source.instance.power
        return float(
            sum(power(seg.speed) * seg.duration for seg in self.segments)
        )

    @property
    def continuous_energy(self) -> float:
        """Energy of the continuous source schedule."""
        return self.source.energy

    @property
    def lost_value(self) -> float:
        """Value of rejected jobs — identical to the source schedule's."""
        return self.source.lost_value

    @property
    def cost(self) -> float:
        """Discrete energy plus lost value (Equation (1) on the menu)."""
        return self.energy + self.lost_value

    @property
    def overhead(self) -> float:
        """``discrete energy / continuous energy`` (1.0 when both are 0)."""
        cont = self.continuous_energy
        if cont <= 0.0:
            return 1.0
        return self.energy / cont

    def work_by_job(self) -> dict[int, float]:
        """Total discrete work per job id — must match the source loads."""
        acc: dict[int, float] = {}
        for seg in self.segments:
            acc[seg.job] = acc.get(seg.job, 0.0) + seg.work
        return acc

    def validate(self, *, rel_tol: float = 1e-9) -> None:
        """Check the emulation invariants.

        * every segment speed is a menu level,
        * per-job work matches the continuous loads to relative tolerance,
        * segments on one processor do not overlap, and no job runs on two
          processors at once.
        """
        for seg in self.segments:
            if not self.speed_set.is_level(seg.speed):
                raise InvalidParameterError(
                    f"segment speed {seg.speed} is not a menu level"
                )
        want = self.source.work_done()
        got = self.work_by_job()
        for j in range(self.source.instance.n):
            have = got.get(j, 0.0)
            if abs(have - want[j]) > rel_tol * max(1.0, want[j]):
                raise InvalidParameterError(
                    f"job {j}: discrete work {have} != continuous work {want[j]}"
                )
        _check_disjoint(self.segments)


def _check_disjoint(segments: tuple[Segment, ...]) -> None:
    """No processor runs two segments at once; no job self-overlaps."""
    by_proc: dict[int, list[Segment]] = {}
    by_job: dict[int, list[Segment]] = {}
    for seg in segments:
        by_proc.setdefault(seg.processor, []).append(seg)
        by_job.setdefault(seg.job, []).append(seg)
    for key, group in list(by_proc.items()) + list(by_job.items()):
        group.sort(key=lambda s: s.start)
        for a, b in zip(group, group[1:]):
            if a.end > b.start + 1e-9:
                raise InvalidParameterError(
                    f"overlapping segments around t={b.start} (group {key})"
                )


def discretize_schedule(schedule: Schedule, speed_set: SpeedSet) -> DiscreteSchedule:
    """Emulate ``schedule`` on the menu, two levels per original segment.

    The continuous schedule is first realized into explicit
    ``(job, processor, start, end, speed)`` segments via Chen et al. +
    McNaughton, then each segment is rounded independently. Because each
    rounded pair stays inside its source window on its source processor,
    the discrete schedule is feasible whenever the source is, and its
    energy equals ``sum(envelope(speed) * duration)`` over the source
    segments — the certified optimum for this work assignment.

    Raises
    ------
    InvalidParameterError
        If any realized speed exceeds the menu's top level (the instance
        then simply cannot be served with this assignment on this menu —
        callers wanting graceful degradation should screen jobs first, see
        :func:`repro.discrete.pd_discrete.run_pd_discrete`).
    """
    segments: list[Segment] = []
    for interval in schedule.realize():
        for seg in interval.segments:
            segments.extend(discretize_segment(seg, speed_set))
    segments.sort(key=lambda s: (s.processor, s.start))
    out = DiscreteSchedule(
        source=schedule, speed_set=speed_set, segments=tuple(segments)
    )
    # Cross-check the closed form: discrete energy == envelope energy.
    env = DiscreteEnvelopePower(speed_set, schedule.instance.power)
    expected = 0.0
    for interval in schedule.realize():
        for seg in interval.segments:
            expected += env(seg.speed) * seg.duration
    if abs(out.energy - expected) > 1e-6 * max(1.0, expected):
        raise InvalidParameterError(
            f"internal accounting mismatch: segments give {out.energy}, "
            f"envelope gives {expected}"
        )
    return out
