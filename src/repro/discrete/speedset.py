"""Finite speed-level sets for discretely speed-scalable processors.

The paper's motivation names Intel SpeedStep and AMD PowerNow!, which do
not offer a continuum of speeds: a real processor exposes a finite menu
``s_1 < s_2 < ... < s_L`` of frequency steps. This module provides the
:class:`SpeedSet` value object the discrete substrate is built on —
validated, sorted, deduplicated levels plus the bracketing and
interpolation queries that the two-adjacent-level emulation theorem
(see :mod:`repro.discrete.envelope`) needs.

Construction helpers cover the grids used in practice and in the E11
ablation: geometric grids (constant frequency ratio between steps, the
common hardware design) and linear grids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..errors import InvalidParameterError
from ..types import FloatArray

__all__ = ["SpeedSet", "Bracket"]

#: Two levels closer than this (relatively) collapse into one.
_LEVEL_REL_TOL = 1e-12


@dataclass(frozen=True, slots=True)
class Bracket:
    """Adjacent levels surrounding a target speed, with the time split.

    Running the fraction ``theta`` of a window at ``hi`` and ``1 - theta``
    at ``lo`` yields average speed ``theta * hi + (1 - theta) * lo``.
    For a target speed below the lowest level, ``lo`` is the idle state
    (speed 0, power 0) and ``hi`` is the lowest level.
    """

    lo: float
    hi: float
    theta: float

    def average(self) -> float:
        """The emulated average speed ``theta*hi + (1-theta)*lo``."""
        return self.theta * self.hi + (1.0 - self.theta) * self.lo


@dataclass(frozen=True)
class SpeedSet:
    """An immutable, sorted menu of strictly positive speed levels.

    Parameters
    ----------
    levels:
        The available speeds. Any iterable of positive finite numbers;
        duplicates (up to relative tolerance) are merged and the result
        is sorted ascending.

    Examples
    --------
    >>> s = SpeedSet([1.0, 2.0, 4.0])
    >>> s.max_speed
    4.0
    >>> b = s.bracket(3.0)
    >>> (b.lo, b.hi, round(b.theta, 12))
    (2.0, 4.0, 0.5)
    """

    levels: tuple[float, ...]

    def __init__(self, levels: Iterable[float]) -> None:
        cleaned = sorted(float(s) for s in levels)
        if not cleaned:
            raise InvalidParameterError("a speed set needs at least one level")
        for s in cleaned:
            if not math.isfinite(s) or s <= 0.0:
                raise InvalidParameterError(
                    f"speed levels must be finite and > 0, got {s!r}"
                )
        merged: list[float] = [cleaned[0]]
        for s in cleaned[1:]:
            if s - merged[-1] > _LEVEL_REL_TOL * max(1.0, s):
                merged.append(s)
        object.__setattr__(self, "levels", tuple(merged))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def geometric(cls, s_min: float, s_max: float, count: int) -> "SpeedSet":
        """``count`` levels from ``s_min`` to ``s_max`` at a constant ratio.

        This is the hardware-realistic grid (frequency steps multiply by a
        constant factor) and the family swept by the E11 ablation.
        """
        if count < 1:
            raise InvalidParameterError(f"count must be >= 1, got {count}")
        if count == 1:
            return cls([s_max])
        if not (0.0 < s_min < s_max):
            raise InvalidParameterError(
                f"need 0 < s_min < s_max, got s_min={s_min}, s_max={s_max}"
            )
        return cls(np.geomspace(s_min, s_max, count).tolist())

    @classmethod
    def linear(cls, s_min: float, s_max: float, count: int) -> "SpeedSet":
        """``count`` equally spaced levels from ``s_min`` to ``s_max``."""
        if count < 1:
            raise InvalidParameterError(f"count must be >= 1, got {count}")
        if count == 1:
            return cls([s_max])
        if not (0.0 < s_min < s_max):
            raise InvalidParameterError(
                f"need 0 < s_min < s_max, got s_min={s_min}, s_max={s_max}"
            )
        return cls(np.linspace(s_min, s_max, count).tolist())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.levels)

    @property
    def min_speed(self) -> float:
        return self.levels[0]

    @property
    def max_speed(self) -> float:
        return self.levels[-1]

    @property
    def max_ratio(self) -> float:
        """Largest ratio between consecutive levels (1.0 for one level).

        Controls the worst-case discretization overhead: the coarser the
        menu (larger ratio), the more energy two-level emulation pays over
        the continuous optimum.
        """
        if self.count == 1:
            return 1.0
        arr = np.asarray(self.levels)
        return float(np.max(arr[1:] / arr[:-1]))

    def as_array(self) -> FloatArray:
        """The levels as a float64 array (ascending)."""
        return np.asarray(self.levels, dtype=np.float64)

    def __iter__(self) -> Iterator[float]:
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    def __contains__(self, speed: object) -> bool:
        if not isinstance(speed, (int, float)):
            return False
        return self.is_level(float(speed))

    def is_level(self, speed: float, *, rel_tol: float = 1e-9) -> bool:
        """Whether ``speed`` coincides with a menu level (or 0 = idle)."""
        if speed <= 0.0:
            return speed == 0.0
        idx = int(np.searchsorted(self.as_array(), speed))
        for j in (idx - 1, idx):
            if 0 <= j < self.count and math.isclose(
                self.levels[j], speed, rel_tol=rel_tol
            ):
                return True
        return False

    def bracket(self, speed: float) -> Bracket:
        """Adjacent levels around ``speed`` and the emulation time split.

        For ``speed`` between two levels the bracket is the unique
        adjacent pair; below the lowest level it pairs idle (0) with the
        lowest level; at an exact level ``theta = 1`` with ``lo = hi``.

        Raises
        ------
        InvalidParameterError
            If ``speed`` exceeds the top level — no discrete emulation can
            average faster than the fastest step.
        """
        if speed < 0.0:
            raise InvalidParameterError(f"speed must be >= 0, got {speed}")
        if speed > self.max_speed * (1.0 + 1e-12):
            raise InvalidParameterError(
                f"speed {speed} exceeds the top level {self.max_speed}; "
                "the instance is infeasible for this speed set"
            )
        speed = min(speed, self.max_speed)
        if speed == 0.0:
            return Bracket(lo=0.0, hi=0.0, theta=0.0)
        arr = self.as_array()
        idx = int(np.searchsorted(arr, speed))
        if idx < self.count and math.isclose(arr[idx], speed, rel_tol=1e-15):
            level = float(arr[idx])
            return Bracket(lo=level, hi=level, theta=1.0)
        lo = float(arr[idx - 1]) if idx > 0 else 0.0
        hi = float(arr[min(idx, self.count - 1)])
        if math.isclose(hi, lo):
            return Bracket(lo=hi, hi=hi, theta=1.0)
        theta = (speed - lo) / (hi - lo)
        return Bracket(lo=lo, hi=hi, theta=min(max(theta, 0.0), 1.0))

    def round_down(self, speed: float) -> float:
        """The largest level ``<= speed`` (0.0 if below the lowest level)."""
        if speed < self.min_speed:
            return 0.0
        arr = self.as_array()
        idx = int(np.searchsorted(arr, speed * (1.0 + 1e-15), side="right"))
        return float(arr[max(idx - 1, 0)])

    def round_up(self, speed: float) -> float:
        """The smallest level ``>= speed``.

        Raises
        ------
        InvalidParameterError
            If ``speed`` exceeds the top level.
        """
        if speed > self.max_speed * (1.0 + 1e-12):
            raise InvalidParameterError(
                f"speed {speed} exceeds the top level {self.max_speed}"
            )
        arr = self.as_array()
        idx = int(np.searchsorted(arr, speed * (1.0 - 1e-15)))
        return float(arr[min(idx, self.count - 1)])
