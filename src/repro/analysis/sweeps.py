"""Reusable experiment sweeps over instance families and parameters.

The benchmarks' one-off loops share a common shape: run an algorithm
across a parameter grid, collect per-cell summaries, render a table.
This module provides that shape as a small library so that notebooks,
examples, and downstream users can define new experiments in a few lines
instead of copying harness code.

The grid functions here are thin declarative wrappers over the engine
(:class:`repro.engine.ExperimentSpec` compiled and executed by a
:class:`repro.engine.BatchRunner`): every sweep accepts an optional
``runner=`` to run its cells on a process pool and/or against a
content-addressed result cache (directory or sqlite backend — the
runner doesn't care). The default (no runner) evaluates serially
in-process — same results, bit for bit. Certified ratios are filled for
exactly the algorithms whose registry entry declares the
``certificate-producing`` capability (``pd``, ``pd-aug``, ``cll``, ...);
other algorithms report ``NaN`` rather than a fake number. Algorithm
knobs sweep as *variant axes* (``pd?delta=...`` registry variants under
the hood), so every knob setting carries its own cache key — and
workload knobs sweep as *workload axes* (``heavy-tail?alpha=3.0``
registry specs, see :func:`workload_comparison`), with the same
canonical-name / shared-cache-key property on the instance side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.pd import run_pd
from ..engine.experiment import ExperimentCell, ExperimentSpec, run_experiment
from ..engine.runner import BatchRunner
from ..errors import InvalidParameterError
from ..model.job import Instance

__all__ = [
    "SweepCell",
    "ratio_sweep",
    "acceptance_curve",
    "processor_scaling_curve",
    "delta_ablation_curve",
    "menu_granularity_curve",
    "augmentation_curve",
    "workload_comparison",
    "format_cells",
]


@dataclass(frozen=True)
class SweepCell:
    """One cell of a sweep: parameters plus aggregated measurements."""

    params: dict
    mean_cost: float
    worst_certified_ratio: float
    mean_acceptance: float
    runs: int

    def row(self) -> str:
        keys = " ".join(f"{k}={v!r}" for k, v in self.params.items())
        return (
            f"{keys:<32} cost={self.mean_cost:>12.4f} "
            f"worst_ratio={self.worst_certified_ratio:>8.3f} "
            f"acc={100 * self.mean_acceptance:>5.1f}%"
        )


def _to_sweep_cell(cell: ExperimentCell, params: dict) -> SweepCell:
    return SweepCell(
        params=params,
        mean_cost=float(cell.mean_cost),
        worst_certified_ratio=float(cell.worst_certified_ratio),
        mean_acceptance=float(cell.mean_acceptance),
        runs=cell.runs,
    )


def ratio_sweep(
    family: Callable[..., Instance],
    *,
    alphas: Sequence[float],
    ms: Sequence[int],
    n: int = 20,
    seeds: Iterable[int] = range(3),
    runner: BatchRunner | None = None,
    **family_kwargs,
) -> list[SweepCell]:
    """PD certificate ratios over an (alpha, m) grid for one family.

    ``family`` must accept ``(n, m=..., alpha=..., seed=...)`` — all
    generators in :mod:`repro.workloads` do.
    """
    spec = ExperimentSpec(
        name="ratio_sweep",
        family=family,
        grid={"alpha": list(alphas), "m": list(ms)},
        algorithms=("pd",),
        n=n,
        seeds=tuple(seeds),
        family_kwargs=dict(family_kwargs),
    )
    return [
        _to_sweep_cell(cell, dict(cell.params))
        for cell in run_experiment(spec, runner)
    ]


def acceptance_curve(
    family: Callable[..., Instance],
    *,
    value_multipliers: Sequence[float],
    n: int = 20,
    m: int = 1,
    alpha: float = 3.0,
    seeds: Iterable[int] = range(3),
    runner: BatchRunner | None = None,
    **family_kwargs,
) -> list[SweepCell]:
    """Acceptance rate as job values scale up — the admission S-curve.

    At multiplier → 0 everything is rejected; at → ∞ everything is
    accepted; the transition region is where the rejection policy earns
    its competitive ratio.
    """
    spec = ExperimentSpec(
        name="acceptance_curve",
        family=family,
        grid={"value_x": list(value_multipliers)},
        algorithms=("pd",),
        n=n,
        seeds=tuple(seeds),
        family_kwargs={"m": m, "alpha": alpha, **family_kwargs},
    )
    return [
        _to_sweep_cell(cell, dict(cell.params))
        for cell in run_experiment(spec, runner)
    ]


def processor_scaling_curve(
    instance: Instance,
    *,
    ms: Sequence[int],
    algorithm: str = "pd",
    runner: BatchRunner | None = None,
) -> list[SweepCell]:
    """One fixed job set re-run across machine sizes.

    The certified ratio is populated whenever the algorithm's registry
    entry declares the ``certificate-producing`` capability (``pd``,
    ``pd-aug``, ``cll``, and future profit algorithms); algorithms
    without a certificate report ``NaN``.
    """
    spec = ExperimentSpec(
        name="processor_scaling_curve",
        base_instance=instance,
        grid={"m": list(ms)},
        algorithms=(algorithm,),
    )
    return [
        _to_sweep_cell(cell, {"m": cell.params["m"], "algorithm": algorithm})
        for cell in run_experiment(spec, runner)
    ]


def delta_ablation_curve(
    family: Callable[..., Instance],
    *,
    deltas: Sequence[float],
    n: int = 20,
    m: int = 1,
    alpha: float = 3.0,
    seeds: Iterable[int] = range(3),
    runner: BatchRunner | None = None,
    **family_kwargs,
) -> list[SweepCell]:
    """E9 as a library call: PD's certificate across a delta grid.

    Each delta setting runs as the ``pd?delta=...`` registry variant —
    a first-class entry with PD's certificate hook and its own cache
    key, so re-running with one new delta recomputes only that column.
    The paper's optimum is ``delta* = alpha**(1 - alpha)``; ratios
    degrade away from it in both directions.
    """
    deltas = [float(d) for d in deltas]  # materialize: generators welcome
    if not deltas:
        raise InvalidParameterError("need at least one delta")
    spec = ExperimentSpec(
        name="delta_ablation_curve",
        family=family,
        algorithms=("pd",),
        variants={"delta": deltas},
        n=n,
        seeds=tuple(seeds),
        family_kwargs={"m": m, "alpha": alpha, **family_kwargs},
    )
    return [
        _to_sweep_cell(cell, dict(cell.params))
        for cell in run_experiment(spec, runner)
    ]


def workload_comparison(
    workloads: Sequence[str],
    *,
    algorithms: Sequence[str] = ("pd",),
    n: int = 20,
    seeds: Iterable[int] = range(3),
    runner: BatchRunner | None = None,
    **family_kwargs,
) -> list[SweepCell]:
    """A set of algorithms across a declarative *workload axis*.

    Each ``workloads`` entry is a registry spec —
    ``"heavy-tail?n=64&alpha=3.0"`` pins that family's knobs inline —
    resolved through :data:`repro.workloads.registry.WORKLOADS` to its
    canonical name, which labels the cell (``params["workload"]``) and
    guarantees every spelling of a workload shares one cache key. One
    cell per (workload × algorithm), workloads varying slowest. This
    replaces the hand-built "list of instances per family" loop the
    benchmarks used to carry.
    """
    workloads = list(workloads)  # materialize: generators welcome
    if not workloads:
        raise InvalidParameterError("need at least one workload")
    spec = ExperimentSpec(
        name="workload_comparison",
        workloads=tuple(workloads),
        algorithms=tuple(algorithms),
        n=n,
        seeds=tuple(seeds),
        family_kwargs=dict(family_kwargs),
    )
    return [
        _to_sweep_cell(cell, {"algorithm": cell.algorithm, **cell.params})
        for cell in run_experiment(spec, runner)
    ]


def format_cells(cells: Sequence[SweepCell], title: str = "") -> str:
    """Render cells as a plain-text table."""
    lines = [title] if title else []
    lines.extend(cell.row() for cell in cells)
    return "\n".join(lines)


def menu_granularity_curve(
    family: Callable[..., Instance],
    *,
    level_counts: Sequence[int],
    n: int = 15,
    m: int = 1,
    alpha: float = 3.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> list[tuple[int, float, float]]:
    """E11 as a library call: worst discretization overhead per menu size.

    For each level count, runs PD on every (family, seed) instance,
    builds the covering geometric menu, rounds, and records the worst
    measured overhead together with the analytic envelope bound.

    Returns ``(levels, worst_overhead, envelope_bound)`` rows, both
    ratios ``>= 1`` and the measured one never above the bound — the
    invariant the E11 bench asserts, available here for custom families.
    """
    from ..discrete import (
        discretize_schedule,
        menu_covering_schedule,
        worst_overhead_factor,
    )

    if not level_counts:
        raise InvalidParameterError("need at least one level count")
    results = [run_pd(family(n, m=m, alpha=alpha, seed=s)) for s in seeds]
    rows: list[tuple[int, float, float]] = []
    for count in level_counts:
        worst = 1.0
        bound = 1.0
        for result in results:
            menu = menu_covering_schedule(result, count)
            worst = max(
                worst, discretize_schedule(result.schedule, menu).overhead
            )
            bound = max(bound, worst_overhead_factor(menu, alpha))
        rows.append((int(count), worst, bound))
    return rows


def augmentation_curve(
    instance: Instance,
    *,
    epsilons: Sequence[float],
    runner: BatchRunner | None = None,
) -> list[tuple[float, float, float]]:
    """E12 as a library call: profit under growing speed augmentation.

    Returns ``(epsilon, profit, energy)`` rows for the given instance.
    Profit is non-decreasing in epsilon whenever the acceptance set
    stabilizes (more speed never hurts a fixed acceptance set).

    Each epsilon runs as the ``pd-aug?epsilon=...`` registry variant;
    profit is recovered from the records by the exact complementarity
    ``profit = total_value - lost_value - energy``.
    """
    epsilons = [float(e) for e in epsilons]  # materialize: generators welcome
    if not epsilons:
        raise InvalidParameterError("need at least one epsilon")
    spec = ExperimentSpec(
        name="augmentation_curve",
        base_instance=instance,
        algorithms=("pd-aug",),
        variants={"epsilon": epsilons},
    )
    total = float(instance.total_value)
    rows: list[tuple[float, float, float]] = []
    for cell in run_experiment(spec, runner):
        (record,) = cell.records
        profit = total - record.lost_value - record.energy
        rows.append((cell.params["epsilon"], profit, record.energy))
    return rows
