"""Reusable experiment sweeps over instance families and parameters.

The benchmarks' one-off loops share a common shape: run an algorithm
across a parameter grid, collect per-cell summaries, render a table.
This module provides that shape as a small library so that notebooks,
examples, and downstream users can define new experiments in a few lines
instead of copying harness code.

Everything is deterministic given the seeds; cells are independent, so a
sweep is trivially parallelizable by the caller if ever needed (the
default sizes run in seconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.pd import run_pd
from ..core.simulator import run_algorithm
from ..errors import InvalidParameterError
from ..model.job import Instance
from .certificates import dual_certificate

__all__ = [
    "SweepCell",
    "ratio_sweep",
    "acceptance_curve",
    "processor_scaling_curve",
    "menu_granularity_curve",
    "augmentation_curve",
    "format_cells",
]


@dataclass(frozen=True)
class SweepCell:
    """One cell of a sweep: parameters plus aggregated measurements."""

    params: dict
    mean_cost: float
    worst_certified_ratio: float
    mean_acceptance: float
    runs: int

    def row(self) -> str:
        keys = " ".join(f"{k}={v!r}" for k, v in self.params.items())
        return (
            f"{keys:<32} cost={self.mean_cost:>12.4f} "
            f"worst_ratio={self.worst_certified_ratio:>8.3f} "
            f"acc={100 * self.mean_acceptance:>5.1f}%"
        )


def ratio_sweep(
    family: Callable[..., Instance],
    *,
    alphas: Sequence[float],
    ms: Sequence[int],
    n: int = 20,
    seeds: Iterable[int] = range(3),
    **family_kwargs,
) -> list[SweepCell]:
    """PD certificate ratios over an (alpha, m) grid for one family.

    ``family`` must accept ``(n, m=..., alpha=..., seed=...)`` — all
    generators in :mod:`repro.workloads` do.
    """
    seeds = list(seeds)
    if not seeds:
        raise InvalidParameterError("need at least one seed")
    cells: list[SweepCell] = []
    for alpha in alphas:
        for m in ms:
            costs, ratios, accs = [], [], []
            for seed in seeds:
                inst = family(n, m=m, alpha=alpha, seed=seed, **family_kwargs)
                result = run_pd(inst)
                cert = dual_certificate(result)
                costs.append(cert.cost)
                ratios.append(cert.ratio)
                accs.append(float(result.accepted_mask.mean()))
            cells.append(
                SweepCell(
                    params={"alpha": alpha, "m": m},
                    mean_cost=float(np.mean(costs)),
                    worst_certified_ratio=float(np.max(ratios)),
                    mean_acceptance=float(np.mean(accs)),
                    runs=len(seeds),
                )
            )
    return cells


def acceptance_curve(
    family: Callable[..., Instance],
    *,
    value_multipliers: Sequence[float],
    n: int = 20,
    m: int = 1,
    alpha: float = 3.0,
    seeds: Iterable[int] = range(3),
    **family_kwargs,
) -> list[SweepCell]:
    """Acceptance rate as job values scale up — the admission S-curve.

    At multiplier → 0 everything is rejected; at → ∞ everything is
    accepted; the transition region is where the rejection policy earns
    its competitive ratio.
    """
    seeds = list(seeds)
    cells: list[SweepCell] = []
    for mult in value_multipliers:
        costs, ratios, accs = [], [], []
        for seed in seeds:
            base = family(n, m=m, alpha=alpha, seed=seed, **family_kwargs)
            inst = base.with_values([j.value * mult for j in base.jobs])
            result = run_pd(inst)
            cert = dual_certificate(result)
            costs.append(cert.cost)
            ratios.append(cert.ratio)
            accs.append(float(result.accepted_mask.mean()))
        cells.append(
            SweepCell(
                params={"value_x": mult},
                mean_cost=float(np.mean(costs)),
                worst_certified_ratio=float(np.max(ratios)),
                mean_acceptance=float(np.mean(accs)),
                runs=len(seeds),
            )
        )
    return cells


def processor_scaling_curve(
    instance: Instance,
    *,
    ms: Sequence[int],
    algorithm: str = "pd",
) -> list[SweepCell]:
    """One fixed job set re-run across machine sizes."""
    cells: list[SweepCell] = []
    for m in ms:
        inst = instance.with_machine(m=m)
        outcome = run_algorithm(algorithm, inst)
        if algorithm == "pd":
            ratio = dual_certificate(outcome.raw).ratio  # type: ignore[arg-type]
        else:
            ratio = float("nan")
        cells.append(
            SweepCell(
                params={"m": m, "algorithm": algorithm},
                mean_cost=outcome.cost,
                worst_certified_ratio=ratio,
                mean_acceptance=float(outcome.schedule.finished.mean()),
                runs=1,
            )
        )
    return cells


def format_cells(cells: Sequence[SweepCell], title: str = "") -> str:
    """Render cells as a plain-text table."""
    lines = [title] if title else []
    lines.extend(cell.row() for cell in cells)
    return "\n".join(lines)


def menu_granularity_curve(
    family: Callable[..., Instance],
    *,
    level_counts: Sequence[int],
    n: int = 15,
    m: int = 1,
    alpha: float = 3.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> list[tuple[int, float, float]]:
    """E11 as a library call: worst discretization overhead per menu size.

    For each level count, runs PD on every (family, seed) instance,
    builds the covering geometric menu, rounds, and records the worst
    measured overhead together with the analytic envelope bound.

    Returns ``(levels, worst_overhead, envelope_bound)`` rows, both
    ratios ``>= 1`` and the measured one never above the bound — the
    invariant the E11 bench asserts, available here for custom families.
    """
    from ..discrete import (
        discretize_schedule,
        menu_covering_schedule,
        worst_overhead_factor,
    )

    if not level_counts:
        raise InvalidParameterError("need at least one level count")
    results = [run_pd(family(n, m=m, alpha=alpha, seed=s)) for s in seeds]
    rows: list[tuple[int, float, float]] = []
    for count in level_counts:
        worst = 1.0
        bound = 1.0
        for result in results:
            menu = menu_covering_schedule(result, count)
            worst = max(
                worst, discretize_schedule(result.schedule, menu).overhead
            )
            bound = max(bound, worst_overhead_factor(menu, alpha))
        rows.append((int(count), worst, bound))
    return rows


def augmentation_curve(
    instance: Instance,
    *,
    epsilons: Sequence[float],
) -> list[tuple[float, float, float]]:
    """E12 as a library call: profit under growing speed augmentation.

    Returns ``(epsilon, profit, energy)`` rows for the given instance.
    Profit is non-decreasing in epsilon whenever the acceptance set
    stabilizes (more speed never hurts a fixed acceptance set).
    """
    from ..profit import run_pd_augmented

    if not epsilons:
        raise InvalidParameterError("need at least one epsilon")
    rows: list[tuple[float, float, float]] = []
    for eps in epsilons:
        out = run_pd_augmented(instance, float(eps))
        rows.append((float(eps), out.profit.profit, out.energy))
    return rows
