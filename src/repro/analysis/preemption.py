"""Preemption and migration accounting for realized schedules.

The paper's model allows free preemption and migration ("a running job
may be interrupted at any time and continued later on, possibly on a
different processor"), but real systems pay for both. This module counts
them in any realized schedule and pins the structural bounds the
substrate guarantees:

* **McNaughton bound** — inside one atomic interval, the wrap-around
  layout migrates at most ``p - 1`` pool jobs where ``p`` is the number
  of pool processors (a job migrates exactly when a strip boundary cuts
  it), so per-interval migrations are at most ``m - 1``.
* **Interval bound** — a job is preempted within an interval at most
  once (the wrap), so total preemptions are bounded by jobs' interval
  counts plus their migrations.

These counts make an honest footnote to every experiment: the energy
numbers of the model are achievable with the *bounded* context-switch
budget quantified here, not with unbounded fluidity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chen.mcnaughton import Segment
from ..model.schedule import Schedule

__all__ = ["PreemptionStats", "preemption_stats"]

#: Two segments of one job closer than this are one continuous run.
_TIME_EPS = 1e-9


@dataclass(frozen=True)
class PreemptionStats:
    """Context-switch accounting of a realized schedule.

    Attributes
    ----------
    segments:
        Total realized segments (maximal constant-speed runs).
    migrations:
        Times a job resumes on a *different* processor than it last ran
        on (counted across the whole horizon).
    preemptions:
        Times a job is interrupted and later resumes (same or different
        processor). Back-to-back segments on one processor (e.g. at an
        atomic-interval boundary with a speed change) do not count.
    max_migrations_per_interval:
        Worst per-atomic-interval migration count — the quantity the
        McNaughton bound ``m - 1`` caps.
    """

    segments: int
    migrations: int
    preemptions: int
    max_migrations_per_interval: int

    def row(self) -> str:
        """One-line fixed-width rendering for tables."""
        return (
            f"segments={self.segments:>4d} preemptions={self.preemptions:>4d} "
            f"migrations={self.migrations:>4d}"
        )


def _job_timeline(segments: list[Segment]) -> dict[int, list[Segment]]:
    by_job: dict[int, list[Segment]] = {}
    for seg in segments:
        by_job.setdefault(seg.job, []).append(seg)
    for runs in by_job.values():
        runs.sort(key=lambda s: (s.start, s.processor))
    return by_job


def preemption_stats(schedule: Schedule) -> PreemptionStats:
    """Count segments, preemptions, and migrations of a realized schedule."""
    intervals = schedule.realize()
    all_segments: list[Segment] = [
        seg for interval in intervals for seg in interval.segments
    ]

    by_job = _job_timeline(all_segments)
    migrations = 0
    preemptions = 0
    for runs in by_job.values():
        for prev, cur in zip(runs, runs[1:]):
            moved = cur.processor != prev.processor
            gap = cur.start - prev.end > _TIME_EPS
            if moved:
                migrations += 1
            if gap or moved:
                # A wrap migration is also an interruption of the run
                # (the two halves never overlap in time by construction).
                preemptions += 1

    worst_interval = 0
    for interval in intervals:
        by_job_iv = _job_timeline(list(interval.segments))
        count = sum(
            1
            for runs in by_job_iv.values()
            for prev, cur in zip(runs, runs[1:])
            if cur.processor != prev.processor
        )
        worst_interval = max(worst_interval, count)

    return PreemptionStats(
        segments=len(all_segments),
        migrations=migrations,
        preemptions=preemptions,
        max_migrations_per_interval=worst_interval,
    )
