"""Analysis layer: dual certificates, job categories, traces, metrics.

This package turns the paper's *proof* into executable checks:

* :func:`dual_certificate` — ``g(lambda~)`` and the Theorem 3 certificate
  ``cost(PD) <= alpha**alpha * g(lambda~)``.
* :func:`categorize` / :func:`lemma_bounds` — the J1/J2/J3 split and the
  inequalities of Lemmas 9–11.
* :func:`build_traces` / :func:`check_proposition7` — Section 4.2's job
  traces and Proposition 7's speed bounds.
* :func:`kkt_residual` (re-exported) — stationarity check for offline
  convex solutions.
* :func:`schedule_metrics` — summary statistics for benchmark tables.
"""

from ..offline.convex import kkt_residual
from .adversary import AdversaryResult, mutate_instance, search_adversarial
from .categories import (
    CategoryReport,
    LemmaBounds,
    categorize,
    category_threshold,
    lemma_bounds,
)
from .certificates import (
    DualCertificate,
    certificate_from_duals,
    contributing_jobs,
    dual_certificate,
)
from .hindsight import HindsightDecomposition, hindsight_decomposition
from .metrics import ScheduleMetrics, empirical_ratio, schedule_metrics
from .preemption import PreemptionStats, preemption_stats
from .report import AuditReport, audit_run
from .sweeps import (
    SweepCell,
    acceptance_curve,
    augmentation_curve,
    delta_ablation_curve,
    format_cells,
    menu_granularity_curve,
    processor_scaling_curve,
    ratio_sweep,
)
from .traces import TraceReport, build_traces, check_proposition7

__all__ = [
    "AdversaryResult",
    "search_adversarial",
    "mutate_instance",
    "PreemptionStats",
    "preemption_stats",
    "dual_certificate",
    "certificate_from_duals",
    "DualCertificate",
    "contributing_jobs",
    "categorize",
    "CategoryReport",
    "category_threshold",
    "lemma_bounds",
    "LemmaBounds",
    "build_traces",
    "TraceReport",
    "check_proposition7",
    "kkt_residual",
    "schedule_metrics",
    "ScheduleMetrics",
    "empirical_ratio",
    "audit_run",
    "AuditReport",
    "hindsight_decomposition",
    "HindsightDecomposition",
    "ratio_sweep",
    "menu_granularity_curve",
    "augmentation_curve",
    "delta_ablation_curve",
    "acceptance_curve",
    "processor_scaling_curve",
    "SweepCell",
    "format_cells",
]
