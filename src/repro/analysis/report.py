"""One-shot audit report for a PD run.

Bundles the dual certificate, the J1/J2/J3 category split, the lemma
bounds, and the Proposition 7 trace check into a single text document —
what you attach to a result when someone asks "why should I believe this
schedule is within alpha^alpha of optimal?". Used by the CLI's
``certify`` subcommand and handy in notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pd import PDResult
from .categories import categorize, lemma_bounds
from .certificates import DualCertificate, dual_certificate
from .traces import build_traces, check_proposition7

__all__ = ["AuditReport", "audit_run"]


@dataclass(frozen=True)
class AuditReport:
    """Everything checked about one PD run, plus a pass/fail verdict."""

    certificate: DualCertificate
    lemma_violations: tuple[str, ...]
    prop7_violations: tuple[str, ...]
    category_sizes: tuple[int, int, int]
    text: str

    @property
    def ok(self) -> bool:
        return (
            self.certificate.holds
            and not self.lemma_violations
            and not self.prop7_violations
        )


def audit_run(result: PDResult) -> AuditReport:
    """Run every analysis check on a finished PD run and render a report."""
    cert = dual_certificate(result)
    cats = categorize(result, cert)
    traces = build_traces(result, cert)
    lemmas = lemma_bounds(result, cert, traces)
    lemma_viol = tuple(lemmas.violations())
    prop7_viol = tuple(check_proposition7(result, traces))

    instance = result.schedule.instance
    alpha = instance.alpha
    lines = [
        "PD run audit",
        "============",
        f"instance: n={instance.n}, m={instance.m}, alpha={alpha}",
        f"delta:    {result.delta:.6g} "
        f"(optimal {alpha ** (1 - alpha):.6g})",
        "",
        f"cost(PD)       = {cert.cost:.6f}",
        f"  energy       = {result.schedule.energy:.6f}",
        f"  lost value   = {result.schedule.lost_value:.6f}",
        f"g(lambda~)     = {cert.g:.6f}   (lower bound on OPT)",
        f"certified ratio = {cert.ratio:.4f}  <=  alpha^alpha = {cert.bound:.4f}"
        f"   [{'OK' if cert.holds else 'VIOLATED'}]",
        "",
        f"job categories: |J1|={len(cats.j1)} finished, "
        f"|J2|={len(cats.j2)} low-yield rejected, "
        f"|J3|={len(cats.j3)} high-yield rejected",
        f"  g1={cats.g1:.6f}  g2={cats.g2:.6f}  g3={cats.g3:.6f}",
        "",
        f"Lemma 9/10/11 bounds: "
        f"{'all hold' if not lemma_viol else f'{len(lemma_viol)} VIOLATED'}",
    ]
    lines.extend(f"  ! {v}" for v in lemma_viol)
    lines.append(
        f"Proposition 7 trace speeds: "
        f"{'all hold' if not prop7_viol else f'{len(prop7_viol)} VIOLATED'}"
    )
    lines.extend(f"  ! {v}" for v in prop7_viol[:10])
    verdict = (
        "VERDICT: certified (Theorem 3 chain verified on this run)"
        if cert.holds and not lemma_viol and not prop7_viol
        else "VERDICT: FAILED — see violations above"
    )
    lines.extend(["", verdict])

    return AuditReport(
        certificate=cert,
        lemma_violations=lemma_viol,
        prop7_violations=prop7_viol,
        category_sizes=(len(cats.j1), len(cats.j2), len(cats.j3)),
        text="\n".join(lines),
    )
