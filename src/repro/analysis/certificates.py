"""Dual certificates: the computable core of the paper's Theorem 3.

After a PD run fixes the duals ``lambda~``, Lemmas 4–6 of the paper give a
*closed form* for the dual function value

    ``g(lambda~) = (1 - alpha) * sum_j E_lambda(j) + sum_j lambda~_j``

where ``E_lambda(j) = l(j) * s^_j**alpha`` is the energy the *optimal
infeasible solution* invests in job ``j``: job ``j`` runs at speed
``s^_j = (lambda~_j / (alpha w_j))**(1/(alpha-1))`` during exactly the
atomic intervals where it is among the ``min(m, n_k)`` available jobs with
the largest ``s^`` values (the "contributing jobs", Lemma 5c).

Weak duality makes ``g(lambda~)`` a lower bound on the cost of *any*
schedule, so each run carries a machine-checkable certificate:

    ``cost(PD) <= alpha**alpha * g(lambda~) <= alpha**alpha * cost(OPT)``.

The first inequality is Theorem 3's chain; checking it numerically on
every instance — including adversarial and random ones where OPT is
unknowable — is the reproduction's strongest evidence that the
implementation matches the paper's algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pd import PDResult
from ..errors import CertificateError
from ..types import FloatArray

__all__ = [
    "DualCertificate",
    "dual_certificate",
    "certificate_from_duals",
    "contributing_jobs",
]


@dataclass(frozen=True)
class DualCertificate:
    """Everything derived from the dual vector of a PD run.

    Attributes
    ----------
    g:
        The dual function value ``g(lambda~)`` — a lower bound on OPT.
    cost:
        ``cost(PD)`` of the run being certified.
    ratio:
        ``cost / g``; Theorem 3 guarantees ``ratio <= alpha**alpha``.
    bound:
        ``alpha**alpha``.
    s_hat:
        Per-job speeds of the optimal infeasible solution (Lemma 5).
    e_lambda:
        Per-job energies ``E_lambda(j) = l(j) * s_hat_j**alpha`` (Lemma 6).
    x_hat:
        Per-job total portions ``x^_j = l(j) * s_hat_j / w_j`` scheduled
        by the optimal infeasible solution — the quantity that splits
        unfinished jobs into low-/high-yield categories (Section 4.3).
    contributors:
        Per-interval tuple of contributing job ids, largest ``s_hat``
        first (the sets ``phi(k)``).
    """

    g: float
    cost: float
    bound: float
    s_hat: FloatArray
    e_lambda: FloatArray
    x_hat: FloatArray
    contributors: tuple[tuple[int, ...], ...]

    @property
    def ratio(self) -> float:
        return self.cost / self.g if self.g > 0 else float("inf")

    @property
    def holds(self) -> bool:
        """Whether the Theorem 3 certificate holds (with numeric slack)."""
        return self.cost <= self.bound * self.g * (1.0 + 1e-7) + 1e-9

    def require(self) -> "DualCertificate":
        """Raise :class:`CertificateError` unless the certificate holds."""
        if not self.holds:
            raise CertificateError(
                f"Theorem 3 certificate violated: cost {self.cost:.9g} > "
                f"alpha^alpha * g = {self.bound:.6g} * {self.g:.9g}"
            )
        return self


def contributing_jobs(
    availability: np.ndarray, s_hat: FloatArray, m: int
) -> tuple[tuple[int, ...], ...]:
    """The sets ``phi(k)`` of Lemma 5(c) for every atomic interval.

    In interval ``k`` the contributing jobs are the ``min(m, n_k)``
    *available* jobs with the largest ``s_hat`` values; ties resolve by
    job id (any consistent rule is admissible per the paper's footnote).
    Jobs with ``s_hat == 0`` contribute nothing and are excluded.
    """
    n, big_n = availability.shape
    order_all = np.lexsort((np.arange(n), -s_hat))  # s_hat desc, then id asc

    # Fast path: availability rows that are single contiguous runs (the
    # shape every grid-aligned job window produces). One pass over the
    # jobs in priority order fills per-interval slots — identical picks
    # in identical order to the historical per-interval rescan, at
    # O(sum of window widths) instead of O(n * N).
    counts = availability.sum(axis=1)
    first = availability.argmax(axis=1)
    last = big_n - 1 - availability[:, ::-1].argmax(axis=1)
    if np.all((counts == 0) | (last - first + 1 == counts)):
        slots = np.zeros(big_n, dtype=np.int64)
        picked_lists: list[list[int]] = [[] for _ in range(big_n)]
        for j in order_all:
            if s_hat[j] <= 0.0 or counts[j] == 0:
                continue
            lo = int(first[j])
            segment = slots[lo : lo + int(counts[j])]
            open_positions = np.nonzero(segment < m)[0]
            if open_positions.size:
                segment[open_positions] += 1
                job = int(j)
                for k in open_positions:
                    picked_lists[lo + k].append(job)
        return tuple(tuple(lst) for lst in picked_lists)

    # General path (non-contiguous availability): the literal Lemma 5(c)
    # rescan per interval.
    out: list[tuple[int, ...]] = []
    for k in range(big_n):
        picked: list[int] = []
        for j in order_all:
            if len(picked) == m:
                break
            if availability[j, k] and s_hat[j] > 0.0:
                picked.append(int(j))
        out.append(tuple(picked))
    return tuple(out)


def dual_certificate(result: PDResult) -> DualCertificate:
    """Evaluate ``g(lambda~)`` and package the Theorem 3 certificate."""
    return certificate_from_duals(result.schedule, result.lambdas)


def certificate_from_duals(schedule, lambdas: FloatArray) -> DualCertificate:
    """Evaluate ``g(lambda)`` for *any* nonnegative dual vector.

    Weak duality does not care where the duals came from: for every
    ``lambda >= 0``, the closed form of Lemmas 4–6 is a genuine lower
    bound on OPT, so any algorithm able to exhibit a dual vector gets a
    certified ratio — PD uses its own ``lambda~`` (Theorem 3), CLL the
    duals implied by its planned admission speeds. Only PD's duals are
    *guaranteed* to stay under ``alpha**alpha``; for other sources the
    ratio is an honest measurement that may exceed the bound.
    """
    instance = schedule.instance
    grid = schedule.grid
    alpha = instance.alpha
    m = instance.m
    w = instance.workloads
    lam = np.asarray(lambdas, dtype=np.float64)

    s_hat = (np.maximum(lam, 0.0) / (alpha * w)) ** (1.0 / (alpha - 1.0))
    avail = grid.availability_matrix(instance)
    phi = contributing_jobs(avail, s_hat, m)

    lengths = grid.lengths
    l_of_j = np.zeros(instance.n)
    for k, members in enumerate(phi):
        for j in members:
            l_of_j[j] += float(lengths[k])

    e_lambda = l_of_j * s_hat**alpha
    x_hat = np.where(w > 0, l_of_j * s_hat / w, 0.0)
    g = float((1.0 - alpha) * e_lambda.sum() + lam.sum())

    return DualCertificate(
        g=g,
        cost=schedule.cost,
        bound=alpha**alpha,
        s_hat=s_hat,
        e_lambda=e_lambda,
        x_hat=x_hat,
        contributors=phi,
    )
