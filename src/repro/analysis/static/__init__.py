"""``repro.analysis.static`` — the repo's AST-based invariant checker.

The codebase rests on conventions no test can fully enforce: every
``repro.perf`` kernel keeps a bit-parity reference twin, everything
folded into a cache key is deterministic, threaded classes write shared
state under their locks, shared-memory segments are created and
released in balance, and the registries' declared metadata matches what
the code actually does. ``repro lint`` (this package) turns those
conventions into machine-checked contracts with stable ``RPR###``
codes:

====== ==========================================================
family contract
====== ==========================================================
RPR1xx determinism of cache-key material + record-schema versioning
RPR2xx lock coverage in lock-owning classes
RPR3xx kernel/reference parity pairs + differential tests
RPR4xx shared-memory and cache-backend resource balance
RPR5xx registry metadata contracts (live-import pass)
====== ==========================================================

Front ends: ``python -m repro lint [--select CODES] [--format
text|json] [paths]`` (exits nonzero on findings) and the
:func:`run_lint` API. ``# noqa: RPR###`` on the offending line
suppresses a finding; house policy is that every suppression carries a
rationale comment.
"""

from .core import (
    Checker,
    Finding,
    SourceFile,
    all_checkers,
    collect_sources,
    format_findings,
    known_codes,
    run_lint,
)

__all__ = [
    "Checker",
    "Finding",
    "SourceFile",
    "all_checkers",
    "collect_sources",
    "format_findings",
    "known_codes",
    "run_lint",
]
