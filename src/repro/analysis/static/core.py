"""Framework for ``repro lint`` — findings, sources, noqa, orchestration.

The static-analysis layer has two kinds of passes, mirroring how the
contracts it enforces are scoped:

* **per-file AST visitors** (:meth:`Checker.check_file`) for purely
  local invariants — lock coverage inside one class, shared-memory
  create/close balance inside one function;
* **whole-repo semantic passes** (:meth:`Checker.check_repo`) for
  invariants that span files — nondeterminism reachable from the
  cache-key hashing sites, kernel/reference parity pairs, live registry
  metadata validation.

Every finding carries an ``RPR###`` code. A finding is suppressed by a
``# noqa: RPR###`` comment on its line (comma-separated codes; a family
prefix like ``RPR2`` suppresses the whole family; bare ``# noqa``
suppresses everything on the line). Suppressions are the escape hatch
for *audited* exceptions — house policy (docs/architecture.md) is that
every ``noqa`` carries a trailing rationale.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ...errors import InvalidParameterError

__all__ = [
    "Checker",
    "Finding",
    "SourceFile",
    "all_checkers",
    "collect_sources",
    "format_findings",
    "run_lint",
]

#: ``# noqa`` / ``# noqa: RPR101, RPR2`` — the optional code list is
#: captured for per-code matching.
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9 ,]+))?", re.IGNORECASE)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location."""

    path: str  #: repo-relative (or as-given) posix path
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class SourceFile:
    """A parsed Python source plus its suppression table."""

    path: Path  #: absolute path on disk
    rel: str  #: display path (repo-relative when under the lint root)
    text: str
    tree: ast.Module
    #: line -> frozenset of codes (empty set means "suppress all")
    noqa: dict[int, frozenset[str]] = field(default_factory=dict)

    def finding(self, node: ast.AST | None, code: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(self.rel, int(line), int(col), code, message)


class Checker:
    """Base class: subclasses override one (or both) pass hooks.

    ``codes`` maps every code a checker can emit to its one-line
    description — the source of truth for ``repro lint --list-codes``
    and the docs table.
    """

    name: str = "checker"
    codes: dict[str, str] = {}

    def check_file(self, source: SourceFile) -> list[Finding]:
        return []

    def check_repo(
        self, sources: Sequence[SourceFile], root: Path
    ) -> list[Finding]:
        return []


def _parse_noqa(text: str) -> dict[int, frozenset[str]]:
    """The per-line suppression table of one source file.

    Comments are located with :mod:`tokenize` (not a regex over raw
    lines) so a ``# noqa`` inside a string literal never suppresses
    anything.
    """
    table: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(iter(text.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            raw = match.group("codes")
            codes = (
                frozenset()
                if raw is None
                else frozenset(
                    code.strip().upper()
                    for code in raw.replace(",", " ").split()
                    if code.strip()
                )
            )
            table[tok.start[0]] = codes
    except tokenize.TokenizeError:  # pragma: no cover - ast parse catches it
        pass
    return table


def _suppressed(finding: Finding, noqa: dict[int, frozenset[str]]) -> bool:
    codes = noqa.get(finding.line)
    if codes is None:
        return False
    if not codes:  # bare "# noqa": everything on the line
        return True
    return any(finding.code.startswith(code) for code in codes)


def _iter_python_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for candidate in sorted(path.rglob("*.py")):
        if any(part.startswith(".") for part in candidate.parts):
            continue
        yield candidate


def collect_sources(
    paths: Sequence[str | Path], root: Path
) -> tuple[list[SourceFile], list[Finding]]:
    """Parse every ``.py`` file under ``paths``.

    Unreadable or syntactically broken files become ``RPR001`` findings
    rather than crashing the whole run — a linter that dies on the file
    it should be reporting on is useless in CI.
    """
    sources: list[SourceFile] = []
    errors: list[Finding] = []
    seen: set[Path] = set()
    for raw in paths:
        target = Path(raw)
        if not target.is_absolute():
            target = root / target
        if not target.exists():
            raise InvalidParameterError(f"lint target {raw!r} does not exist")
        for file in _iter_python_files(target):
            file = file.resolve()
            if file in seen:
                continue
            seen.add(file)
            try:
                rel = file.relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = file.as_posix()
            try:
                text = file.read_text(encoding="utf-8")
                tree = ast.parse(text, filename=str(file))
            except (OSError, SyntaxError, ValueError) as exc:
                line = getattr(exc, "lineno", 1) or 1
                errors.append(
                    Finding(rel, int(line), 0, "RPR001", f"cannot parse: {exc}")
                )
                continue
            sources.append(
                SourceFile(
                    path=file,
                    rel=rel,
                    text=text,
                    tree=tree,
                    noqa=_parse_noqa(text),
                )
            )
    return sources, errors


def all_checkers() -> list[Checker]:
    """One instance of every shipped checker, in code order."""
    from .determinism import DeterminismChecker
    from .locks import LockCoverageChecker
    from .parity import ParityPairChecker
    from .registry_contracts import RegistryContractChecker
    from .resources import ResourceBalanceChecker

    return [
        DeterminismChecker(),
        LockCoverageChecker(),
        ParityPairChecker(),
        ResourceBalanceChecker(),
        RegistryContractChecker(),
    ]


def known_codes() -> dict[str, str]:
    """Every emittable code -> description (framework codes included)."""
    table = {"RPR001": "file cannot be parsed"}
    for checker in all_checkers():
        table.update(checker.codes)
    return dict(sorted(table.items()))


def _selected(code: str, select: Sequence[str] | None) -> bool:
    if not select:
        return True
    return any(code.startswith(prefix.strip().upper()) for prefix in select)


def run_lint(
    paths: Sequence[str | Path],
    *,
    root: str | Path | None = None,
    select: Sequence[str] | None = None,
    checkers: Sequence[Checker] | None = None,
) -> list[Finding]:
    """Run every checker over ``paths`` and return surviving findings.

    ``select`` filters by code prefix (``["RPR2"]`` keeps the whole
    lock-coverage family). ``noqa`` suppressions are applied before
    selection; results are sorted by location then code.
    """
    root = Path(root) if root is not None else Path.cwd()
    sources, findings = collect_sources(paths, root)
    by_rel = {source.rel: source for source in sources}
    active = list(checkers) if checkers is not None else all_checkers()
    for checker in active:
        raw: list[Finding] = []
        for source in sources:
            raw.extend(checker.check_file(source))
        raw.extend(checker.check_repo(sources, root))
        for finding in raw:
            source = by_rel.get(finding.path)
            if source is not None and _suppressed(finding, source.noqa):
                continue
            findings.append(finding)
    return sorted(f for f in findings if _selected(f.code, select))


def format_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    """Render findings as ``text`` (one line each) or ``json``."""
    if fmt == "json":
        return json.dumps(
            {
                "findings": [dataclasses.asdict(f) for f in findings],
                "count": len(findings),
            },
            indent=2,
            sort_keys=True,
        )
    if fmt != "text":
        raise InvalidParameterError(
            f"lint format must be 'text' or 'json', got {fmt!r}"
        )
    lines = [finding.render() for finding in findings]
    lines.append(
        f"{len(findings)} finding(s)" if findings else "clean: no findings"
    )
    return "\n".join(lines)
