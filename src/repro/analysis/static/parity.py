"""RPR3xx — every ``repro.perf`` kernel keeps a bit-parity reference twin.

The performance layer's license to exist is the differential-testing
contract (docs/architecture.md): a kernel may change *how* a result is
computed, never *what* it is, and the proof is a retained straight-line
reference implementation plus a test that runs both. This checker makes
the contract structural:

* every public name exported by a kernel module under ``repro/perf/``
  (everything except ``reference.py``, ``bench.py``, ``__init__.py``)
  must map to a counterpart in ``repro.perf.reference`` — either by
  naming convention (``foo`` -> ``foo_reference``, ``Foo`` ->
  ``FooReference``) or through the explicit ``PARITY_PAIRS`` table in
  ``reference.py`` (for kernels whose reference twin is a whole
  scheduler, e.g. ``IntervalLoads`` -> ``PDSchedulerReference``);
* some test module under ``tests/`` must reference the kernel name and
  its counterpart *together* — the differential test.

Codes
-----
* ``RPR301`` — public kernel with no reference counterpart;
* ``RPR302`` — kernel/reference pair never exercised together by a test.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Sequence

from .core import Checker, Finding, SourceFile

__all__ = ["ParityPairChecker"]

#: perf modules that are not kernels (the harness and the twins).
_NON_KERNEL = {"__init__.py", "reference.py", "bench.py"}


def _module_all(tree: ast.Module) -> tuple[list[str], ast.AST | None]:
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            )
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            names = [
                element.value
                for element in node.value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ]
            return names, node
    return [], None


def _parity_pairs(tree: ast.Module) -> dict[str, str]:
    """The explicit kernel -> reference table declared in reference.py."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "PARITY_PAIRS"
                for t in node.targets
            )
            and isinstance(node.value, ast.Dict)
        ):
            pairs: dict[str, str] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    pairs[key.value] = value.value
            return pairs
    return {}


def _top_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


class ParityPairChecker(Checker):
    """Public perf kernels need reference twins and differential tests."""

    name = "parity-pairs"
    codes = {
        "RPR301": "public repro.perf kernel has no repro.perf.reference counterpart",
        "RPR302": "kernel/reference pair has no differential test naming both",
    }

    def check_repo(
        self, sources: Sequence[SourceFile], root: Path
    ) -> list[Finding]:
        kernels: list[tuple[SourceFile, str, ast.AST | None]] = []
        reference: SourceFile | None = None
        for source in sources:
            parts = source.rel.split("/")
            if "perf" not in parts or not source.rel.endswith(".py"):
                continue
            filename = parts[-1]
            if filename == "reference.py":
                reference = source
            elif filename not in _NON_KERNEL:
                names, node = _module_all(source.tree)
                for name in names:
                    kernels.append((source, name, node))
        if not kernels:
            return []
        if reference is None:
            return [
                source.finding(
                    node,
                    "RPR301",
                    f"kernel module exports {name!r} but repro.perf has no "
                    "reference.py with its bit-parity twin",
                )
                for source, name, node in kernels
            ]
        pairs = _parity_pairs(reference.tree)
        reference_names = _top_level_names(reference.tree)
        test_texts = _test_texts(root)
        findings: list[Finding] = []
        for source, name, node in kernels:
            counterpart = pairs.get(name)
            if counterpart is None:
                for candidate in (f"{name}_reference", f"{name}Reference"):
                    if candidate in reference_names:
                        counterpart = candidate
                        break
            if counterpart is None or counterpart not in reference_names:
                findings.append(
                    source.finding(
                        node,
                        "RPR301",
                        f"public kernel {name!r} has no counterpart in "
                        "repro.perf.reference (add one, or map it in "
                        "reference.PARITY_PAIRS)",
                    )
                )
                continue
            if test_texts and not any(
                name in text and counterpart in text
                for text in test_texts.values()
            ):
                findings.append(
                    source.finding(
                        node,
                        "RPR302",
                        f"no test module references kernel {name!r} together "
                        f"with its reference twin {counterpart!r} — the "
                        "bit-parity differential test is missing",
                    )
                )
        return findings


def _test_texts(root: Path) -> dict[str, str]:
    tests_dir = root / "tests"
    if not tests_dir.is_dir():
        return {}
    texts: dict[str, str] = {}
    for path in sorted(tests_dir.rglob("test_*.py")):
        try:
            texts[str(path)] = path.read_text(encoding="utf-8")
        except OSError:
            continue
    return texts
