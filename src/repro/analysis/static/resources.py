"""RPR4xx — resource balance: shared memory and cache-backend lifecycle.

Two resource disciplines hold the fabric together:

* **Shared-memory segments** (``repro.engine.transport``): a function
  that *creates* a ``SharedMemory`` segment must close it and either
  unlink it or explicitly hand ownership over (the resource-tracker
  unregister dance); a function that *attaches* to one must close and
  unlink it. An unbalanced path leaks ``/dev/shm`` until the tracker's
  exit sweep — at million-job scale that is an outage, not a warning.
* **Cache backends**: anything that structurally implements the
  :class:`repro.engine.cache.CacheBackend` protocol (``get`` + ``put``
  + ``keys``) must also ship the lifecycle half — ``close`` plus the
  ``__enter__``/``__exit__`` context-manager pair — or long-lived
  callers (the CLI, the cache server) cannot release it
  deterministically.

Codes
-----
* ``RPR401`` — ``SharedMemory(create=True)`` without ``close`` +
  (``unlink`` or tracker unregister) in the same function;
* ``RPR402`` — ``SharedMemory(name=...)`` attach without ``close`` +
  ``unlink`` in the same function;
* ``RPR403`` — cache-backend-shaped class missing ``close`` /
  ``__enter__`` / ``__exit__``.
"""

from __future__ import annotations

import ast

from .core import Checker, Finding, SourceFile

__all__ = ["ResourceBalanceChecker"]

#: Method names whose joint presence marks a class as a cache backend.
_BACKEND_CORE = frozenset({"get", "put", "keys"})

#: The lifecycle surface every backend must carry.
_BACKEND_LIFECYCLE = ("close", "__enter__", "__exit__")

#: Calls that release a worker-side tracker registration (ownership
#: handover counts as balancing a create).
_UNTRACK_NAMES = frozenset({"unregister", "_untrack"})


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_create(node: ast.Call) -> bool:
    return any(
        kw.arg == "create"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in node.keywords
    )


def _is_attach(node: ast.Call) -> bool:
    return any(kw.arg == "name" for kw in node.keywords) and not _is_create(node)


class ResourceBalanceChecker(Checker):
    """Shared-memory and backend lifecycle balance."""

    name = "resource-balance"
    codes = {
        "RPR401": "SharedMemory create without close + unlink/ownership handover",
        "RPR402": "SharedMemory attach without close + unlink",
        "RPR403": "cache-backend class missing close/__enter__/__exit__",
    }

    def check_file(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(source, node))
            elif isinstance(node, ast.ClassDef):
                findings.extend(self._check_backend_class(source, node))
        return findings

    # -- RPR401 / RPR402 ------------------------------------------------
    def _check_function(
        self, source: SourceFile, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Finding]:
        creates: list[ast.Call] = []
        attaches: list[ast.Call] = []
        released = {"close": False, "unlink": False, "untrack": False}
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "SharedMemory":
                if _is_create(node):
                    creates.append(node)
                elif _is_attach(node):
                    attaches.append(node)
            elif name == "close":
                released["close"] = True
            elif name == "unlink":
                released["unlink"] = True
            elif name in _UNTRACK_NAMES:
                released["untrack"] = True
        findings: list[Finding] = []
        for call in creates:
            if not (
                released["close"] and (released["unlink"] or released["untrack"])
            ):
                findings.append(
                    source.finding(
                        call,
                        "RPR401",
                        f"{fn.name} creates a SharedMemory segment but does "
                        "not close() and unlink()/hand over ownership on "
                        "every path — the segment leaks until process exit",
                    )
                )
        for call in attaches:
            if not (released["close"] and released["unlink"]):
                findings.append(
                    source.finding(
                        call,
                        "RPR402",
                        f"{fn.name} attaches to a SharedMemory segment but "
                        "does not close() and unlink() it — attach "
                        "re-registers the segment, so the consumer must "
                        "finish the lifecycle",
                    )
                )
        return findings

    # -- RPR403 ---------------------------------------------------------
    def _check_backend_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> list[Finding]:
        if any(
            isinstance(base, ast.Name) and base.id == "Protocol"
            or isinstance(base, ast.Attribute) and base.attr == "Protocol"
            for base in cls.bases
        ):
            return []  # the protocol definition itself, not an implementation
        methods = {
            child.name
            for child in cls.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not _BACKEND_CORE <= methods:
            return []
        missing = [name for name in _BACKEND_LIFECYCLE if name not in methods]
        if not missing:
            return []
        return [
            source.finding(
                cls,
                "RPR403",
                f"{cls.name} implements the CacheBackend surface "
                "(get/put/keys) but lacks "
                f"{', '.join(missing)} — long-lived owners cannot release "
                "it deterministically",
            )
        ]
