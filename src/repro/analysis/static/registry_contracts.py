"""RPR5xx — live validation of the registry metadata contracts.

The registries are the engine's naming layer: what they declare
(capability tags, certificate hooks, variant/workload parameter
tables) is what every generic layer above them trusts. Pure AST
analysis cannot see through the decorator indirection, so this pass
*imports* the global registries and exercises the declared metadata:

* every registered algorithm and workload must resolve (lazy imports
  included) — a typo'd module path otherwise only explodes at first
  use (``RPR501``);
* a declared certificate hook must be a callable taking exactly one
  required positional argument (the raw run result) — the shape the
  batch runner invokes it with (``RPR502``);
* variant/workload parameter specs must parse and canonicalize to a
  fixed point: resolving ``base?key=value`` and re-resolving the
  canonical name must land on the same canonical name, or two
  spellings of one configuration would split cache keys (``RPR503``);
* building a registered workload twice from the identical spec must
  produce the identical serialized instance — the dynamic half of the
  determinism contract; unseeded randomness in a generator is invisible
  to the static RPR1xx pass but caught here (``RPR504``);
* every workload must honor the uniform ``family(n, *, seed)`` build
  contract the registry documents (``RPR505``).

The pass runs only when the linted sources include the registry
modules themselves (so linting one unrelated file stays cheap), and it
builds tiny instances (n <= 8), so it stays fast enough for CI's lint
job.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Any, Sequence

from .core import Checker, Finding, SourceFile

__all__ = ["RegistryContractChecker", "check_algorithms", "check_workloads"]

#: Probe values per declared caster; first accepted value wins. Custom
#: casters fall back to the generic probes.
_SAMPLES: dict[Any, tuple[str, ...]] = {
    int: ("2", "3"),
    float: ("0.5", "0.25", "2.0"),
    str: ("x",),
}
_GENERIC_SAMPLES = ("0.5", "2", "x")


def _anchor(
    sources: Sequence[SourceFile], suffix: str
) -> SourceFile | None:
    for source in sources:
        if source.rel.endswith(suffix):
            return source
    return None


def _certificate_arity_ok(hook: Any) -> bool:
    if not callable(hook):
        return False
    try:
        signature = inspect.signature(hook)
    except (TypeError, ValueError):  # builtins: give the benefit of the doubt
        return True
    required = 0
    has_var_positional = False
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            if parameter.default is inspect.Parameter.empty:
                required += 1
        elif parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            has_var_positional = True
        elif (
            parameter.kind is inspect.Parameter.KEYWORD_ONLY
            and parameter.default is inspect.Parameter.empty
        ):
            return False  # the runner passes exactly one positional arg
    return required == 1 or (required == 0 and has_var_positional)


def check_algorithms(registry: Any, anchor: SourceFile) -> list[Finding]:
    """Validate one algorithm registry against its declared metadata."""
    findings: list[Finding] = []
    try:
        names = list(registry.names())
    except Exception as exc:  # noqa - a broken registry is the finding
        return [
            anchor.finding(
                None, "RPR501", f"algorithm registry failed to list: {exc}"
            )
        ]
    for name in names:
        try:
            info = registry.info(name)
        except Exception as exc:
            findings.append(
                anchor.finding(
                    None,
                    "RPR501",
                    f"registered algorithm {name!r} fails to resolve: {exc}",
                )
            )
            continue
        if not callable(getattr(info, "runner", None)):
            findings.append(
                anchor.finding(
                    None,
                    "RPR501",
                    f"algorithm {name!r} has a non-callable runner",
                )
            )
        hook = getattr(info, "certificate", None)
        claims = "certificate-producing" in info.capabilities()
        if claims != (hook is not None):
            findings.append(
                anchor.finding(
                    None,
                    "RPR502",
                    f"algorithm {name!r} capability tags "
                    f"({sorted(info.capabilities())}) disagree with its "
                    f"certificate hook ({hook!r})",
                )
            )
        if hook is not None and not _certificate_arity_ok(hook):
            findings.append(
                anchor.finding(
                    None,
                    "RPR502",
                    f"algorithm {name!r} declares a certificate hook that "
                    "cannot be called with one positional argument (the "
                    "raw run result) — the runner invokes hook(raw)",
                )
            )
        findings.extend(_check_variant_roundtrip(registry, name, info, anchor))
    return findings


def _check_variant_roundtrip(
    registry: Any, name: str, info: Any, anchor: SourceFile
) -> list[Finding]:
    findings: list[Finding] = []
    for key, caster in dict(getattr(info, "variant_params", {})).items():
        if not callable(caster):
            findings.append(
                anchor.finding(
                    None,
                    "RPR503",
                    f"algorithm {name!r} declares variant param {key!r} "
                    f"with a non-callable caster {caster!r}",
                )
            )
            continue
        resolved = None
        for sample in _SAMPLES.get(caster, _GENERIC_SAMPLES):
            try:
                resolved = registry.info(f"{name}?{key}={sample}")
                break
            except Exception:
                continue
        if resolved is None:
            continue  # no probe value in the param's domain: cannot test
        try:
            again = registry.info(resolved.name)
        except Exception as exc:
            findings.append(
                anchor.finding(
                    None,
                    "RPR503",
                    f"variant spec {resolved.name!r} (canonical form of "
                    f"{name}?{key}=...) fails to re-resolve: {exc}",
                )
            )
            continue
        if again.name != resolved.name or dict(again.params) != dict(
            resolved.params
        ):
            findings.append(
                anchor.finding(
                    None,
                    "RPR503",
                    f"variant spec canonicalization is not a fixed point for "
                    f"{name!r}: {resolved.name!r} re-resolves to "
                    f"{again.name!r} — two spellings of one configuration "
                    "would split cache keys",
                )
            )
    return findings


def check_workloads(registry: Any, anchor: SourceFile) -> list[Finding]:
    """Validate one workload registry: specs, contract, determinism."""
    from ...io.serialize import instance_to_dict

    findings: list[Finding] = []
    try:
        names = list(registry.names())
    except Exception as exc:
        return [
            anchor.finding(
                None, "RPR501", f"workload registry failed to list: {exc}"
            )
        ]
    for name in names:
        try:
            info = registry.info(name)
        except Exception as exc:
            findings.append(
                anchor.finding(
                    None,
                    "RPR501",
                    f"registered workload {name!r} fails to resolve: {exc}",
                )
            )
            continue
        spec = f"{name}?n=6&seed=3"
        try:
            first = registry.build(spec)
        except Exception as exc:
            findings.append(
                anchor.finding(
                    None,
                    "RPR505",
                    f"workload {name!r} breaks the uniform build contract "
                    f"(build({spec!r}) raised {type(exc).__name__}: {exc})",
                )
            )
            continue
        try:
            second = registry.build(spec)
        except Exception as exc:
            findings.append(
                anchor.finding(
                    None,
                    "RPR505",
                    f"workload {name!r} built once but not twice "
                    f"({type(exc).__name__}: {exc}) — generators must be "
                    "re-entrant",
                )
            )
            continue
        if instance_to_dict(first) != instance_to_dict(second):
            findings.append(
                anchor.finding(
                    None,
                    "RPR504",
                    f"workload {name!r} is nondeterministic: two builds of "
                    f"{spec!r} produced different instances — the generator "
                    "draws entropy outside its seed",
                )
            )
        canonical = info.name
        try:
            if registry.info(canonical).name != canonical:
                raise ValueError("canonical name is not a fixed point")
        except Exception as exc:
            findings.append(
                anchor.finding(
                    None,
                    "RPR503",
                    f"workload {name!r} canonicalization failure: {exc}",
                )
            )
    return findings


class RegistryContractChecker(Checker):
    """Live-import validation of AlgorithmRegistry / WorkloadRegistry."""

    name = "registry-contracts"
    codes = {
        "RPR501": "registry entry fails to resolve or lacks a runner",
        "RPR502": "capability claims disagree with the certificate hook",
        "RPR503": "variant/workload param spec does not parse and round-trip",
        "RPR504": "workload build is nondeterministic under a fixed seed",
        "RPR505": "workload breaks the uniform family(n, seed) build contract",
    }

    #: Injectable for tests; ``None`` means the library's global
    #: registries, imported lazily at check time.
    def __init__(self, algorithms: Any = None, workloads: Any = None) -> None:
        self._algorithms = algorithms
        self._workloads = workloads

    def check_repo(
        self, sources: Sequence[SourceFile], root: Path
    ) -> list[Finding]:
        findings: list[Finding] = []
        algo_anchor = _anchor(sources, "engine/registry.py")
        work_anchor = _anchor(sources, "workloads/registry.py")
        if algo_anchor is not None:
            registry = self._algorithms
            if registry is None:
                from ...engine.registry import REGISTRY as registry
            findings.extend(check_algorithms(registry, algo_anchor))
        if work_anchor is not None:
            registry = self._workloads
            if registry is None:
                from ...workloads.registry import WORKLOADS as registry
            findings.extend(check_workloads(registry, work_anchor))
        return findings
