"""RPR1xx — determinism of everything that feeds the cache keys.

The engine's whole replay story rests on one assumption: anything
folded into :func:`repro.io.serialize.stable_hash` /
:func:`~repro.io.serialize.canonical_json` /
:func:`~repro.engine.runner.request_key` is a pure function of the
experiment's declared inputs. A wall-clock read, an unseeded RNG draw,
or an arbitrary-order set iteration anywhere in that closure silently
splinters cache keys (every run recomputes everything) or — worse —
merges cells that should differ.

Scope is computed from an approximate call graph (edges by simple
callee name, which over-approximates dispatch — a lint-appropriate
trade):

* every function that *transitively calls* a hash primitive has its
  own body scanned (its locals feed the hash's argument);
* every **key producer** — a function whose ``return`` value is a hash
  primitive call (or a call to another key producer) — additionally has
  its entire transitive *callee* closure scanned: whatever those
  callees compute IS the key material.

Codes
-----
* ``RPR101`` — nondeterministic call (``time.time``, ``datetime.now``,
  unseeded ``random``/``np.random``, ``os.urandom``, ``uuid1/4``,
  ``secrets``) in hash-reachable code;
* ``RPR102`` — iteration over a set literal/constructor in
  hash-reachable code (set order is arbitrary across processes);
* ``RPR103`` — the record payload vocabulary changed but
  ``RECORD_VERSION`` did not: stale caches would deserialize wrongly;
* ``RPR104`` — ``RECORD_VERSION`` was bumped (or the vocabulary moved)
  without re-registering the new schema fingerprint in
  :data:`KNOWN_RECORD_SCHEMAS` below.

Note the live complement: generators registered behind the workload
registry are invisible to these static edges (decorator dispatch), so
``RPR504`` builds every registered family twice and compares — the
dynamic half of the same contract.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .core import Checker, Finding, SourceFile

__all__ = ["DeterminismChecker", "KNOWN_RECORD_SCHEMAS", "record_schema_fingerprint"]

#: The functions whose arguments must be deterministic.
HASH_PRIMITIVES = frozenset({"stable_hash", "canonical_json", "request_key"})

#: Blessed record-payload schemas: ``RECORD_VERSION`` -> fingerprint of
#: the sorted payload vocabulary (:func:`record_schema_fingerprint`).
#: Changing the payload fields requires BOTH bumping ``RECORD_VERSION``
#: in :mod:`repro.engine.runner` AND registering the new fingerprint
#: here — the checker holds the door until both halves land.
KNOWN_RECORD_SCHEMAS: dict[int, str] = {
    2: "180645d38efa6ab46a04279709811152c11355219657bc7213e608e1ed1b673f",
}

#: RNG constructors that take (and therefore can carry) an explicit
#: seed — calls to these are fine; the *module-level* convenience
#: functions they replace are not.
_SEEDED_RNG_FACTORIES = frozenset(
    {"Random", "SystemRandom", "default_rng", "SeedSequence", "RandomState", "Generator"}
)


def record_schema_fingerprint(keys: Sequence[str]) -> str:
    """Stable fingerprint of a record payload vocabulary."""
    return hashlib.sha256(",".join(sorted(keys)).encode("utf-8")).hexdigest()


def _dotted(node: ast.AST) -> tuple[str, ...]:
    """``a.b.c(...)`` -> ``("a", "b", "c")``; best effort, may be empty."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _nondeterministic_call(chain: tuple[str, ...]) -> str | None:
    """A human-readable violation description, or ``None`` if clean."""
    if not chain:
        return None
    dotted = ".".join(chain)
    last = chain[-1]
    if chain[:2] == ("time", "time") or last == "time_ns" or dotted == "time":
        return f"wall-clock read {dotted}()"
    if last in ("now", "utcnow", "today") and (
        "datetime" in chain[:-1] or "date" in chain[:-1]
    ):
        return f"wall-clock read {dotted}()"
    if last == "urandom" or last in ("uuid1", "uuid4") or chain[0] == "secrets":
        return f"entropy source {dotted}()"
    if "random" in chain[:-1] and last not in _SEEDED_RNG_FACTORIES:
        return f"unseeded RNG call {dotted}()"
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = _dotted(node.func)
        return bool(chain) and chain[-1] in ("set", "frozenset")
    return False


@dataclass
class _FunctionFacts:
    """Everything the pass needs to know about one function body."""

    source: SourceFile
    qualname: str
    node: ast.AST
    calls: set[str] = field(default_factory=set)
    #: (node, description) nondeterministic call sites
    nondet: list[tuple[ast.AST, str]] = field(default_factory=list)
    #: nodes iterating a set expression
    set_iters: list[ast.AST] = field(default_factory=list)
    #: does any ``return`` expression call a name (candidate key producer)?
    returned_calls: set[str] = field(default_factory=set)
    #: method of a cache-backend-shaped class (get/put/keys)? Storage
    #: backends *consume* finished cache keys; nothing they compute can
    #: flow back into the key, so the callee closure stops at them —
    #: without this boundary, a key producer resolving ``dict.get`` by
    #: simple name would drag every backend's aging timestamps
    #: (``time.time`` on ``put``) into scope as false positives.
    is_storage: bool = False


def _scan_function(body: Sequence[ast.stmt], facts: _FunctionFacts) -> None:
    """Collect facts from one function body, skipping nested defs
    (they are indexed as functions of their own)."""

    def walk(node: ast.AST, in_return: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.Call):
            chain = _dotted(node.func)
            if chain:
                facts.calls.add(chain[-1])
                if in_return:
                    facts.returned_calls.add(chain[-1])
                description = _nondeterministic_call(chain)
                if description is not None:
                    facts.nondet.append((node, description))
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
            facts.set_iters.append(node.iter)
        if isinstance(node, ast.comprehension) and _is_set_expr(node.iter):
            facts.set_iters.append(node.iter)
        if isinstance(node, ast.Return):
            in_return = True
        for child in ast.iter_child_nodes(node):
            walk(child, in_return)

    for stmt in body:
        walk(stmt, in_return=False)


def _is_storage_class(cls: ast.ClassDef) -> bool:
    """Does the class implement the CacheBackend storage surface?"""
    methods = {
        child.name
        for child in cls.body
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return {"get", "put", "keys"} <= methods


def _index_functions(sources: Sequence[SourceFile]) -> list[_FunctionFacts]:
    functions: list[_FunctionFacts] = []

    def visit(
        node: ast.AST, source: SourceFile, prefix: str, storage: bool
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                facts = _FunctionFacts(source, qual, child, is_storage=storage)
                _scan_function(child.body, facts)
                functions.append(facts)
                visit(child, source, f"{qual}.", storage)
            elif isinstance(child, ast.ClassDef):
                visit(
                    child,
                    source,
                    f"{prefix}{child.name}.",
                    storage or _is_storage_class(child),
                )
    for source in sources:
        visit(source.tree, source, "", False)
    return functions


class DeterminismChecker(Checker):
    """Everything folded into a cache key must be deterministic."""

    name = "determinism"
    codes = {
        "RPR101": "nondeterministic call reachable from cache-key hashing",
        "RPR102": "set iteration reachable from cache-key hashing",
        "RPR103": "record payload fields changed without a RECORD_VERSION bump",
        "RPR104": "RECORD_VERSION/schema fingerprint not registered with the linter",
    }

    def check_repo(
        self, sources: Sequence[SourceFile], root: Path
    ) -> list[Finding]:
        findings = self._hash_reachability(sources)
        findings.extend(self._record_schema(sources))
        return findings

    # -- RPR101/RPR102 --------------------------------------------------
    def _hash_reachability(
        self, sources: Sequence[SourceFile]
    ) -> list[Finding]:
        functions = _index_functions(sources)
        by_simple: dict[str, list[_FunctionFacts]] = {}
        for facts in functions:
            by_simple.setdefault(facts.qualname.rsplit(".", 1)[-1], []).append(
                facts
            )

        # Transitive callers of the hash primitives (name-level fixed
        # point): their bodies assemble hash arguments.
        reachable_names: set[str] = set(HASH_PRIMITIVES)
        via: dict[str, str] = {name: name for name in HASH_PRIMITIVES}
        callers: set[int] = set()
        changed = True
        while changed:
            changed = False
            for facts in functions:
                if id(facts.node) in callers:
                    continue
                hit = next(
                    (c for c in facts.calls if c in reachable_names), None
                )
                if hit is None:
                    continue
                callers.add(id(facts.node))
                simple = facts.qualname.rsplit(".", 1)[-1]
                chain = f"{facts.qualname} -> {via[hit]}"
                if simple not in via:
                    via[simple] = chain
                    reachable_names.add(simple)
                facts.chain = chain  # type: ignore[attr-defined]
                changed = True

        # Key producers: return a hash-primitive call (directly or
        # through another key producer) — their callee closure IS the
        # key material.
        producer_names: set[str] = set(HASH_PRIMITIVES)
        producers: list[_FunctionFacts] = []
        changed = True
        while changed:
            changed = False
            for facts in functions:
                simple = facts.qualname.rsplit(".", 1)[-1]
                if simple in producer_names:
                    continue
                if facts.returned_calls & producer_names:
                    producer_names.add(simple)
                    producers.append(facts)
                    changed = True

        # Callee closure of the key producers.
        scanned: dict[int, str] = {}
        stack: list[tuple[_FunctionFacts, str]] = [
            (facts, facts.qualname) for facts in producers
        ]
        while stack:
            facts, origin = stack.pop()
            if id(facts.node) in scanned:
                continue
            scanned[id(facts.node)] = origin
            for callee in facts.calls:
                for target in by_simple.get(callee, []):
                    if target.is_storage or id(target.node) in scanned:
                        continue
                    stack.append((target, f"{origin} -> {target.qualname}"))

        findings: list[Finding] = []
        for facts in functions:
            origin = scanned.get(id(facts.node))
            if origin is None and id(facts.node) not in callers:
                continue
            context = origin or getattr(facts, "chain", facts.qualname)
            for node, description in facts.nondet:
                findings.append(
                    facts.source.finding(
                        node,
                        "RPR101",
                        f"{description} in {facts.qualname} feeds cache-key "
                        f"hashing (via {context})",
                    )
                )
            for node in facts.set_iters:
                findings.append(
                    facts.source.finding(
                        node,
                        "RPR102",
                        f"iteration over a set in {facts.qualname} feeds "
                        f"cache-key hashing with arbitrary order (via "
                        f"{context}); sort it first",
                    )
                )
        return findings

    # -- RPR103/RPR104 --------------------------------------------------
    def _record_schema(self, sources: Sequence[SourceFile]) -> list[Finding]:
        for source in sources:
            version, version_node = _int_assign(source.tree, "RECORD_VERSION")
            keys, keys_node = _str_collection_assign(
                source.tree, "_RECORD_PAYLOAD_KEYS"
            )
            if version is None or keys is None:
                continue
            fingerprint = record_schema_fingerprint(keys)
            registered = KNOWN_RECORD_SCHEMAS.get(version)
            if registered == fingerprint:
                return []
            if registered is not None:
                return [
                    source.finding(
                        keys_node,
                        "RPR103",
                        f"record payload fields changed (fingerprint "
                        f"{fingerprint[:12]}..., registered "
                        f"{registered[:12]}...) but RECORD_VERSION is still "
                        f"{version}; stale caches would deserialize wrongly "
                        "— bump RECORD_VERSION and register the new schema "
                        "in repro.analysis.static.determinism",
                    )
                ]
            return [
                source.finding(
                    version_node,
                    "RPR104",
                    f"RECORD_VERSION {version} has no registered schema "
                    f"fingerprint; add {{{version}: "
                    f"{fingerprint!r}}} to KNOWN_RECORD_SCHEMAS in "
                    "repro.analysis.static.determinism after auditing the "
                    "payload change",
                )
            ]
        return []


def _int_assign(
    tree: ast.Module, name: str
) -> tuple[int | None, ast.AST | None]:
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == name for t in node.targets
            )
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
        ):
            return node.value.value, node
    return None, None


def _str_collection_assign(
    tree: ast.Module, name: str
) -> tuple[list[str] | None, ast.AST | None]:
    for node in tree.body:
        if not isinstance(node, ast.Assign) or not any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            continue
        value = node.value
        if isinstance(value, ast.Call) and _dotted(value.func)[-1:] == (
            "frozenset",
        ):
            if value.args and isinstance(value.args[0], (ast.Set, ast.List, ast.Tuple)):
                value = value.args[0]
        if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            elements = []
            for element in value.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None, node
                elements.append(element.value)
            return elements, node
    return None, None
