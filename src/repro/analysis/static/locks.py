"""RPR2xx — lock coverage in classes that own a lock.

The threaded surfaces (``repro.io.server.CacheServer``, the claim
tables, any backend served to handler threads) follow one discipline:
a class that creates a ``threading.Lock``/``RLock``/``Condition`` in
``__init__`` is declaring "my mutable state is shared"; every write to
an attribute initialized in ``__init__`` must then happen inside a
``with self.<lock>:`` block. ``__init__`` itself (and the context/
finalizer dunders, which run on the owning thread) are exempt.

The checker is lexical: it sees ``with self._lock:`` nesting, not
runtime call structure, so a private helper that is *documented* as
"call holding the lock" needs a ``# noqa: RPR201`` with that rationale
— which is exactly the audit trail the convention wants.

Codes
-----
* ``RPR201`` — write to a shared attribute outside every lock block.
"""

from __future__ import annotations

import ast

from .core import Checker, Finding, SourceFile

__all__ = ["LockCoverageChecker"]

#: Constructor names that mark an attribute as a lock.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})

#: Methods that run on the owning thread before/after sharing starts.
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__del__", "__exit__"})


def _dotted_last(node: ast.AST) -> str | None:
    while isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"`` (only for a plain ``self`` base)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _store_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    if isinstance(node, ast.Delete):
        return list(node.targets)
    return []


def _written_attr(target: ast.expr) -> tuple[str | None, ast.expr]:
    """The ``self`` attribute a store target writes, unwrapping
    subscripts (``self._entries[k] = ...`` writes ``_entries``) and
    tuple targets handled by the caller."""
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    return _self_attr(node), target


class _MethodVisitor(ast.NodeVisitor):
    """Walk one method body tracking ``with self.<lock>`` nesting."""

    def __init__(
        self,
        source: SourceFile,
        class_name: str,
        method_name: str,
        shared: frozenset[str],
        locks: frozenset[str],
    ) -> None:
        self.source = source
        self.class_name = class_name
        self.method_name = method_name
        self.shared = shared
        self.locks = locks
        self.depth = 0
        self.findings: list[Finding] = []

    def _holds_lock(self, item: ast.withitem) -> bool:
        expr = item.context_expr
        # ``with self._lock:`` and ``with self._lock.acquire_timeout()``-
        # style wrappers both count; the lock attribute is the anchor.
        for node in ast.walk(expr):
            attr = _self_attr(node)
            if attr is not None and attr in self.locks:
                return True
        return False

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        held = any(self._holds_lock(item) for item in node.items)
        if held:
            self.depth += 1
        self.generic_visit(node)
        if held:
            self.depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are visited as methods only at class level

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.stmt) and self.depth == 0:
            for target in _store_targets(node):
                targets = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in targets:
                    attr, anchor = _written_attr(element)
                    if attr in self.shared and attr not in self.locks:
                        self.findings.append(
                            self.source.finding(
                                anchor,
                                "RPR201",
                                f"{self.class_name}.{self.method_name} writes "
                                f"shared attribute self.{attr} outside "
                                f"`with self.<lock>` (locks owned: "
                                f"{', '.join(sorted(self.locks))})",
                            )
                        )
        super().generic_visit(node)


class LockCoverageChecker(Checker):
    """Classes owning a lock must write shared state under it."""

    name = "lock-coverage"
    codes = {
        "RPR201": "shared-attribute write outside the owning class's lock",
    }

    def check_file(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> list[Finding]:
        methods = [
            child
            for child in cls.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        locks: set[str] = set()
        shared: set[str] = set()
        for method in methods:
            for stmt in ast.walk(method):
                for target in _store_targets(stmt) if isinstance(stmt, ast.stmt) else []:
                    attr, _ = _written_attr(target)
                    if attr is None:
                        continue
                    value = getattr(stmt, "value", None)
                    if (
                        isinstance(value, ast.Call)
                        and _dotted_last(value.func) in _LOCK_FACTORIES
                    ):
                        locks.add(attr)
                    elif method.name == "__init__" and not isinstance(
                        target, ast.Subscript
                    ):
                        shared.add(attr)
        if not locks:
            return []
        findings: list[Finding] = []
        for method in methods:
            if method.name in _EXEMPT_METHODS:
                continue
            visitor = _MethodVisitor(
                source,
                cls.name,
                method.name,
                frozenset(shared),
                frozenset(locks),
            )
            for stmt in method.body:
                visitor.visit(stmt)
            findings.extend(visitor.findings)
        return findings
