"""Job traces (Section 4.2) and the speed bounds of Proposition 7.

The analysis accounts the energy the optimal infeasible solution invests
in a job to energy PD *actually* spends during the job's **trace**: a set
of (interval, processor-rank) pairs. In each atomic interval the
contributing jobs finished by PD occupy the fastest processor ranks in
decreasing ``s_hat`` order; the unfinished contributors take the next
ranks. Traces are pairwise disjoint by construction, so the traced
energies sum to at most PD's total energy — one of the checks the tests
perform.

Proposition 7 lower-bounds the speed PD's final schedule runs at on the
rank assigned to a job: at least the job's planned speed ``s~_j`` when PD
finished the job, and at least ``s~_j - x̌_{jk} w_j / l_k`` when it did
not. Both bounds are verified numerically by the property tests; they are
the load-bearing steps of Lemmas 9 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pd import PDResult
from ..types import FloatArray
from .certificates import DualCertificate, dual_certificate

__all__ = ["TraceReport", "build_traces", "check_proposition7"]


@dataclass(frozen=True)
class TraceReport:
    """Traces of all jobs plus PD energy measured along them.

    Attributes
    ----------
    trace:
        ``trace[j]`` is the tuple of ``(interval k, rank i)`` pairs of job
        ``j`` (ranks are 0-based: rank 0 = fastest processor).
    e_pd:
        ``e_pd[j]`` is PD's energy on the traced (interval, rank) slots.
    speeds:
        The full ``(m, N)`` rank-speed matrix of PD's final schedule.
    """

    trace: tuple[tuple[tuple[int, int], ...], ...]
    e_pd: FloatArray
    speeds: FloatArray

    @property
    def total_traced_energy(self) -> float:
        return float(self.e_pd.sum())


def build_traces(
    result: PDResult, certificate: DualCertificate | None = None
) -> TraceReport:
    """Construct the disjoint traces of Section 4.2 for a PD run."""
    cert = certificate or dual_certificate(result)
    schedule = result.schedule
    instance = schedule.instance
    grid = schedule.grid
    alpha = instance.alpha
    finished = schedule.finished

    speeds = schedule.processor_speed_matrix()  # (m, N), descending rows
    lengths = grid.lengths

    slots: list[list[tuple[int, int]]] = [[] for _ in range(instance.n)]
    e_pd = np.zeros(instance.n)
    for k, members in enumerate(cert.contributors):
        fin = [j for j in members if finished[j]]
        unf = [j for j in members if not finished[j]]
        # Members are already sorted by s_hat descending (ties by id).
        ordered = fin + unf
        for rank, j in enumerate(ordered):
            slots[j].append((k, rank))
            e_pd[j] += float(lengths[k]) * float(speeds[rank, k]) ** alpha

    return TraceReport(
        trace=tuple(tuple(t) for t in slots),
        e_pd=e_pd,
        speeds=speeds,
    )


def check_proposition7(
    result: PDResult,
    report: TraceReport | None = None,
    *,
    rtol: float = 1e-6,
) -> list[str]:
    """Verify Proposition 7's speed bounds; return violation messages.

    An empty list means every traced slot satisfies its bound. Violations
    are returned (not raised) so tests can show all of them at once.
    """
    rep = report or build_traces(result)
    schedule = result.schedule
    instance = schedule.instance
    lengths = schedule.grid.lengths
    finished = schedule.finished
    problems: list[str] = []
    for j in range(instance.n):
        s_tilde = result.decisions[j].planned_speed
        for k, rank in rep.trace[j]:
            s_ik = float(rep.speeds[rank, k])
            if finished[j]:
                bound = s_tilde
                label = "7a"
            else:
                xw = float(result.planned_loads[j, k])
                bound = s_tilde - xw / float(lengths[k])
                label = "7b"
            if s_ik < bound * (1.0 - rtol) - 1e-9:
                problems.append(
                    f"Prop {label} violated for job {j} at interval {k}, rank "
                    f"{rank}: speed {s_ik:.9g} < bound {bound:.9g}"
                )
    return problems
