"""Job categories J1/J2/J3 and the per-category bounds of Lemmas 9–11.

Section 4.3 of the paper splits the dual value ``g(lambda~) = g1 + g2 +
g3`` by job category and bounds each part separately:

* **J1 — finished jobs** (``y~_j = 1``). Lemma 9:
  ``g1 >= delta * E_PD + (1 - alpha) * delta**(alpha/(alpha-1)) *
  sum_{J1} E_PD(j)``.
* **J2 — unfinished, low-yield** (``y~_j = 0`` and
  ``x^_j <= (alpha - alpha**(1-alpha)) / (alpha - 1)``). Lemma 10:
  ``g2 >= alpha**(-alpha) * sum_{J2} v_j``.
* **J3 — unfinished, high-yield** (the rest). Lemma 11 (requires
  ``delta <= alpha**(1-alpha)``):
  ``g3 >= (1-alpha) * alpha**(-alpha) * sum_{J3} E_PD(j)
        + alpha**(-alpha) * sum_{J3} v_j``.

Combining the three yields Theorem 3. This module computes the exact
category split and evaluates both sides of every lemma so that tests and
benchmarks can confirm the *proof's* inequalities numerically, not just
the final ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pd import PDResult
from .certificates import DualCertificate, dual_certificate
from .traces import TraceReport, build_traces

__all__ = ["CategoryReport", "categorize", "lemma_bounds"]


@dataclass(frozen=True)
class CategoryReport:
    """The J1/J2/J3 split plus the per-category dual contributions."""

    j1: tuple[int, ...]
    j2: tuple[int, ...]
    j3: tuple[int, ...]
    g1: float
    g2: float
    g3: float
    threshold: float

    @property
    def g(self) -> float:
        return self.g1 + self.g2 + self.g3


@dataclass(frozen=True)
class LemmaBounds:
    """Left- and right-hand sides of Lemmas 9, 10, 11 for one run.

    Each pair ``(lhs, rhs)`` must satisfy ``lhs >= rhs`` (up to numeric
    slack); ``holds`` aggregates all three.
    """

    lemma9: tuple[float, float]
    lemma10: tuple[float, float]
    lemma11: tuple[float, float]

    def violations(self, rtol: float = 1e-7) -> list[str]:
        out = []
        for name, (lhs, rhs) in (
            ("Lemma 9", self.lemma9),
            ("Lemma 10", self.lemma10),
            ("Lemma 11", self.lemma11),
        ):
            slack = rtol * max(1.0, abs(lhs), abs(rhs))
            if lhs < rhs - slack:
                out.append(f"{name}: lhs {lhs:.9g} < rhs {rhs:.9g}")
        return out

    @property
    def holds(self) -> bool:
        return not self.violations()


def category_threshold(alpha: float) -> float:
    """The x^ threshold ``(alpha - alpha**(1-alpha)) / (alpha - 1)``."""
    return (alpha - alpha ** (1.0 - alpha)) / (alpha - 1.0)


def categorize(
    result: PDResult, certificate: DualCertificate | None = None
) -> CategoryReport:
    """Split jobs into J1/J2/J3 and evaluate the per-category dual parts.

    The contributions ``g_i = (1-alpha) * sum_{J_i} E_lambda(j) +
    sum_{J_i} lambda~_j`` sum to ``g(lambda~)`` exactly (checked by the
    tests against :func:`dual_certificate`).
    """
    cert = certificate or dual_certificate(result)
    instance = result.schedule.instance
    alpha = instance.alpha
    finished = result.schedule.finished
    thr = category_threshold(alpha)

    j1 = tuple(int(j) for j in np.nonzero(finished)[0])
    unfinished = np.nonzero(~finished)[0]
    j2 = tuple(int(j) for j in unfinished if cert.x_hat[j] <= thr + 1e-12)
    j3 = tuple(int(j) for j in unfinished if cert.x_hat[j] > thr + 1e-12)

    def part(ids: tuple[int, ...]) -> float:
        idx = list(ids)
        return float(
            (1.0 - alpha) * cert.e_lambda[idx].sum() + result.lambdas[idx].sum()
        )

    return CategoryReport(
        j1=j1, j2=j2, j3=j3, g1=part(j1), g2=part(j2), g3=part(j3), threshold=thr
    )


def lemma_bounds(
    result: PDResult,
    certificate: DualCertificate | None = None,
    traces: TraceReport | None = None,
) -> LemmaBounds:
    """Evaluate both sides of Lemmas 9–11 for a PD run.

    Lemma 11's hypothesis ``delta <= alpha**(1-alpha)`` is taken as given
    (PD's default satisfies it with equality); runs with a larger delta
    may legitimately violate the bound — the delta-ablation benchmark
    exercises exactly that.
    """
    cert = certificate or dual_certificate(result)
    rep = traces or build_traces(result, cert)
    cats = categorize(result, cert)
    instance = result.schedule.instance
    alpha = instance.alpha
    delta = result.delta
    values = instance.values
    e_pd_total = result.schedule.energy

    j1, j2, j3 = list(cats.j1), list(cats.j2), list(cats.j3)
    rhs9 = delta * e_pd_total + (1.0 - alpha) * delta ** (
        alpha / (alpha - 1.0)
    ) * float(rep.e_pd[j1].sum())
    rhs10 = alpha ** (-alpha) * float(values[j2].sum())
    rhs11 = (1.0 - alpha) * alpha ** (-alpha) * float(
        rep.e_pd[j3].sum()
    ) + alpha ** (-alpha) * float(values[j3].sum())

    return LemmaBounds(
        lemma9=(cats.g1, rhs9),
        lemma10=(cats.g2, rhs10),
        lemma11=(cats.g3, rhs11),
    )
