"""Schedule metrics and head-to-head comparison helpers.

Small, dependency-light utilities the benchmarks and examples share:
peak/average speeds, acceptance statistics, and empirical competitive
ratios against an exact optimum or a dual lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.schedule import Schedule

__all__ = ["ScheduleMetrics", "schedule_metrics", "empirical_ratio"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary statistics of one schedule."""

    cost: float
    energy: float
    lost_value: float
    accepted: int
    rejected: int
    peak_speed: float
    mean_busy_speed: float

    def row(self) -> str:
        """One-line fixed-width rendering for benchmark tables."""
        return (
            f"cost={self.cost:>10.4f} energy={self.energy:>10.4f} "
            f"lost={self.lost_value:>8.4f} acc={self.accepted:>3d}/"
            f"{self.accepted + self.rejected:<3d} peak={self.peak_speed:>7.3f}"
        )


def schedule_metrics(schedule: Schedule) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` for any schedule."""
    speeds = schedule.processor_speed_matrix()
    lengths = schedule.grid.lengths
    busy = speeds > 1e-12
    if busy.any():
        peak = float(speeds.max())
        weights = np.broadcast_to(lengths, speeds.shape)[busy]
        mean_busy = float(np.average(speeds[busy], weights=weights))
    else:
        peak = 0.0
        mean_busy = 0.0
    accepted = int(schedule.finished.sum())
    return ScheduleMetrics(
        cost=schedule.cost,
        energy=schedule.energy,
        lost_value=schedule.lost_value,
        accepted=accepted,
        rejected=schedule.instance.n - accepted,
        peak_speed=peak,
        mean_busy_speed=mean_busy,
    )


def empirical_ratio(cost: float, baseline: float) -> float:
    """``cost / baseline`` with care for degenerate baselines.

    Baselines at (numerical) zero with zero cost count as ratio 1; a
    positive cost against a zero baseline is infinity.
    """
    if baseline <= 1e-15:
        return 1.0 if cost <= 1e-15 else float("inf")
    return cost / baseline
