"""Adversarial instance search: how close to ``alpha**alpha`` can we push PD?

Theorem 3 is tight *in the limit*: the Bansal–Kimbrel–Pruhs staircase
drives PD's ratio towards ``alpha**alpha`` only as ``n -> infinity`` (and
logarithmically slowly). A natural complementary question for a finite
test harness is how bad PD can look at *small* sizes, and whether any
reachable instance ever violates a certificate — a stochastic-search
falsification attempt in the spirit of property-based testing, but
steered by hill-climbing on the quantity the theorem bounds.

:func:`search_adversarial` runs randomized local search over instances:
random restarts from a seed family, then rounds of mutations (jitter a
job's window/workload/value, add a job, drop a job) keeping the best
instance by the chosen objective:

* ``"certificate"`` — ``cost(PD) / g(lambda~)``: defined at any size,
  provably ``<= alpha**alpha``; maximizing it probes the certificate's
  slack directly.
* ``"optimal"`` — ``cost(PD) / cost(OPT)`` with the exact enumeration
  solver: the true competitive ratio, small ``n`` only.

Every evaluation re-checks the Theorem 3 certificate; a violation raises
:class:`~repro.errors.CertificateError` immediately (it would mean a bug,
not an adversarial success — the theorem is proved). E14 runs the search
as a benchmark and records the hardest instances found.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from ..core.pd import run_pd
from ..errors import CertificateError, InvalidParameterError
from ..model.job import Instance, Job
from ..offline.optimal import solve_exact
from .certificates import dual_certificate

__all__ = ["AdversaryResult", "search_adversarial", "mutate_instance"]

Objective = Literal["certificate", "optimal"]

#: Smallest workable time quantities during mutation.
_MIN_SPAN = 0.05
_MIN_WORK = 0.01
_MIN_VALUE = 1e-4


@dataclass(frozen=True)
class AdversaryResult:
    """Outcome of one adversarial search run.

    Attributes
    ----------
    instance:
        The hardest instance found.
    ratio:
        Its objective value (certificate or true competitive ratio).
    bound:
        ``alpha**alpha`` for reference.
    evaluations:
        Number of (mutation, evaluation) steps performed.
    history:
        Best-so-far ratio after each improvement, for convergence plots.
    """

    instance: Instance
    ratio: float
    bound: float
    evaluations: int
    history: tuple[float, ...]

    @property
    def slack(self) -> float:
        """``bound / ratio`` — how much room the search left unclaimed."""
        return self.bound / self.ratio


def _evaluate(instance: Instance, objective: Objective) -> float:
    """Objective value of one instance; re-checks Theorem 3 every time."""
    result = run_pd(instance)
    cert = dual_certificate(result)
    if not cert.holds:
        raise CertificateError(
            f"search reached an instance violating Theorem 3: "
            f"ratio {cert.ratio} > bound {cert.bound} on {instance.jobs}"
        )
    if objective == "certificate":
        return cert.ratio
    opt = solve_exact(instance)
    if opt.cost <= 0.0:  # pragma: no cover - costs are positive by model
        return 1.0
    return result.cost / opt.cost


def mutate_instance(instance: Instance, rng: np.random.Generator) -> Instance:
    """One random structural or numeric mutation of an instance.

    Operators (picked uniformly): jitter one job's release, deadline,
    workload, or value (log-normal multipliers); clone a job with a
    shifted window; drop a random job (when more than one remains). All
    results are valid instances; values and spans are clamped away from
    the degenerate edges the model forbids.
    """
    jobs = list(instance.jobs)
    op = rng.integers(0, 6)
    j = int(rng.integers(0, len(jobs)))
    job = jobs[j]
    if op == 0:  # jitter release (keep window non-empty and t >= 0)
        new_release = job.release + float(rng.normal(0.0, 0.3))
        new_release = min(new_release, job.deadline - _MIN_SPAN)
        new_release = max(0.0, new_release)
        if new_release < job.deadline:
            jobs[j] = Job(new_release, job.deadline, job.workload, job.value)
    elif op == 1:  # jitter deadline
        new_deadline = job.deadline + float(rng.normal(0.0, 0.3))
        new_deadline = max(new_deadline, job.release + _MIN_SPAN)
        jobs[j] = Job(job.release, new_deadline, job.workload, job.value)
    elif op == 2:  # scale workload
        factor = float(np.exp(rng.normal(0.0, 0.35)))
        jobs[j] = Job(
            job.release,
            job.deadline,
            max(_MIN_WORK, job.workload * factor),
            job.value,
        )
    elif op == 3:  # scale value
        factor = float(np.exp(rng.normal(0.0, 0.5)))
        jobs[j] = Job(
            job.release,
            job.deadline,
            job.workload,
            max(_MIN_VALUE, job.value * factor),
        )
    elif op == 4:  # clone with a shifted window
        shift = abs(float(rng.normal(0.0, 0.5)))
        jobs.append(
            Job(
                job.release + shift,
                job.deadline + shift,
                job.workload,
                job.value,
            )
        )
    else:  # drop (keep at least one job)
        if len(jobs) > 1:
            jobs.pop(j)
    return Instance(tuple(jobs), m=instance.m, alpha=instance.alpha)


def search_adversarial(
    seeds: Sequence[Instance],
    *,
    objective: Objective = "certificate",
    rounds: int = 200,
    rng: np.random.Generator | int | None = None,
    max_jobs: int = 12,
) -> AdversaryResult:
    """Hill-climb over instances to maximize PD's ratio.

    Parameters
    ----------
    seeds:
        Starting instances (restart points); all must share ``m`` and
        ``alpha``. The search keeps a single global best.
    objective:
        ``"certificate"`` (any size) or ``"optimal"`` (exact, small n).
    rounds:
        Mutation-evaluation steps per seed.
    rng:
        Seedable randomness; pass an int for reproducibility.
    max_jobs:
        Mutations that would grow an instance beyond this are re-rolled
        as drops — keeps ``"optimal"`` runs inside the exact solver's
        enumeration budget.

    Notes
    -----
    Plain hill-climbing with restarts, no annealing: the landscape is
    rugged but the point is falsification pressure and a reproducible
    "hardest found" exhibit, not global optimality. Runtime is dominated
    by the PD runs (objective ``"certificate"``) or the exact solves
    (objective ``"optimal"``).
    """
    if not seeds:
        raise InvalidParameterError("need at least one seed instance")
    gen = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    best_instance: Instance | None = None
    best_ratio = -np.inf
    history: list[float] = []
    evaluations = 0

    for seed_inst in seeds:
        ratio = _evaluate(seed_inst, objective)
        evaluations += 1
        if ratio > best_ratio:
            best_ratio, best_instance = ratio, seed_inst
            history.append(ratio)
        current, current_ratio = seed_inst, ratio
        for _ in range(rounds):
            candidate = mutate_instance(current, gen)
            if candidate.n > max_jobs:
                continue
            ratio = _evaluate(candidate, objective)
            evaluations += 1
            if ratio > current_ratio:
                current, current_ratio = candidate, ratio
                if ratio > best_ratio:
                    best_ratio, best_instance = ratio, candidate
                    history.append(ratio)

    assert best_instance is not None
    bound = float(best_instance.alpha ** best_instance.alpha)
    return AdversaryResult(
        instance=best_instance,
        ratio=best_ratio,
        bound=bound,
        evaluations=evaluations,
        history=tuple(history),
    )
