"""Hindsight decomposition: *where* did the online algorithm lose?

Theorem 3 bounds PD's total cost against the optimum, but an operator
debugging a schedule wants the loss itemized. Comparing a PD run with the
exact offline solution (small instances) or the offline optimum for PD's
own acceptance set (any size) splits the regret into:

* **admission regret** — cost attributable to accepting/rejecting the
  wrong jobs: the difference between the offline optimum for PD's
  acceptance set and the true offline optimum;
* **placement regret** — cost attributable to online work placement: the
  difference between PD's realized cost and the offline optimum for the
  *same* acceptance set.

The two sum to PD's total regret against OPT. The decomposition is exact
by construction and is itself asserted in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pd import PDResult
from ..errors import InvalidParameterError
from ..offline.convex import solve_min_energy
from ..offline.optimal import solve_exact

__all__ = ["HindsightDecomposition", "hindsight_decomposition"]

#: Exact enumeration is only attempted up to this instance size.
_EXACT_LIMIT = 14


@dataclass(frozen=True)
class HindsightDecomposition:
    """Itemized regret of one PD run.

    Attributes
    ----------
    pd_cost:
        Realized online cost.
    same_set_cost:
        Offline optimum constrained to PD's acceptance decisions
        (energy of the best schedule for the accepted set + PD's lost
        value).
    opt_cost:
        True offline optimum, or ``None`` when the instance is too large
        for exact enumeration.
    placement_regret:
        ``pd_cost - same_set_cost`` — the price of placing work online.
    admission_regret:
        ``same_set_cost - opt_cost`` (``None`` without ``opt_cost``) —
        the price of the online accept/reject decisions.
    """

    pd_cost: float
    same_set_cost: float
    opt_cost: float | None

    @property
    def placement_regret(self) -> float:
        return self.pd_cost - self.same_set_cost

    @property
    def admission_regret(self) -> float | None:
        if self.opt_cost is None:
            return None
        return self.same_set_cost - self.opt_cost

    @property
    def total_regret(self) -> float | None:
        if self.opt_cost is None:
            return None
        return self.pd_cost - self.opt_cost

    def summary(self) -> str:
        lines = [
            f"PD cost:                  {self.pd_cost:.6f}",
            f"offline, same decisions:  {self.same_set_cost:.6f}",
            f"  placement regret:       {self.placement_regret:.6f}",
        ]
        if self.opt_cost is not None:
            lines += [
                f"offline optimum:          {self.opt_cost:.6f}",
                f"  admission regret:       {self.admission_regret:.6f}",
                f"  total regret:           {self.total_regret:.6f} "
                f"({self.pd_cost / self.opt_cost:.3f}x OPT)",
            ]
        else:
            lines.append("offline optimum:          (instance too large for exact)")
        return "\n".join(lines)


def hindsight_decomposition(
    result: PDResult, *, exact: bool | None = None
) -> HindsightDecomposition:
    """Decompose a PD run's regret against offline comparators.

    Parameters
    ----------
    result:
        A finished PD run.
    exact:
        Force (True) or forbid (False) the exact enumeration of the true
        optimum. Default: attempt it only when ``n <= 14``.
    """
    instance = result.schedule.instance
    accepted = [int(j) for j in result.accepted_mask.nonzero()[0]]
    same_set = solve_min_energy(instance, accepted)
    same_set_cost = same_set.energy + result.schedule.lost_value

    want_exact = instance.n <= _EXACT_LIMIT if exact is None else exact
    opt_cost: float | None = None
    if want_exact:
        if instance.n > 18:
            raise InvalidParameterError(
                f"exact hindsight requested for n={instance.n} > 18"
            )
        opt_cost = solve_exact(instance).cost

    # Guard against solver noise producing a nonsensical negative regret.
    same_set_cost = min(same_set_cost, result.cost * (1.0 + 1e-12))
    return HindsightDecomposition(
        pd_cost=result.cost,
        same_set_cost=same_set_cost,
        opt_cost=opt_cost,
    )
