"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class. Subclasses distinguish between *input*
problems (bad instances, bad parameters), *model* violations (infeasible
schedules), and *numerical* failures (solvers that did not converge).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidJobError",
    "InvalidInstanceError",
    "InvalidParameterError",
    "InfeasibleScheduleError",
    "GridMismatchError",
    "SolverError",
    "ConvergenceError",
    "CertificateError",
    "CacheError",
]


class ReproError(Exception):
    """Base class for all exceptions raised by :mod:`repro`."""


class InvalidJobError(ReproError, ValueError):
    """A job's attributes are inconsistent (e.g. ``deadline <= release``)."""


class InvalidInstanceError(ReproError, ValueError):
    """A job set cannot form a valid problem instance."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its admissible range.

    Examples: an energy exponent ``alpha <= 1``, a processor count
    ``m < 1``, or a primal-dual aggressiveness ``delta <= 0``.
    """


class InfeasibleScheduleError(ReproError, ValueError):
    """A schedule violates a model constraint.

    Raised when a work assignment places load outside a job's
    release-deadline window, schedules a job on two processors at once, or
    claims to finish a job without processing its full workload.
    """


class GridMismatchError(ReproError, ValueError):
    """Two objects refer to different atomic-interval partitions."""


class SolverError(ReproError, RuntimeError):
    """A numerical solver failed in a way that is not a convergence issue."""


class ConvergenceError(SolverError):
    """An iterative solver exhausted its iteration budget.

    Carries the best iterate found so far in :attr:`best`, when available,
    so callers may inspect or accept a slightly-suboptimal answer.
    """

    def __init__(self, message: str, best: object | None = None) -> None:
        super().__init__(message)
        self.best = best


class CacheError(ReproError, RuntimeError):
    """A cache backend failed beyond a simple miss.

    Raised for conditions a caller asked about explicitly and cannot
    sensibly paper over — an unreachable cache server when listing keys
    or reading stats, a claim-table conflict between work-stealing
    workers. Plain ``get``/``put`` traffic never raises this: a broken
    remote degrades to misses (recompute), by design.
    """


class CertificateError(ReproError, AssertionError):
    """A competitive-ratio or KKT certificate check failed.

    These checks encode theorems of the paper; a failure means either a
    bug in an algorithm implementation or numerical tolerances that are
    too tight — never an "expected" runtime condition.
    """
