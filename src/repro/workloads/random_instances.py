"""Random instance families for stress-testing and benchmarks.

All generators take an explicit seed (or ``numpy.random.Generator``) and
are fully deterministic given it. Values are parameterized by a
*value-to-energy ratio* knob: a job's value is drawn as a multiple of its
solo energy (constant speed over its own window), which is the natural
scale at which accept/reject decisions flip — drawing values on any other
scale makes instances trivially all-accept or all-reject.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ..model.job import Instance, Job
from ..model.power import optimal_constant_speed_energy
from ..types import Seed
from .registry import register_workload

__all__ = ["poisson_instance", "heavy_tail_instance", "uniform_instance"]


def _rng(seed: Seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _with_values(
    rows: list[tuple[float, float, float]],
    *,
    alpha: float,
    m: int,
    rng: np.random.Generator,
    value_ratio: tuple[float, float],
) -> Instance:
    """Attach values drawn as ``ratio * solo_energy`` per job."""
    lo, hi = value_ratio
    if not (0.0 < lo <= hi):
        raise InvalidParameterError(f"bad value_ratio range {value_ratio}")
    jobs = []
    for r, d, w in rows:
        solo = optimal_constant_speed_energy(alpha, w, d - r)
        ratio = float(rng.uniform(lo, hi))
        jobs.append(Job(r, d, w, ratio * solo))
    return Instance(tuple(jobs), m=m, alpha=alpha)


@register_workload(
    "poisson",
    summary="Poisson arrivals, exponential windows and workloads",
    params={"arrival_rate": float, "mean_span": float, "mean_workload": float},
)
def poisson_instance(
    n: int,
    *,
    m: int = 1,
    alpha: float = 3.0,
    arrival_rate: float = 1.0,
    mean_span: float = 2.0,
    mean_workload: float = 1.0,
    value_ratio: tuple[float, float] = (0.1, 10.0),
    seed: Seed = None,
) -> Instance:
    """Poisson arrivals, exponential windows and workloads.

    The canonical "data-center request stream" shape: memoryless arrivals
    with i.i.d. work. ``value_ratio`` spans two orders of magnitude by
    default, so a healthy mix of accepts and rejects occurs.
    """
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    rng = _rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate, size=n)
    releases = np.cumsum(gaps) - gaps[0]
    spans = rng.exponential(mean_span, size=n) + 1e-2
    workloads = rng.exponential(mean_workload, size=n) + 1e-3
    rows = [
        (float(releases[i]), float(releases[i] + spans[i]), float(workloads[i]))
        for i in range(n)
    ]
    return _with_values(rows, alpha=alpha, m=m, rng=rng, value_ratio=value_ratio)


@register_workload(
    "heavy-tail",
    summary="Pareto workloads, uniform arrivals: a few elephants, many mice",
    params={"pareto_shape": float, "horizon": float},
)
def heavy_tail_instance(
    n: int,
    *,
    m: int = 1,
    alpha: float = 3.0,
    pareto_shape: float = 1.5,
    horizon: float = 50.0,
    value_ratio: tuple[float, float] = (0.1, 10.0),
    seed: Seed = None,
) -> Instance:
    """Pareto workloads with uniform arrivals: a few elephants, many mice.

    Heavy tails are the adversarial regime for speed scaling — an elephant
    with a tight window forces either a large energy investment or a large
    value loss, which is exactly where the rejection policy earns its keep.
    """
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    rng = _rng(seed)
    releases = np.sort(rng.uniform(0.0, horizon, size=n))
    spans = rng.uniform(0.5, 0.2 * horizon, size=n)
    workloads = rng.pareto(pareto_shape, size=n) + 0.05
    rows = [
        (float(releases[i]), float(releases[i] + spans[i]), float(workloads[i]))
        for i in range(n)
    ]
    return _with_values(rows, alpha=alpha, m=m, rng=rng, value_ratio=value_ratio)


@register_workload(
    "uniform",
    summary="everything uniform: the bland control family",
    params={"horizon": float},
)
def uniform_instance(
    n: int,
    *,
    m: int = 1,
    alpha: float = 3.0,
    horizon: float = 20.0,
    value_ratio: tuple[float, float] = (0.1, 10.0),
    seed: Seed = None,
) -> Instance:
    """Everything uniform: the bland control family."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    rng = _rng(seed)
    releases = rng.uniform(0.0, horizon * 0.8, size=n)
    spans = rng.uniform(0.2, horizon * 0.3, size=n)
    workloads = rng.uniform(0.1, 2.0, size=n)
    rows = [
        (float(releases[i]), float(releases[i] + spans[i]), float(workloads[i]))
        for i in range(n)
    ]
    return _with_values(rows, alpha=alpha, m=m, rng=rng, value_ratio=value_ratio)
