"""Structured instance families with special window patterns.

Scheduling theory distinguishes instance classes by the structure of the
release/deadline windows; algorithms often behave very differently across
them, so the test- and benchmark-suites sweep all of these:

* **agreeable** — windows ordered the same way by release and deadline
  (``r_i <= r_j  =>  d_i <= d_j``); the "easy" online case.
* **laminar** — windows nested like parentheses; the hierarchical case
  produced by fork-join workloads.
* **batch** — everything released together with a common deadline; the
  pure load-balancing case where Chen et al.'s partition does all the
  work (this is the shape of the paper's Figure 2 example).
* **tight** — windows barely longer than the work at unit speed; the
  high-pressure case where rejections dominate.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ..model.job import Instance, Job
from ..model.job_arrays import JobArrays
from ..model.power import optimal_constant_speed_energy
from ..types import Seed
from .registry import register_workload

__all__ = [
    "agreeable_instance",
    "laminar_instance",
    "batch_instance",
    "tight_instance",
    "bursty_instance",
    "slotted_instance",
]


def _rng(seed: Seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _value(rng: np.random.Generator, alpha: float, w: float, span: float,
           value_ratio: tuple[float, float]) -> float:
    solo = optimal_constant_speed_energy(alpha, w, span)
    return float(rng.uniform(*value_ratio)) * solo


@register_workload(
    "agreeable",
    summary="releases and deadlines increase together (FIFO-like windows)",
)
def agreeable_instance(
    n: int,
    *,
    m: int = 1,
    alpha: float = 3.0,
    value_ratio: tuple[float, float] = (0.2, 5.0),
    seed: Seed = None,
) -> Instance:
    """Releases and deadlines increase together (FIFO-like windows)."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    rng = _rng(seed)
    releases = np.sort(rng.uniform(0.0, 10.0, size=n))
    spans = rng.uniform(1.0, 3.0, size=n)
    deadlines = releases + spans
    deadlines = np.maximum.accumulate(deadlines)  # enforce agreeability
    jobs = []
    for i in range(n):
        w = float(rng.uniform(0.2, 1.5))
        span = float(deadlines[i] - releases[i])
        jobs.append(
            Job(float(releases[i]), float(deadlines[i]), w,
                _value(rng, alpha, w, span, value_ratio))
        )
    return Instance(tuple(jobs), m=m, alpha=alpha)


def laminar_instance(
    depth: int,
    *,
    branching: int = 2,
    m: int = 1,
    alpha: float = 3.0,
    value_ratio: tuple[float, float] = (0.2, 5.0),
    seed: Seed = None,
) -> Instance:
    """Nested windows: one job per node of a ``branching``-ary tree.

    The root spans ``[0, 2**depth)``; each child splits its parent's
    window. Total jobs: ``(branching**depth - 1) / (branching - 1)`` for
    ``branching >= 2``.
    """
    if depth < 1:
        raise InvalidParameterError(f"need depth >= 1, got {depth}")
    if branching < 2:
        raise InvalidParameterError(f"need branching >= 2, got {branching}")
    rng = _rng(seed)
    jobs: list[Job] = []

    def recurse(lo: float, hi: float, level: int) -> None:
        span = hi - lo
        w = float(rng.uniform(0.2, 0.8)) * span
        jobs.append(Job(lo, hi, w, _value(rng, alpha, w, span, value_ratio)))
        if level + 1 >= depth:
            return
        step = span / branching
        for b in range(branching):
            recurse(lo + b * step, lo + (b + 1) * step, level + 1)

    recurse(0.0, float(2**depth), 0)
    return Instance(tuple(jobs), m=m, alpha=alpha)


@register_workload(
    "batch",
    summary="all jobs released at 0 with a common deadline (Figure 2)",
    params={"deadline": float},
)
def batch_instance(
    n: int,
    *,
    m: int = 4,
    alpha: float = 3.0,
    deadline: float = 1.0,
    value_ratio: tuple[float, float] = (0.2, 5.0),
    seed: Seed = None,
) -> Instance:
    """All jobs released at 0 with a common deadline (Figure 2's shape)."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    rng = _rng(seed)
    jobs = []
    for _ in range(n):
        w = float(rng.uniform(0.1, 2.0))
        jobs.append(
            Job(0.0, deadline, w, _value(rng, alpha, w, deadline, value_ratio))
        )
    return Instance(tuple(jobs), m=m, alpha=alpha)


@register_workload(
    "tight",
    summary="windows barely longer than the work at unit speed",
    params={"slack": float},
)
def tight_instance(
    n: int,
    *,
    m: int = 1,
    alpha: float = 3.0,
    slack: float = 1.2,
    value_ratio: tuple[float, float] = (0.2, 5.0),
    seed: Seed = None,
) -> Instance:
    """Windows only ``slack`` times longer than the work at unit speed."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if slack <= 1.0:
        raise InvalidParameterError(f"slack must be > 1, got {slack}")
    rng = _rng(seed)
    jobs = []
    t = 0.0
    for _ in range(n):
        t += float(rng.exponential(0.5))
        w = float(rng.uniform(0.2, 1.5))
        span = w * slack
        jobs.append(Job(t, t + span, w, _value(rng, alpha, w, span, value_ratio)))
    return Instance(tuple(jobs), m=m, alpha=alpha)


@register_workload(
    "bursty",
    summary="unit must-finish jobs with periodically tightened windows",
    params={"burstiness": float, "spike_period": int, "base_span": float},
    classical=True,
)
def bursty_instance(
    n: int,
    *,
    burstiness: float = 4.0,
    spike_period: int = 4,
    m: int = 1,
    alpha: float = 3.0,
    base_span: float = 2.0,
    seed: Seed = None,
) -> Instance:
    """Unit jobs with every ``spike_period``-th window tightened.

    ``burstiness = 1`` gives identical relaxed windows (flat load);
    larger values squeeze one job in ``spike_period`` into a window
    ``burstiness`` times shorter, concentrating work into spikes. The
    family parametrizes the value-of-speed-scaling experiment (E13): a
    fixed-frequency machine must provision for the spike speed and then
    pays it on *all* its work, so its energy ratio against the offline
    optimum climbs towards the work-concentration factor
    ``spike_period`` as spikes sharpen.

    Jobs are must-finish (classical), so the family also composes with
    the classical algorithm zoo.
    """
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if burstiness < 1.0:
        raise InvalidParameterError(
            f"burstiness must be >= 1, got {burstiness}"
        )
    if spike_period < 2:
        raise InvalidParameterError(
            f"spike_period must be >= 2, got {spike_period}"
        )
    rng = _rng(seed)
    rows = []
    t = 0.0
    for i in range(n):
        span = (
            base_span / burstiness
            if i % spike_period == spike_period - 1
            else base_span
        )
        rows.append((t, t + span, 1.0))
        t += float(rng.uniform(0.25 * base_span, 0.5 * base_span))
    return Instance.classical(rows, m=m, alpha=alpha)


@register_workload(
    "laminar",
    summary="nested windows from a branching-ary tree (fork-join shape)",
    params={"branching": int},
)
def _laminar_family(n, *, branching=2, m=1, alpha=3.0, seed=0):
    """Adapter: :func:`laminar_instance` is parameterized by tree depth,
    not job count — map ``n`` to the binary-tree depth whose node count
    (``2**depth - 1``) comes closest from below, so the registry's
    uniform contract "about n jobs" holds."""
    depth = max(1, (n + 1).bit_length() - 1)
    return laminar_instance(depth, branching=branching, m=m, alpha=alpha, seed=seed)


@register_workload(
    "slotted",
    summary="slotted request stream: releases on a bounded slot grid, "
    "built columnar (the large-n fast path)",
    params={"slots": int, "span_max": int},
)
def slotted_instance(
    n: int,
    *,
    slots: int = 400,
    span_max: int = 6,
    m: int = 1,
    alpha: float = 3.0,
    value_ratio: tuple[float, float] = (0.05, 8.0),
    seed: Seed = None,
) -> Instance:
    """A slotted request stream: ``n`` jobs over ``slots`` time slots.

    Releases snap to slot boundaries and windows span 1 to ``span_max``
    slots, so the number of distinct event times — and with it the
    atomic-interval grid every algorithm works on — is bounded by the
    slot count, not the job count. This is the shape of a datacenter
    request stream batched per scheduling quantum, and the instance
    family the large-scale benches (100k–1M jobs) sweep.

    Unlike the other families, generation is fully vectorized into a
    :class:`~repro.model.job_arrays.JobArrays` column block and the
    instance is built with :meth:`Instance.from_arrays` — no per-job
    ``Job`` objects exist until something asks for them, which is what
    keeps million-job construction at milliseconds.
    """
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if slots < 1:
        raise InvalidParameterError(f"need slots >= 1, got {slots}")
    if span_max < 1:
        raise InvalidParameterError(f"need span_max >= 1, got {span_max}")
    rng = _rng(seed)
    releases = np.sort(rng.integers(0, slots, size=n)).astype(np.float64)
    spans = rng.integers(1, span_max + 1, size=n).astype(np.float64)
    workloads = rng.exponential(1.0, size=n) + 1e-3
    values = rng.uniform(*value_ratio, size=n) * workloads
    arrays = JobArrays(
        releases=releases,
        deadlines=releases + spans,
        workloads=workloads,
        values=values,
    )
    return Instance.from_arrays(arrays, m=m, alpha=alpha)
