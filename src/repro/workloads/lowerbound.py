"""The Theorem 3 lower-bound family (Bansal–Kimbrel–Pruhs instance).

The tightness half of the paper's Theorem 3 re-uses the classical lower
bound for OA: on a single processor, job ``j in {1..n}`` arrives at time
``j - 1`` with workload ``(n - j + 1)**(-1/alpha)`` and common deadline
``n``; values are high enough that PD finishes everything. PD (like OA)
spreads each job's remaining work uniformly to the horizon, which drives
its cost toward ``alpha**alpha`` times the optimum as ``n`` grows.

Both the instance generator and the closed-form cost expressions live
here, so experiment E2 can plot measured against analytic values.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ..model.job import Instance, Job
from .registry import register_workload

__all__ = [
    "lower_bound_instance",
    "pd_cost_closed_form",
    "optimal_cost_closed_form",
]

#: Values this large never trigger rejection on this family.
_SAFE_VALUE = 1e18


def lower_bound_instance(n: int, alpha: float, *, value: float = _SAFE_VALUE) -> Instance:
    """Build the n-job lower-bound instance on one processor.

    Job ``j`` (1-based): release ``j - 1``, deadline ``n``, workload
    ``(n - j + 1)**(-1/alpha)``.
    """
    if n < 1:
        raise InvalidParameterError(f"need n >= 1 jobs, got {n}")
    jobs = tuple(
        Job(
            release=float(j - 1),
            deadline=float(n),
            workload=float((n - j + 1) ** (-1.0 / alpha)),
            value=value,
            name=f"lb{j}",
        )
        for j in range(1, n + 1)
    )
    return Instance(jobs, m=1, alpha=alpha)


def pd_cost_closed_form(n: int, alpha: float) -> float:
    """Exact energy of PD (= OA) on the lower-bound instance.

    PD spreads job ``j`` uniformly over ``[j-1, n)``, so during
    ``[k-1, k)`` the speed is ``sum_{j<=k} (n-j+1)**(-1-1/alpha)`` and the
    energy is the sum of the alpha-th powers of these unit-interval
    speeds. This closed form lets tests pin the simulator to analysis.
    """
    j = np.arange(1, n + 1, dtype=np.float64)
    terms = (n - j + 1.0) ** (-1.0 - 1.0 / alpha)
    speeds = np.cumsum(terms)  # speed during [k-1, k) is the k-th prefix sum
    return float(np.sum(speeds**alpha))


def optimal_cost_closed_form(n: int, alpha: float) -> float:
    """Exact optimal (YDS) energy on the lower-bound instance.

    The YDS critical intervals peel off from the end: the last job alone
    is the most intense, then the last two, and so on; job ``j`` ends up
    running alone during ``[j-1, j)`` at speed ``(n-j+1)**(-1/alpha)``.
    Hence OPT = ``sum_j (n-j+1)**(-1)`` = the harmonic number ``H_n``.
    """
    return float(sum(1.0 / (n - j + 1) for j in range(1, n + 1)))


@register_workload(
    "lowerbound",
    summary="the Theorem 3 adversarial family (PD cost -> alpha^alpha OPT)",
    deterministic=True,
)
def _lower_bound_family(n, *, m=1, alpha=3.0, seed=0):
    """Adapter: the adversarial family is deterministic and single-proc,
    so ``m`` and ``seed`` are accepted (for the uniform registry
    contract) and ignored — exactly the CLI's historical behaviour."""
    return lower_bound_instance(n, alpha)
