"""A synthetic diurnal data-center trace.

The paper's introduction motivates the model with data centers: jobs of
different sizes and values arrive over time, and the operator trades
energy against lost revenue. No real trace ships with the paper (it has
no experiments), so this module builds the closest synthetic equivalent:
a day of requests whose arrival intensity follows a two-peak diurnal
curve, with a mix of short interactive jobs (high value density, tight
deadlines) and long batch jobs (lower value density, loose deadlines).

The generator is deterministic given the seed and is the workload behind
the ``datacenter_profit`` example and parts of experiments E1/E8.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import InvalidParameterError
from ..model.job import Instance, Job
from ..model.power import optimal_constant_speed_energy
from ..types import Seed
from .registry import register_workload

__all__ = ["diurnal_instance", "diurnal_intensity"]


def diurnal_intensity(t: float, *, day: float = 24.0) -> float:
    """Two-peak daily arrival intensity in [0.15, 1.0] (arbitrary units)."""
    x = 2.0 * math.pi * (t % day) / day
    # Morning and evening peaks with a night trough.
    raw = 0.5 + 0.35 * math.sin(x - 0.8) + 0.25 * math.sin(2.0 * x + 0.6)
    return max(0.15, min(1.0, raw))


@register_workload(
    "diurnal",
    summary="a day of data-center requests under a two-peak arrival curve",
    params={
        "day": float,
        "interactive_fraction": float,
        "base_rate": float,
    },
)
def diurnal_instance(
    n: int,
    *,
    m: int = 4,
    alpha: float = 3.0,
    day: float = 24.0,
    interactive_fraction: float = 0.7,
    base_rate: float = 8.0,
    seed: Seed = None,
) -> Instance:
    """Generate ``n`` jobs over one day on ``m`` processors.

    Interactive jobs: workload ~ Exp(0.3), window 0.1–0.5 h, value 2–8 x
    solo energy (rejecting them is usually a mistake). Batch jobs:
    workload ~ Exp(3.0), window 2–8 h, value 0.3–2 x solo energy (some
    are not worth their energy at peak load).
    """
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if not (0.0 <= interactive_fraction <= 1.0):
        raise InvalidParameterError("interactive_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed

    # Thinning: sample candidate arrival times against the diurnal curve.
    releases: list[float] = []
    t = 0.0
    while len(releases) < n:
        t += float(rng.exponential(1.0 / base_rate))
        if t >= day:
            t = t % day  # wrap; ordering restored below
        if rng.uniform() <= diurnal_intensity(t, day=day):
            releases.append(t)
    releases.sort()

    jobs: list[Job] = []
    for i, r in enumerate(releases):
        interactive = rng.uniform() < interactive_fraction
        if interactive:
            w = float(rng.exponential(0.3)) + 0.02
            span = float(rng.uniform(0.1, 0.5))
            ratio = float(rng.uniform(2.0, 8.0))
            name = f"web{i}"
        else:
            w = float(rng.exponential(3.0)) + 0.1
            span = float(rng.uniform(2.0, 8.0))
            ratio = float(rng.uniform(0.3, 2.0))
            name = f"batch{i}"
        solo = optimal_constant_speed_energy(alpha, w, span)
        jobs.append(Job(r, r + span, w, ratio * solo, name=name))
    return Instance(tuple(jobs), m=m, alpha=alpha)
