"""Instance transformations for robustness testing.

These operators perturb an existing instance in controlled ways; the
robustness tests assert how each algorithm's cost responds (e.g. PD's
cost is monotone under job addition, invariant under time shifts, and
scales predictably under time/work scaling — the invariances the model's
math promises).
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ..model.job import Instance, Job
from ..types import Seed
from .registry import WORKLOADS, register_workload

__all__ = [
    "shift_time",
    "jitter_values",
    "add_job",
    "drop_job",
    "tighten_deadlines",
]


def shift_time(instance: Instance, offset: float) -> Instance:
    """Translate every window by ``offset`` (must keep releases >= 0)."""
    if offset < 0 and min(j.release for j in instance.jobs) + offset < 0:
        raise InvalidParameterError("shift would produce a negative release")
    return Instance(
        tuple(
            Job(j.release + offset, j.deadline + offset, j.workload, j.value, j.name)
            for j in instance.jobs
        ),
        m=instance.m,
        alpha=instance.alpha,
    )


def jitter_values(
    instance: Instance, *, rel: float = 0.1, seed: Seed = None
) -> Instance:
    """Multiply each value by a factor in ``[1-rel, 1+rel]``."""
    if not (0.0 <= rel < 1.0):
        raise InvalidParameterError(f"rel must be in [0, 1), got {rel}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    factors = rng.uniform(1.0 - rel, 1.0 + rel, size=instance.n)
    return instance.with_values(
        [j.value * float(f) for j, f in zip(instance.jobs, factors)]
    )


def add_job(instance: Instance, job: Job) -> Instance:
    """Append one job."""
    return Instance(instance.jobs + (job,), m=instance.m, alpha=instance.alpha)


def drop_job(instance: Instance, job_id: int) -> Instance:
    """Remove one job by id."""
    if not (0 <= job_id < instance.n):
        raise InvalidParameterError(f"job id {job_id} out of range")
    jobs = instance.jobs[:job_id] + instance.jobs[job_id + 1 :]
    if not jobs:
        raise InvalidParameterError("cannot drop the last job")
    return Instance(jobs, m=instance.m, alpha=instance.alpha)


def tighten_deadlines(instance: Instance, factor: float) -> Instance:
    """Shrink every window toward its release by ``factor`` in (0, 1]."""
    if not (0.0 < factor <= 1.0):
        raise InvalidParameterError(f"factor must be in (0, 1], got {factor}")
    return Instance(
        tuple(
            Job(
                j.release,
                j.release + j.span * factor,
                j.workload,
                j.value,
                j.name,
            )
            for j in instance.jobs
        ),
        m=instance.m,
        alpha=instance.alpha,
    )


@register_workload(
    "jitter",
    summary="a base family with multiplicatively jittered job values",
    params={"base": str, "rel": float},
)
def _jitter_family(n, *, base="poisson", rel=0.1, m=1, alpha=3.0, seed=0):
    """Composite family: generate ``base`` and jitter its values.

    The generation and the jitter draw from one seeded stream (base at
    ``seed``, jitter at ``seed + 1``), so the family is deterministic
    given the seed like every other registry entry. ``base`` may itself
    be a parameterized spec (``jitter?base=tight``), as long as it names
    a different family — self-nesting is rejected.
    """
    base_name = base.partition("?")[0]
    if base_name == "jitter":
        raise InvalidParameterError("jitter cannot wrap itself")
    inst = WORKLOADS.build(base, n, m=m, alpha=alpha, seed=seed)
    return jitter_values(inst, rel=rel, seed=None if seed is None else seed + 1)
