"""Workload generators: adversarial, random, and trace-like families.

Every family registers itself with the declarative
:class:`~repro.workloads.registry.WorkloadRegistry` (the global
:data:`~repro.workloads.registry.WORKLOADS`), next to its implementation
— the workload-side mirror of the algorithm registry. Parameterized
specs (``heavy-tail?n=64&alpha=3.0&seed=7``) resolve to canonical names,
so every spelling of the same workload builds the identical instance and
shares one batch-runner cache key.

:func:`named_families` is the historical string table the CLI
(``generate`` / ``sweep``) and the engine's declarative experiments
resolve family names against; it is now a thin shim over the registry.
Every entry keeps the uniform keyword signature
``family(n, *, m=1, alpha=3.0, seed=0)``.
"""

from typing import Callable

from .datacenter import diurnal_instance, diurnal_intensity
from .lowerbound import (
    lower_bound_instance,
    optimal_cost_closed_form,
    pd_cost_closed_form,
)
from .random_instances import (
    heavy_tail_instance,
    poisson_instance,
    uniform_instance,
)
from .registry import WORKLOADS, WorkloadInfo, WorkloadRegistry, register_workload
from .structured import (
    agreeable_instance,
    batch_instance,
    bursty_instance,
    laminar_instance,
    slotted_instance,
    tight_instance,
)
from . import perturb as _perturb  # noqa: F401 - registers the jitter family


def named_families() -> dict[str, Callable]:
    """Name → generator, all with signature ``(n, *, m, alpha, seed)``.

    Compatibility shim over :data:`WORKLOADS` (like
    :mod:`repro.core.simulator` is for the algorithm registry): the
    returned callables are the registered base generators, so string
    lookups in the CLI and :class:`~repro.engine.ExperimentSpec` keep
    working unchanged — and automatically see families registered later.
    """
    return {info.name: info.generator for info in WORKLOADS}


__all__ = [
    "WORKLOADS",
    "WorkloadInfo",
    "WorkloadRegistry",
    "register_workload",
    "named_families",
    "lower_bound_instance",
    "pd_cost_closed_form",
    "optimal_cost_closed_form",
    "poisson_instance",
    "heavy_tail_instance",
    "uniform_instance",
    "diurnal_instance",
    "diurnal_intensity",
    "agreeable_instance",
    "laminar_instance",
    "batch_instance",
    "tight_instance",
    "bursty_instance",
    "slotted_instance",
]
