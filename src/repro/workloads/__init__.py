"""Workload generators: adversarial, random, and trace-like families.

:func:`named_families` is the string registry the CLI (``generate`` /
``sweep``) and the engine's declarative experiments resolve family names
against; every entry has the uniform keyword signature
``family(n, *, m=1, alpha=3.0, seed=0)``.
"""

from typing import Callable

from .datacenter import diurnal_instance, diurnal_intensity
from .lowerbound import (
    lower_bound_instance,
    optimal_cost_closed_form,
    pd_cost_closed_form,
)
from .random_instances import (
    heavy_tail_instance,
    poisson_instance,
    uniform_instance,
)
from .structured import (
    agreeable_instance,
    batch_instance,
    bursty_instance,
    laminar_instance,
    tight_instance,
)

def _lower_bound_family(n, *, m=1, alpha=3.0, seed=0):
    """Adapter: the adversarial family is deterministic and single-proc,
    so ``m`` and ``seed`` are accepted (for the uniform signature) and
    ignored — exactly the CLI's historical behaviour."""
    return lower_bound_instance(n, alpha)


def _laminar_family(n, *, m=1, alpha=3.0, seed=0):
    """Adapter: :func:`laminar_instance` is parameterized by tree depth,
    not job count — map ``n`` to the binary-tree depth whose node count
    (``2**depth - 1``) comes closest from below, so the registry's
    uniform contract "about n jobs" holds."""
    depth = max(1, (n + 1).bit_length() - 1)
    return laminar_instance(depth, m=m, alpha=alpha, seed=seed)


def named_families() -> dict[str, Callable]:
    """Name → generator, all with signature ``(n, *, m, alpha, seed)``."""
    return {
        "poisson": poisson_instance,
        "heavy-tail": heavy_tail_instance,
        "uniform": uniform_instance,
        "diurnal": diurnal_instance,
        "agreeable": agreeable_instance,
        "laminar": _laminar_family,
        "batch": batch_instance,
        "tight": tight_instance,
        "bursty": bursty_instance,
        "lowerbound": _lower_bound_family,
    }


__all__ = [
    "named_families",
    "lower_bound_instance",
    "pd_cost_closed_form",
    "optimal_cost_closed_form",
    "poisson_instance",
    "heavy_tail_instance",
    "uniform_instance",
    "diurnal_instance",
    "diurnal_intensity",
    "agreeable_instance",
    "laminar_instance",
    "batch_instance",
    "tight_instance",
    "bursty_instance",
]
