"""Workload generators: adversarial, random, and trace-like families."""

from .datacenter import diurnal_instance, diurnal_intensity
from .lowerbound import (
    lower_bound_instance,
    optimal_cost_closed_form,
    pd_cost_closed_form,
)
from .random_instances import (
    heavy_tail_instance,
    poisson_instance,
    uniform_instance,
)
from .structured import (
    agreeable_instance,
    batch_instance,
    bursty_instance,
    laminar_instance,
    tight_instance,
)

__all__ = [
    "lower_bound_instance",
    "pd_cost_closed_form",
    "optimal_cost_closed_form",
    "poisson_instance",
    "heavy_tail_instance",
    "uniform_instance",
    "diurnal_instance",
    "diurnal_intensity",
    "agreeable_instance",
    "laminar_instance",
    "batch_instance",
    "tight_instance",
    "bursty_instance",
]
