"""Declarative workload registry — the naming layer for instance families.

Symmetric to the algorithm side's
:class:`~repro.engine.registry.AlgorithmRegistry`: every generator in
:mod:`repro.workloads` registers itself here (via the
:func:`register_workload` decorator placed next to its implementation in
:mod:`~repro.workloads.random_instances`,
:mod:`~repro.workloads.structured`, :mod:`~repro.workloads.lowerbound`,
:mod:`~repro.workloads.datacenter`, and
:mod:`~repro.workloads.perturb`) together with the table of knobs it
accepts through *parameterized workload specs*.

A workload spec uses the same query-string grammar as algorithm variant
specs — ``heavy-tail?n=64&alpha=3.0&seed=7`` — parsed by the shared
:func:`~repro.engine.registry.parse_variant_name` /
:func:`~repro.engine.registry.canonical_variant_name` pair. Resolution
produces a first-class :class:`WorkloadInfo` with the *canonical* name
(keys sorted, values in shortest round-tripping form), so every spelling
of the same workload (``heavy-tail?alpha=3&n=64``) builds the identical
instance — and, since the batch runner's
:func:`~repro.engine.runner.request_key` hashes instance *content*,
shares the identical cache key. Unknown families, unknown parameters,
uncastable values, and malformed specs all fail loudly.

:func:`repro.workloads.named_families` remains the stable public façade
(like :mod:`repro.core.simulator` is for algorithms); it is now a thin
shim over the global :data:`WORKLOADS` registry defined here.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Callable, Iterator, Mapping

from ..engine.registry import canonical_variant_name, parse_variant_name
from ..errors import InvalidParameterError
from ..model.job import Instance

__all__ = [
    "WorkloadInfo",
    "WorkloadRegistry",
    "WORKLOADS",
    "register_workload",
]

#: Shared immutable empty mapping for frozen-dataclass defaults.
_EMPTY: Mapping[str, Any] = MappingProxyType({})

#: Knobs every registered generator accepts (the uniform contract
#: ``family(n, *, m, alpha, seed)``); family-specific knobs extend this
#: table at registration.
_COMMON_PARAMS: dict[str, Callable[[str], Any]] = {
    "n": int,
    "m": int,
    "alpha": float,
    "seed": int,
}

#: Modules whose import registers the built-in families. Imported lazily
#: on first lookup so ``import repro.workloads.registry`` stays cheap and
#: cycle-free (these modules import this one for the decorator).
_BUILTIN_MODULES = (
    "repro.workloads.random_instances",
    "repro.workloads.structured",
    "repro.workloads.lowerbound",
    "repro.workloads.datacenter",
    "repro.workloads.perturb",
)

#: A generator: ``family(n, *, m=..., alpha=..., seed=..., **knobs)``.
Generator = Callable[..., Instance]


@dataclass(frozen=True)
class WorkloadInfo:
    """One registered workload family: its generator plus spec metadata.

    ``spec_params`` (name → caster) is the full table of knobs the
    family accepts through ``name?key=value`` specs — the common four
    (``n``/``m``/``alpha``/``seed``) plus whatever the registration
    declared. On a *resolved spec*, ``base`` is the family's plain name
    and ``params`` holds the parsed values; base entries have
    ``base == name`` and empty ``params``.

    ``deterministic`` marks families that ignore their seed (the
    adversarial lower bound); ``classical`` marks must-finish job sets
    (no values to reject), which composes with the classical zoo only.
    """

    name: str
    generator: Generator = field(repr=False)
    summary: str = ""
    spec_params: Mapping[str, Callable[[str], Any]] = field(
        default_factory=lambda: _EMPTY, repr=False
    )
    deterministic: bool = False
    classical: bool = False
    base: str = ""
    params: Mapping[str, Any] = field(default_factory=lambda: _EMPTY)

    def __post_init__(self) -> None:
        if not self.base:
            object.__setattr__(self, "base", self.name)

    def tags(self) -> frozenset[str]:
        """Stable string tags, mirroring ``AlgorithmInfo.capabilities``."""
        tags = {"deterministic" if self.deterministic else "seeded"}
        tags.add("classical" if self.classical else "profit")
        return frozenset(tags)

    def build(
        self, n: int | None = None, *, seed: int | None = None, **kwargs: Any
    ) -> Instance:
        """Generate an instance, folding the spec's parsed parameters in.

        Spec parameters are pinned: a caller keyword that collides with
        one raises instead of silently shadowing either side. ``n`` and
        ``seed`` given in the spec win over the call-site arguments (a
        pinned replicate is the point of putting them in the spec).
        """
        params = dict(self.params)
        n_eff = params.pop("n", None)
        if n_eff is None:
            n_eff = 20 if n is None else n
        seed_eff = params.pop("seed", seed)
        clashes = set(params).intersection(kwargs)
        if clashes:
            raise InvalidParameterError(
                f"parameter(s) {sorted(clashes)} are pinned by the workload "
                f"spec {self.name!r} and were also passed as keywords"
            )
        return self.generator(n_eff, seed=seed_eff, **{**kwargs, **params})


class WorkloadRegistry:
    """String → :class:`WorkloadInfo` mapping with spec resolution."""

    def __init__(self) -> None:
        self._infos: dict[str, WorkloadInfo] = {}
        self._resolved: dict[str, WorkloadInfo] = {}
        self._builtins_loaded = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        *,
        summary: str = "",
        params: Mapping[str, Callable[[str], Any]] | None = None,
        deterministic: bool = False,
        classical: bool = False,
    ) -> Callable[[Generator], Generator]:
        """Decorator registering ``fn`` as workload family ``name``.

        ``params`` declares family-specific knobs (name → caster) on top
        of the common ``n``/``m``/``alpha``/``seed``; ``fn`` must accept
        all of them as keyword arguments. Re-registering a name
        overwrites it, like the algorithm registry.
        """
        if "?" in name or "&" in name:
            raise InvalidParameterError(
                f"workload name {name!r} may not contain '?' or '&' "
                "(reserved for parameterized specs)"
            )

        def decorator(fn: Generator) -> Generator:
            self._infos[name] = WorkloadInfo(
                name=name,
                generator=fn,
                summary=summary,
                spec_params=MappingProxyType(
                    {**_COMMON_PARAMS, **dict(params or {})}
                ),
                deterministic=deterministic,
                classical=classical,
            )
            self._resolved.clear()  # stale resolutions may bind old generators
            return fn

        return decorator

    def _ensure_builtins(self) -> None:
        if not self._builtins_loaded:
            self._builtins_loaded = True
            for module in _BUILTIN_MODULES:
                importlib.import_module(module)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """Registered family names (bases only), alphabetically."""
        self._ensure_builtins()
        return tuple(sorted(self._infos))

    def info(self, spec: str) -> WorkloadInfo:
        """Metadata for one family or parameterized spec; loud failure
        for unknown names, unknown parameters, and malformed specs."""
        self._ensure_builtins()
        if "?" in spec:
            return self._resolve(spec)
        try:
            return self._infos[spec]
        except KeyError:
            raise InvalidParameterError(
                f"unknown workload family {spec!r}; "
                f"available: {', '.join(self.names())}"
            ) from None

    def _resolve(self, spec: str) -> WorkloadInfo:
        base_name, raw = parse_variant_name(spec)
        base = self.info(base_name)
        params: dict[str, Any] = {}
        for key, text in raw.items():
            caster = base.spec_params.get(key)
            if caster is None:
                raise InvalidParameterError(
                    f"unknown parameter {key!r} for workload {base_name!r}; "
                    f"accepted: {', '.join(sorted(base.spec_params))}"
                )
            try:
                params[key] = caster(text)
            except (TypeError, ValueError) as exc:
                raise InvalidParameterError(
                    f"bad value {text!r} for parameter {key!r} of workload "
                    f"{base_name!r}: {exc}"
                ) from None
        canonical = canonical_variant_name(base_name, params)
        cached = self._resolved.get(canonical)
        if cached is not None:
            return cached
        info = replace(
            base,
            name=canonical,
            base=base_name,
            params=MappingProxyType(dict(params)),
        )
        self._resolved[canonical] = info
        return info

    def build(
        self,
        spec: str,
        n: int | None = None,
        *,
        seed: int | None = None,
        **kwargs: Any,
    ) -> Instance:
        """Resolve ``spec`` and generate an instance in one step."""
        return self.info(spec).build(n, seed=seed, **kwargs)

    def __contains__(self, spec: str) -> bool:
        self._ensure_builtins()
        if "?" not in spec:
            return spec in self._infos
        try:
            self._resolve(spec)
        except InvalidParameterError:
            return False
        return True

    def __iter__(self) -> Iterator[WorkloadInfo]:
        self._ensure_builtins()
        return iter(self._infos[name] for name in self.names())

    def select(
        self,
        *,
        deterministic: bool | None = None,
        classical: bool | None = None,
    ) -> tuple[WorkloadInfo, ...]:
        """All families matching the given tag constraints (``None`` =
        don't care) — e.g. ``select(classical=False)`` for the families a
        profit experiment can reject jobs on."""
        return tuple(
            info
            for info in self
            if (deterministic is None or info.deterministic == deterministic)
            and (classical is None or info.classical == classical)
        )


#: The process-global registry all library workload families register
#: into.
WORKLOADS = WorkloadRegistry()

#: Module-level alias of :meth:`WorkloadRegistry.register` on the global
#: registry — what workload modules import.
register_workload = WORKLOADS.register
