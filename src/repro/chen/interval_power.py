"""The interval power function ``P_k`` and its marginal structure.

``P_k(x_{1k}, ..., x_{nk})`` maps a work assignment for atomic interval
``T_k`` to the energy of Chen et al.'s energy-minimal schedule for it
(Equation (6) of the paper):

    ``P_k = sum_{j in psi(k)} l_k * P(u_j / l_k)
            + (m - |psi(k)|) * l_k * P(pool_load / ((m - |psi(k)|) l_k))``

where ``u_j = x_{jk} w_j``. We work throughout in *load space* (``u_j``
rather than ``x_{jk}``): by the chain rule the paper's gradient
``dP_k/dx_{jk} = w_j P'(s_{jk})`` (Proposition 1b) corresponds to
``dP_k/du_j = P'(s_{jk})`` in load space, with ``s_{jk}`` the speed the
schedule gives job ``j``.

Water-level view
----------------
Chen et al.'s partition is a *water-filling*: there is a level ``L`` (the
pool per-processor load) such that every job with load above ``L`` stands
alone on its own processor, and all remaining work fills the other
processors exactly to ``L``. This view yields closed forms for the two
queries the primal-dual algorithm hammers on:

* :func:`added_job_speed` — the speed a new job of load ``z`` would run at
  on top of a frozen existing assignment, and
* :func:`max_load_at_speed` — its monotone inverse: the largest ``z``
  whose speed stays at or below a target. With ``T = s_target * l_k`` and
  ``d = #{existing loads > T}`` the answer is simply
  ``clamp(T * (m - d) - suffix_d, 0, T)`` — see the function docstring
  for the derivation.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ..model.power import PolynomialPower
from ..types import FloatArray
from .partition import IntervalPartition, partition_loads

__all__ = [
    "interval_energy",
    "interval_energy_from_partition",
    "interval_energy_gradient",
    "job_speeds",
    "pool_level",
    "added_job_speed",
    "max_load_at_speed",
]

_LOAD_EPS = 1e-15


def _check_length(length: float) -> None:
    if not (length > 0.0):
        raise InvalidParameterError(f"interval length must be > 0, got {length}")


def interval_energy(
    loads: FloatArray, m: int, length: float, power: PolynomialPower
) -> float:
    """Evaluate ``P_k`` (Equation (6)) for a load vector.

    This is the energy of the minimal-energy schedule processing
    ``loads[j]`` units of each job within an interval of ``length`` on
    ``m`` processors.
    """
    _check_length(length)
    part = partition_loads(loads, m)
    return interval_energy_from_partition(part, length, power)


def interval_energy_from_partition(
    part: IntervalPartition, length: float, power: PolynomialPower
) -> float:
    """Evaluate ``P_k`` when the partition has already been computed."""
    d = part.num_dedicated
    dedicated = part.sorted_loads[:d]
    energy = float(np.sum(power.power_array(dedicated / length))) * length
    if part.pool_load > _LOAD_EPS:
        pool_speed = part.pool_load_per_processor / length
        energy += part.num_pool_processors * length * power(pool_speed)
    return energy


def job_speeds(loads: FloatArray, m: int, length: float) -> FloatArray:
    """Per-job speeds ``s_{jk}`` under Chen et al.'s schedule.

    Jobs with zero load get speed 0; pool jobs all share the pool speed.
    """
    _check_length(length)
    arr = np.ascontiguousarray(loads, dtype=np.float64)
    part = partition_loads(arr, m)
    speeds = np.zeros(arr.size, dtype=np.float64)
    d = part.num_dedicated
    speeds[part.order[:d]] = part.sorted_loads[:d] / length
    pool_ids = part.pool_ids()
    speeds[pool_ids] = part.pool_load_per_processor / length
    return speeds


def interval_energy_gradient(
    loads: FloatArray, m: int, length: float, power: PolynomialPower
) -> FloatArray:
    """Gradient of ``P_k`` in load space: ``dP_k/du_j = P'(s_{jk})``.

    Proposition 1(b) of the paper shows ``P_k`` is differentiable with
    this gradient even where the dedicated set changes (one-sided
    derivatives agree). For a job with zero load the relevant
    right-derivative prices it at the *pool level* speed, because an
    infinitesimal new load always enters the pool.
    """
    _check_length(length)
    arr = np.ascontiguousarray(loads, dtype=np.float64)
    part = partition_loads(arr, m)
    speeds = np.empty(arr.size, dtype=np.float64)
    d = part.num_dedicated
    speeds[part.order[:d]] = part.sorted_loads[:d] / length
    if d < arr.size:
        # Pool jobs and zero-load jobs both price at the incremental pool
        # level (for a non-degenerate pool this equals the pool speed).
        level = pool_level(arr, m)
        speeds[part.order[d:]] = level / length
    return power.derivative_array(speeds)


def pool_level(existing_loads: FloatArray, m: int) -> float:
    """Limiting pool per-processor load as an infinitesimal job joins.

    When the existing partition already has a non-empty pool this is just
    its per-processor load. When *all* ``m`` processors are dedicated
    (possible with ``>= m`` positive loads), an arriving infinitesimal job
    forces a pool to form; the limit level ``L`` is the unique value with

        ``d = #{loads > L}``  and  ``L = suffix_d / (m - d)``,

    found by testing every candidate dedicated-count in one vectorized
    numpy scan (this query sits inside every price query of the
    primal-dual water-filling). Runs in O(p log p) for the sort,
    O(min(p, m)) for the scan.
    """
    arr = np.sort(np.ascontiguousarray(existing_loads, dtype=np.float64))[::-1]
    if m < 1:
        raise InvalidParameterError(f"m must be >= 1, got {m}")
    p = arr.size
    suffix = np.concatenate((np.cumsum(arr[::-1])[::-1], [0.0]))  # suffix[d] = sum arr[d:]
    limit = min(p, m - 1)  # candidate counts d = 0..limit inclusive
    ds = np.arange(limit + 1)
    levels = suffix[: limit + 1] / (m - ds)
    upper_ok = np.empty(limit + 1, dtype=bool)
    upper_ok[0] = True  # d == 0 has no load standing above the level
    if limit:
        upper_ok[1:] = arr[:limit] >= levels[1:] - _LOAD_EPS
    lower_ok = np.ones(limit + 1, dtype=bool)
    in_range = ds < p
    lower_ok[in_range] = arr[ds[in_range]] <= levels[in_range] + _LOAD_EPS
    hits = np.nonzero(upper_ok & lower_ok)[0]
    if hits.size:
        return max(float(levels[hits[0]]), 0.0)
    # Unreachable for valid inputs; kept as a loud guard.
    raise InvalidParameterError("no consistent pool level found")  # pragma: no cover


def added_job_speed(
    existing_loads: FloatArray, z: float, m: int, length: float
) -> float:
    """Speed of a *new* job of load ``z`` added to frozen ``existing_loads``.

    For ``z > 0`` this recomputes the partition on the extended load
    vector and reads off the new job's speed; at ``z == 0`` it returns the
    limiting pool-level speed (the right-derivative convention matching
    :func:`interval_energy_gradient`).
    """
    _check_length(length)
    if z < 0.0:
        raise InvalidParameterError(f"added load must be >= 0, got {z}")
    arr = np.ascontiguousarray(existing_loads, dtype=np.float64)
    if z <= _LOAD_EPS:
        return pool_level(arr, m) / length
    extended = np.append(arr, z)
    part = partition_loads(extended, m)
    return part.speed_of(int(arr.size), length)


def max_load_at_speed(
    existing_loads: FloatArray,
    target_speed: float,
    m: int,
    length: float,
) -> float:
    """Largest new-job load ``z`` with ``added_job_speed(z) <= target_speed``.

    Derivation of the closed form. Write ``T = target_speed * length`` and
    sort the existing loads descending. Key facts:

    * A job's speed is always at least ``z / length`` (dedicated jobs run
      at exactly that; a pool job's level exceeds every pool member's
      load). Hence no ``z > T`` qualifies.
    * At the answer, the new job either is dedicated with load exactly
      ``T`` or sits in a pool whose level is exactly ``T``. In the latter
      case the dedicated set consists of the ``d = #{loads > T}`` existing
      jobs standing above the water level, so the pool balance reads
      ``(suffix_d + z) = T * (m - d)``.

    Combining both regimes gives ``z* = clamp(T*(m - d) - suffix_d, 0, T)``
    (with ``z* = 0`` when ``d >= m``: every processor is already loaded
    above the target level). Monotonicity of the speed in ``z`` makes this
    the unique answer. O(p log p) for the sort; O(log p) with presorted
    loads via :class:`SortedLoads`.
    """
    _check_length(length)
    if target_speed <= 0.0:
        return 0.0
    arr = np.sort(np.ascontiguousarray(existing_loads, dtype=np.float64))[::-1]
    suffix = np.concatenate((np.cumsum(arr[::-1])[::-1], [0.0]))
    return _max_load_sorted(arr, suffix, target_speed * length, m)


def _max_load_sorted(
    sorted_desc: FloatArray, suffix: FloatArray, target_load: float, m: int
) -> float:
    """Closed-form core of :func:`max_load_at_speed` on presorted loads."""
    # Number of existing loads strictly above the water level T.
    d = int(np.searchsorted(-sorted_desc, -target_load, side="left"))
    if d >= m:
        return 0.0
    z = target_load * (m - d) - float(suffix[d])
    return float(min(max(z, 0.0), target_load))


class SortedLoads:
    """Cache of descending-sorted loads + suffix sums for repeated queries.

    The water-filling inner loop of the primal-dual algorithm evaluates
    :func:`max_load_at_speed` for many candidate prices against the *same*
    frozen assignment; this helper amortizes the sort.
    """

    __slots__ = ("m", "length", "_sorted", "_suffix")

    def __init__(self, existing_loads: FloatArray, m: int, length: float) -> None:
        _check_length(length)
        if m < 1:
            raise InvalidParameterError(f"m must be >= 1, got {m}")
        self.m = m
        self.length = length
        arr = np.sort(np.ascontiguousarray(existing_loads, dtype=np.float64))[::-1]
        self._sorted = arr
        self._suffix = np.concatenate((np.cumsum(arr[::-1])[::-1], [0.0]))

    def max_load_at_speed(self, target_speed: float) -> float:
        """See :func:`max_load_at_speed`; O(log p) per call."""
        if target_speed <= 0.0:
            return 0.0
        return _max_load_sorted(
            self._sorted, self._suffix, target_speed * self.length, self.m
        )

    def zero_load_speed(self) -> float:
        """Marginal speed of an infinitesimal new job (pool level / length)."""
        return pool_level(self._sorted, self.m) / self.length
