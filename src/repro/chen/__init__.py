"""Chen et al.'s energy-minimal per-interval multiprocessor scheduler.

This subpackage is the substrate beneath both the primal-dual algorithm
(which prices work against the marginal energy of these schedules) and the
offline convex program (whose objective sums the per-interval energies).

Public surface:

* :func:`partition_loads` / :class:`IntervalPartition` — the dedicated /
  pool split of Equation (5).
* :func:`interval_energy` / :func:`interval_energy_gradient` — the convex
  energy function ``P_k`` of Equation (6) and its gradient (Prop. 1).
* :func:`job_speeds`, :func:`pool_level`, :func:`added_job_speed`,
  :func:`max_load_at_speed`, :class:`SortedLoads` — marginal-speed
  queries used by the water-filling inner loop.
* :func:`schedule_interval` / :class:`IntervalSchedule`,
  :func:`mcnaughton_layout`, :class:`Segment` — explicit realizations.
"""

from .interval_power import (
    SortedLoads,
    added_job_speed,
    interval_energy,
    interval_energy_from_partition,
    interval_energy_gradient,
    job_speeds,
    max_load_at_speed,
    pool_level,
)
from .mcnaughton import Segment, mcnaughton_layout
from .partition import IntervalPartition, partition_loads, partition_loads_reference
from .scheduler import IntervalSchedule, schedule_interval

__all__ = [
    "IntervalPartition",
    "partition_loads",
    "partition_loads_reference",
    "interval_energy",
    "interval_energy_from_partition",
    "interval_energy_gradient",
    "job_speeds",
    "pool_level",
    "added_job_speed",
    "max_load_at_speed",
    "SortedLoads",
    "Segment",
    "mcnaughton_layout",
    "IntervalSchedule",
    "schedule_interval",
]
