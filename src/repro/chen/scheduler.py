"""Facade: build an explicit per-interval schedule from a load vector.

Combines the dedication scan (:mod:`repro.chen.partition`) with
McNaughton's wrap-around layout (:mod:`repro.chen.mcnaughton`) to turn a
per-job load vector for one atomic interval into concrete
``(job, processor, start, end, speed)`` segments whose energy equals
``P_k`` (Equation (6)) exactly.

This is the "realization" step the paper applies to the primal variables
``x_{jk}`` after the primal-dual algorithm fixes them; the same routine
realizes the optimal-infeasible ``(x̂, ŷ)``-schedule in the analysis
package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import InfeasibleScheduleError
from ..model.power import PolynomialPower
from ..types import FloatArray
from .interval_power import interval_energy_from_partition
from .mcnaughton import Segment, mcnaughton_layout
from .partition import IntervalPartition, partition_loads

__all__ = ["IntervalSchedule", "schedule_interval"]

_LOAD_EPS = 1e-15


@dataclass(frozen=True)
class IntervalSchedule:
    """The realized schedule of one atomic interval.

    Attributes
    ----------
    start, end:
        Absolute interval boundaries.
    partition:
        The dedicated/pool structure used.
    segments:
        Concrete executions; disjoint per processor and per job.
    energy:
        Total energy over the interval, equal to ``P_k`` of the loads.
    """

    start: float
    end: float
    partition: IntervalPartition
    segments: tuple[Segment, ...]
    energy: float

    @property
    def length(self) -> float:
        return self.end - self.start

    def work_by_job(self) -> dict[int, float]:
        """Total work processed per job id over the interval."""
        acc: dict[int, float] = {}
        for seg in self.segments:
            acc[seg.job] = acc.get(seg.job, 0.0) + seg.work
        return acc

    def busy_processors(self) -> int:
        """Number of processors that run anything during the interval."""
        return len({seg.processor for seg in self.segments})

    def processor_speed_profile(self, processor: int) -> list[tuple[float, float, float]]:
        """Sorted ``(start, end, speed)`` runs of one processor (gaps = idle)."""
        runs = [
            (seg.start, seg.end, seg.speed)
            for seg in self.segments
            if seg.processor == processor
        ]
        runs.sort()
        return runs


def schedule_interval(
    loads: FloatArray | Sequence[float],
    *,
    job_ids: Sequence[int] | None = None,
    m: int,
    start: float,
    end: float,
    power: PolynomialPower,
) -> IntervalSchedule:
    """Realize Chen et al.'s schedule for one atomic interval.

    Parameters
    ----------
    loads:
        Per-job workloads assigned to the interval. Zero entries are
        skipped entirely (they emit no segments).
    job_ids:
        Identifiers parallel to ``loads``; defaults to positions.
    m:
        Processor count.
    start, end:
        Absolute interval boundaries, ``end > start``.
    power:
        Power function used for the energy figure.

    Raises
    ------
    InfeasibleScheduleError
        If a dedicated job would need a speed so high that its duration
        exceeds the interval — impossible by construction, so a violation
        indicates corrupted inputs.
    """
    arr = np.ascontiguousarray(loads, dtype=np.float64)
    if end <= start:
        raise InfeasibleScheduleError(f"empty interval [{start}, {end})")
    ids = list(range(arr.size)) if job_ids is None else list(job_ids)
    if len(ids) != arr.size:
        raise InfeasibleScheduleError("job_ids must align with loads")
    length = end - start

    part = partition_loads(arr, m)
    segments: list[Segment] = []

    # Dedicated jobs: full interval, own processor, minimal feasible speed.
    d = part.num_dedicated
    for rank in range(d):
        job = ids[int(part.order[rank])]
        load = float(part.sorted_loads[rank])
        segments.append(
            Segment(
                job=job,
                processor=rank,
                start=start,
                end=end,
                speed=load / length,
            )
        )

    # Pool jobs: wrap-around at the common pool speed.
    pool_rank_ids = [
        ids[int(idx)]
        for idx, load in zip(part.order[d:], part.sorted_loads[d:])
        if load > _LOAD_EPS
    ]
    pool_loads = [float(v) for v in part.sorted_loads[d:] if v > _LOAD_EPS]
    # The partition works at a *relative* tolerance, so with all m
    # processors dedicated the leftover "pool" can be sub-tolerance dust
    # (e.g. a 1e-14 load behind m large ones): no pool processors, pool
    # speed zero. Such dust carries no realizable work — skip the layout
    # rather than divide by the zero speed.
    if pool_loads and part.pool_load_per_processor > 0.0:
        pool_speed = part.pool_load_per_processor / length
        durations = [load / pool_speed for load in pool_loads]
        segments.extend(
            mcnaughton_layout(
                pool_rank_ids,
                durations,
                start=start,
                length=length,
                first_processor=d,
                num_processors=part.num_pool_processors,
                speed=pool_speed,
            )
        )

    energy = interval_energy_from_partition(part, length, power)
    return IntervalSchedule(
        start=start,
        end=end,
        partition=part,
        segments=tuple(segments),
        energy=energy,
    )
