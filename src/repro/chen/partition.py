"""Dedicated/pool partition of jobs within one atomic interval.

Chen et al.'s multiprocessor algorithm (ECRTS 2004), as used by the paper,
schedules a fixed work assignment inside an atomic interval ``T_k`` of
length ``l_k`` on ``m`` processors as follows. Let ``u_1 >= u_2 >= ... >=
u_p`` be the per-job workloads assigned to the interval (``u_j = x_{jk}
w_j``). Scanning from the largest, job ``j`` is *dedicated* iff

    ``j <= m``,  ``u_j > 0``,  and  ``u_j * (m - j) >= sum_{j' > j} u_{j'}``

(the paper's Equation (5); for ``j = m`` the condition degenerates to "no
other work remains"). Dedicated jobs run alone on their own processor at
the minimal feasible speed ``u_j / l_k``; all remaining *pool* jobs share
the remaining ``m - d`` processors at the common pool speed, which is
feasible by McNaughton's wrap-around rule because the stopping condition
guarantees every pool job fits into the interval.

The dedication scan is the structural primitive everything else in
:mod:`repro.chen` builds on, so it lives in its own module with a
vectorized implementation and a transparently-slow reference version used
for differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from ..types import FloatArray, IntArray

__all__ = ["IntervalPartition", "partition_loads", "partition_loads_reference"]

#: Loads below this are treated as zero (jobs with no work in the interval).
_LOAD_EPS = 1e-15


@dataclass(frozen=True)
class IntervalPartition:
    """The dedicated/pool structure of one atomic interval.

    Attributes
    ----------
    m:
        Number of processors.
    order:
        Indices into the *input* load vector, sorted by load descending
        (ties broken by input position for determinism).
    sorted_loads:
        Loads in descending order, ``sorted_loads[i] == loads[order[i]]``.
    num_dedicated:
        ``d = |psi(k)|`` — how many of the largest loads run on dedicated
        processors.
    pool_load:
        Total workload shared by the pool, ``sum of sorted_loads[d:]``.
    """

    m: int
    order: IntArray
    sorted_loads: FloatArray
    num_dedicated: int
    pool_load: float

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_pool_processors(self) -> int:
        """``m - d`` processors shared by pool jobs (may be 0 when d == m)."""
        return self.m - self.num_dedicated

    @property
    def pool_load_per_processor(self) -> float:
        """Workload each pool processor carries (0 when the pool is empty).

        With every processor dedicated, any residual pool load is
        tolerance dust from the dedication scan and reads as zero.
        """
        if self.num_pool_processors == 0 or self.pool_load <= _LOAD_EPS:
            return 0.0
        return self.pool_load / self.num_pool_processors

    def is_dedicated_position(self, rank: int) -> bool:
        """Whether the ``rank``-th largest load is dedicated."""
        return rank < self.num_dedicated

    def dedicated_ids(self) -> IntArray:
        """Input indices of the dedicated jobs (largest-first)."""
        return self.order[: self.num_dedicated]

    def pool_ids(self) -> IntArray:
        """Input indices of pool jobs that carry positive load."""
        tail = self.order[self.num_dedicated :]
        mask = self.sorted_loads[self.num_dedicated :] > _LOAD_EPS
        return tail[mask]

    def processor_loads(self) -> FloatArray:
        """Per-processor workloads, descending (length ``m``).

        The first ``d`` entries are the dedicated loads; the remaining
        ``m - d`` all equal the pool per-processor load. This is the
        quantity Proposition 2 of the paper reasons about.
        """
        out = np.empty(self.m, dtype=np.float64)
        d = self.num_dedicated
        out[:d] = self.sorted_loads[:d]
        out[d:] = self.pool_load_per_processor
        return out

    def speed_of(self, job_index: int, length: float) -> float:
        """Speed at which input job ``job_index`` runs in this interval."""
        rank = int(np.nonzero(self.order == job_index)[0][0])
        if rank < self.num_dedicated:
            return float(self.sorted_loads[rank]) / length
        if self.sorted_loads[rank] <= _LOAD_EPS:
            return 0.0
        return self.pool_load_per_processor / length


def partition_loads(loads: FloatArray, m: int) -> IntervalPartition:
    """Run the dedication scan of Equation (5) on a load vector.

    Parameters
    ----------
    loads:
        Per-job workloads assigned to the interval (any order, zeros
        allowed). Negative loads are rejected.
    m:
        Processor count, ``>= 1``.

    Notes
    -----
    The scan is the standard prefix walk: starting from the largest load,
    keep dedicating while ``u_j * (m - j) >= suffix_sum(j)``. Correctness
    of the prefix property (once a load fails the test, all smaller loads
    fail too) follows because both sides of the inequality move the wrong
    way as ``j`` increases. Runs in O(p log p) for the sort and O(min(p,
    m)) for the scan.
    """
    arr = np.ascontiguousarray(loads, dtype=np.float64)
    if arr.ndim != 1:
        raise InvalidParameterError(f"loads must be 1-D, got shape {arr.shape}")
    if m < 1:
        raise InvalidParameterError(f"m must be >= 1, got {m}")
    if arr.size and float(arr.min()) < -_LOAD_EPS:
        raise InvalidParameterError("loads must be non-negative")

    # Stable sort on negated loads => descending by load, ties by position.
    order = np.argsort(-arr, kind="stable").astype(np.int64)
    sorted_loads = arr[order]

    # suffix[j] = sum of sorted_loads[j:], computed tail-first so each
    # entry is a fresh accumulation (ties then resolve consistently with
    # the literal reference implementation up to the relative tolerance).
    if arr.size:
        suffix = np.concatenate((np.cumsum(sorted_loads[::-1])[::-1], [0.0]))
    else:
        suffix = np.zeros(1)
    total = float(suffix[0])
    tol = _LOAD_EPS * max(1.0, total)

    d = 0
    limit = min(int(arr.size), m)
    for j in range(1, limit + 1):
        u = float(sorted_loads[j - 1])
        if u <= _LOAD_EPS:
            break
        if u * (m - j) >= float(suffix[j]) - tol:
            d = j
        else:
            break
    return IntervalPartition(
        m=m,
        order=order,
        sorted_loads=sorted_loads,
        num_dedicated=d,
        pool_load=max(float(suffix[d]), 0.0),
    )


def partition_loads_reference(loads: FloatArray, m: int) -> IntervalPartition:
    """Literal transcription of Equation (5), for differential testing.

    Evaluates the dedication predicate independently for every rank
    instead of using the prefix-scan shortcut, then checks the dedicated
    set is a prefix. Quadratic and slow — test use only.
    """
    arr = np.ascontiguousarray(loads, dtype=np.float64)
    order = np.argsort(-arr, kind="stable").astype(np.int64)
    sorted_loads = arr[order]
    tol = _LOAD_EPS * max(1.0, float(arr.sum()))
    flags = []
    for j in range(1, arr.size + 1):
        u = float(sorted_loads[j - 1])
        suffix = float(sorted_loads[j:].sum())
        ok = j <= m and u > _LOAD_EPS and (
            suffix <= tol if m == j else u >= suffix / (m - j) - tol
        )
        flags.append(ok)
    # Equation (5) defines a prefix: verify and count.
    d = 0
    for f in flags:
        if f:
            d += 1
        else:
            break
    pool = float(sorted_loads[d:].sum())
    return IntervalPartition(
        m=m, order=order, sorted_loads=sorted_loads, num_dedicated=d, pool_load=pool
    )
