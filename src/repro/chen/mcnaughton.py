"""McNaughton wrap-around placement for pool jobs.

Inside an atomic interval, pool jobs all run at the common pool speed and
must share ``m - d`` processors with at most one job per processor at a
time and no job on two processors at once. McNaughton's classic rule does
this with at most ``m - d - 1`` migrations: lay the jobs out back-to-back
on a virtual timeline of length ``(m - d) * l_k`` and cut it into
``m - d`` strips of length ``l_k``. A job cut by a strip boundary runs at
the end of one processor's interval and the beginning of the next's; it
never overlaps itself because each pool job's duration is at most ``l_k``
(guaranteed by the dedication stopping rule).

The output is a list of concrete :class:`Segment` records, which the
schedule layer concatenates across intervals and the validator checks for
both feasibility constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import InfeasibleScheduleError

__all__ = ["Segment", "mcnaughton_layout"]

#: Durations below this are dropped (avoids zero-length segments from
#: floating-point dust at strip boundaries).
_DURATION_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class Segment:
    """A maximal run of one job on one processor at constant speed.

    ``start``/``end`` are absolute times; ``job`` is a caller-defined job
    identifier (the library uses instance job ids).
    """

    job: int
    processor: int
    start: float
    end: float
    speed: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def work(self) -> float:
        """Work processed during the segment."""
        return self.duration * self.speed

    @property
    def energy(self) -> float:
        """Placeholder-free energy requires the power function; see Schedule."""
        raise AttributeError("energy depends on the power function; use Schedule")


def mcnaughton_layout(
    job_ids: Sequence[int],
    durations: Sequence[float],
    *,
    start: float,
    length: float,
    first_processor: int,
    num_processors: int,
    speed: float,
) -> list[Segment]:
    """Wrap-around placement of jobs with given ``durations``.

    Parameters
    ----------
    job_ids, durations:
        Parallel sequences; ``durations[i]`` is how long job ``job_ids[i]``
        must run (at the common ``speed``). Each duration must be at most
        ``length`` and the total at most ``num_processors * length``
        (both hold for Chen et al. pool jobs; violations raise).
    start, length:
        Absolute start time and length of the interval.
    first_processor, num_processors:
        The processor index range ``[first_processor, first_processor +
        num_processors)`` available to the pool.
    speed:
        Common execution speed, recorded on every emitted segment.

    Returns
    -------
    Segments sorted by (processor, start). A job split by a strip boundary
    yields two segments on adjacent processors whose time ranges do not
    overlap (the first ends the earlier processor's interval, the second
    starts the later one's).
    """
    if len(job_ids) != len(durations):
        raise InfeasibleScheduleError("job_ids and durations must align")
    total = float(sum(durations))
    if total > num_processors * length * (1.0 + 1e-9) + _DURATION_EPS:
        raise InfeasibleScheduleError(
            f"pool work ({total}) exceeds capacity "
            f"({num_processors} processors x {length})"
        )
    segments: list[Segment] = []
    cursor = 0.0  # position on the virtual timeline [0, num_processors*length)
    for job, dur in zip(job_ids, durations):
        dur = float(dur)
        if dur <= _DURATION_EPS:
            continue
        if dur > length * (1.0 + 1e-9) + _DURATION_EPS:
            raise InfeasibleScheduleError(
                f"pool job {job} duration {dur} exceeds interval length {length}; "
                "it should have been dedicated"
            )
        remaining = dur
        while remaining > _DURATION_EPS:
            strip = int(cursor / length)
            # Floating-point guard: cursor can land a hair past a boundary.
            strip = min(strip, num_processors - 1)
            offset = cursor - strip * length
            take = min(remaining, length - offset)
            if take <= _DURATION_EPS:
                # At the exact end of a strip: advance to the next one.
                cursor = (strip + 1) * length
                continue
            segments.append(
                Segment(
                    job=job,
                    processor=first_processor + strip,
                    start=start + offset,
                    end=start + offset + take,
                    speed=speed,
                )
            )
            cursor += take
            remaining -= take
    segments.sort(key=lambda s: (s.processor, s.start))
    return segments
