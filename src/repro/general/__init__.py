"""Generalized power functions — the framework beyond ``s**alpha``.

The paper closes by conjecturing (with Gupta, Krishnaswamy, and Pruhs)
that its primal-dual approach extends past the polynomial power model.
This subpackage carries the conjecture out operationally:

* :class:`SumPower` — convex mixes ``sum c_i s**a_i`` (cube rule plus
  leakage, and anything else the protocol admits);
* :func:`run_pd_general` — the unchanged PD machinery priced by an
  arbitrary convex power function;
* :func:`general_dual_bound` — the generalized dual value ``g(lambda~)``,
  still a certified lower bound on OPT by weak duality, yielding a
  per-run empirical competitive-ratio certificate.

What does **not** generalize — and the code is explicit about it — is
Theorem 3's closed-form constant ``alpha**alpha`` and its optimal
``delta``; E16 explores both empirically.
"""

from .duality import GeneralDualBound, general_dual_bound
from .pd_general import GeneralPDResult, energy_with_power, run_pd_general
from .powers import SumPower

__all__ = [
    "SumPower",
    "run_pd_general",
    "GeneralPDResult",
    "energy_with_power",
    "general_dual_bound",
    "GeneralDualBound",
]
