"""PD with an arbitrary convex power function.

The scheduler is literally the paper's: the same water-filling, the same
rejection rule shape (stop when the marginal price reaches the value),
the same never-revisit commitment discipline. Only the marginal-price
map ``s -> delta * w * P'(s)`` changes. What *no longer* comes for free
is Theorem 3's constant: ``alpha**alpha`` and the optimal
``delta = alpha**(1-alpha)`` are polynomial-specific. What survives —
provably, since it is nothing but convex weak duality — is the dual
lower bound ``g(lambda~) <= cost(OPT)`` computed by
:mod:`repro.general.duality`, so every generalized run still carries a
machine-checkable certificate of the form ``cost(PD) <= r * cost(OPT)``
with an *empirical* ``r = cost / g``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..chen.interval_power import interval_energy
from ..core.pd import PDResult, PDScheduler
from ..errors import InvalidParameterError
from ..model.job import Instance
from ..model.power import PowerFunction
from ..model.schedule import Schedule

__all__ = ["GeneralPDResult", "run_pd_general", "energy_with_power"]

_LOAD_EPS = 1e-12


def energy_with_power(schedule: Schedule, power: PowerFunction) -> float:
    """Total energy of a schedule's loads under an arbitrary power law.

    The dedicated/pool structure of the per-interval optimum is
    independent of the convex power function (the most balanced feasible
    load vector is optimal for every convex ``P`` by majorization), so
    re-pricing the same loads under a different ``P`` is exact, not a
    bound.
    """
    lengths = schedule.grid.lengths
    total = 0.0
    for k in range(schedule.grid.size):
        col = schedule.loads[:, k]
        if float(col.sum()) <= _LOAD_EPS:
            continue
        total += interval_energy(
            col, schedule.instance.m, float(lengths[k]), power
        )
    return total


@dataclass(frozen=True)
class GeneralPDResult:
    """A PD run whose energy accounting uses a custom power function.

    Attributes
    ----------
    inner:
        The raw PD run; its schedule's loads and acceptance decisions are
        authoritative, but its ``schedule.energy`` prices loads with the
        instance's *polynomial* power and must not be used here.
    power:
        The power function the run was priced and is billed with.
    delta:
        The aggressiveness parameter used.
    """

    inner: PDResult
    power: PowerFunction
    delta: float

    @property
    def schedule(self) -> Schedule:
        return self.inner.schedule

    @cached_property
    def energy(self) -> float:
        """Energy of the realized loads under ``power``."""
        return energy_with_power(self.inner.schedule, self.power)

    @property
    def lost_value(self) -> float:
        return self.inner.schedule.lost_value

    @property
    def cost(self) -> float:
        """Equation (1) with the generalized power function."""
        return self.energy + self.lost_value

    @property
    def accepted_mask(self) -> np.ndarray:
        return self.inner.accepted_mask

    @property
    def lambdas(self) -> np.ndarray:
        return self.inner.lambdas

    def summary(self) -> str:
        acc = int(self.accepted_mask.sum())
        return (
            f"General-power PD (delta={self.delta:g}): cost {self.cost:.6g} "
            f"= energy {self.energy:.6g} + lost {self.lost_value:.6g}; "
            f"accepted {acc}/{self.schedule.instance.n}"
        )


def run_pd_general(
    instance: Instance, power: PowerFunction, *, delta: float
) -> GeneralPDResult:
    """Run the paper's PD with marginals priced by an arbitrary ``power``.

    Parameters
    ----------
    instance:
        Jobs and machine count. The instance's ``alpha`` is ignored for
        pricing and billing (it only parametrizes the polynomial model).
    power:
        Any convex :class:`~repro.model.power.PowerFunction` with
        ``P(0) = 0`` — e.g. :class:`repro.general.powers.SumPower`.
    delta:
        Required explicitly: the polynomial optimum ``alpha**(1-alpha)``
        has no known analogue here. E16 ablates this choice empirically.
    """
    if delta is None or delta <= 0.0:
        raise InvalidParameterError(f"delta must be > 0, got {delta}")
    ordered = instance.sorted_by_release()
    scheduler = PDScheduler(
        m=ordered.m, alpha=ordered.alpha, delta=delta, power=power
    )
    for job in ordered.jobs:
        scheduler.arrive(job)
    inner = scheduler.finish()
    return GeneralPDResult(inner=inner, power=power, delta=delta)
