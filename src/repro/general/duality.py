"""The dual lower bound ``g(lambda~)`` for arbitrary convex power.

Everything in the paper's Section 4.1–4.2 except the final constants is
plain convex duality, so it survives the generalization verbatim:

* the optimal infeasible solution schedules, in every atomic interval,
  the ``min(m, n_k)`` available jobs with the largest ``s^_j``, each at
  constant speed ``s^_j`` (Lemma 5c's argument only needs the per-job
  contribution to be decreasing in ``s^_j``, which convexity gives);
* ``s^_j`` solves the stationarity condition ``w_j P'(s^_j) =
  lambda~_j`` — the generalized Lemma 5a — i.e. ``s^_j =
  P'^{-1}(lambda~_j / w_j)``;
* the per-job contribution of the x-variables generalizes
  ``(1 - alpha) l(j) s^_j**alpha`` to ``l(j) * (P(s^_j) - s^_j
  P'(s^_j))`` (non-positive by convexity with ``P(0) = 0``), giving

      g(lambda~) = sum_j l(j) * (P(s^) - s^ P'(s^)) + sum_j lambda~_j.

Weak duality ``g(lambda~) <= cost(OPT)`` is then inherited from the
Lagrangian construction — it does not depend on the power function at
all. What is *lost* is the closed-form ``alpha**alpha`` combination of
Lemmas 9–11; :func:`general_dual_bound` therefore reports the empirical
certified ratio instead, and the test-suite pins weak duality on
instances whose optimum is computable in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.certificates import contributing_jobs
from ..model.power import PowerFunction
from .pd_general import GeneralPDResult

__all__ = ["GeneralDualBound", "general_dual_bound"]


@dataclass(frozen=True)
class GeneralDualBound:
    """Dual value and the empirical certified ratio of a generalized run.

    Attributes
    ----------
    g:
        The dual lower bound on ``cost(OPT)`` for the generalized
        objective. Positive whenever some job has positive value or work.
    cost:
        ``cost(PD)`` of the generalized run.
    ratio:
        ``cost / g`` — an *upper bound on the run's competitive ratio on
        this instance* by weak duality. Unlike the polynomial case there
        is no theorem capping it a priori; E16 charts how it behaves.
    s_hat:
        The generalized Lemma 5 speeds.
    """

    g: float
    cost: float
    ratio: float
    s_hat: np.ndarray

    @property
    def holds(self) -> bool:
        """Sanity: the bound is usable (positive dual value)."""
        return self.g > 0.0 and np.isfinite(self.ratio)


def general_dual_bound(result: GeneralPDResult) -> GeneralDualBound:
    """Evaluate the generalized ``g(lambda~)`` for a run.

    Mirrors :func:`repro.analysis.certificates.dual_certificate` with the
    polynomial closed forms replaced by protocol calls; the contributing
    -set construction is shared code.
    """
    schedule = result.schedule
    instance = schedule.instance
    grid = schedule.grid
    power: PowerFunction = result.power
    w = instance.workloads
    lam = np.maximum(result.lambdas, 0.0)

    s_hat = np.array(
        [power.derivative_inverse(float(l) / float(wj)) for l, wj in zip(lam, w)]
    )
    avail = grid.availability_matrix(instance)
    phi = contributing_jobs(avail, s_hat, instance.m)

    lengths = grid.lengths
    l_of_j = np.zeros(instance.n)
    for k, members in enumerate(phi):
        for j in members:
            l_of_j[j] += float(lengths[k])

    x_contrib = float(
        sum(
            l_of_j[j]
            * (power(float(s_hat[j])) - float(s_hat[j]) * power.derivative(float(s_hat[j])))
            for j in range(instance.n)
        )
    )
    g = x_contrib + float(lam.sum())
    cost = result.cost
    ratio = cost / g if g > 0.0 else float("inf")
    return GeneralDualBound(g=g, cost=cost, ratio=ratio, s_hat=s_hat)
