"""Convex power functions beyond the paper's ``s**alpha``.

The paper's conclusion, following Gupta, Krishnaswamy, and Pruhs,
conjectures that the primal-dual machinery extends to "more complex
variations" of the model. The most natural variation is the power
function itself: real processors are better described by a *sum* of
monomials — e.g. the cube-root-rule dynamic term plus a near-linear
short-circuit/leakage term ``P(s) = s**3 + c * s`` — than by a single
power law.

:class:`SumPower` implements any ``P(s) = sum_i c_i * s**a_i`` with
``c_i > 0`` and ``a_i >= 1`` (convex, ``P(0) = 0``, strictly increasing
derivative wherever some ``a_i > 1``), satisfying the
:class:`~repro.model.power.PowerFunction` protocol the water-filling
engine needs. The derivative inverse has no closed form in general; a
guarded Newton iteration with a bisection fallback delivers it to
machine precision (the derivative is smooth, increasing, and convex for
``a_i >= 2``-free mixes too, so Newton from a log-space initial guess
converges fast).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConvergenceError, InvalidParameterError
from ..types import FloatArray

__all__ = ["SumPower"]

_NEWTON_STEPS = 60
_BISECT_STEPS = 200


@dataclass(frozen=True)
class SumPower:
    """``P(s) = sum_i coefficients[i] * s**exponents[i]``.

    Parameters
    ----------
    coefficients:
        Positive weights ``c_i``.
    exponents:
        Exponents ``a_i >= 1``; at least one must exceed 1 so the
        derivative is strictly increasing on ``s > 0`` (required by the
        marginal-price inversion).

    Examples
    --------
    >>> p = SumPower([1.0, 0.5], [3.0, 1.0])   # cube rule + leakage
    >>> p(2.0)
    9.0
    >>> p.derivative(2.0)
    12.5
    >>> round(p.derivative_inverse(12.5), 10)
    2.0
    """

    coefficients: tuple[float, ...]
    exponents: tuple[float, ...]

    def __init__(
        self, coefficients: Sequence[float], exponents: Sequence[float]
    ) -> None:
        coeffs = tuple(float(c) for c in coefficients)
        exps = tuple(float(a) for a in exponents)
        if len(coeffs) != len(exps) or not coeffs:
            raise InvalidParameterError(
                "coefficients and exponents must align and be non-empty"
            )
        for c in coeffs:
            if not math.isfinite(c) or c <= 0.0:
                raise InvalidParameterError(f"coefficients must be > 0, got {c}")
        for a in exps:
            if not math.isfinite(a) or a < 1.0:
                raise InvalidParameterError(f"exponents must be >= 1, got {a}")
        if max(exps) <= 1.0:
            raise InvalidParameterError(
                "at least one exponent must exceed 1 (strictly convex part)"
            )
        object.__setattr__(self, "coefficients", coeffs)
        object.__setattr__(self, "exponents", exps)

    # ------------------------------------------------------------------
    # PowerFunction protocol
    # ------------------------------------------------------------------
    def __call__(self, speed: float) -> float:
        """Power at ``speed`` (clamped below at 0)."""
        if speed <= 0.0:
            return 0.0
        return float(
            sum(c * speed**a for c, a in zip(self.coefficients, self.exponents))
        )

    def derivative(self, speed: float) -> float:
        """Marginal power ``sum_i c_i * a_i * s**(a_i - 1)``."""
        if speed <= 0.0:
            return self.marginal_at_zero
        return float(
            sum(
                c * a * speed ** (a - 1.0)
                for c, a in zip(self.coefficients, self.exponents)
            )
        )

    @property
    def marginal_at_zero(self) -> float:
        """``P'(0+)`` — nonzero when a linear term is present."""
        return float(
            sum(
                c * a
                for c, a in zip(self.coefficients, self.exponents)
                if a == 1.0
            )
        )

    def derivative_inverse(self, marginal: float) -> float:
        """The speed with ``P'(s) == marginal`` (0 below ``P'(0+)``).

        Newton on the smooth increasing derivative, seeded from the
        dominant monomial in log space, with a bisection fallback if
        Newton wanders (it does not in practice; the fallback is a
        correctness net, exercised in tests via pathological mixes).
        """
        if marginal <= self.marginal_at_zero:
            return 0.0
        # Seed: invert the asymptotically dominant monomial.
        c_max, a_max = max(
            zip(self.coefficients, self.exponents), key=lambda t: t[1]
        )
        s = (marginal / (c_max * a_max)) ** (1.0 / (a_max - 1.0))
        s = max(s, 1e-300)
        for _ in range(_NEWTON_STEPS):
            f = self.derivative(s) - marginal
            if abs(f) <= 1e-14 * marginal:
                return float(s)
            fp = self._second_derivative(s)
            if fp <= 0.0:
                break
            step = f / fp
            new_s = s - step
            if new_s <= 0.0:
                new_s = s / 2.0
            if abs(new_s - s) <= 1e-16 * max(s, 1.0):
                return float(new_s)
            s = new_s
        # Bisection fallback on a doubling bracket.
        lo, hi = 0.0, max(s, 1.0)
        for _ in range(200):
            if self.derivative(hi) >= marginal:
                break
            hi *= 2.0
        else:  # pragma: no cover - derivative is unbounded
            raise ConvergenceError(f"cannot bracket marginal {marginal}")
        for _ in range(_BISECT_STEPS):
            mid = 0.5 * (lo + hi)
            if self.derivative(mid) >= marginal:
                hi = mid
            else:
                lo = mid
            if hi - lo <= 1e-15 * max(1.0, hi):
                break
        return float(hi)

    def _second_derivative(self, speed: float) -> float:
        return float(
            sum(
                c * a * (a - 1.0) * speed ** (a - 2.0)
                for c, a in zip(self.coefficients, self.exponents)
                if a > 1.0
            )
        )

    # ------------------------------------------------------------------
    # Conveniences mirroring PolynomialPower
    # ------------------------------------------------------------------
    def energy(self, speed: float, duration: float) -> float:
        """Energy at constant ``speed`` for ``duration`` time units."""
        if duration < 0.0:
            raise InvalidParameterError(f"duration must be >= 0, got {duration}")
        return self(speed) * duration

    def power_array(self, speeds: FloatArray) -> FloatArray:
        """Elementwise power for an array of speeds."""
        s = np.maximum(np.asarray(speeds, dtype=np.float64), 0.0)
        out = np.zeros_like(s)
        for c, a in zip(self.coefficients, self.exponents):
            out += c * s**a
        return out
