"""Max-flow feasibility for preemptive multiprocessor deadline scheduling.

Horn's classical criterion (1974): a set of jobs with release times,
deadlines, and processing times ``p_j`` is feasible on ``m`` identical
processors with preemption and migration **iff** the following network
admits a flow of value ``sum(p_j)``:

* source → job ``j`` with capacity ``p_j``,
* job ``j`` → atomic interval ``T_k`` (for ``T_k ⊆ [r_j, d_j)``) with
  capacity ``l_k`` — a job occupies at most one processor at a time,
* interval ``T_k`` → sink with capacity ``m * l_k`` — the interval offers
  ``m`` processors.

With speed-scalable processors pinned to one common speed ``s``, the
processing times are ``w_j / s``; scanning ``s`` with this oracle gives
the *minimal uniform speed* — the schedule a machine without dynamic
speed scaling would have to run at. Its energy is the natural
"no speed scaling" baseline the paper's introduction argues against, and
:func:`run_uniform_speed` packages it as a standard :class:`Schedule` so
every experiment can compare against it (see E13).

The oracle is also an *independent verifier*: it rests on networkx's
max-flow, not on any scheduling code of this library, so agreeing with
Chen et al.'s constructive layout is a meaningful cross-check (the
test-suite runs both on random instances).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..errors import InvalidParameterError, SolverError
from ..model.intervals import Grid, grid_for_instance
from ..model.job import Instance
from ..model.schedule import Schedule
from ..types import FloatArray

__all__ = [
    "FlowFeasibility",
    "UniformSpeedResult",
    "check_feasible_at_speed",
    "minimal_uniform_speed",
    "run_uniform_speed",
]

#: Relative slack when comparing the max-flow value against the demand.
_FLOW_TOL = 1e-9


@dataclass(frozen=True)
class FlowFeasibility:
    """Outcome of one Horn feasibility check.

    Attributes
    ----------
    feasible:
        Whether the demand is met.
    flow_value:
        Total time units of processing the network routes.
    demand:
        ``sum(w_j / s)`` over the checked jobs.
    busy_time:
        ``(n, N)`` matrix of time units job ``j`` runs during interval
        ``k`` in the witness flow (rows of unchecked jobs are zero).
    speed:
        The common speed checked.
    """

    feasible: bool
    flow_value: float
    demand: float
    busy_time: FloatArray
    speed: float

    def loads(self) -> FloatArray:
        """Witness work assignment: ``busy_time * speed`` per cell."""
        return self.busy_time * self.speed


def check_feasible_at_speed(
    instance: Instance,
    speed: float,
    *,
    accepted: tuple[int, ...] | None = None,
    grid: Grid | None = None,
) -> FlowFeasibility:
    """Horn's max-flow feasibility check at one common speed.

    Parameters
    ----------
    instance:
        Machine environment and job set.
    speed:
        The single speed every busy processor runs at; must be positive.
    accepted:
        Job ids to schedule; defaults to all jobs.
    grid:
        Atomic grid to route flow over; defaults to the instance's.

    Notes
    -----
    Capacities stay as floats; networkx's preflow-push is exact up to
    float arithmetic and the ``_FLOW_TOL`` relative slack absorbs the
    rounding. Witness flows are therefore accurate to ~1e-12 of the
    horizon, far below the scheduling tolerances used elsewhere.
    """
    if speed <= 0.0:
        raise InvalidParameterError(f"speed must be > 0, got {speed}")
    ids = tuple(range(instance.n)) if accepted is None else tuple(accepted)
    g = grid if grid is not None else grid_for_instance(instance)

    graph = nx.DiGraph()
    source, sink = "s", "t"
    demand = 0.0
    lengths = g.lengths
    for j in ids:
        job = instance[j]
        p_j = job.workload / speed
        demand += p_j
        graph.add_edge(source, ("job", j), capacity=p_j)
        for k in g.covering(job.release, job.deadline):
            graph.add_edge(("job", j), ("iv", k), capacity=float(lengths[k]))
    for k in range(g.size):
        if graph.has_node(("iv", k)):
            graph.add_edge(
                ("iv", k), sink, capacity=instance.m * float(lengths[k])
            )

    if demand == 0.0:
        return FlowFeasibility(
            feasible=True,
            flow_value=0.0,
            demand=0.0,
            busy_time=np.zeros((instance.n, g.size)),
            speed=speed,
        )

    flow_value, flow_dict = nx.maximum_flow(graph, source, sink)
    busy = np.zeros((instance.n, g.size))
    for j in ids:
        for node, amount in flow_dict.get(("job", j), {}).items():
            if amount > 0.0:
                _, k = node
                busy[j, k] = amount
    feasible = flow_value >= demand * (1.0 - _FLOW_TOL)
    return FlowFeasibility(
        feasible=feasible,
        flow_value=float(flow_value),
        demand=float(demand),
        busy_time=busy,
        speed=speed,
    )


def _speed_lower_bound(instance: Instance, ids: tuple[int, ...]) -> float:
    """Analytic lower bounds on the minimal uniform speed.

    Two necessary conditions: every job alone needs its density, and
    every window ``[t1, t2]`` needs the work fully inside it to fit on
    ``m`` processors. Both are classical; together they are not always
    sufficient (that is what the flow check is for) but they bracket the
    bisection tightly from below.
    """
    best = 0.0
    events = sorted(
        {instance[j].release for j in ids} | {instance[j].deadline for j in ids}
    )
    for j in ids:
        job = instance[j]
        best = max(best, job.workload / job.span)
    for a_idx, t1 in enumerate(events):
        for t2 in events[a_idx + 1 :]:
            inside = sum(
                instance[j].workload
                for j in ids
                if instance[j].release >= t1 and instance[j].deadline <= t2
            )
            if inside > 0.0:
                best = max(best, inside / (instance.m * (t2 - t1)))
    return best


def minimal_uniform_speed(
    instance: Instance,
    *,
    accepted: tuple[int, ...] | None = None,
    rel_tol: float = 1e-9,
    max_iters: int = 200,
) -> float:
    """Smallest common speed at which the accepted jobs are feasible.

    Bisects between the analytic lower bound (often already tight) and a
    doubling upper bound, with Horn's oracle deciding each probe.
    """
    ids = tuple(range(instance.n)) if accepted is None else tuple(accepted)
    if not ids:
        raise InvalidParameterError("no jobs to schedule")
    grid = grid_for_instance(instance)
    lo = _speed_lower_bound(instance, ids)
    if lo <= 0.0:  # pragma: no cover - jobs have positive workloads
        raise SolverError("degenerate lower bound")
    if check_feasible_at_speed(instance, lo, accepted=ids, grid=grid).feasible:
        return lo
    hi = lo
    for _ in range(60):
        hi *= 2.0
        if check_feasible_at_speed(instance, hi, accepted=ids, grid=grid).feasible:
            break
    else:  # pragma: no cover - doubling covers any finite instance
        raise SolverError("no feasible uniform speed found")
    for _ in range(max_iters):
        if hi - lo <= rel_tol * hi:
            break
        mid = 0.5 * (lo + hi)
        if check_feasible_at_speed(instance, mid, accepted=ids, grid=grid).feasible:
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class UniformSpeedResult:
    """The fixed-frequency baseline: busy at one speed, idle otherwise.

    ``schedule`` holds the witness work assignment (it validates against
    the model and renders like any other schedule), but its *own* energy
    figure would let speeds sag inside underfull intervals — that would
    be dynamic speed scaling again. A fixed-frequency machine has no such
    freedom, so the baseline's energy is computed at the pinned speed:
    ``sum(w_j) * speed**(alpha - 1)`` over the accepted jobs.
    """

    schedule: Schedule
    speed: float

    @property
    def energy(self) -> float:
        """Energy at the pinned speed (>= the schedule's internal figure)."""
        instance = self.schedule.instance
        work = float(instance.workloads[self.schedule.finished].sum())
        return work * self.speed ** (instance.alpha - 1.0)

    @property
    def lost_value(self) -> float:
        return self.schedule.lost_value

    @property
    def cost(self) -> float:
        """Fixed-frequency analogue of Equation (1)."""
        return self.energy + self.lost_value


def run_uniform_speed(
    instance: Instance,
    *,
    accepted: tuple[int, ...] | None = None,
    speed: float | None = None,
    rel_tol: float = 1e-9,
) -> UniformSpeedResult:
    """The "no dynamic speed scaling" baseline.

    Runs the accepted jobs (default: all) at one common speed — the
    minimal feasible one unless ``speed`` is given — using the witness
    flow as the work assignment. This is exactly what fixed-frequency
    hardware would do, so its energy quantifies what dynamic speed
    scaling buys (the paper's opening argument; E13).

    Raises
    ------
    InvalidParameterError
        If an explicit ``speed`` is infeasible for the accepted set.
    """
    ids = tuple(range(instance.n)) if accepted is None else tuple(accepted)
    grid = grid_for_instance(instance)
    s = minimal_uniform_speed(
        instance, accepted=ids, rel_tol=rel_tol
    ) if speed is None else float(speed)
    witness = check_feasible_at_speed(instance, s, accepted=ids, grid=grid)
    if not witness.feasible:
        raise InvalidParameterError(
            f"speed {s} is infeasible for the accepted set"
        )
    loads = witness.loads()
    # Flow may route epsilon less than the workload; patch rounding dust
    # onto the largest cell so finish accounting is exact.
    for j in ids:
        deficit = instance[j].workload - float(loads[j].sum())
        if deficit > 1e-6 * instance[j].workload:  # pragma: no cover
            raise SolverError(
                f"witness flow shorts job {j} by {deficit}; tolerance bug"
            )
        if deficit > 0.0:
            loads[j, int(np.argmax(loads[j]))] += deficit
    finished = np.zeros(instance.n, dtype=bool)
    finished[list(ids)] = True
    schedule = Schedule(
        instance=instance, grid=grid, loads=loads, finished=finished
    )
    schedule.validate()
    return UniformSpeedResult(schedule=schedule, speed=s)
