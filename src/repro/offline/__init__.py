"""Offline solvers: the convex program (CP), the exact integral (IMP),
and Horn's max-flow feasibility oracle for uniform-speed baselines."""

from .bounds import reject_all_upper_bound, solo_choice_lower_bound
from .convex import OfflineSolution, kkt_residual, solve_min_energy
from .flow import (
    FlowFeasibility,
    UniformSpeedResult,
    check_feasible_at_speed,
    minimal_uniform_speed,
    run_uniform_speed,
)
from .optimal import ExactSolution, solo_energy, solve_exact

__all__ = [
    "solve_min_energy",
    "OfflineSolution",
    "kkt_residual",
    "solve_exact",
    "ExactSolution",
    "solo_energy",
    "solo_choice_lower_bound",
    "reject_all_upper_bound",
    "FlowFeasibility",
    "UniformSpeedResult",
    "check_feasible_at_speed",
    "minimal_uniform_speed",
    "run_uniform_speed",
]
