"""Exact solver for the integral program (IMP) on small instances.

The full problem lets the scheduler choose *which* jobs to finish; the
integral variables ``y_j`` make it combinatorial. For the instance sizes
used in duality experiments (``n <= ~15``) we solve it exactly by
enumerating acceptance sets, solving the convex program for each, and
keeping the cheapest total (energy + rejected values).

Branch-and-bound pruning keeps this tractable: a job processed at all
costs at least its *solo energy* (constant speed over its whole window on
an otherwise empty machine — a valid lower bound because per-job energies
add across processors and convexity favors constant speed), so any
acceptance set whose solo-energy + rejected-value lower bound already
exceeds the incumbent is skipped without a convex solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..errors import InvalidParameterError
from ..model.job import Instance
from ..model.power import optimal_constant_speed_energy
from ..model.schedule import Schedule
from .convex import OfflineSolution, solve_min_energy

__all__ = ["ExactSolution", "solve_exact", "solo_energy"]

#: Hard cap: 2**18 subsets is the largest enumeration we allow.
_MAX_N = 18


@dataclass(frozen=True)
class ExactSolution:
    """The optimal offline solution of (IMP)."""

    schedule: Schedule
    accepted: tuple[int, ...]
    cost: float
    subsets_solved: int
    subsets_pruned: int


def solo_energy(instance: Instance, job_id: int) -> float:
    """Minimum conceivable energy for one job: constant speed, empty machine."""
    job = instance[job_id]
    return optimal_constant_speed_energy(instance.alpha, job.workload, job.span)


def solve_exact(
    instance: Instance,
    *,
    tol: float = 1e-8,
    max_cycles: int = 400,
) -> ExactSolution:
    """Enumerate acceptance sets and return the exact (IMP) optimum.

    Raises for ``n > 18``; use the dual bound from
    :mod:`repro.analysis.certificates` on larger instances instead.
    """
    n = instance.n
    if n == 0:
        raise InvalidParameterError("empty instance")
    if n > _MAX_N:
        raise InvalidParameterError(
            f"exact enumeration supports n <= {_MAX_N}, got {n}"
        )

    values = instance.values
    solo = [solo_energy(instance, j) for j in range(n)]
    total_value = float(values.sum())

    best_cost = total_value  # reject everything
    best: OfflineSolution | None = None
    best_set: tuple[int, ...] = ()
    solved = 0
    pruned = 0

    # Enumerate by acceptance-set size; larger sets explored later tend to
    # be pruned once a good incumbent exists.
    for size in range(1, n + 1):
        for subset in combinations(range(n), size):
            rejected_value = total_value - float(values[list(subset)].sum())
            lower = rejected_value + sum(solo[j] for j in subset)
            if lower >= best_cost - 1e-12:
                pruned += 1
                continue
            solution = solve_exact_for_set(
                instance, subset, tol=tol, max_cycles=max_cycles
            )
            solved += 1
            cost = solution.energy + rejected_value
            if cost < best_cost - 1e-12:
                best_cost = cost
                best = solution
                best_set = subset

    if best is None:
        schedule = Schedule.empty(
            instance, grid=__grid(instance)
        )
    else:
        schedule = best.schedule
    return ExactSolution(
        schedule=schedule,
        accepted=best_set,
        cost=best_cost,
        subsets_solved=solved,
        subsets_pruned=pruned,
    )


def solve_exact_for_set(
    instance: Instance,
    accepted: tuple[int, ...],
    *,
    tol: float = 1e-8,
    max_cycles: int = 400,
) -> OfflineSolution:
    """Convex solve for one acceptance set (thin wrapper, kept for profiling)."""
    return solve_min_energy(
        instance, accepted, tol=tol, max_cycles=max_cycles
    )


def __grid(instance: Instance):
    from ..model.intervals import grid_for_instance

    return grid_for_instance(instance)


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


@register_algorithm(
    "exact",
    profit_aware=True,
    online=False,
    multiprocessor=True,
    summary="exact offline optimum over acceptance sets (enumeration + CP)",
)
def _run_exact_registered(instance):
    solution = solve_exact(instance)
    return solution.schedule, solution
