"""Offline convex program (CP): minimum energy for a fixed accepted set.

For a fixed set of accepted jobs the paper's program (Figure 1) reduces to

    ``min  sum_k P_k(x_{.k})   s.t.  sum_k c_{jk} x_{jk} = 1`` per job,

a smooth convex problem over a product of scaled simplices. We solve it by
**block-coordinate descent**: cyclically re-water-fill each job against
the others' frozen loads — each block step is an *exact* minimization over
that job's row (the water-filling clearing price is closed-form, see
:mod:`repro.core.waterfill`). BCD on a differentiable convex objective
with separable constraints converges to the global optimum (Tseng 2001);
we certify each solution a posteriori via the KKT residual (per job, the
marginal energy must be constant on the support of its row and no smaller
anywhere else in its window).

This numeric solver is the library's stand-in for the exact
Albers–Antoniadis–Greiner multiprocessor offline algorithm; on ``m == 1``
the tests cross-validate it against the combinatorial YDS optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..chen.interval_power import (
    SortedLoads,
    interval_energy,
    interval_energy_gradient,
)
from ..core.waterfill import waterfill_job
from ..errors import ConvergenceError, InvalidParameterError
from ..model.intervals import Grid, grid_for_instance
from ..model.job import Instance
from ..model.schedule import Schedule
from ..types import FloatArray

__all__ = ["OfflineSolution", "solve_min_energy", "kkt_residual"]

_LOAD_EPS = 1e-12


@dataclass(frozen=True)
class OfflineSolution:
    """A solved (or best-effort) instance of the fixed-acceptance CP.

    ``kkt`` is the final KKT residual (see :func:`kkt_residual`); a value
    around or below the requested tolerance certifies global optimality of
    the convex program up to that tolerance.
    """

    schedule: Schedule
    energy: float
    cycles: int
    kkt: float
    converged: bool

    @property
    def cost(self) -> float:
        return self.schedule.cost


def solve_min_energy(
    instance: Instance,
    accepted: Sequence[int] | None = None,
    *,
    grid: Grid | None = None,
    max_cycles: int = 400,
    tol: float = 1e-8,
    raise_on_failure: bool = False,
) -> OfflineSolution:
    """Minimize total energy finishing exactly the ``accepted`` jobs.

    Parameters
    ----------
    instance:
        The problem instance (values are irrelevant here except for the
        cost of the returned schedule).
    accepted:
        Job ids that must be finished; default: all jobs.
    grid:
        Grid to work on; defaults to the instance grid.
    max_cycles:
        Cap on BCD sweeps. Each sweep re-optimizes every accepted job once.
    tol:
        Relative KKT tolerance for declaring convergence.
    raise_on_failure:
        When true, raise :class:`ConvergenceError` (carrying the best
        solution) instead of returning an unconverged result.
    """
    acc = sorted(set(range(instance.n) if accepted is None else accepted))
    if any(j < 0 or j >= instance.n for j in acc):
        raise InvalidParameterError(f"accepted ids out of range: {acc}")
    g = grid or grid_for_instance(instance)
    n, big_n = instance.n, g.size
    lengths = g.lengths
    power = instance.power

    finished = np.zeros(n, dtype=bool)
    finished[acc] = True

    loads = np.zeros((n, big_n))
    windows: dict[int, list[int]] = {}
    for j in acc:
        job = instance[j]
        ks = list(g.covering(job.release, job.deadline))
        windows[j] = ks
        # AVR warm start: uniform density over the window.
        span = float(sum(lengths[k] for k in ks))
        for k in ks:
            loads[j, k] = job.workload * float(lengths[k]) / span

    def objective() -> float:
        total = 0.0
        for k in range(big_n):
            col = loads[:, k]
            if float(col.sum()) > _LOAD_EPS:
                total += interval_energy(col, instance.m, float(lengths[k]), power)
        return total

    prev_obj = objective()
    cycles = 0
    converged = False
    for cycles in range(1, max_cycles + 1):
        for j in acc:
            ks = windows[j]
            saved = loads[j, ks].copy()
            loads[j, ks] = 0.0
            caches = [
                SortedLoads(loads[:, k], instance.m, float(lengths[k])) for k in ks
            ]
            outcome = waterfill_job(
                caches,
                workload=instance[j].workload,
                value=np.inf,
                delta=1.0,
                power=power,
            )
            if not outcome.accepted:  # pragma: no cover - inf value never rejects
                loads[j, ks] = saved
                continue
            loads[j, ks] = outcome.loads
        obj = objective()
        res = kkt_residual(instance, g, loads, acc)
        if res <= tol and prev_obj - obj <= tol * max(1.0, abs(obj)):
            converged = True
            prev_obj = obj
            break
        prev_obj = obj

    schedule = Schedule(instance=instance, grid=g, loads=loads, finished=finished)
    solution = OfflineSolution(
        schedule=schedule,
        energy=prev_obj,
        cycles=cycles,
        kkt=kkt_residual(instance, g, loads, acc),
        converged=converged,
    )
    if raise_on_failure and not converged:
        raise ConvergenceError(
            f"BCD did not reach KKT tolerance {tol} in {max_cycles} cycles "
            f"(residual {solution.kkt:.3g})",
            best=solution,
        )
    return solution


def kkt_residual(
    instance: Instance,
    grid: Grid,
    loads: FloatArray,
    accepted: Sequence[int],
) -> float:
    """Relative KKT violation of a fixed-acceptance assignment.

    For each accepted job the stationarity conditions of the CP require a
    multiplier ``lambda_j`` with marginal energy ``== lambda_j`` wherever
    the job has load and ``>= lambda_j`` elsewhere in its window. The
    returned residual is the worst relative violation across jobs:

        ``max_j (max marginal on support - min marginal in window)
                / max(1, max marginal on support)``

    clipped below at 0. Zero means exact KKT; the solver targets ~1e-8.
    """
    lengths = grid.lengths
    power = instance.power
    # Marginals per interval, computed once per column.
    marginals = np.zeros_like(loads)
    for k in range(grid.size):
        marginals[:, k] = interval_energy_gradient(
            loads[:, k], instance.m, float(lengths[k]), power
        )
    worst = 0.0
    for j in accepted:
        job = instance[j]
        ks = list(grid.covering(job.release, job.deadline))
        row_loads = loads[j, ks]
        row_marg = marginals[j, ks]
        support = row_loads > _LOAD_EPS * max(1.0, float(row_loads.max(initial=0.0)))
        if not support.any():
            worst = max(worst, 1.0)  # job gets no work at all: maximally wrong
            continue
        hi = float(row_marg[support].max())
        lo = float(row_marg.min())
        worst = max(worst, max(0.0, hi - lo) / max(1.0, hi))
    return worst


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


@register_algorithm(
    "offline-cp",
    online=False,
    multiprocessor=True,
    summary="offline convex program: min energy finishing every job",
)
def _run_offline_cp_registered(instance):
    solution = solve_min_energy(instance)
    return solution.schedule, solution
