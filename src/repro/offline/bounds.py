"""Cheap combinatorial lower bounds on the offline optimum.

These bounds need no optimization and hold for any number of processors;
benchmarks use them to sanity-band results on instances too large for
exact enumeration.
"""

from __future__ import annotations

import numpy as np

from ..model.job import Instance
from ..model.power import optimal_constant_speed_energy

__all__ = ["solo_choice_lower_bound", "reject_all_upper_bound"]


def solo_choice_lower_bound(instance: Instance) -> float:
    """``sum_j min(solo energy, value)`` — a valid lower bound on OPT.

    Per job, any schedule either finishes it (paying at least its solo
    energy: the per-job energies of a multiprocessor schedule add up, and
    convexity makes constant speed over the whole window a per-job
    minimum) or rejects it (paying its value). Cross terms only increase
    energy, so summing the per-job minima lower-bounds the optimum.
    """
    total = 0.0
    for job in instance.jobs:
        solo = optimal_constant_speed_energy(instance.alpha, job.workload, job.span)
        total += min(solo, job.value)
    return total


def reject_all_upper_bound(instance: Instance) -> float:
    """Cost of rejecting every job — a trivial upper bound on OPT."""
    return float(np.sum(instance.values))
