"""Power functions for speed-scalable processors.

The paper models a processor running at speed ``s`` as consuming power
``P_alpha(s) = s**alpha`` for a constant energy exponent ``alpha > 1``
(classical CMOS systems are well approximated by ``alpha = 3``). Energy is
power integrated over time, so a job of workload ``w`` executed at constant
speed ``s`` takes time ``w / s`` and costs energy ``(w / s) * s**alpha =
w * s**(alpha - 1)``.

This module provides a small protocol so that the rest of the library can
work with any convex power function, plus the concrete
:class:`PolynomialPower` the paper uses. Keeping derivative and inverse
derivative as first-class operations matters because the primal-dual
algorithm PD prices work at the *marginal* energy cost ``w * P'(s)`` and
must invert that relation during water-filling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import InvalidParameterError
from ..types import FloatArray

__all__ = [
    "PowerFunction",
    "PolynomialPower",
    "energy_at_constant_speed",
    "optimal_constant_speed_energy",
]


@runtime_checkable
class PowerFunction(Protocol):
    """Protocol for convex, differentiable power functions ``P(s)``.

    Implementations must satisfy ``P(0) == 0``, convexity, and strict
    monotonicity of the derivative on ``s > 0`` so that
    :meth:`derivative_inverse` is well defined.
    """

    def __call__(self, speed: float) -> float:
        """Power drawn at ``speed``."""
        ...

    def derivative(self, speed: float) -> float:
        """Marginal power ``P'(speed)``."""
        ...

    def derivative_inverse(self, marginal: float) -> float:
        """The speed ``s`` with ``P'(s) == marginal`` (0 for ``marginal <= 0``)."""
        ...


@dataclass(frozen=True, slots=True)
class PolynomialPower:
    """The paper's power function ``P_alpha(s) = s**alpha`` with ``alpha > 1``.

    Instances are immutable and cheap; pass them around freely. All array
    variants accept NumPy arrays and broadcast elementwise — the
    simulator's hot paths use those.

    Parameters
    ----------
    alpha:
        Energy exponent. The paper requires ``alpha > 1`` (and the original
        Yao–Demers–Shenker model assumed ``alpha >= 2``); we enforce the
        weaker paper condition.

    Examples
    --------
    >>> p = PolynomialPower(3.0)
    >>> p(2.0)
    8.0
    >>> p.derivative(2.0)
    12.0
    >>> round(p.derivative_inverse(12.0), 12)
    2.0
    """

    alpha: float

    def __post_init__(self) -> None:
        if not (self.alpha > 1.0) or not math.isfinite(self.alpha):
            raise InvalidParameterError(
                f"energy exponent alpha must be a finite number > 1, got {self.alpha!r}"
            )

    # ------------------------------------------------------------------
    # Scalar operations
    # ------------------------------------------------------------------
    def __call__(self, speed: float) -> float:
        """Power ``speed**alpha`` (speeds are clamped below at 0)."""
        if speed <= 0.0:
            return 0.0
        return float(speed**self.alpha)

    def derivative(self, speed: float) -> float:
        """Marginal power ``alpha * speed**(alpha - 1)``."""
        if speed <= 0.0:
            return 0.0
        return float(self.alpha * speed ** (self.alpha - 1.0))

    def derivative_inverse(self, marginal: float) -> float:
        """Speed at which the marginal power equals ``marginal``.

        Inverts ``P'(s) = alpha * s**(alpha-1)``; returns 0 for
        non-positive marginals (the derivative is 0 at speed 0). For
        exponents near 1 the inverse explodes — huge marginals (e.g. the
        sentinel values of classical must-finish jobs) then map to
        ``inf``, which callers treat as "no cap".
        """
        if marginal <= 0.0:
            return 0.0
        # Work in log space to detect overflow without raising.
        log_speed = math.log(marginal / self.alpha) / (self.alpha - 1.0)
        if log_speed > 690.0:  # exp(690) ~ 1e299, the edge of float64
            return math.inf
        return math.exp(log_speed)

    def energy(self, speed: float, duration: float) -> float:
        """Energy used running at constant ``speed`` for ``duration`` time."""
        if duration < 0.0:
            raise InvalidParameterError(f"duration must be >= 0, got {duration}")
        return self(speed) * duration

    def job_energy(self, workload: float, speed: float) -> float:
        """Energy to process ``workload`` at constant ``speed``.

        Equals ``workload * speed**(alpha-1)`` — the form used by the
        paper's single-processor rejection-policy discussion.
        """
        if workload <= 0.0 or speed <= 0.0:
            return 0.0
        return float(workload * speed ** (self.alpha - 1.0))

    # ------------------------------------------------------------------
    # Array operations (vectorized hot paths)
    # ------------------------------------------------------------------
    def power_array(self, speeds: FloatArray) -> FloatArray:
        """Elementwise power for an array of speeds (negatives clamp to 0)."""
        s = np.maximum(np.asarray(speeds, dtype=np.float64), 0.0)
        return s**self.alpha

    def derivative_array(self, speeds: FloatArray) -> FloatArray:
        """Elementwise marginal power for an array of speeds."""
        s = np.maximum(np.asarray(speeds, dtype=np.float64), 0.0)
        return self.alpha * s ** (self.alpha - 1.0)

    # ------------------------------------------------------------------
    # Paper-specific constants
    # ------------------------------------------------------------------
    @property
    def competitive_ratio_pd(self) -> float:
        """``alpha**alpha`` — PD's tight competitive ratio (Theorem 3)."""
        return float(self.alpha**self.alpha)

    @property
    def competitive_ratio_cll(self) -> float:
        """``alpha**alpha + 2 e**alpha`` — the Chan–Lam–Li bound PD improves."""
        return float(self.alpha**self.alpha + 2.0 * math.e**self.alpha)

    @property
    def optimal_delta(self) -> float:
        """``delta = alpha**(1 - alpha)`` — the PD parameter from Theorem 3."""
        return float(self.alpha ** (1.0 - self.alpha))

    @property
    def rejection_energy_factor(self) -> float:
        """``alpha**(alpha - 2)``.

        On one processor, PD with the optimal ``delta`` rejects a job
        exactly when its planned energy exceeds this factor times the
        job's value (Section 3 of the paper).
        """
        return float(self.alpha ** (self.alpha - 2.0))


def energy_at_constant_speed(
    power: PowerFunction, workload: float, duration: float
) -> float:
    """Minimum energy to finish ``workload`` within ``duration`` time.

    For a convex power function the optimum is the constant speed
    ``workload / duration`` (by Jensen's inequality), which this helper
    evaluates. Raises when the duration is non-positive but work remains.
    """
    if workload <= 0.0:
        return 0.0
    if duration <= 0.0:
        raise InvalidParameterError(
            f"cannot finish workload {workload} in non-positive duration {duration}"
        )
    speed = workload / duration
    return power(speed) * duration


def optimal_constant_speed_energy(
    alpha: float, workload: float, duration: float
) -> float:
    """Closed form ``duration * (workload / duration)**alpha``.

    Convenience wrapper around :func:`energy_at_constant_speed` for the
    polynomial power function; used pervasively in tests as an oracle.
    """
    return energy_at_constant_speed(PolynomialPower(alpha), workload, duration)
