"""Struct-of-array (columnar) storage for job sets.

An :class:`Instance` keeps :class:`~repro.model.job.Job` objects as its
API surface, but whole-instance operations — availability matrices,
feasibility scans, certificate sums, workload generation — want the four
job attributes as contiguous numpy columns, not attribute walks over n
Python objects. :class:`JobArrays` is that columnar view: four read-only
``float64`` arrays (release, deadline, workload, value) validated once
with exactly the per-job invariants :class:`Job` enforces.

Two directions of travel, both exact:

* :meth:`JobArrays.from_jobs` columnarizes an existing job tuple — the
  same ``np.array([j.release for j in jobs])`` construction the old
  per-access properties performed, now done once and cached.
* :meth:`JobArrays.to_jobs` materializes ``Job`` objects back from the
  columns. Round-tripping is bit-exact (the arrays store the very same
  floats the ``Job`` attributes hold), which the property suite asserts;
  only the optional ``name`` label is outside the columnar view.

``Instance.from_arrays`` builds instances directly from a
:class:`JobArrays` without constructing any ``Job`` objects up front —
jobs materialize lazily on first attribute access — which is what makes
million-job instance construction cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import numpy.typing as npt

from ..errors import InvalidJobError
from ..types import FloatArray
from .job import Job

__all__ = ["JobArrays"]

_COLUMNS = ("releases", "deadlines", "workloads", "values")


def _frozen_column(name: str, data: npt.ArrayLike) -> FloatArray:
    try:
        arr = np.array(data, dtype=np.float64, order="C", copy=True)
    except (TypeError, ValueError) as exc:
        raise InvalidJobError(
            f"job {name} column is not numeric: {exc}"
        ) from exc
    if arr.ndim != 1:
        raise InvalidJobError(
            f"job {name} column must be 1-D, got shape {arr.shape}"
        )
    arr.flags.writeable = False
    return arr


@dataclass(frozen=True, eq=False)
class JobArrays:
    """Columnar view of a job set: four aligned read-only float64 arrays.

    Index ``i`` across all four arrays describes job ``i`` — the same
    0-based ids an :class:`~repro.model.job.Instance` uses. The arrays
    are private copies with ``writeable=False``, so they can be shared
    (and cached on instances) without aliasing hazards.
    """

    releases: FloatArray
    deadlines: FloatArray
    workloads: FloatArray
    values: FloatArray

    def __post_init__(self) -> None:
        for name in _COLUMNS:
            object.__setattr__(self, name, _frozen_column(name, getattr(self, name)))
        n = self.releases.size
        for name in _COLUMNS[1:]:
            if getattr(self, name).size != n:
                raise InvalidJobError(
                    f"job column lengths differ: {n} releases vs "
                    f"{getattr(self, name).size} {name}"
                )
        self._validate()

    def _validate(self) -> None:
        """Vectorized replay of ``Job.__post_init__``'s invariants.

        On failure, the offending job is rebuilt through the ``Job``
        constructor so the error raised (type *and* message) is exactly
        the one the per-object path produces.
        """
        bad = ~(
            np.isfinite(self.releases)
            & np.isfinite(self.deadlines)
            & np.isfinite(self.workloads)
            & np.isfinite(self.values)
            & (self.releases >= 0.0)
            & (self.deadlines > self.releases)
            & (self.workloads > 0.0)
            & (self.values >= 0.0)
        )
        if bad.any():
            i = int(np.nonzero(bad)[0][0])
            self.job(i)  # raises InvalidJobError with the canonical message
            raise InvalidJobError(  # pragma: no cover - mask/Job disagreement
                f"job {i} failed columnar validation"
            )

    # ------------------------------------------------------------------
    # Size / access
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self.releases.size)

    def __len__(self) -> int:
        return self.n

    def job(self, i: int) -> Job:
        """Materialize job ``i`` (no ``name``; labels live on ``Job``)."""
        return Job(
            release=float(self.releases[i]),
            deadline=float(self.deadlines[i]),
            workload=float(self.workloads[i]),
            value=float(self.values[i]),
        )

    def to_jobs(self) -> tuple[Job, ...]:
        """Materialize the full job tuple (bit-exact round trip)."""
        return tuple(
            Job(release=r, deadline=d, workload=w, value=v)
            for r, d, w, v in zip(
                self.releases.tolist(),
                self.deadlines.tolist(),
                self.workloads.tolist(),
                self.values.tolist(),
            )
        )

    # ------------------------------------------------------------------
    # Construction / transformation
    # ------------------------------------------------------------------
    @classmethod
    def from_jobs(cls, jobs: Sequence[Job]) -> "JobArrays":
        """Columnarize a sequence of :class:`Job` objects."""
        return cls(
            releases=np.array([j.release for j in jobs], dtype=np.float64),
            deadlines=np.array([j.deadline for j in jobs], dtype=np.float64),
            workloads=np.array([j.workload for j in jobs], dtype=np.float64),
            values=np.array([j.value for j in jobs], dtype=np.float64),
        )

    def permuted(self, order: npt.ArrayLike) -> "JobArrays":
        """Columns reordered by ``order`` (an index array/list)."""
        idx = np.asarray(order, dtype=np.intp)
        return JobArrays(
            releases=self.releases[idx],
            deadlines=self.deadlines[idx],
            workloads=self.workloads[idx],
            values=self.values[idx],
        )
