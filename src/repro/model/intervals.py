"""Atomic time intervals and their online refinement.

Following Bingham & Greenstreet (and Section 2.1 of the paper), time is
partitioned into *atomic intervals* ``T_k = [tau_{k-1}, tau_k)`` whose
boundaries are exactly the release times and deadlines seen so far. Inside
an atomic interval the set of available jobs is constant, which is what
makes per-interval work assignments a complete description of a schedule.

An online algorithm does not know the final grid: when a new job arrives
its release/deadline may split existing intervals. The paper observes
(Section 3, "Concerning the Time Partitioning") that splitting an interval
and dividing assigned portions proportionally to the sub-lengths leaves
the schedule unchanged. :meth:`Grid.refine` implements exactly this and
returns the bookkeeping needed to remap per-interval arrays.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import GridMismatchError, InvalidParameterError
from ..types import FloatArray, IntervalIndex, Time
from .job import Instance, Job

__all__ = ["Grid", "Refinement", "grid_for_instance"]

#: Two time points closer than this are considered identical breakpoints.
_TIME_EPS = 1e-12


@dataclass(frozen=True)
class Refinement:
    """Result of refining a grid with new breakpoints.

    Attributes
    ----------
    grid:
        The refined grid.
    parent:
        For each new interval index, the index of the old interval that
        contains it (``len == grid.size``). New intervals that lie outside
        the old grid's span have parent ``-1``.
    fraction:
        For each new interval, its length divided by its parent's length
        (1.0 for parent ``-1``). Splitting a per-interval quantity ``q_k``
        proportionally means assigning ``q_parent * fraction`` to each
        child — the paper's load-preserving split.
    """

    grid: "Grid"
    parent: np.ndarray
    fraction: FloatArray

    def split_row(self, row: FloatArray, *, fill: float = 0.0) -> FloatArray:
        """Remap a per-old-interval array onto the refined grid.

        ``row[k]`` is distributed over the children of old interval ``k``
        in proportion to their lengths; positions with no parent get
        ``fill``.
        """
        out = np.full(self.grid.size, fill, dtype=np.float64)
        mask = self.parent >= 0
        out[mask] = row[self.parent[mask]] * self.fraction[mask]
        return out

    def carry_row(self, row: FloatArray, *, fill: float = 0.0) -> FloatArray:
        """Remap a per-old-interval *intensive* array (e.g. a speed).

        Unlike :meth:`split_row`, the value is copied to every child
        unchanged — appropriate for quantities that do not scale with
        interval length.
        """
        out = np.full(self.grid.size, fill, dtype=np.float64)
        mask = self.parent >= 0
        out[mask] = row[self.parent[mask]]
        return out


@dataclass(frozen=True)
class Grid:
    """An ordered partition of ``[boundaries[0], boundaries[-1])``.

    ``boundaries`` is a strictly increasing float array of length
    ``size + 1``; interval ``k`` is ``[boundaries[k], boundaries[k+1])``.
    """

    boundaries: FloatArray

    def __post_init__(self) -> None:
        b = np.ascontiguousarray(self.boundaries, dtype=np.float64)
        if b.ndim != 1 or b.size < 2:
            raise InvalidParameterError(
                "a grid needs at least two boundaries (one interval)"
            )
        if not np.all(np.diff(b) > _TIME_EPS):
            raise InvalidParameterError(
                "grid boundaries must be strictly increasing"
            )
        object.__setattr__(self, "boundaries", b)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Time]) -> "Grid":
        """Grid whose boundaries are the de-duplicated sorted ``points``."""
        uniq = _dedupe(sorted(points))
        return cls(np.array(uniq, dtype=np.float64))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of atomic intervals ``N``."""
        return int(self.boundaries.size - 1)

    @property
    def lengths(self) -> FloatArray:
        """Array of interval lengths ``l_k``."""
        return np.diff(self.boundaries)

    @property
    def span(self) -> tuple[Time, Time]:
        """Overall covered range ``[tau_0, tau_N)``."""
        return (float(self.boundaries[0]), float(self.boundaries[-1]))

    def interval(self, k: IntervalIndex) -> tuple[Time, Time]:
        """The half-open interval ``T_k``."""
        return (float(self.boundaries[k]), float(self.boundaries[k + 1]))

    def length(self, k: IntervalIndex) -> float:
        """Length ``l_k`` of interval ``k``."""
        return float(self.boundaries[k + 1] - self.boundaries[k])

    def locate(self, t: Time) -> IntervalIndex:
        """Index of the interval containing time ``t``.

        Raises :class:`IndexError` when ``t`` is outside the grid span.
        The right endpoint is exclusive, matching ``[tau_{k-1}, tau_k)``.
        """
        lo, hi = self.span
        if t < lo - _TIME_EPS or t >= hi:
            raise IndexError(f"time {t} outside grid span [{lo}, {hi})")
        k = int(np.searchsorted(self.boundaries, t, side="right")) - 1
        return max(0, min(k, self.size - 1))

    def covering(self, start: Time, end: Time) -> range:
        """Indices of intervals fully inside ``[start, end)``.

        Both endpoints must be grid boundaries (they are, for any job
        window once its release/deadline have been inserted); otherwise a
        :class:`GridMismatchError` is raised to surface stale grids early.
        """
        i = _boundary_index(self.boundaries, start)
        j = _boundary_index(self.boundaries, end)
        if i is None or j is None:
            raise GridMismatchError(
                f"window [{start}, {end}) is not aligned with the grid; "
                "refine the grid with these endpoints first"
            )
        return range(i, j)

    def availability(self, job: Job) -> np.ndarray:
        """Boolean mask ``c_{jk}``: interval ``k`` lies inside the job window."""
        mask = np.zeros(self.size, dtype=bool)
        mask[list(self.covering(job.release, job.deadline))] = True
        return mask

    def availability_matrix(self, instance: Instance) -> np.ndarray:
        """Full ``n x N`` boolean availability matrix for an instance.

        Requires every job window endpoint to be a grid boundary, i.e. the
        grid built by :func:`grid_for_instance`.
        """
        return np.stack([self.availability(j) for j in instance.jobs], axis=0)

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def refine(self, new_points: Iterable[Time]) -> Refinement:
        """Insert breakpoints and report how old intervals split.

        Points outside the current span extend the grid (this happens when
        a newly released job's deadline exceeds the known horizon); the
        extension intervals have no parent. New points within tolerance of
        an existing boundary snap to it, so refinement never *moves* a
        boundary.
        """
        existing = self.boundaries.tolist()
        fresh = [
            p
            for p in map(float, new_points)
            if not any(abs(p - b) <= _TIME_EPS for b in existing)
        ]
        merged = _dedupe(sorted(set(fresh) | set(existing)))
        new = Grid(np.array(merged, dtype=np.float64))
        parent = np.empty(new.size, dtype=np.int64)
        fraction = np.empty(new.size, dtype=np.float64)
        old_lo, old_hi = self.span
        for k in range(new.size):
            a, b = new.interval(k)
            if a < old_lo - _TIME_EPS or b > old_hi + _TIME_EPS:
                parent[k] = -1
                fraction[k] = 1.0
                continue
            p = self.locate(a)
            parent[k] = p
            fraction[k] = (b - a) / self.length(p)
        return Refinement(grid=new, parent=parent, fraction=fraction)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def same_as(self, other: "Grid", *, tol: float = _TIME_EPS) -> bool:
        """Whether two grids have identical boundaries up to ``tol``."""
        return self.boundaries.size == other.boundaries.size and bool(
            np.allclose(self.boundaries, other.boundaries, atol=tol, rtol=0.0)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.span
        return f"Grid(N={self.size}, span=[{lo:g}, {hi:g}))"


def grid_for_instance(instance: Instance) -> Grid:
    """The paper's atomic-interval partition for a full (offline) instance.

    Boundaries are all distinct release times and deadlines; with ``n``
    jobs there are at most ``2n - 1`` intervals.
    """
    if instance.n == 0:
        raise InvalidParameterError("cannot build a grid for an empty instance")
    return Grid.from_points(instance.event_times())


def _dedupe(sorted_points: Sequence[float]) -> list[float]:
    """Drop points closer than ``_TIME_EPS`` to their predecessor."""
    out: list[float] = []
    for p in sorted_points:
        if not out or p - out[-1] > _TIME_EPS:
            out.append(float(p))
    return out


def _boundary_index(boundaries: FloatArray, t: Time) -> int | None:
    """Index of ``t`` within ``boundaries`` (up to tolerance), else None."""
    i = bisect.bisect_left(boundaries.tolist(), t - _TIME_EPS)
    if i < boundaries.size and abs(float(boundaries[i]) - t) <= _TIME_EPS * max(1.0, abs(t)) + _TIME_EPS:
        return i
    return None
