"""Atomic time intervals and their online refinement.

Following Bingham & Greenstreet (and Section 2.1 of the paper), time is
partitioned into *atomic intervals* ``T_k = [tau_{k-1}, tau_k)`` whose
boundaries are exactly the release times and deadlines seen so far. Inside
an atomic interval the set of available jobs is constant, which is what
makes per-interval work assignments a complete description of a schedule.

An online algorithm does not know the final grid: when a new job arrives
its release/deadline may split existing intervals. The paper observes
(Section 3, "Concerning the Time Partitioning") that splitting an interval
and dividing assigned portions proportionally to the sub-lengths leaves
the schedule unchanged. :meth:`Grid.refine` implements exactly this and
returns the bookkeeping needed to remap per-interval arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import GridMismatchError, InvalidParameterError
from ..types import FloatArray, IntervalIndex, Time
from .job import Instance, Job

__all__ = ["Grid", "Refinement", "grid_for_instance"]

#: Two time points closer than this are considered identical breakpoints.
_TIME_EPS = 1e-12


@dataclass(frozen=True)
class Refinement:
    """Result of refining a grid with new breakpoints.

    Attributes
    ----------
    grid:
        The refined grid.
    parent:
        For each new interval index, the index of the old interval that
        contains it (``len == grid.size``). New intervals that lie outside
        the old grid's span have parent ``-1``.
    fraction:
        For each new interval, its length divided by its parent's length
        (1.0 for parent ``-1``). Splitting a per-interval quantity ``q_k``
        proportionally means assigning ``q_parent * fraction`` to each
        child — the paper's load-preserving split.
    """

    grid: "Grid"
    parent: np.ndarray
    fraction: FloatArray

    def split_row(self, row: FloatArray, *, fill: float = 0.0) -> FloatArray:
        """Remap a per-old-interval array onto the refined grid.

        ``row[k]`` is distributed over the children of old interval ``k``
        in proportion to their lengths; positions with no parent get
        ``fill``.
        """
        out = np.full(self.grid.size, fill, dtype=np.float64)
        mask = self.parent >= 0
        out[mask] = row[self.parent[mask]] * self.fraction[mask]
        return out

    def carry_row(self, row: FloatArray, *, fill: float = 0.0) -> FloatArray:
        """Remap a per-old-interval *intensive* array (e.g. a speed).

        Unlike :meth:`split_row`, the value is copied to every child
        unchanged — appropriate for quantities that do not scale with
        interval length.
        """
        out = np.full(self.grid.size, fill, dtype=np.float64)
        mask = self.parent >= 0
        out[mask] = row[self.parent[mask]]
        return out


@dataclass(frozen=True)
class Grid:
    """An ordered partition of ``[boundaries[0], boundaries[-1])``.

    ``boundaries`` is a strictly increasing float array of length
    ``size + 1``; interval ``k`` is ``[boundaries[k], boundaries[k+1])``.
    """

    boundaries: FloatArray

    def __post_init__(self) -> None:
        b = np.ascontiguousarray(self.boundaries, dtype=np.float64)
        if b.ndim != 1 or b.size < 2:
            raise InvalidParameterError(
                "a grid needs at least two boundaries (one interval)"
            )
        diffs = np.diff(b)
        if not np.all(diffs > _TIME_EPS):
            raise InvalidParameterError(
                "grid boundaries must be strictly increasing"
            )
        object.__setattr__(self, "boundaries", b)
        # Cache the interval lengths (immutable alongside the frozen
        # boundaries): ``lengths`` is read in every hot loop and
        # recomputing the diff per access costs O(N) each time.
        diffs.flags.writeable = False
        object.__setattr__(self, "_lengths", diffs)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Time]) -> "Grid":
        """Grid whose boundaries are the de-duplicated sorted ``points``."""
        uniq = _dedupe(sorted(points))
        return cls(np.array(uniq, dtype=np.float64))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of atomic intervals ``N``."""
        return int(self.boundaries.size - 1)

    @property
    def lengths(self) -> FloatArray:
        """Array of interval lengths ``l_k`` (cached, read-only)."""
        return self._lengths

    @property
    def span(self) -> tuple[Time, Time]:
        """Overall covered range ``[tau_0, tau_N)``."""
        return (float(self.boundaries[0]), float(self.boundaries[-1]))

    def interval(self, k: IntervalIndex) -> tuple[Time, Time]:
        """The half-open interval ``T_k``."""
        return (float(self.boundaries[k]), float(self.boundaries[k + 1]))

    def length(self, k: IntervalIndex) -> float:
        """Length ``l_k`` of interval ``k``."""
        return float(self.boundaries[k + 1] - self.boundaries[k])

    def locate(self, t: Time) -> IntervalIndex:
        """Index of the interval containing time ``t``.

        Raises :class:`IndexError` when ``t`` is outside the grid span.
        The right endpoint is exclusive, matching ``[tau_{k-1}, tau_k)``.
        """
        lo, hi = self.span
        if t < lo - _TIME_EPS or t >= hi:
            raise IndexError(f"time {t} outside grid span [{lo}, {hi})")
        k = int(np.searchsorted(self.boundaries, t, side="right")) - 1
        return max(0, min(k, self.size - 1))

    def covering(self, start: Time, end: Time) -> range:
        """Indices of intervals fully inside ``[start, end)``.

        Both endpoints must be grid boundaries (they are, for any job
        window once its release/deadline have been inserted); otherwise a
        :class:`GridMismatchError` is raised to surface stale grids early.
        """
        i = _boundary_index(self.boundaries, start)
        j = _boundary_index(self.boundaries, end)
        if i is None or j is None:
            raise GridMismatchError(
                f"window [{start}, {end}) is not aligned with the grid; "
                "refine the grid with these endpoints first"
            )
        return range(i, j)

    def availability(self, job: Job) -> np.ndarray:
        """Boolean mask ``c_{jk}``: interval ``k`` lies inside the job window."""
        mask = np.zeros(self.size, dtype=bool)
        mask[list(self.covering(job.release, job.deadline))] = True
        return mask

    def availability_matrix(self, instance: Instance) -> np.ndarray:
        """Full ``n x N`` boolean availability matrix for an instance.

        Requires every job window endpoint to be a grid boundary, i.e. the
        grid built by :func:`grid_for_instance`. Vectorized: one
        searchsorted per endpoint column and a broadcast range compare,
        instead of a Python covering() walk per job.
        """
        def aligned(col: np.ndarray, t: FloatArray) -> np.ndarray:
            hit = col < self.boundaries.size
            b_at = self.boundaries[np.minimum(col, self.boundaries.size - 1)]
            tol = _TIME_EPS * np.maximum(1.0, np.abs(t)) + _TIME_EPS
            return hit & (np.abs(b_at - t) <= tol)

        starts = instance.releases
        ends = instance.deadlines
        i = np.searchsorted(self.boundaries, starts - _TIME_EPS, side="left")
        j = np.searchsorted(self.boundaries, ends - _TIME_EPS, side="left")
        if not (aligned(i, starts).all() and aligned(j, ends).all()):
            # Fall back to the per-job path for the exact historical
            # error message on the first offending window.
            return np.stack(
                [self.availability(job) for job in instance.jobs], axis=0
            )
        span = np.arange(self.size)
        return (span >= i[:, None]) & (span < j[:, None])

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def fresh_points(self, new_points: Iterable[Time]) -> list[float]:
        """Sorted new breakpoints that do not snap to an existing
        boundary (nor to an earlier kept point), deduplicated with the
        grid tolerance.

        The shared point-classification of every refinement path —
        :meth:`refine` and the specialized two-point fast path inside
        ``PDScheduler`` both call this, so snapping semantics cannot
        drift between them. A point within ``_TIME_EPS`` of its nearest
        boundary snaps (the sorted array's neighbours minimize the
        distance, so checking both neighbours equals checking all);
        fresh points are >eps from every boundary, hence no boundary
        can sit between two near-identical fresh points and fresh-only
        deduplication equals deduplicating the combined list.
        """
        b = self.boundaries
        points = sorted(float(p) for p in new_points)
        slots = np.searchsorted(b, points, side="left")
        fresh: list[float] = []
        for p, i in zip(points, slots.tolist()):
            near = (i < b.size and float(b[i]) - p <= _TIME_EPS) or (
                i > 0 and p - float(b[i - 1]) <= _TIME_EPS
            )
            if near or (fresh and p - fresh[-1] <= _TIME_EPS):
                continue
            fresh.append(p)
        return fresh

    def refine(self, new_points: Iterable[Time]) -> Refinement:
        """Insert breakpoints and report how old intervals split.

        Points outside the current span extend the grid (this happens when
        a newly released job's deadline exceeds the known horizon); the
        extension intervals have no parent. New points within tolerance of
        an existing boundary snap to it, so refinement never *moves* a
        boundary.

        Amortized-cheap by design: proximity checks are binary searches
        against the sorted boundary array (the nearest boundary minimizes
        the distance, so checking the two neighbours equals checking all),
        and the parent/fraction bookkeeping is one vectorized pass — the
        per-arrival refinement inside PD costs O(N) C-level work instead
        of the historical O(N log N) Python loop.
        """
        b = self.boundaries
        kept = self.fresh_points(new_points)
        if kept:
            merged = np.sort(
                np.concatenate((b, np.asarray(kept, dtype=np.float64)))
            )
        else:
            merged = b.copy()
        new = Grid(merged)
        starts = merged[:-1]
        ends = merged[1:]
        old_lo, old_hi = self.span
        outside = (starts < old_lo - _TIME_EPS) | (ends > old_hi + _TIME_EPS)
        parent = np.clip(
            np.searchsorted(b, starts, side="right") - 1, 0, self.size - 1
        ).astype(np.int64)
        fraction = (ends - starts) / self._lengths[parent]
        parent[outside] = -1
        fraction[outside] = 1.0
        return Refinement(grid=new, parent=parent, fraction=fraction)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def same_as(self, other: "Grid", *, tol: float = _TIME_EPS) -> bool:
        """Whether two grids have identical boundaries up to ``tol``."""
        return self.boundaries.size == other.boundaries.size and bool(
            np.allclose(self.boundaries, other.boundaries, atol=tol, rtol=0.0)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.span
        return f"Grid(N={self.size}, span=[{lo:g}, {hi:g}))"


def grid_for_instance(instance: Instance) -> Grid:
    """The paper's atomic-interval partition for a full (offline) instance.

    Boundaries are all distinct release times and deadlines; with ``n``
    jobs there are at most ``2n - 1`` intervals.
    """
    if instance.n == 0:
        raise InvalidParameterError("cannot build a grid for an empty instance")
    return Grid.from_points(instance.event_times())


def _dedupe(sorted_points: Sequence[float]) -> list[float]:
    """Drop points closer than ``_TIME_EPS`` to their predecessor."""
    out: list[float] = []
    for p in sorted_points:
        if not out or p - out[-1] > _TIME_EPS:
            out.append(float(p))
    return out


def _boundary_index(boundaries: FloatArray, t: Time) -> int | None:
    """Index of ``t`` within ``boundaries`` (up to tolerance), else None."""
    i = int(np.searchsorted(boundaries, t - _TIME_EPS, side="left"))
    if i < boundaries.size and abs(float(boundaries[i]) - t) <= _TIME_EPS * max(1.0, abs(t)) + _TIME_EPS:
        return i
    return None
