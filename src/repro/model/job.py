"""Jobs and problem instances.

A :class:`Job` is the paper's 4-tuple ``(r_j, d_j, w_j, v_j)``: release
time, deadline, workload, and value. An :class:`Instance` bundles a job set
with the machine environment (processor count ``m`` and energy exponent
``alpha``) and offers the derived arrays and event lists every algorithm in
the library needs.

Instances are immutable; algorithms never mutate them. Jobs are identified
by their 0-based position in the instance, which by convention is also
their arrival order after :meth:`Instance.sorted_by_release`.

Storage note: the derived per-job arrays (``releases``, ``deadlines``,
``workloads``, ``values``) are backed by a :class:`~repro.model.job_arrays.JobArrays`
columnar view built once per instance and cached — read-only numpy
columns, not per-access Python loops. Instances built through
:meth:`Instance.from_arrays` go further: they carry *only* the columns
and materialize their ``Job`` tuple lazily on first access, which keeps
million-job instance construction out of the Python object allocator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .job_arrays import JobArrays

from ..errors import InvalidInstanceError, InvalidJobError, InvalidParameterError
from ..types import FloatArray, JobId, Time
from .power import PolynomialPower

__all__ = ["Job", "Instance"]

#: Values at least this large are treated as "must finish" in helpers that
#: construct classical (no-rejection) instances.
_HUGE_VALUE = 1e30


@dataclass(frozen=True, slots=True)
class Job:
    """A single preemptable job.

    Attributes
    ----------
    release:
        Time ``r_j`` at which the job (and all its attributes) becomes
        known to an online algorithm.
    deadline:
        Time ``d_j > r_j`` by which the workload must be fully processed
        for the job to count as finished.
    workload:
        Units of work ``w_j > 0``.
    value:
        Loss ``v_j >= 0`` suffered if the job is not finished.
    name:
        Optional human-readable label used in rendered schedules.
    """

    release: float
    deadline: float
    workload: float
    value: float
    name: str | None = None

    def __post_init__(self) -> None:
        for attr in ("release", "deadline", "workload", "value"):
            x = getattr(self, attr)
            if not isinstance(x, (int, float)) or not math.isfinite(x):
                raise InvalidJobError(f"job {attr} must be a finite number, got {x!r}")
        if self.release < 0.0:
            raise InvalidJobError(f"release must be >= 0, got {self.release}")
        if self.deadline <= self.release:
            raise InvalidJobError(
                f"deadline ({self.deadline}) must be strictly after release "
                f"({self.release})"
            )
        if self.workload <= 0.0:
            raise InvalidJobError(f"workload must be > 0, got {self.workload}")
        if self.value < 0.0:
            raise InvalidJobError(f"value must be >= 0, got {self.value}")

    @property
    def window(self) -> tuple[Time, Time]:
        """The availability window ``[release, deadline)``."""
        return (self.release, self.deadline)

    @property
    def span(self) -> float:
        """Window length ``deadline - release``."""
        return self.deadline - self.release

    @property
    def density(self) -> float:
        """``workload / span`` — the job's average required speed.

        This is the constant speed the Average-Rate heuristic devotes to
        the job, and a lower bound on the peak speed any feasible schedule
        uses for it on a single processor.
        """
        return self.workload / self.span

    def label(self, index: int | None = None) -> str:
        """Display label: the explicit name, or ``J<index>``."""
        if self.name is not None:
            return self.name
        return f"J{index}" if index is not None else "J?"

    def with_value(self, value: float) -> "Job":
        """A copy of this job with a different value."""
        return replace(self, value=value)


@dataclass(frozen=True)
class Instance:
    """A complete problem instance: jobs + machine environment.

    Parameters
    ----------
    jobs:
        The job set, stored as a tuple. Index into it with job ids.
    m:
        Number of identical speed-scalable processors (``>= 1``).
    alpha:
        Energy exponent of the shared power function ``P(s) = s**alpha``.
    """

    jobs: tuple[Job, ...]
    m: int = 1
    alpha: float = 3.0
    _power: PolynomialPower = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.m, int) or self.m < 1:
            raise InvalidParameterError(f"processor count m must be an int >= 1, got {self.m!r}")
        jobs = tuple(self.jobs)
        if not all(isinstance(j, Job) for j in jobs):
            raise InvalidInstanceError("all elements of `jobs` must be Job objects")
        object.__setattr__(self, "jobs", jobs)
        # Validates alpha as a side effect.
        object.__setattr__(self, "_power", PolynomialPower(self.alpha))

    def __getattr__(self, name: str) -> Any:
        # Lazy Job materialization for array-backed instances (built via
        # `from_arrays`, which bypasses __init__ and leaves `jobs` unset).
        if name == "jobs":
            arrays = self.__dict__.get("_arrays")
            if arrays is not None:
                jobs = arrays.to_jobs()
                object.__setattr__(self, "jobs", jobs)
                return jobs
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        arrays: "JobArrays",
        *,
        m: int = 1,
        alpha: float = 3.0,
    ) -> "Instance":
        """Build an instance directly from columnar job storage.

        No ``Job`` objects are constructed up front — the job tuple
        materializes lazily on first access (``instance.jobs``,
        indexing, iteration), while the vectorized paths (derived
        arrays, :meth:`sorted_by_release`) run straight off the columns.
        Validation is the vectorized replay of ``Job``'s invariants
        performed by :class:`~repro.model.job_arrays.JobArrays`.
        """
        from .job_arrays import JobArrays

        if not isinstance(arrays, JobArrays):
            raise InvalidInstanceError(
                f"from_arrays expects a JobArrays, got {type(arrays).__name__}"
            )
        if not isinstance(m, int) or m < 1:
            raise InvalidParameterError(
                f"processor count m must be an int >= 1, got {m!r}"
            )
        inst = object.__new__(cls)
        object.__setattr__(inst, "m", m)
        object.__setattr__(inst, "alpha", alpha)
        # Validates alpha as a side effect (same as __post_init__).
        object.__setattr__(inst, "_power", PolynomialPower(alpha))
        object.__setattr__(inst, "_arrays", arrays)
        return inst
    @classmethod
    def from_tuples(
        cls,
        rows: Iterable[tuple[float, float, float, float]],
        *,
        m: int = 1,
        alpha: float = 3.0,
    ) -> "Instance":
        """Build an instance from ``(release, deadline, workload, value)`` rows."""
        return cls(tuple(Job(*row) for row in rows), m=m, alpha=alpha)

    @classmethod
    def classical(
        cls,
        rows: Iterable[tuple[float, float, float]],
        *,
        m: int = 1,
        alpha: float = 3.0,
    ) -> "Instance":
        """Build a classical (must-finish) instance.

        Rows are ``(release, deadline, workload)``; every job receives a
        value so large that no sensible algorithm rejects it, recovering
        the Yao–Demers–Shenker model as the paper's limiting case.
        """
        return cls(
            tuple(Job(r, d, w, _HUGE_VALUE) for (r, d, w) in rows), m=m, alpha=alpha
        )

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, job_id: JobId) -> Job:
        return self.jobs[job_id]

    @property
    def n(self) -> int:
        """Number of jobs."""
        arrays = self.__dict__.get("_arrays")
        if arrays is not None:
            return arrays.n
        return len(self.jobs)

    @property
    def power(self) -> PolynomialPower:
        """The shared power function ``P_alpha``."""
        return self._power

    # ------------------------------------------------------------------
    # Derived arrays (columnar, built once per instance and cached)
    # ------------------------------------------------------------------
    @property
    def arrays(self) -> "JobArrays":
        """Columnar (struct-of-array) view of the job set, cached.

        The four read-only float64 columns hold exactly the floats the
        ``Job`` attributes hold — the arrays the old per-access
        properties rebuilt on every call, now constructed once.
        """
        cached = self.__dict__.get("_arrays")
        if cached is None:
            from .job_arrays import JobArrays

            cached = JobArrays.from_jobs(self.jobs)
            object.__setattr__(self, "_arrays", cached)
        return cached

    @property
    def releases(self) -> FloatArray:
        """Array of release times, in job-id order (read-only)."""
        return self.arrays.releases

    @property
    def deadlines(self) -> FloatArray:
        """Array of deadlines, in job-id order (read-only)."""
        return self.arrays.deadlines

    @property
    def workloads(self) -> FloatArray:
        """Array of workloads, in job-id order (read-only)."""
        return self.arrays.workloads

    @property
    def values(self) -> FloatArray:
        """Array of job values, in job-id order (read-only)."""
        return self.arrays.values

    @property
    def total_value(self) -> float:
        """Sum of all job values (cost of rejecting everything)."""
        return float(sum(j.value for j in self.jobs))

    @property
    def horizon(self) -> tuple[Time, Time]:
        """Smallest release and largest deadline (the busy horizon)."""
        if not self.jobs:
            return (0.0, 0.0)
        return (
            min(j.release for j in self.jobs),
            max(j.deadline for j in self.jobs),
        )

    def event_times(self) -> FloatArray:
        """Sorted, de-duplicated release/deadline times.

        These are exactly the breakpoints ``tau_0 < ... < tau_N`` that
        define the paper's atomic intervals.
        """
        points = {j.release for j in self.jobs} | {j.deadline for j in self.jobs}
        return np.array(sorted(points), dtype=np.float64)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def sorted_by_release(self) -> "Instance":
        """A copy whose jobs are ordered by (release, deadline, id).

        Online algorithms consume jobs in this order; ties in release time
        are broken deterministically so runs are reproducible. Pure
        array-backed instances stay array-backed: the columns are
        permuted without materializing any ``Job``.
        """
        order = self.arrival_order()
        if "jobs" not in self.__dict__ and "_arrays" in self.__dict__:
            return Instance.from_arrays(
                self.arrays.permuted(order), m=self.m, alpha=self.alpha
            )
        return Instance(tuple(self.jobs[i] for i in order), m=self.m, alpha=self.alpha)

    def arrival_order(self) -> list[JobId]:
        """Job ids sorted by (release, deadline, id) without copying jobs.

        Computed as a stable ``lexsort`` over the cached columns — the
        identical permutation to sorting ``(release, deadline, id)``
        tuples (the trailing id key makes the order total, so stability
        and tie-breaking agree bit for bit with the historical
        ``sorted()`` call).
        """
        arrays = self.arrays
        order = np.lexsort(
            (np.arange(arrays.n), arrays.deadlines, arrays.releases)
        )
        return [int(i) for i in order]

    def restrict(self, job_ids: Sequence[JobId]) -> "Instance":
        """Sub-instance containing only ``job_ids`` (in the given order)."""
        return Instance(
            tuple(self.jobs[i] for i in job_ids), m=self.m, alpha=self.alpha
        )

    def with_machine(self, *, m: int | None = None, alpha: float | None = None) -> "Instance":
        """Copy with a different machine environment, same jobs."""
        return Instance(
            self.jobs,
            m=self.m if m is None else m,
            alpha=self.alpha if alpha is None else alpha,
        )

    def with_values(self, values: Sequence[float]) -> "Instance":
        """Copy with per-job values replaced by ``values``."""
        if len(values) != self.n:
            raise InvalidInstanceError(
                f"expected {self.n} values, got {len(values)}"
            )
        return Instance(
            tuple(j.with_value(v) for j, v in zip(self.jobs, values)),
            m=self.m,
            alpha=self.alpha,
        )

    def scaled(self, *, time: float = 1.0, work: float = 1.0) -> "Instance":
        """Copy with all times multiplied by ``time`` and workloads by ``work``.

        Useful in tests: energy scales as ``work**alpha * time**(1-alpha)``
        under this transformation, which property tests verify.
        """
        if time <= 0.0 or work <= 0.0:
            raise InvalidParameterError("scale factors must be positive")
        return Instance(
            tuple(
                Job(j.release * time, j.deadline * time, j.workload * work, j.value, j.name)
                for j in self.jobs
            ),
            m=self.m,
            alpha=self.alpha,
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A short multi-line human-readable summary."""
        lo, hi = self.horizon
        lines = [
            f"Instance: n={self.n} jobs, m={self.m} processors, alpha={self.alpha}",
            f"  horizon: [{lo:g}, {hi:g})",
            f"  total workload: {float(np.sum(self.workloads)) if self.n else 0.0:g}",
            f"  total value:    {self.total_value:g}",
        ]
        return "\n".join(lines)
