"""Cross-cutting validation helpers for schedules and realizations.

:meth:`repro.model.schedule.Schedule.validate` checks the *assignment
level* constraints; the functions here check the *realization level*: that
explicit segments respect "at most one job per processor at a time" and
"no job on two processors at once", and that segment work matches the
claimed loads. They are used by integration tests and by the analysis
package when certifying results, not in algorithm hot paths.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from ..chen.mcnaughton import Segment
from ..errors import InfeasibleScheduleError

__all__ = [
    "check_no_processor_overlap",
    "check_no_job_self_overlap",
    "check_segment_work",
    "validate_segments",
]

_TIME_EPS = 1e-9


def _sorted_by(segments: Iterable[Segment], key: str) -> dict[int, list[Segment]]:
    groups: dict[int, list[Segment]] = defaultdict(list)
    for seg in segments:
        groups[getattr(seg, key)].append(seg)
    for segs in groups.values():
        segs.sort(key=lambda s: s.start)
    return groups


def check_no_processor_overlap(segments: Sequence[Segment]) -> None:
    """Every processor runs at most one job at any time."""
    for proc, segs in _sorted_by(segments, "processor").items():
        for prev, cur in zip(segs, segs[1:]):
            if cur.start < prev.end - _TIME_EPS:
                raise InfeasibleScheduleError(
                    f"processor {proc}: segments overlap "
                    f"([{prev.start}, {prev.end}) for job {prev.job} and "
                    f"[{cur.start}, {cur.end}) for job {cur.job})"
                )


def check_no_job_self_overlap(segments: Sequence[Segment]) -> None:
    """No job runs on two processors at the same time (nonparallel jobs)."""
    for job, segs in _sorted_by(segments, "job").items():
        for prev, cur in zip(segs, segs[1:]):
            if cur.start < prev.end - _TIME_EPS:
                raise InfeasibleScheduleError(
                    f"job {job} runs in parallel with itself: "
                    f"[{prev.start}, {prev.end}) on processor {prev.processor} vs "
                    f"[{cur.start}, {cur.end}) on processor {cur.processor}"
                )


def check_segment_work(
    segments: Sequence[Segment],
    expected_work: dict[int, float],
    *,
    rel_tol: float = 1e-6,
) -> None:
    """Per-job segment work must match the claimed per-job loads."""
    got: dict[int, float] = defaultdict(float)
    for seg in segments:
        got[seg.job] += seg.work
    for job, want in expected_work.items():
        have = got.get(job, 0.0)
        if abs(have - want) > rel_tol * max(1.0, abs(want)):
            raise InfeasibleScheduleError(
                f"job {job}: segments process {have:.12g} work, expected {want:.12g}"
            )
    extra = set(got) - set(expected_work)
    if any(got[j] > rel_tol for j in extra):
        raise InfeasibleScheduleError(
            f"segments process work for unexpected jobs {sorted(extra)}"
        )


def validate_segments(
    segments: Sequence[Segment],
    *,
    expected_work: dict[int, float] | None = None,
    m: int | None = None,
) -> None:
    """Run all realization-level checks on a segment list."""
    check_no_processor_overlap(segments)
    check_no_job_self_overlap(segments)
    if m is not None:
        bad = [s for s in segments if not (0 <= s.processor < m)]
        if bad:
            raise InfeasibleScheduleError(
                f"segment uses processor {bad[0].processor} outside [0, {m})"
            )
    if expected_work is not None:
        check_segment_work(segments, expected_work)
