"""Problem model: jobs, power functions, atomic intervals, schedules."""

from .intervals import Grid, Refinement, grid_for_instance
from .job import Instance, Job
from .power import (
    PolynomialPower,
    PowerFunction,
    energy_at_constant_speed,
    optimal_constant_speed_energy,
)
from .schedule import CostBreakdown, Schedule
from .validation import (
    check_no_job_self_overlap,
    check_no_processor_overlap,
    check_segment_work,
    validate_segments,
)

__all__ = [
    "Job",
    "Instance",
    "PowerFunction",
    "PolynomialPower",
    "energy_at_constant_speed",
    "optimal_constant_speed_energy",
    "Grid",
    "Refinement",
    "grid_for_instance",
    "Schedule",
    "CostBreakdown",
    "validate_segments",
    "check_no_processor_overlap",
    "check_no_job_self_overlap",
    "check_segment_work",
]
